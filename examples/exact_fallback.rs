//! Exact reconciliation fallback: the `EMD_k = 0` case.
//!
//! §3 of the paper notes that when `EMD_k(S_A, S_B) = 0` — the sets agree
//! exactly up to k insertions/deletions — "this problem can be solved
//! exactly with a standard set reconciliation protocol". This example
//! shows that path: two replica sets differing by a handful of whole
//! records reconcile exactly with communication proportional to the
//! difference, not the database size.
//!
//! Run with: `cargo run --release --example exact_fallback`

use robust_set_recon::core::set_recon::exact_reconcile;
use robust_set_recon::metric::{MetricSpace, Point};

fn main() {
    let space = MetricSpace::l1(1_000_000, 3);
    // 20_000 shared records.
    let shared: Vec<Point> = (0..20_000i64)
        .map(|i| Point::new(vec![i % 1000, (i * 7) % 1000, i / 20]))
        .collect();
    let mut alice = shared.clone();
    let mut bob = shared;
    // Alice has 3 records Bob lacks; Bob has 2 records Alice lacks.
    for j in 0..3 {
        alice.push(Point::new(vec![999_000 + j, j, j]));
    }
    for j in 0..2 {
        bob.push(Point::new(vec![888_000 + j, j, j]));
    }

    let diff_bound = 8; // an upper bound on |S_A △ S_B|
    let out =
        exact_reconcile(&space, &alice, &bob, diff_bound, 2024).expect("difference within bound");

    println!("database size      : {} records", alice.len());
    println!("alice-only records : {:?}", out.alice_only.len());
    println!("bob-only records   : {:?}", out.bob_only.len());
    println!(
        "communication      : {} bits ({} bits/record of difference)",
        out.transcript.total_bits(),
        out.transcript.total_bits() / 5
    );
    let naive = alice.len() as u64 * space.universe().point_wire_bits();
    println!("naive transfer     : {naive} bits");

    // Bob now holds Alice's set exactly.
    let mut got = out.alice_set.clone();
    got.sort();
    alice.sort();
    assert_eq!(got, alice);
    println!("bob's reconstruction matches alice's set exactly ✓");
}
