//! Synchronizing feature databases: our protocol vs the quadtree baseline.
//!
//! Two machine-learning serving nodes hold the same database of 2-d image
//! feature summaries (e.g. PCA-projected embeddings quantized to a grid).
//! One node's copies went through a lossy re-compression (small coordinate
//! noise), and a few entries were replaced entirely. We reconcile with
//! (a) the paper's interval-scaled EMD protocol (Corollary 3.6) and
//! (b) the Chen et al. quadtree baseline, comparing bits and final EMD.
//!
//! Run with: `cargo run --release --example feature_db_sync`

use robust_set_recon::core::ScaledEmdProtocol;
use robust_set_recon::emd::{emd, emd_k};
use robust_set_recon::metric::MetricSpace;
use robust_set_recon::quadtree::{QuadtreeConfig, QuadtreeProtocol};
use robust_set_recon::workloads::planted_emd;

fn main() {
    let space = MetricSpace::l2(1024, 2);
    let n = 400;
    let k = 4;
    let w = planted_emd(space, n, k, 1, 7);

    let before = emd(space.metric(), &w.alice, &w.bob);
    let floor = emd_k(space.metric(), &w.alice, &w.bob, k);
    println!("initial EMD = {before:.1}, EMD_k floor = {floor:.1}\n");

    // (a) Paper protocol (Corollary 3.6).
    let ours = ScaledEmdProtocol::new(space, n, k, 99);
    let msg = ours.alice_encode(&w.alice);
    match ours.bob_decode(&msg, &w.bob) {
        Ok(out) => {
            let after = emd(space.metric(), &w.alice, &out.inner.reconciled);
            println!(
                "LSH+RIBLT (ours)  : {:>9} bits, EMD after = {after:.1} (interval {} of {})",
                out.total_bits,
                out.interval,
                ours.num_intervals()
            );
        }
        Err(e) => println!("LSH+RIBLT (ours)  : failed ({e})"),
    }

    // (b) Quadtree baseline.
    let base = QuadtreeProtocol::new(space, QuadtreeConfig { k, q: 3 }, 99);
    let qmsg = base.alice_encode(&w.alice);
    match base.bob_decode(&qmsg, &w.bob) {
        Ok(out) => {
            let after = emd(space.metric(), &w.alice, &out.reconciled);
            println!(
                "quadtree baseline : {:>9} bits, EMD after = {after:.1} (level {} of {})",
                qmsg.wire_bits(),
                out.level,
                base.num_levels()
            );
        }
        Err(_) => println!("quadtree baseline : failed"),
    }

    // (c) Naive full transfer reference.
    let naive_bits = n as u64 * space.universe().point_wire_bits();
    println!("naive transfer    : {naive_bits:>9} bits, EMD after = 0.0");
    println!(
        "\n(the paper's win is the approximation *guarantee*: O(log n) \
         independent of dimension, vs O(d) for the quadtree — run \
         exp_baseline_quadtree for the d-sweep where the quadtree degrades)"
    );
}
