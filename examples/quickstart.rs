//! Quickstart: robust set reconciliation in the EMD model.
//!
//! Two replicas hold 64-bit binary feature vectors for the same 300
//! objects, but (a) each replica's encoder flips an occasional bit and
//! (b) five objects per replica are simply different (insertions that
//! never propagated). Bob wants his replica to be *close* to Alice's in
//! earth mover's distance without shipping the whole set.
//!
//! Run with: `cargo run --release --example quickstart`

use robust_set_recon::core::emd_protocol::{EmdProtocol, EmdProtocolConfig};
use robust_set_recon::emd::{emd, emd_k};
use robust_set_recon::metric::MetricSpace;
use robust_set_recon::workloads::planted_emd_sparse;

fn main() {
    let dim = 64;
    let n = 300;
    let k = 5; // budget for genuinely-different points
    let space = MetricSpace::hamming(dim);

    // A synthetic replica pair: 295 shared vectors of which ~30 carry one
    // flipped bit of encoder noise, plus 5 unrelated vectors per side —
    // the paper's "the most valuable new data to reconcile would be the
    // outliers" regime, where EMD ≫ EMD_k.
    let workload = planted_emd_sparse(space, n, k, 1, 30, 0xC0FFEE);

    // Both parties derive every hash function from one shared seed.
    let config = EmdProtocolConfig::for_space(&space, n, k);
    let protocol = EmdProtocol::new(space, config, 0xC0FFEE);

    // One round: Alice encodes, Bob decodes and repairs.
    let message = protocol.alice_encode(&workload.alice);
    println!(
        "Alice → Bob: {} levels, {} KiB \
         (sized for k = {k} differences: grows with k·log(n·Δ), not with n — \
         the win over full transfer kicks in for n ≫ k·log²n; see the \
         exp_emd_hamming experiment for the sweep)",
        message.num_levels(),
        message.wire_bits() / 8 / 1024
    );

    match protocol.bob_decode(&message, &workload.bob) {
        Ok(outcome) => {
            let before = emd(space.metric(), &workload.alice, &workload.bob);
            let after = emd(space.metric(), &workload.alice, &outcome.reconciled);
            let floor = emd_k(space.metric(), &workload.alice, &workload.bob, k);
            println!("decoded at level i* = {}", outcome.i_star);
            println!("EMD before protocol: {before:8.1}");
            println!("EMD after  protocol: {after:8.1}");
            println!("EMD_k floor        : {floor:8.1}");
            println!(
                "approximation ratio : {:8.2} (Theorem 3.4 promises O(log n) ≈ {:.1})",
                after / floor.max(1.0),
                (n as f64).ln()
            );
            // The real headline: Alice's k unique points — the valuable
            // outliers — now have nearby representatives on Bob's side.
            let dist_to = |set: &[_]| {
                workload.alice[n - k..]
                    .iter()
                    .map(|a| space.nearest_distance(a, set))
                    .sum::<f64>()
                    / k as f64
            };
            println!(
                "outlier distance    : {:8.1} bits before → {:.1} bits after",
                dist_to(&workload.bob),
                dist_to(&outcome.reconciled)
            );
        }
        Err(e) => println!("protocol reported failure: {e} (rerun with a new seed)"),
    }
}
