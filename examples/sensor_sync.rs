//! Sensor-network synchronization with the Gap Guarantee protocol.
//!
//! The paper's motivating example (§1): two sensors observe the same
//! objects and record noisy coordinates. Readings of the same object are
//! within `r1`; distinct objects are at least `r2` apart. Sensor B wants a
//! reading for *every* object A knows about — the Gap Guarantee — while
//! paying communication only for the handful of objects it missed.
//!
//! Run with: `cargo run --release --example sensor_sync`

use robust_set_recon::core::gap_protocol::{verify_gap_guarantee, GapProtocol};
use robust_set_recon::core::low_dim_gap_config;
use robust_set_recon::metric::MetricSpace;
use robust_set_recon::workloads::sensor_pairs;

fn main() {
    // Each reading is a 16-channel spectral signature, each channel a
    // 16-bit value, compared under ℓ1. High dimension is exactly where
    // the paper's protocol wins: raw points cost d·log Δ = 256 bits,
    // while close readings reconcile via O(log n)-bit keys.
    let space = MetricSpace::l1(65_536, 16);
    let n = 500; // objects each sensor tracks
    let k = 6; // objects sensor B never saw
    let r1 = 50.0; // same-object measurement noise (ℓ1 across channels)
    let r2 = 50_000.0; // distinct objects have very different signatures

    let w = sensor_pairs(space, n, k, r1, r2, 42);
    println!(
        "sensor A: {} readings, sensor B: {} readings, {} objects unknown to B",
        w.alice.len(),
        w.bob.len(),
        w.alice_far.len()
    );

    // Low-dimensional ℓ_p space → Theorem 4.5's one-sided grid LSH.
    let (family, config) = low_dim_gap_config(&space, n, k, r1, r2);
    println!(
        "key shape: h = {} entries × m = {} LSH values, ρ̂ = {:.4}",
        config.h,
        config.m,
        family.rho_hat()
    );

    let protocol = GapProtocol::new(space, &family, config, 42);
    let outcome = protocol.run(&w.alice, &w.bob).expect("protocol succeeds");

    println!("\ntranscript:");
    for (label, bits) in outcome.transcript.entries() {
        println!("  {label:<36} {:>9} bits", bits);
    }
    let naive = w.alice.len() as u64 * space.universe().point_wire_bits();
    println!(
        "  total {} bits vs naive transfer {} bits ({:.1}× saving)",
        outcome.transcript.total_bits(),
        naive,
        naive as f64 / outcome.transcript.total_bits() as f64
    );

    println!(
        "\ntransmitted {} far points (ground truth: {})",
        outcome.transmitted.len(),
        w.alice_far.len()
    );
    let ok = verify_gap_guarantee(&space, &w.alice, &outcome.reconciled, r2);
    println!(
        "gap guarantee (every A-reading within r2 of B's final set): {}",
        if ok { "SATISFIED" } else { "VIOLATED" }
    );
    for far in &w.alice_far {
        let got = outcome.transmitted.contains(far);
        println!("  missing object {far:?} recovered: {got}");
    }
}
