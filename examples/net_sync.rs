//! Two-process reconciliation over a real TCP connection.
//!
//! Server and client agree on a session batch by sharing two numbers —
//! a session count and a trace seed — from which both deterministically
//! regenerate the same protocol instances (workloads and public coins),
//! exactly as two replicas sharing a configuration would. The server
//! holds every Bob half behind a `SessionFactory`; the client batches
//! the Alice halves and multiplexes all of them over one connection.
//!
//! Run in two terminals:
//!
//! ```text
//! cargo run --release --example net_sync -- --serve 127.0.0.1:7171 --once
//! cargo run --release --example net_sync -- --connect 127.0.0.1:7171
//! ```
//!
//! `--serve` without `--once` keeps accepting connections (thread per
//! connection) until killed. `--sessions N` and `--trace-seed S` must
//! match on both sides.

use robust_set_recon::net::{default_shards, NetSession, ReconClient, ReconServer};
use rsr_bench::experiments::net::{Instance, TraceFactory};
use rsr_workloads::sample_trace;
use std::process::exit;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    serve: Option<String>,
    connect: Option<String>,
    once: bool,
    sessions: usize,
    trace_seed: u64,
    shards: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        serve: None,
        connect: None,
        once: false,
        sessions: 64,
        trace_seed: 0xbea7,
        shards: default_shards(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| usage(name));
        match arg.as_str() {
            "--serve" => args.serve = Some(value("--serve ADDR")),
            "--connect" => args.connect = Some(value("--connect ADDR")),
            "--once" => args.once = true,
            "--sessions" => {
                args.sessions = value("--sessions N").parse().unwrap_or_else(|_| usage("N"))
            }
            "--trace-seed" => {
                args.trace_seed = value("--trace-seed S")
                    .parse()
                    .unwrap_or_else(|_| usage("S"))
            }
            "--shards" => {
                args.shards = value("--shards N").parse().unwrap_or_else(|_| usage("N"));
                if args.shards == 0 {
                    usage("--shards must be >= 1");
                }
            }
            other => usage(other),
        }
    }
    if args.serve.is_some() == args.connect.is_some() {
        usage("exactly one of --serve/--connect");
    }
    args
}

fn usage(what: &str) -> ! {
    eprintln!("net_sync: bad or missing argument: {what}");
    eprintln!(
        "usage: net_sync (--serve ADDR [--once] | --connect ADDR) \
         [--sessions N] [--trace-seed S] [--shards N]"
    );
    exit(2)
}

fn build_factory(sessions: usize, trace_seed: u64) -> TraceFactory {
    let entries = sample_trace(sessions, trace_seed);
    TraceFactory {
        instances: entries.iter().map(Instance::build).collect(),
    }
}

fn main() {
    let args = parse_args();
    let factory = build_factory(args.sessions, args.trace_seed);

    if let Some(addr) = args.serve {
        let server = ReconServer::bind(addr.as_str(), Arc::new(factory))
            .unwrap_or_else(|e| {
                eprintln!("net_sync: cannot bind {addr}: {e}");
                exit(1)
            })
            .with_shards(args.shards);
        println!(
            "serving {} bob sessions (trace seed {:#x}) on {addr} across {} executor shards",
            args.sessions, args.trace_seed, args.shards
        );
        if args.once {
            let report = server.serve_one().unwrap_or_else(|e| {
                eprintln!("net_sync: connection failed: {e}");
                exit(1)
            });
            println!(
                "connection done: {}/{} sessions completed, {} frames in / {} out, \
                 {} wire bytes in / {} out",
                report.completed(),
                report.sessions.len(),
                report.frames_in,
                report.frames_out,
                report.wire_bytes_in,
                report.wire_bytes_out,
            );
            if report.failed() > 0 {
                for s in report.sessions.iter().filter(|s| s.error.is_some()) {
                    eprintln!("  session {}: {}", s.id, s.error.as_deref().unwrap());
                }
                exit(1);
            }
        } else {
            server.serve(None).unwrap_or_else(|e| {
                eprintln!("net_sync: accept loop failed: {e}");
                exit(1)
            });
        }
        return;
    }

    let addr = args.connect.expect("checked in parse_args");
    // The server may still be starting (CI launches it in the
    // background): retry briefly before giving up.
    let mut client = None;
    for _ in 0..40 {
        match ReconClient::connect(addr.as_str()) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(250)),
        }
    }
    let Some(client) = client else {
        eprintln!("net_sync: cannot connect to {addr}");
        exit(1)
    };
    let client = client.with_shards(args.shards);
    client.set_read_timeout(Some(Duration::from_secs(60))).ok();

    let t0 = Instant::now();
    let batch: Vec<(u64, Box<dyn NetSession + '_>)> = factory
        .instances
        .iter()
        .enumerate()
        .map(|(i, inst)| (i as u64, inst.alice_session()))
        .collect();
    let report = client.run_batch(batch).unwrap_or_else(|e| {
        eprintln!("net_sync: batch failed: {e}");
        exit(1)
    });
    let elapsed = t0.elapsed();

    println!(
        "{} sessions multiplexed over one connection in {:.1} ms ({:.0} sessions/sec)",
        report.sessions.len(),
        elapsed.as_secs_f64() * 1e3,
        report.sessions.len() as f64 / elapsed.as_secs_f64(),
    );
    println!(
        "completed {}/{}; {} payload bits in {}+{} wire bytes (out+in)",
        report.completed(),
        report.sessions.len(),
        report.payload_bits(),
        report.wire_bytes_out,
        report.wire_bytes_in,
    );
    for s in report.sessions.iter().take(4) {
        println!(
            "  session {:>3}: {:>8} bits in {} messages / {} rounds",
            s.id,
            s.transcript.total_bits(),
            s.transcript.num_messages(),
            s.transcript.num_rounds(),
        );
    }
    if report.sessions.len() > 4 {
        println!("  … and {} more", report.sessions.len() - 4);
    }
    if report.failed() > 0 {
        for s in report.sessions.iter().filter(|s| s.error.is_some()) {
            eprintln!("  session {}: {}", s.id, s.error.as_deref().unwrap());
        }
        exit(1);
    }
}
