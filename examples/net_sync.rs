//! Two-process reconciliation over a real TCP connection.
//!
//! Server and client agree on a session batch by sharing two numbers —
//! a session count and a trace seed — from which both deterministically
//! regenerate the same protocol instances (workloads and public coins),
//! exactly as two replicas sharing a configuration would. The server
//! holds every Bob half behind a `SessionFactory`; the client batches
//! the Alice halves and multiplexes all of them over one connection.
//!
//! Run in two terminals:
//!
//! ```text
//! cargo run --release --example net_sync -- --serve 127.0.0.1:7171 --once
//! cargo run --release --example net_sync -- --connect 127.0.0.1:7171
//! ```
//!
//! `--serve` without `--once` keeps accepting connections — one reactor
//! thread and one executor however many connections arrive — until
//! killed. `--sessions N` and `--trace-seed S` must match on both
//! sides. `--conns C` on the client spreads the batch round-robin over
//! C connections into that same reactor (pair it with `--conns C` on a
//! `--serve --once` server so it exits after serving all C).

use robust_set_recon::net::{
    default_shards, MultiClient, NetSession, ReconClient, ReconServer, SessionPlan,
};
use rsr_bench::experiments::net::{Instance, TraceFactory};
use rsr_workloads::sample_trace;
use std::process::exit;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    serve: Option<String>,
    connect: Option<String>,
    once: bool,
    sessions: usize,
    trace_seed: u64,
    shards: usize,
    conns: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        serve: None,
        connect: None,
        once: false,
        sessions: 64,
        trace_seed: 0xbea7,
        shards: default_shards(),
        conns: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| usage(name));
        match arg.as_str() {
            "--serve" => args.serve = Some(value("--serve ADDR")),
            "--connect" => args.connect = Some(value("--connect ADDR")),
            "--once" => args.once = true,
            "--sessions" => {
                args.sessions = value("--sessions N").parse().unwrap_or_else(|_| usage("N"))
            }
            "--trace-seed" => {
                args.trace_seed = value("--trace-seed S")
                    .parse()
                    .unwrap_or_else(|_| usage("S"))
            }
            "--shards" => {
                args.shards = value("--shards N").parse().unwrap_or_else(|_| usage("N"));
                if args.shards == 0 {
                    usage("--shards must be >= 1");
                }
            }
            "--conns" => {
                args.conns = value("--conns C").parse().unwrap_or_else(|_| usage("C"));
                if args.conns == 0 {
                    usage("--conns must be >= 1");
                }
            }
            other => usage(other),
        }
    }
    if args.serve.is_some() == args.connect.is_some() {
        usage("exactly one of --serve/--connect");
    }
    args
}

fn usage(what: &str) -> ! {
    eprintln!("net_sync: bad or missing argument: {what}");
    eprintln!(
        "usage: net_sync (--serve ADDR [--once] | --connect ADDR) \
         [--sessions N] [--trace-seed S] [--shards N] [--conns C]"
    );
    exit(2)
}

fn build_factory(sessions: usize, trace_seed: u64) -> TraceFactory {
    let entries = sample_trace(sessions, trace_seed);
    TraceFactory {
        instances: entries.iter().map(Instance::build).collect(),
    }
}

fn main() {
    let args = parse_args();
    let factory = build_factory(args.sessions, args.trace_seed);

    if let Some(addr) = args.serve {
        let server = ReconServer::bind(addr.as_str(), Arc::new(factory))
            .unwrap_or_else(|e| {
                eprintln!("net_sync: cannot bind {addr}: {e}");
                exit(1)
            })
            .with_shards(args.shards);
        println!(
            "serving {} bob sessions (trace seed {:#x}) on {addr} across {} executor shards",
            args.sessions, args.trace_seed, args.shards
        );
        if args.once && args.conns > 1 {
            // All the connections share this one reactor and executor;
            // per-connection outcomes are validated on the client side.
            server.serve(Some(args.conns)).unwrap_or_else(|e| {
                eprintln!("net_sync: accept loop failed: {e}");
                exit(1)
            });
            println!("served {} connections, exiting", args.conns);
        } else if args.once {
            let report = server.serve_one().unwrap_or_else(|e| {
                eprintln!("net_sync: connection failed: {e}");
                exit(1)
            });
            println!(
                "connection done: {}/{} sessions completed, {} frames in / {} out, \
                 {} wire bytes in / {} out",
                report.completed(),
                report.sessions.len(),
                report.frames_in,
                report.frames_out,
                report.wire_bytes_in,
                report.wire_bytes_out,
            );
            if report.failed() > 0 {
                for s in report.sessions.iter().filter(|s| s.error.is_some()) {
                    eprintln!("  session {}: {}", s.id, s.error.as_deref().unwrap());
                }
                exit(1);
            }
        } else {
            server.serve(None).unwrap_or_else(|e| {
                eprintln!("net_sync: accept loop failed: {e}");
                exit(1)
            });
        }
        return;
    }

    let addr = args.connect.expect("checked in parse_args");
    let t0;
    let reports = if args.conns == 1 {
        // The server may still be starting (CI launches it in the
        // background): retry briefly before giving up.
        let mut client = None;
        for _ in 0..40 {
            match ReconClient::connect(addr.as_str()) {
                Ok(c) => {
                    client = Some(c);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(250)),
            }
        }
        let Some(client) = client else {
            eprintln!("net_sync: cannot connect to {addr}");
            exit(1)
        };
        let client = client.with_shards(args.shards);
        client.set_read_timeout(Some(Duration::from_secs(60))).ok();

        t0 = Instant::now();
        let batch: Vec<(u64, Box<dyn NetSession + '_>)> = factory
            .instances
            .iter()
            .enumerate()
            .map(|(i, inst)| (i as u64, inst.alice_session()))
            .collect();
        vec![client.run_batch(batch).unwrap_or_else(|e| {
            eprintln!("net_sync: batch failed: {e}");
            exit(1)
        })]
    } else {
        let mut client = None;
        for _ in 0..40 {
            match MultiClient::connect(addr.as_str(), args.conns) {
                Ok(c) => {
                    client = Some(c);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(250)),
            }
        }
        let Some(client) = client else {
            eprintln!("net_sync: cannot connect {} times to {addr}", args.conns);
            exit(1)
        };
        let mut client = client
            .with_shards(args.shards)
            .with_idle_timeout(Some(Duration::from_secs(60)));

        t0 = Instant::now();
        // Session i rides connection i % conns; one reactor drives all
        // the connections and one executor drives all the sessions.
        let batches: Vec<Vec<SessionPlan<'_>>> = (0..args.conns)
            .map(|c| {
                factory
                    .instances
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % args.conns == c)
                    .map(|(i, inst)| SessionPlan::new(i as u64, inst.alice_session()))
                    .collect()
            })
            .collect();
        let reports = client.run_batches(batches).unwrap_or_else(|e| {
            eprintln!("net_sync: batch failed: {e}");
            exit(1)
        });
        for (c, report) in reports.iter().enumerate() {
            if let Some(e) = &report.transport_error {
                eprintln!("net_sync: connection {c} failed: {e}");
            }
        }
        client.finish();
        reports
    };
    let elapsed = t0.elapsed();

    let total: usize = reports.iter().map(|r| r.sessions.len()).sum();
    let completed: usize = reports.iter().map(|r| r.completed()).sum();
    let failed: usize = reports.iter().map(|r| r.failed()).sum();
    let payload_bits: u64 = reports.iter().map(|r| r.payload_bits()).sum();
    let wire_out: u64 = reports.iter().map(|r| r.wire_bytes_out).sum();
    let wire_in: u64 = reports.iter().map(|r| r.wire_bytes_in).sum();
    println!(
        "{} sessions multiplexed over {} connection(s) in {:.1} ms ({:.0} sessions/sec)",
        total,
        reports.len(),
        elapsed.as_secs_f64() * 1e3,
        total as f64 / elapsed.as_secs_f64(),
    );
    println!(
        "completed {completed}/{total}; {payload_bits} payload bits in \
         {wire_out}+{wire_in} wire bytes (out+in)",
    );
    for s in reports.iter().flat_map(|r| &r.sessions).take(4) {
        println!(
            "  session {:>3}: {:>8} bits in {} messages / {} rounds",
            s.id,
            s.transcript.total_bits(),
            s.transcript.num_messages(),
            s.transcript.num_rounds(),
        );
    }
    if total > 4 {
        println!("  … and {} more", total - 4);
    }
    if failed > 0 || reports.iter().any(|r| r.transport_error.is_some()) {
        for s in reports
            .iter()
            .flat_map(|r| &r.sessions)
            .filter(|s| s.error.is_some())
        {
            eprintln!("  session {}: {}", s.id, s.error.as_deref().unwrap());
        }
        exit(1);
    }
}
