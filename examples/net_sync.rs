//! Two-process reconciliation over a real TCP connection.
//!
//! Server and client agree on a session batch by sharing two numbers —
//! a session count and a trace seed — from which both deterministically
//! regenerate the same protocol instances (workloads and public coins),
//! exactly as two replicas sharing a configuration would. The server
//! holds every Bob half behind a `SessionFactory`; the client runs the
//! Alice halves through the unified [`Driver`] builder, multiplexing
//! them over one or more connections.
//!
//! Run in two terminals:
//!
//! ```text
//! cargo run --release --example net_sync -- --serve 127.0.0.1:7171 --once
//! cargo run --release --example net_sync -- --connect 127.0.0.1:7171
//! ```
//!
//! `--serve` without `--once` keeps accepting connections — one reactor
//! thread and one executor however many connections arrive — until
//! killed. `--sessions N` and `--trace-seed S` must match on both
//! sides. `--conns C` on the client spreads the batch round-robin over
//! C connections into that same reactor (pair it with `--conns C` on a
//! `--serve --once` server so it exits after serving all C).
//!
//! `--rounds R` switches the client to **continuous** mode: it opens
//! one long-lived session (`--sessions` becomes the shared base-set
//! size), streams churn between rounds, and drives R incremental
//! rounds under the same session id — each shipping only the delta
//! since the last settle. The server needs no extra flag: its factory
//! builds the resident Bob half from the wire spec alone.

use robust_set_recon::core::continuous::shared;
use robust_set_recon::net::{default_shards, ConnectedDriver, Driver, ReconServer, SessionPlan};
use rsr_bench::experiments::net::{continuous_party_of, continuous_spec, InstanceFactory};
use rsr_workloads::{sample_churn, sample_trace, ChurnSpec};
use std::process::exit;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    serve: Option<String>,
    connect: Option<String>,
    once: bool,
    sessions: usize,
    trace_seed: u64,
    shards: usize,
    conns: usize,
    rounds: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        serve: None,
        connect: None,
        once: false,
        sessions: 64,
        trace_seed: 0xbea7,
        shards: default_shards(),
        conns: 1,
        rounds: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| usage(name));
        match arg.as_str() {
            "--serve" => args.serve = Some(value("--serve ADDR")),
            "--connect" => args.connect = Some(value("--connect ADDR")),
            "--once" => args.once = true,
            "--sessions" => {
                args.sessions = value("--sessions N").parse().unwrap_or_else(|_| usage("N"))
            }
            "--trace-seed" => {
                args.trace_seed = value("--trace-seed S")
                    .parse()
                    .unwrap_or_else(|_| usage("S"))
            }
            "--shards" => {
                args.shards = value("--shards N").parse().unwrap_or_else(|_| usage("N"));
                if args.shards == 0 {
                    usage("--shards must be >= 1");
                }
            }
            "--conns" => {
                args.conns = value("--conns C").parse().unwrap_or_else(|_| usage("C"));
                if args.conns == 0 {
                    usage("--conns must be >= 1");
                }
            }
            "--rounds" => {
                args.rounds = value("--rounds R").parse().unwrap_or_else(|_| usage("R"));
                if args.rounds == 0 {
                    usage("--rounds must be >= 1");
                }
            }
            other => usage(other),
        }
    }
    if args.serve.is_some() == args.connect.is_some() {
        usage("exactly one of --serve/--connect");
    }
    if args.rounds > 0 && args.conns > 1 {
        usage("--rounds drives one continuous session and needs --conns 1");
    }
    args
}

fn usage(what: &str) -> ! {
    eprintln!("net_sync: bad or missing argument: {what}");
    eprintln!(
        "usage: net_sync (--serve ADDR [--once] | --connect ADDR) \
         [--sessions N] [--trace-seed S] [--shards N] [--conns C] [--rounds R]"
    );
    exit(2)
}

fn build_factory(sessions: usize, trace_seed: u64) -> InstanceFactory {
    let entries = sample_trace(sessions, trace_seed);
    InstanceFactory::from_trace(&entries)
}

/// Connects the driver pool, retrying briefly — the server may still be
/// starting when CI launches both sides back to back.
fn connect_driver(addr: &str, conns: usize, shards: usize) -> ConnectedDriver {
    for _ in 0..40 {
        let attempt = Driver::new(addr)
            .conns(conns)
            .shards(shards)
            .idle_timeout(Some(Duration::from_secs(60)))
            .connect();
        match attempt {
            Ok(driver) => return driver,
            Err(_) => std::thread::sleep(Duration::from_millis(250)),
        }
    }
    eprintln!("net_sync: cannot connect {conns} time(s) to {addr}");
    exit(1)
}

fn main() {
    let args = parse_args();

    if let Some(addr) = args.serve {
        let factory = build_factory(args.sessions, args.trace_seed);
        let server = ReconServer::bind(addr.as_str(), Arc::new(factory))
            .unwrap_or_else(|e| {
                eprintln!("net_sync: cannot bind {addr}: {e}");
                exit(1)
            })
            .with_shards(args.shards);
        println!(
            "serving {} bob sessions (trace seed {:#x}) on {addr} across {} executor shards",
            args.sessions, args.trace_seed, args.shards
        );
        if args.once && args.conns > 1 {
            // All the connections share this one reactor and executor;
            // per-connection outcomes are validated on the client side.
            server.serve(Some(args.conns)).unwrap_or_else(|e| {
                eprintln!("net_sync: accept loop failed: {e}");
                exit(1)
            });
            println!("served {} connections, exiting", args.conns);
        } else if args.once {
            let report = server.serve_one().unwrap_or_else(|e| {
                eprintln!("net_sync: connection failed: {e}");
                exit(1)
            });
            println!(
                "connection done: {}/{} sessions completed, {} frames in / {} out, \
                 {} wire bytes in / {} out",
                report.completed(),
                report.sessions.len(),
                report.frames_in,
                report.frames_out,
                report.wire_bytes_in,
                report.wire_bytes_out,
            );
            if report.failed() > 0 {
                for s in report.sessions.iter().filter(|s| s.error.is_some()) {
                    eprintln!("  session {}: {}", s.id, s.error.as_deref().unwrap());
                }
                exit(1);
            }
        } else {
            server.serve(None).unwrap_or_else(|e| {
                eprintln!("net_sync: accept loop failed: {e}");
                exit(1)
            });
        }
        return;
    }

    let addr = args.connect.clone().expect("checked in parse_args");
    if args.rounds > 0 {
        run_continuous(&addr, &args);
        return;
    }

    let factory = build_factory(args.sessions, args.trace_seed);
    let mut driver = connect_driver(&addr, args.conns, args.shards);
    let t0 = Instant::now();
    // Session i rides connection i % conns; one reactor drives all the
    // connections and one executor drives all the sessions.
    let batches: Vec<Vec<SessionPlan<'_>>> = (0..args.conns)
        .map(|c| {
            factory
                .instances
                .iter()
                .enumerate()
                .filter(|(i, _)| i % args.conns == c)
                .map(|(i, inst)| SessionPlan::new(i as u64, inst.alice_session()))
                .collect()
        })
        .collect();
    let report = driver.batch(batches).unwrap_or_else(|e| {
        eprintln!("net_sync: batch failed: {e}");
        exit(1)
    });
    let elapsed = t0.elapsed();
    for (c, conn) in report.conns.iter().enumerate() {
        if let Some(e) = &conn.transport_error {
            eprintln!("net_sync: connection {c} failed: {e}");
        }
    }
    driver.finish();

    let total: usize = report.conns.iter().map(|r| r.sessions.len()).sum();
    let completed = report.completed();
    let failed = report.failed();
    let wire_out: u64 = report.conns.iter().map(|r| r.wire_bytes_out).sum();
    let wire_in: u64 = report.conns.iter().map(|r| r.wire_bytes_in).sum();
    println!(
        "{} sessions multiplexed over {} connection(s) in {:.1} ms ({:.0} sessions/sec)",
        total,
        report.conns.len(),
        elapsed.as_secs_f64() * 1e3,
        total as f64 / elapsed.as_secs_f64(),
    );
    println!(
        "completed {completed}/{total}; {} payload bits in \
         {wire_out}+{wire_in} wire bytes (out+in)",
        report.payload_bits(),
    );
    for s in report.sessions().take(4) {
        println!(
            "  session {:>3}: {:>8} bits in {} messages / {} rounds",
            s.id,
            s.transcript.total_bits(),
            s.transcript.num_messages(),
            s.transcript.num_rounds(),
        );
    }
    if total > 4 {
        println!("  … and {} more", total - 4);
    }
    if failed > 0 || report.transport_error().is_some() {
        for s in report.sessions().filter(|s| s.error.is_some()) {
            eprintln!("  session {}: {}", s.id, s.error.as_deref().unwrap());
        }
        exit(1);
    }
}

/// Continuous mode: one resident session, `--rounds` incremental rounds
/// with churn streamed in between, each shipping only the delta since
/// the last settle. Both endpoints derive the same starting party from
/// the wire spec (`--sessions` keys seeded by `--trace-seed`), so the
/// expected post-round union is checkable client-side every round.
fn run_continuous(addr: &str, args: &Args) {
    let churn = ChurnSpec {
        skew: 1.0, // the server party only learns through settles
        ..ChurnSpec::steady(16)
    };
    let spec = continuous_spec(args.sessions, churn.peak_round_ops(), args.trace_seed);
    let party = shared(continuous_party_of(&spec));
    let trace = sample_churn(&churn, args.rounds, args.trace_seed);

    let mut driver = connect_driver(addr, 1, args.shards);
    let t0 = Instant::now();
    let mut expected = {
        let p = party.lock().expect("party lock");
        p.set().clone()
    };
    for (r, round) in trace.iter().enumerate() {
        // Stream this round's churn, tracking the expected union (the
        // server side never deletes, so client deletes resurrect).
        let (ins, del) = round.alice_keys(&expected);
        {
            let mut p = party.lock().expect("party lock");
            for &k in &ins {
                p.insert(k).expect("insert between rounds");
                expected.insert(k);
            }
            for &k in &del {
                p.remove(k).expect("delete between rounds");
            }
        }
        let plan = if r == 0 {
            SessionPlan::open_continuous(0, spec, &party)
        } else {
            SessionPlan::next_round(0, &party)
        }
        .unwrap_or_else(|e| {
            eprintln!("net_sync: round {r}: {e}");
            exit(1)
        });
        let report = driver.batch(vec![vec![plan]]).unwrap_or_else(|e| {
            eprintln!("net_sync: round {r} failed: {e}");
            exit(1)
        });
        if report.completed() != 1 {
            for s in report.sessions().filter(|s| s.error.is_some()) {
                eprintln!("net_sync: round {r}: {}", s.error.as_deref().unwrap());
            }
            exit(1);
        }
        let bits = report.payload_bits();
        let live = party.lock().expect("party lock").set().clone();
        if live != expected {
            eprintln!(
                "net_sync: round {r}: settled set diverged from the expected union \
                 ({} vs {} keys)",
                live.len(),
                expected.len()
            );
            exit(1);
        }
        println!(
            "round {r}: +{} -{} churn keys, {} round bits, {} keys settled",
            ins.len(),
            del.len(),
            bits,
            live.len()
        );
    }
    let elapsed = t0.elapsed();
    driver.close_session(0, 0).unwrap_or_else(|e| {
        eprintln!("net_sync: cannot retire the session: {e}");
        exit(1)
    });
    driver.finish();
    println!(
        "{} continuous rounds over one session in {:.1} ms ({:.0} rounds/sec)",
        args.rounds,
        elapsed.as_secs_f64() * 1e3,
        args.rounds as f64 / elapsed.as_secs_f64(),
    );
}
