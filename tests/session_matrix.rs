//! Seed-matrix equivalence: the session-driven `run()` path must produce
//! exactly the outcome of the legacy monolithic composition, bit for bit,
//! over a grid of seeds × instance sizes — for the EMD protocol (session
//! frames vs `alice_encode` + `bob_decode`) and the Gap protocol (session
//! frames vs direct `reconcile` + classification). The legacy monolithic
//! `run()` bodies were deleted on the strength of this equivalence.

use robust_set_recon::core::emd_protocol::{EmdProtocol, EmdProtocolConfig};
use robust_set_recon::core::gap_protocol::{GapConfig, GapProtocol};
use robust_set_recon::core::ScaledEmdProtocol;
use robust_set_recon::hash::keys::BatchKeyer;
use robust_set_recon::hash::lsh::LshParams;
use robust_set_recon::hash::BitSamplingFamily;
use robust_set_recon::metric::MetricSpace;
use robust_set_recon::setsofsets::{reconcile, SosConfig};
use robust_set_recon::workloads::{planted_emd, sensor_pairs};

const SEEDS: [u64; 5] = [11, 222, 3333, 44_444, 555_555];

#[test]
fn emd_session_matches_legacy_over_seed_matrix() {
    for &(n, k, dim) in &[(30usize, 2usize, 24usize), (60, 3, 32)] {
        let space = MetricSpace::hamming(dim);
        for &seed in &SEEDS {
            let w = planted_emd(space, n, k, 1, seed);
            let cfg = EmdProtocolConfig::for_space(&space, n, k);
            let proto = EmdProtocol::new(space, cfg, seed ^ 0x5e55);

            // Legacy path: in-memory message, no serialization.
            let msg = proto.alice_encode(&w.alice);
            let legacy = proto.bob_decode(&msg, &w.bob);
            // Session path: the same exchange through encoded frames.
            let session = proto.run(&w.alice, &w.bob);

            match (legacy, session) {
                (Ok(l), Ok(s)) => {
                    assert_eq!(l.reconciled, s.reconciled, "n={n} seed={seed}");
                    assert_eq!(l.i_star, s.i_star, "n={n} seed={seed}");
                    assert_eq!(l.decoded, s.decoded, "n={n} seed={seed}");
                    // The legacy transcript charged `wire_bits`; the session
                    // transcript measured the encoded frame. Identical.
                    assert_eq!(
                        l.transcript.total_bits(),
                        s.transcript.total_bits(),
                        "n={n} seed={seed}"
                    );
                    assert_eq!(s.transcript.total_bits(), msg.wire_bits());
                    assert_eq!(s.transcript.num_rounds(), 1);
                }
                (Err(_), Err(_)) => {}
                (l, s) => panic!(
                    "paths disagree on success for n={n} seed={seed}: legacy {} session {}",
                    l.is_ok(),
                    s.is_ok()
                ),
            }
        }
    }
}

#[test]
fn scaled_emd_session_matches_legacy_over_seed_matrix() {
    for &(n, k) in &[(30usize, 2usize), (50, 3)] {
        let space = MetricSpace::l2(256, 2);
        for &seed in &SEEDS {
            let w = planted_emd(space, n, k, 1, seed);
            let proto = ScaledEmdProtocol::new(space, n, k, seed ^ 0xa1a1);

            let msg = proto.alice_encode(&w.alice);
            let legacy = proto.bob_decode(&msg, &w.bob);
            let session = proto.run(&w.alice, &w.bob);

            match (legacy, session) {
                (Ok(l), Ok(s)) => {
                    assert_eq!(l.inner.reconciled, s.inner.reconciled, "n={n} seed={seed}");
                    assert_eq!(l.interval, s.interval, "n={n} seed={seed}");
                    assert_eq!(l.total_bits, s.total_bits, "n={n} seed={seed}");
                    assert_eq!(s.total_bits, msg.wire_bits());
                    assert_eq!(s.transcript.num_messages(), proto.num_intervals());
                    assert_eq!(s.transcript.num_rounds(), 1);
                }
                (Err(_), Err(_)) => {}
                _ => panic!("paths disagree on success for n={n} seed={seed}"),
            }
        }
    }
}

#[test]
fn gap_session_matches_legacy_over_seed_matrix() {
    for &(n, k, dim) in &[(40usize, 2usize, 128usize), (60, 3, 128)] {
        let space = MetricSpace::hamming(dim);
        let (r1, r2) = (2.0, 44.0);
        let fam = BitSamplingFamily::new(dim, dim as f64);
        let params = LshParams::new(r1, r2, 1.0 - r1 / dim as f64, 1.0 - r2 / dim as f64);
        for &seed in &SEEDS {
            let w = sensor_pairs(space, n, k, r1, r2, seed);
            let cfg = GapConfig::for_params(params, n, k);
            let proto = GapProtocol::new(space, &fam, cfg, seed ^ 0x6a6a);

            // Legacy path: keys → sets-of-sets reconcile → classify far →
            // union, exactly the old monolithic `run()` body.
            let alice_keys: Vec<Vec<u64>> = w.alice.iter().map(|p| proto.key_of(p)).collect();
            let bob_keys: Vec<Vec<u64>> = w.bob.iter().map(|p| proto.key_of(p)).collect();
            let sos_cfg = SosConfig {
                fp_cells: cfg.fp_cells,
                q: 3,
                seed: 0x6a90_5050,
                entry_bits: cfg.entry_bits,
            };
            let legacy = reconcile(&alice_keys, &bob_keys, &sos_cfg).map(|sos| {
                let transmitted: Vec<_> = w
                    .alice
                    .iter()
                    .zip(&alice_keys)
                    .filter(|(_, key)| {
                        !sos.bob_multiset.iter().any(|bk| {
                            BatchKeyer::<BitSamplingFamily>::matches(key, bk) >= cfg.close_threshold
                        })
                    })
                    .map(|(p, _)| p.clone())
                    .collect();
                let mut reconciled = w.bob.clone();
                reconciled.extend(transmitted.iter().cloned());
                (reconciled, transmitted, sos)
            });

            let session = proto.run(&w.alice, &w.bob);

            match (legacy, session) {
                (Ok((reconciled, transmitted, sos)), Ok(out)) => {
                    assert_eq!(reconciled, out.reconciled, "n={n} seed={seed}");
                    assert_eq!(transmitted, out.transmitted, "n={n} seed={seed}");
                    assert_eq!(transmitted.len(), out.far_keys, "n={n} seed={seed}");
                    // Rounds 1–3 of the transcript are the measured
                    // sets-of-sets sizes; round 4 is the far-point list.
                    let bits: Vec<u64> = out.transcript.entries().map(|(_, b)| b).collect();
                    assert_eq!(bits.len(), 4, "n={n} seed={seed}");
                    assert_eq!(
                        (bits[0], bits[1], bits[2]),
                        sos.round_bits,
                        "n={n} seed={seed}"
                    );
                    assert_eq!(
                        bits[3],
                        32 + transmitted.len() as u64 * space.universe().point_wire_bits()
                    );
                    assert_eq!(out.transcript.num_rounds(), 4);
                    assert_eq!(out.transcript.num_messages(), 4);
                }
                (Err(_), Err(_)) => {}
                _ => panic!("paths disagree on success for n={n} seed={seed}"),
            }
        }
    }
}

#[test]
fn emd_session_matches_legacy_under_auction_over_seed_matrix() {
    // Same equivalence as above, pinned explicitly to the ε-scaling
    // auction solver (the decode-path default): the session-driven run()
    // must reproduce the legacy composition bit for bit, and the wire
    // bytes must be solver-independent (only Bob's repair matching, not
    // Alice's message, sees the solver).
    use robust_set_recon::emd::AssignmentSolver;
    for &(n, k, dim) in &[(30usize, 2usize, 24usize), (60, 3, 32)] {
        let space = MetricSpace::hamming(dim);
        for &seed in &SEEDS {
            let w = planted_emd(space, n, k, 1, seed);
            let cfg =
                EmdProtocolConfig::for_space(&space, n, k).with_solver(AssignmentSolver::Auction);
            assert_eq!(cfg.solver, AssignmentSolver::Auction);
            let proto = EmdProtocol::new(space, cfg, seed ^ 0x5e55);
            let legacy_proto = EmdProtocol::new(
                space,
                cfg.with_solver(AssignmentSolver::Hungarian),
                seed ^ 0x5e55,
            );

            let msg = proto.alice_encode(&w.alice);
            // Solver-independence of the message: identical wire size
            // regardless of which solver the encoding protocol carries.
            assert_eq!(
                msg.wire_bits(),
                legacy_proto.alice_encode(&w.alice).wire_bits(),
                "n={n} seed={seed}: message depends on solver"
            );

            let legacy = proto.bob_decode(&msg, &w.bob);
            let session = proto.run(&w.alice, &w.bob);
            match (legacy, session) {
                (Ok(l), Ok(s)) => {
                    assert_eq!(l.reconciled, s.reconciled, "n={n} seed={seed}");
                    assert_eq!(l.i_star, s.i_star, "n={n} seed={seed}");
                    assert_eq!(l.decoded, s.decoded, "n={n} seed={seed}");
                    assert_eq!(
                        l.transcript.total_bits(),
                        s.transcript.total_bits(),
                        "n={n} seed={seed}"
                    );
                    assert_eq!(s.transcript.num_rounds(), 1, "n={n} seed={seed}");
                }
                (Err(_), Err(_)) => {}
                (l, s) => panic!(
                    "paths disagree on success for n={n} seed={seed}: legacy {} session {}",
                    l.is_ok(),
                    s.is_ok()
                ),
            }
        }
    }
}
