//! TCP-loopback equivalence: all three protocols driven across a real
//! socket (`TcpChannel` + the single-party `drive_channel` driver, one
//! thread per party) must produce outcomes and measured transcripts
//! bit-for-bit identical to the in-memory `run()` path, over a grid of
//! seeds × instance sizes — the transport may not perturb the protocol
//! in any observable way. A final test checks the multiplexed
//! server/client path agrees too.
//!
//! The batch tests deliberately stay on the deprecated
//! `run_batch`/`run_batches` entry points: they are now thin forwarders
//! onto the unified `Driver` engine, and these tests prove the
//! forwarders still behave bit-for-bit.
#![allow(deprecated)]

use robust_set_recon::core::emd_protocol::{EmdProtocol, EmdProtocolConfig};
use robust_set_recon::core::gap_protocol::{GapConfig, GapProtocol};
use robust_set_recon::core::session::drive_channel;
use robust_set_recon::core::{Party, ScaledEmdProtocol, Transcript};
use robust_set_recon::hash::lsh::LshParams;
use robust_set_recon::hash::BitSamplingFamily;
use robust_set_recon::metric::MetricSpace;
use robust_set_recon::net::{
    MultiClient, NetSession, ReconClient, ReconServer, SessionPlan, TcpChannel,
};
use robust_set_recon::workloads::{planted_emd, sample_trace, sensor_pairs};
use rsr_bench::experiments::net::{spec_of, Instance, InstanceFactory};
use std::net::TcpListener;
use std::sync::Arc;

const SEEDS: [u64; 5] = [11, 222, 3333, 44_444, 555_555];

/// Runs `alice` and `bob` against each other over a fresh loopback
/// connection, one thread per party, each with its own `TcpChannel`.
fn over_loopback<RA, RB>(
    alice: impl FnOnce(TcpChannel) -> RA + Send,
    bob: impl FnOnce(TcpChannel) -> RB + Send,
) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("bound address");
    std::thread::scope(|s| {
        let bob_side = s.spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            bob(TcpChannel::from_stream(stream, Party::Bob).expect("bob channel"))
        });
        let a = alice(TcpChannel::connect(addr, Party::Alice).expect("alice channel"));
        (a, bob_side.join().expect("bob thread"))
    })
}

/// `(sender, label, bits)` triples — the full observable transcript.
fn entries(t: &Transcript) -> Vec<(Option<Party>, String, u64)> {
    t.entries_with_sender()
        .map(|(s, l, b)| (s, l.to_owned(), b))
        .collect()
}

#[test]
fn emd_over_tcp_matches_in_memory_over_seed_matrix() {
    for &(n, k, dim) in &[(30usize, 2usize, 24usize), (60, 3, 32)] {
        let space = MetricSpace::hamming(dim);
        for &seed in &SEEDS {
            let w = planted_emd(space, n, k, 1, seed);
            let cfg = EmdProtocolConfig::for_space(&space, n, k);
            let proto = EmdProtocol::new(space, cfg, seed ^ 0x5e55);

            let mem = proto.run(&w.alice, &w.bob);
            let (alice_side, bob_side) = over_loopback(
                |mut ch| {
                    let mut a = proto.alice_session(&w.alice);
                    drive_channel(&mut ch, Party::Alice, &mut a)
                },
                |mut ch| {
                    let mut b = proto.bob_session(&w.bob);
                    let t = drive_channel(&mut ch, Party::Bob, &mut b);
                    (t, b.into_outcome(), ch.sent().bits, ch.received().bits)
                },
            );
            let (bob_transcript, bob_outcome, bob_sent_bits, bob_received_bits) = bob_side;

            match (mem, bob_transcript) {
                (Ok(mem_out), Ok(t_bob)) => {
                    let net_out = bob_outcome.expect("bob finished");
                    assert_eq!(mem_out.reconciled, net_out.reconciled, "n={n} seed={seed}");
                    assert_eq!(mem_out.i_star, net_out.i_star, "n={n} seed={seed}");
                    assert_eq!(mem_out.decoded, net_out.decoded, "n={n} seed={seed}");
                    // Transcripts are entry-for-entry identical on every
                    // endpoint: the in-memory run, Alice's side, Bob's side.
                    let t_alice = alice_side.expect("alice finished");
                    assert_eq!(entries(&mem_out.transcript), entries(&t_bob));
                    assert_eq!(entries(&mem_out.transcript), entries(&t_alice));
                    // Channel counters agree with the transcripts, crosswise.
                    assert_eq!(bob_sent_bits, 0, "one-way protocol");
                    assert_eq!(bob_received_bits, t_bob.total_bits());
                }
                (Err(_), Err(_)) => {} // both paths reject the instance
                (mem, net) => panic!(
                    "paths disagree on success for n={n} seed={seed}: \
                     in-memory {} tcp {}",
                    mem.is_ok(),
                    net.is_ok()
                ),
            }
        }
    }
}

#[test]
fn scaled_emd_over_tcp_matches_in_memory_over_seed_matrix() {
    for &(n, k) in &[(30usize, 2usize), (50, 3)] {
        let space = MetricSpace::l2(256, 2);
        for &seed in &SEEDS {
            let w = planted_emd(space, n, k, 1, seed);
            let proto = ScaledEmdProtocol::new(space, n, k, seed ^ 0xa1a1);

            let mem = proto.run(&w.alice, &w.bob);
            let (alice_side, bob_side) = over_loopback(
                |mut ch| {
                    let mut a = proto.alice_session(&w.alice);
                    drive_channel(&mut ch, Party::Alice, &mut a)
                },
                |mut ch| {
                    let mut b = proto.bob_session(&w.bob);
                    let t = drive_channel(&mut ch, Party::Bob, &mut b);
                    (t, b.into_outcome())
                },
            );
            let (bob_transcript, bob_outcome) = bob_side;

            match (mem, bob_transcript) {
                (Ok(mem_out), Ok(t_bob)) => {
                    let net_out = bob_outcome.expect("bob finished");
                    assert_eq!(
                        mem_out.inner.reconciled, net_out.inner.reconciled,
                        "n={n} seed={seed}"
                    );
                    assert_eq!(mem_out.interval, net_out.interval, "n={n} seed={seed}");
                    // All I interval frames arrive in one round on every
                    // endpoint, exactly as in memory.
                    let t_alice = alice_side.expect("alice finished");
                    assert_eq!(entries(&mem_out.transcript), entries(&t_bob));
                    assert_eq!(entries(&mem_out.transcript), entries(&t_alice));
                    assert_eq!(t_bob.num_messages(), proto.num_intervals());
                    assert_eq!(t_bob.num_rounds(), 1);
                    assert_eq!(mem_out.total_bits, t_bob.total_bits());
                }
                (Err(_), Err(_)) => {}
                _ => panic!("paths disagree on success for n={n} seed={seed}"),
            }
        }
    }
}

#[test]
fn gap_over_tcp_matches_in_memory_over_seed_matrix() {
    for &(n, k, dim) in &[(40usize, 2usize, 128usize), (60, 3, 128)] {
        let space = MetricSpace::hamming(dim);
        let (r1, r2) = (2.0, 44.0);
        let fam = BitSamplingFamily::new(dim, dim as f64);
        let params = LshParams::new(r1, r2, 1.0 - r1 / dim as f64, 1.0 - r2 / dim as f64);
        for &seed in &SEEDS {
            let w = sensor_pairs(space, n, k, r1, r2, seed);
            let cfg = GapConfig::for_params(params, n, k);
            let proto = GapProtocol::new(space, &fam, cfg, seed ^ 0x6a6a);

            let mem = proto.run(&w.alice, &w.bob);
            let (alice_side, bob_side) = over_loopback(
                |mut ch| {
                    let mut a = proto.alice_session(&w.alice);
                    let t = drive_channel(&mut ch, Party::Alice, &mut a);
                    (t, a.into_transmitted())
                },
                |mut ch| {
                    let mut b = proto.bob_session(&w.bob);
                    let t = drive_channel(&mut ch, Party::Bob, &mut b);
                    (t, b.into_reconciled())
                },
            );
            let (alice_transcript, transmitted) = alice_side;
            let (bob_transcript, reconciled) = bob_side;

            match (mem, alice_transcript, bob_transcript) {
                (Ok(mem_out), Ok(t_alice), Ok(t_bob)) => {
                    // The Gap outcome is split across the two endpoints:
                    // Bob holds the reconciled set, Alice the far points.
                    assert_eq!(
                        mem_out.reconciled,
                        reconciled.expect("bob finished"),
                        "n={n} seed={seed}"
                    );
                    let (transmitted, far_keys) = transmitted.expect("alice finished");
                    assert_eq!(mem_out.transmitted, transmitted, "n={n} seed={seed}");
                    assert_eq!(mem_out.far_keys, far_keys, "n={n} seed={seed}");
                    assert_eq!(entries(&mem_out.transcript), entries(&t_alice));
                    assert_eq!(entries(&mem_out.transcript), entries(&t_bob));
                    assert_eq!(t_alice.num_rounds(), 4);
                    assert_eq!(t_alice.num_messages(), 4);
                }
                (Err(_), Ok(_), Ok(_)) => {
                    panic!(
                        "in-memory failed but both tcp endpoints succeeded for n={n} seed={seed}"
                    )
                }
                (Err(_), _, _) => {} // rare sizing failure: either side may
                // observe it first across the socket
                _ => panic!("paths disagree on success for n={n} seed={seed}"),
            }
        }
    }
}

#[test]
fn spec_negotiated_multi_connection_batches_match_in_memory() {
    // Two connections into ONE server reactor, with the server holding
    // no pre-agreed trace at all: every OPEN carries the wire spec and
    // the server rebuilds the instance from it. Client-side transcripts
    // must still match the in-memory reference bit-for-bit, and the
    // same live connections must carry a second batch round.
    let entries_list = sample_trace(8, 0xd00d);
    let instances: Vec<Instance> = entries_list.iter().map(Instance::build).collect();
    let baseline: Vec<Result<u64, String>> =
        instances.iter().map(Instance::run_in_memory).collect();

    let server = ReconServer::bind("127.0.0.1:0", Arc::new(InstanceFactory::spec_only()))
        .expect("bind")
        .with_shards(4);
    let addr = server.local_addr().expect("addr");
    let server_thread = std::thread::spawn(move || server.serve(Some(2)));
    let mut client = MultiClient::connect(addr, 2)
        .expect("connect")
        .with_shards(4);

    for round in 0..2u64 {
        let batches: Vec<Vec<SessionPlan<'_>>> = (0..2)
            .map(|conn| {
                instances
                    .iter()
                    .zip(&entries_list)
                    .enumerate()
                    .filter(|(i, _)| i % 2 == conn)
                    .map(|(i, (inst, entry))| {
                        SessionPlan::new(round * 100 + i as u64, inst.alice_session())
                            .with_spec(spec_of(entry))
                    })
                    .collect()
            })
            .collect();
        let reports = client.run_batches(batches).expect("round runs");
        assert_eq!(reports.len(), 2);
        for (conn, report) in reports.iter().enumerate() {
            assert!(report.transport_error.is_none());
            for s in &report.sessions {
                let i = (s.id % 100) as usize;
                match &baseline[i] {
                    Ok(bits) => {
                        assert!(
                            s.is_ok(),
                            "round {round} conn {conn} session {i}: {:?}",
                            s.error
                        );
                        assert_eq!(
                            *bits,
                            s.transcript.total_bits(),
                            "round {round} conn {conn} session {i} bits"
                        );
                    }
                    Err(_) => assert!(
                        !s.is_ok(),
                        "round {round} conn {conn} session {i} should fail over tcp too"
                    ),
                }
            }
        }
    }
    client.finish();
    server_thread
        .join()
        .expect("server thread")
        .expect("both connections served");
}

#[test]
fn multiplexed_batch_matches_in_memory() {
    // A smaller mixed batch through the ReconServer/ReconClient mux
    // (exp_net drives ≥ 64); both endpoints' transcripts must match the
    // in-memory totals session by session. Both endpoints run the
    // sharded executor at an explicit width — more shards than this
    // box may have cores — so session→shard fan-out is exercised even
    // on single-core CI runners.
    let entries_list = sample_trace(12, 0x5eed);
    let factory = Arc::new(InstanceFactory::from_trace(&entries_list));
    let baseline: Vec<Result<u64, String>> = factory
        .instances
        .iter()
        .map(Instance::run_in_memory)
        .collect();

    let server = ReconServer::bind("127.0.0.1:0", Arc::clone(&factory))
        .expect("bind")
        .with_shards(4);
    let addr = server.local_addr().expect("addr");
    let server_thread = std::thread::spawn(move || server.serve_one());
    let client = ReconClient::connect(addr).expect("connect").with_shards(4);
    client
        .set_read_timeout(Some(std::time::Duration::from_secs(60)))
        .expect("set timeout");
    let sessions: Vec<(u64, Box<dyn NetSession + '_>)> = factory
        .instances
        .iter()
        .enumerate()
        .map(|(i, inst)| (i as u64, inst.alice_session()))
        .collect();
    let batch = client.run_batch(sessions).expect("batch");
    let conn = server_thread.join().expect("thread").expect("served");

    assert_eq!(batch.sessions.len(), baseline.len());
    assert_eq!(conn.sessions.len(), baseline.len());
    for (i, mem) in baseline.iter().enumerate() {
        let net = &batch.sessions[i];
        let srv = conn
            .sessions
            .iter()
            .find(|s| s.id == i as u64)
            .expect("server saw the session");
        match mem {
            Ok(bits) => {
                assert!(net.is_ok(), "session {i}: {:?}", net.error);
                assert!(srv.error.is_none(), "session {i}: {:?}", srv.error);
                assert_eq!(*bits, net.transcript.total_bits(), "session {i}");
                assert_eq!(entries(&net.transcript), entries(&srv.transcript));
            }
            Err(_) => assert!(!net.is_ok(), "session {i} should fail over tcp too"),
        }
    }
}
