//! End-to-end integration tests for the Gap Guarantee protocol
//! (Theorem 4.2 and the Theorem 4.5 low-dimension variant).

use robust_set_recon::core::gap_protocol::{verify_gap_guarantee, GapConfig, GapProtocol};
use robust_set_recon::core::low_dim_gap_config;
use robust_set_recon::hash::lsh::LshParams;
use robust_set_recon::hash::BitSamplingFamily;
use robust_set_recon::metric::MetricSpace;
use robust_set_recon::workloads::sensor_pairs;

fn hamming_setup(dim: usize, r1: f64, r2: f64) -> (BitSamplingFamily, LshParams) {
    let fam = BitSamplingFamily::new(dim, dim as f64);
    let params = LshParams::new(r1, r2, 1.0 - r1 / dim as f64, 1.0 - r2 / dim as f64);
    (fam, params)
}

#[test]
fn guarantee_holds_across_seeds_hamming() {
    let dim = 128;
    let (r1, r2) = (2.0, 48.0);
    let mut satisfied = 0;
    let trials = 10;
    for t in 0..trials {
        let space = MetricSpace::hamming(dim);
        let w = sensor_pairs(space, 60, 3, r1, r2, 100 + t);
        let (fam, params) = hamming_setup(dim, r1, r2);
        let cfg = GapConfig::for_params(params, 60, 3);
        let proto = GapProtocol::new(space, &fam, cfg, 200 + t);
        let Ok(out) = proto.run(&w.alice, &w.bob) else {
            continue;
        };
        if verify_gap_guarantee(&space, &w.alice, &out.reconciled, r2) {
            satisfied += 1;
        }
    }
    // Theorem 4.2: success probability ≥ 1 − 1/n; all 10 should pass.
    assert!(
        satisfied >= 9,
        "guarantee held in only {satisfied}/{trials}"
    );
}

#[test]
fn all_ground_truth_far_points_transmitted() {
    let dim = 128;
    let space = MetricSpace::hamming(dim);
    for t in 0..5 {
        let w = sensor_pairs(space, 50, 4, 2.0, 48.0, 300 + t);
        let (fam, params) = hamming_setup(dim, 2.0, 48.0);
        let cfg = GapConfig::for_params(params, 50, 4);
        let proto = GapProtocol::new(space, &fam, cfg, 400 + t);
        let out = proto.run(&w.alice, &w.bob).expect("succeeds");
        for far in &w.alice_far {
            assert!(
                out.transmitted.contains(far),
                "trial {t}: far point not transmitted"
            );
        }
    }
}

#[test]
fn four_messages_and_k_log_u_far_term() {
    let dim = 256;
    let space = MetricSpace::hamming(dim);
    let w = sensor_pairs(space, 80, 5, 2.0, 90.0, 500);
    let (fam, params) = hamming_setup(dim, 2.0, 90.0);
    let cfg = GapConfig::for_params(params, 80, 5);
    let proto = GapProtocol::new(space, &fam, cfg, 501);
    let out = proto.run(&w.alice, &w.bob).expect("succeeds");
    assert_eq!(out.transcript.num_messages(), 4);
    // Round 4 carries ~|T_A|·d bits; with few false positives that is
    // close to k·log|U|.
    let round4 = out.transcript.entries().last().unwrap().1;
    let floor = 5 * dim as u64;
    assert!(round4 >= floor, "round 4 too small: {round4} < {floor}");
    assert!(
        round4 <= 4 * floor + 64,
        "round 4 bloated by false positives: {round4}"
    );
}

#[test]
fn low_dim_variant_guarantee_l1() {
    let space = MetricSpace::l1(100_000, 4);
    let (r1, r2) = (8.0, 20_000.0);
    let mut satisfied = 0;
    let trials = 12;
    for t in 0..trials {
        let w = sensor_pairs(space, 60, 3, r1, r2, 600 + t);
        let (fam, cfg) = low_dim_gap_config(&space, 60, 3, r1, r2);
        let proto = GapProtocol::new(space, &fam, cfg, 700 + t);
        // A run can fail to decode (the fingerprint table is sized with a
        // constant failure budget); that counts against `satisfied` here,
        // but the guarantee must hold in a strong majority of seeds.
        let Ok(out) = proto.run(&w.alice, &w.bob) else {
            continue;
        };
        if verify_gap_guarantee(&space, &w.alice, &out.reconciled, r2) {
            satisfied += 1;
        }
    }
    assert!(
        satisfied >= 9,
        "low-dim guarantee held in {satisfied}/{trials}"
    );
}

#[test]
fn low_dim_cheaper_than_general_in_low_dim() {
    // Theorem 4.5's point: in constant dimension the one-sided variant
    // saves communication over the Theorem 4.2 protocol.
    let space = MetricSpace::l1(1_000_000, 2);
    let (r1, r2) = (4.0, 100_000.0);
    let w = sensor_pairs(space, 100, 3, r1, r2, 800);

    let (fam_low, cfg_low) = low_dim_gap_config(&space, 100, 3, r1, r2);
    let low = GapProtocol::new(space, &fam_low, cfg_low, 801)
        .run(&w.alice, &w.bob)
        .expect("low-dim run");

    // General protocol driven by a grid LSH for ℓ1.
    let fam_gen = robust_set_recon::hash::GridFamily::new(2, r2 / 2.0);
    let params = fam_gen_params(r1, r2);
    let cfg_gen = GapConfig::for_params(params, 100, 3);
    let gen = GapProtocol::new(space, &fam_gen, cfg_gen, 802)
        .run(&w.alice, &w.bob)
        .expect("general run");

    assert!(
        low.transcript.total_bits() < gen.transcript.total_bits(),
        "low-dim {} ≥ general {}",
        low.transcript.total_bits(),
        gen.transcript.total_bits()
    );
    assert!(verify_gap_guarantee(&space, &w.alice, &low.reconciled, r2));
}

fn fam_gen_params(r1: f64, r2: f64) -> LshParams {
    // Grid LSH of width w = r2/2 in d = 2: near collision ≥ 1 − 2·r1/w
    // (union bound), far collision ≤ e^{−r2·/w} envelope — conservative
    // constants good enough to parameterize the general protocol.
    let w = r2 / 2.0;
    LshParams::new(r1, r2, (1.0 - 2.0 * r1 / w).max(0.5), 0.6)
}

#[test]
fn identical_sets_no_transmission() {
    let dim = 64;
    let space = MetricSpace::hamming(dim);
    let w = sensor_pairs(space, 70, 0, 1.0, 24.0, 900);
    let (fam, params) = hamming_setup(dim, 1.0, 24.0);
    let cfg = GapConfig::for_params(params, 70, 0);
    let proto = GapProtocol::new(space, &fam, cfg, 901);
    let out = proto.run(&w.alice, &w.bob).expect("succeeds");
    assert!(
        out.transmitted.len() <= 4,
        "spurious: {}",
        out.transmitted.len()
    );
    assert!(verify_gap_guarantee(
        &space,
        &w.alice,
        &out.reconciled,
        24.0
    ));
}
