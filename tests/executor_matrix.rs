//! Sharded-executor equivalence at scale: ≥256 mixed-protocol sessions
//! driven by `rsr-core`'s `drive_batch` worker pool must produce
//! transcripts that match the serial in-memory driver **bit for bit** —
//! same entries, same senders, same labels, same measured sizes — and
//! failures must align session by session. Also pins the two-choice
//! placement balance over a real workload.

use robust_set_recon::core::executor::{drive_batch, DynSession, DEFAULT_STALL_TIMEOUT};
use robust_set_recon::core::{Party, Transcript};
use robust_set_recon::workloads::{TraceEntry, TraceProtocol};
use rsr_bench::experiments::net::Instance;

const SHARDS: usize = 4;
const SESSIONS: usize = 256;

/// A 256-session grid cycling all three protocols over varied sizes and
/// seeds; kept small per instance so the whole matrix stays test-budget
/// friendly in debug builds.
fn entries() -> Vec<TraceEntry> {
    (0..SESSIONS)
        .map(|i| {
            let seed = 0x51ab_0000 + i as u64 * 7919;
            match i % 3 {
                0 => TraceEntry {
                    protocol: TraceProtocol::Emd,
                    n: 16 + i % 24,
                    k: 1 + i % 3,
                    dim: 16 + 8 * (i % 3),
                    seed,
                },
                1 => TraceEntry {
                    protocol: TraceProtocol::ScaledEmd,
                    n: 16 + i % 20,
                    k: 1 + i % 2,
                    dim: 2,
                    seed,
                },
                _ => TraceEntry {
                    protocol: TraceProtocol::Gap,
                    n: 24 + i % 24,
                    k: 1 + i % 3,
                    dim: 128,
                    seed,
                },
            }
        })
        .collect()
}

/// `(sender, label, bits)` triples — the full observable transcript.
fn observable(t: &Transcript) -> Vec<(Option<Party>, String, u64)> {
    t.entries_with_sender()
        .map(|(s, l, b)| (s, l.to_owned(), b))
        .collect()
}

#[test]
fn executor_matches_serial_bit_for_bit_over_256_mixed_sessions() {
    let instances: Vec<Instance> = entries().iter().map(Instance::build).collect();

    let serial: Vec<Result<Transcript, String>> = instances
        .iter()
        .map(Instance::run_in_memory_transcript)
        .collect();

    let pairs: Vec<(Box<dyn DynSession + '_>, Box<dyn DynSession + '_>)> = instances
        .iter()
        .map(|inst| (inst.alice_session(), inst.bob_session()))
        .collect();
    let outcomes = drive_batch(SHARDS, 0x51ab, pairs, DEFAULT_STALL_TIMEOUT);

    assert_eq!(outcomes.len(), serial.len());
    let mut completed = 0;
    for (i, (mem, out)) in serial.iter().zip(&outcomes).enumerate() {
        match mem {
            Ok(t) => {
                assert!(
                    out.is_ok(),
                    "session {i}: serial ok but executor failed: {:?}",
                    out.error
                );
                assert_eq!(
                    observable(t),
                    observable(&out.transcript),
                    "session {i}: transcripts diverge"
                );
                completed += 1;
            }
            Err(_) => assert!(!out.is_ok(), "session {i}: serial failed but executor ok"),
        }
    }
    // The grid is sized so the vast majority of instances reconcile; a
    // mostly-failing matrix would vacuously pass the equality check.
    assert!(
        completed >= SESSIONS * 9 / 10,
        "only {completed}/{SESSIONS} sessions completed"
    );

    // Two-choice placement balance over the same run: no shard may hold
    // more than twice the mean session count.
    let mut per_shard = vec![0usize; SHARDS];
    for out in &outcomes {
        per_shard[out.shard] += 1;
    }
    let mean = SESSIONS / SHARDS;
    for (shard, &count) in per_shard.iter().enumerate() {
        assert!(
            count <= 2 * mean,
            "shard {shard} received {count} of {SESSIONS} sessions \
             (mean {mean}, loads {per_shard:?})"
        );
    }
}
