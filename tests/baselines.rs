//! Integration tests comparing the paper's protocol against the
//! Chen et al. quadtree baseline and the exact-reconciliation fallback.

use robust_set_recon::core::emd_protocol::{EmdProtocol, EmdProtocolConfig};
use robust_set_recon::core::set_recon::exact_reconcile;
use robust_set_recon::emd::emd;
use robust_set_recon::metric::MetricSpace;
use robust_set_recon::quadtree::{QuadtreeConfig, QuadtreeProtocol};
use robust_set_recon::workloads::{planted_emd_sparse, sensor_pairs};

#[test]
fn quadtree_baseline_reconciles_l1_outliers() {
    let space = MetricSpace::l1(256, 2);
    let w = planted_emd_sparse(space, 80, 3, 1, 8, 42);
    let proto = QuadtreeProtocol::new(space, QuadtreeConfig { k: 3, q: 3 }, 43);
    let msg = proto.alice_encode(&w.alice);
    let out = proto.bob_decode(&msg, &w.bob).expect("baseline decodes");
    let before = emd(space.metric(), &w.alice, &w.bob);
    let after = emd(space.metric(), &w.alice, &out.reconciled);
    assert!(
        after < before,
        "baseline did not improve: {after} vs {before}"
    );
}

#[test]
fn ours_beats_quadtree_on_high_dimension() {
    // T6's claim in miniature: at d ≫ log n the quadtree's O(d) rounding
    // error dominates while ours stays O(log n). Compare final EMD on a
    // high-dimensional Hamming workload, aggregated over seeds.
    let dim = 96;
    let space = MetricSpace::hamming(dim);
    let n = 60;
    let k = 3;
    let mut ours_total = 0.0;
    let mut theirs_total = 0.0;
    let mut rounds = 0;
    for t in 0..6 {
        let w = planted_emd_sparse(space, n, k, 1, 6, 1000 + t);
        let cfg = EmdProtocolConfig::for_space(&space, n, k);
        let ours = EmdProtocol::new(space, cfg, 2000 + t);
        let theirs = QuadtreeProtocol::new(space, QuadtreeConfig { k, q: 3 }, 2000 + t);
        let Ok(a) = ours.run(&w.alice, &w.bob) else {
            continue;
        };
        // A baseline failure is scored as "no repair at all" — exactly
        // what Bob is left with when the protocol reports failure.
        let qmsg = theirs.alice_encode(&w.alice);
        let theirs_set = match theirs.bob_decode(&qmsg, &w.bob) {
            Ok(b) => b.reconciled,
            Err(_) => w.bob.clone(),
        };
        ours_total += emd(space.metric(), &w.alice, &a.reconciled);
        theirs_total += emd(space.metric(), &w.alice, &theirs_set);
        rounds += 1;
    }
    assert!(rounds >= 4, "too few successful paired runs: {rounds}");
    assert!(
        ours_total < theirs_total,
        "ours {ours_total} not better than quadtree {theirs_total} at d = {dim}"
    );
}

#[test]
fn exact_fallback_matches_protocol_on_noiseless_instances() {
    let space = MetricSpace::hamming(64);
    let w = planted_emd_sparse(space, 120, 4, 0, 0, 77);
    // Exact reconciliation: Bob ends with Alice's set, EMD 0.
    let out = exact_reconcile(&space, &w.alice, &w.bob, 16, 78).expect("within bound");
    let mut got = out.alice_set.clone();
    got.sort();
    let mut want = w.alice.clone();
    want.sort();
    assert_eq!(got, want);
    // And the robust protocol reaches EMD 0 too (see end_to_end_emd).
}

#[test]
fn gap_workload_certification_is_consistent_with_quadtree_space() {
    // Smoke-check that the workload generator and the baseline agree on
    // universe bounds (no panics, all points contained).
    let space = MetricSpace::l1(8192, 2);
    let w = sensor_pairs(space, 40, 2, 3.0, 400.0, 9);
    for p in w.alice.iter().chain(&w.bob) {
        assert!(space.universe().contains(p));
    }
}
