//! End-to-end integration tests for the EMD-model protocol (Algorithm 1
//! and the Corollary 3.6 scaled variant) across all workspace crates.

use robust_set_recon::core::emd_protocol::{EmdProtocol, EmdProtocolConfig};
use robust_set_recon::core::ScaledEmdProtocol;
use robust_set_recon::emd::{emd, emd_k};
use robust_set_recon::metric::MetricSpace;
use robust_set_recon::workloads::{planted_emd, planted_emd_sparse};

#[test]
fn hamming_sparse_noise_recovers_outliers() {
    let space = MetricSpace::hamming(64);
    let n = 200;
    let k = 4;
    let mut ratios = Vec::new();
    let mut successes = 0;
    let trials = 8;
    for t in 0..trials {
        let w = planted_emd_sparse(space, n, k, 1, 20, 1000 + t);
        let cfg = EmdProtocolConfig::for_space(&space, n, k);
        let proto = EmdProtocol::new(space, cfg, 2000 + t);
        let Ok(out) = proto.run(&w.alice, &w.bob) else {
            continue;
        };
        successes += 1;
        let floor = emd_k(space.metric(), &w.alice, &w.bob, k).max(1.0);
        let after = emd(space.metric(), &w.alice, &out.reconciled);
        ratios.push(after / floor);
    }
    // Theorem 3.4: failure probability ≤ 1/8 for decode, ≥ 3/4 quality.
    // Over 8 trials, require a strong majority to decode and the median
    // ratio to sit well inside O(log n) = 5.3.
    assert!(successes >= 6, "only {successes}/{trials} decoded");
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = ratios[ratios.len() / 2];
    assert!(
        median <= 4.0 * (n as f64).ln(),
        "median approximation ratio {median} too large"
    );
}

#[test]
fn scaled_l2_protocol_quality() {
    let space = MetricSpace::l2(1024, 2);
    let n = 150;
    let k = 3;
    let mut ok = 0;
    let trials = 6;
    for t in 0..trials {
        let w = planted_emd_sparse(space, n, k, 1, 15, 3000 + t);
        let proto = ScaledEmdProtocol::new(space, n, k, 4000 + t);
        let Ok(out) = proto.run(&w.alice, &w.bob) else {
            continue;
        };
        let floor = emd_k(space.metric(), &w.alice, &w.bob, k).max(1.0);
        let after = emd(space.metric(), &w.alice, &out.inner.reconciled);
        if after <= 20.0 * (n as f64).ln() * floor {
            ok += 1;
        }
    }
    assert!(ok >= 4, "only {ok}/{trials} runs within the quality bound");
}

#[test]
fn protocol_output_size_always_n() {
    let space = MetricSpace::hamming(32);
    for t in 0..5 {
        let w = planted_emd(space, 60, 3, 1, 5000 + t);
        let cfg = EmdProtocolConfig::for_space(&space, 60, 3);
        let proto = EmdProtocol::new(space, cfg, 6000 + t);
        if let Ok(out) = proto.run(&w.alice, &w.bob) {
            assert_eq!(out.reconciled.len(), 60);
            for p in &out.reconciled {
                assert!(space.universe().contains(p));
            }
        }
    }
}

#[test]
fn deterministic_given_shared_seed() {
    let space = MetricSpace::hamming(32);
    let w = planted_emd(space, 50, 2, 1, 7000);
    let cfg = EmdProtocolConfig::for_space(&space, 50, 2);
    let p1 = EmdProtocol::new(space, cfg, 42);
    let p2 = EmdProtocol::new(space, cfg, 42);
    let m1 = p1.alice_encode(&w.alice);
    let m2 = p2.alice_encode(&w.alice);
    assert_eq!(m1.wire_bits(), m2.wire_bits());
    let o1 = p1.bob_decode(&m1, &w.bob);
    let o2 = p2.bob_decode(&m2, &w.bob);
    match (o1, o2) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.i_star, b.i_star);
            assert_eq!(a.reconciled, b.reconciled);
        }
        (Err(_), Err(_)) => {}
        _ => panic!("determinism violated: one run failed, the other succeeded"),
    }
}

#[test]
fn communication_independent_of_n_up_to_logs() {
    // Cor 3.5: bits = O(k·d·log n·log(dn)) — quadrupling n must grow the
    // message by at most the log factors.
    let space = MetricSpace::hamming(64);
    let bits = |n: usize| {
        let w = planted_emd(space, n, 4, 1, 123);
        let cfg = EmdProtocolConfig::for_space(&space, n, 4);
        let proto = EmdProtocol::new(space, cfg, 321);
        proto.alice_encode(&w.alice).wire_bits() as f64
    };
    let b1 = bits(100);
    let b4 = bits(400);
    assert!(
        b4 / b1 < 1.6,
        "message grew too fast with n: {b1} → {b4} ({}×)",
        b4 / b1
    );
}

#[test]
fn emdk_zero_instances_reconcile_nearly_exactly() {
    // Identical sets plus k replacements: EMD_k = 0. With constant
    // probability a far pair collides even at the finest level (this is
    // inside Theorem 3.4's failure budget), so we require exactness in a
    // strong majority of seeds and a big improvement in all of them.
    let space = MetricSpace::hamming(48);
    let mut exact = 0;
    let mut halved = 0;
    let trials = 8;
    for t in 0..trials {
        let w = planted_emd_sparse(space, 100, 3, 0, 0, 8000 + t);
        let cfg = EmdProtocolConfig::for_space(&space, 100, 3);
        let proto = EmdProtocol::new(space, cfg, 8100 + t);
        let out = proto
            .run(&w.alice, &w.bob)
            .expect("noiseless instances decode");
        let before = emd(space.metric(), &w.alice, &w.bob);
        let after = emd(space.metric(), &w.alice, &out.reconciled);
        // A collision-hit trial may reconcile only partially, but must
        // never make things worse.
        assert!(after < before, "trial {t}: {after} vs {before}");
        if after < before / 2.0 {
            halved += 1;
        }
        if after == 0.0 {
            exact += 1;
        }
    }
    assert!(halved >= 6, "EMD halved in only {halved}/{trials}");
    assert!(exact >= 5, "exact reconciliation in only {exact}/{trials}");
}
