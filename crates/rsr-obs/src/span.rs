//! RAII span timers: measure a scope, record microseconds on drop.
//!
//! A span is two `Instant` reads and one histogram record — no
//! allocation, no lock — so it is safe to leave in hot paths behind the
//! [`crate::enabled`] gate. The idiomatic call site is
//!
//! ```
//! let hist = rsr_obs::global().histogram("decode_us");
//! let _span = rsr_obs::enabled().then(|| rsr_obs::Span::new(&hist));
//! // ... timed work; the Option<Span> records when it drops ...
//! ```
//!
//! which costs a single relaxed load when metrics are off.

use crate::hist::AtomicHistogram;
use std::time::Instant;

/// Times from construction to drop and records the elapsed
/// **microseconds** into the given histogram.
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a AtomicHistogram,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Starts the clock.
    pub fn new(hist: &'a AtomicHistogram) -> Span<'a> {
        Span {
            hist,
            start: Instant::now(),
        }
    }

    /// Microseconds elapsed so far (the value a drop right now would
    /// record).
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Stops the clock early and records — equivalent to dropping, but
    /// explicit at call sites where the scope end is not the right
    /// boundary.
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.hist.record(self.start.elapsed().as_micros() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn span_records_on_drop() {
        let hist = AtomicHistogram::default();
        {
            let _span = Span::new(&hist);
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 1);
        assert!(
            snap.max() >= 1_000,
            "recorded {} µs, expected ≥ 1ms",
            snap.max()
        );
    }

    #[test]
    fn finish_records_once() {
        let hist = AtomicHistogram::default();
        let span = Span::new(&hist);
        span.finish();
        assert_eq!(hist.snapshot().count(), 1);
    }

    #[test]
    fn optional_span_pattern_compiles_away() {
        let hist = AtomicHistogram::default();
        let enabled = false;
        {
            let _span = enabled.then(|| Span::new(&hist));
        }
        assert_eq!(hist.snapshot().count(), 0);
    }
}
