//! Log-bucketed latency histograms with bounded relative error.
//!
//! The load harness records one latency per session; a run at a high
//! offered rate produces tens of thousands of values spanning four or
//! five orders of magnitude (tens of microseconds for a cache-warm EMD
//! session, whole seconds once queueing sets in). Storing every value to
//! sort later is wasteful and merging across connections awkward, so
//! [`LogHistogram`] uses the HDR-histogram bucketing scheme: a value's
//! bucket is derived from its position of highest set bit (the octave)
//! plus `sub_bits` bits of mantissa below it. Values under
//! `2^(sub_bits+1)` are counted **exactly** (bucket width 1); every
//! larger bucket's width is at most `2^-sub_bits` of its lower bound, so
//! any reported percentile is within that relative error of the true
//! order statistic. With the default `sub_bits = 7` that is **< 0.79%**
//! — far below run-to-run scheduling noise — from a fixed table of at
//! most `(64 - 7) * 128` buckets, grown lazily and merged by elementwise
//! addition.
//!
//! [`AtomicHistogram`] is the concurrent sibling the metrics registry
//! hands out: the same bucketing over a **fixed** table of relaxed
//! atomic counters, recordable from any thread without a lock, and
//! snapshotted into a [`LogHistogram`] for reporting. It trades the
//! lazy growth for wait-freedom, so it defaults to coarser buckets
//! ([`SPAN_SUB_BITS`], ≤ 3.2% relative error, ~15 KiB per histogram) —
//! internal span timings do not need load-report precision.
//!
//! The recorded unit is the caller's choice (the load harness records
//! nanoseconds, span timers microseconds); the histogram itself is
//! unit-agnostic.

use std::sync::atomic::{AtomicU64, Ordering};

/// Default mantissa bits: 128 sub-buckets per octave, ≤ 0.79% relative
/// error on every percentile.
pub const DEFAULT_SUB_BITS: u32 = 7;

/// Mantissa bits for [`AtomicHistogram::default`] (span timings): 32
/// sub-buckets per octave, ≤ 3.2% relative error, fixed table of ~1.9k
/// buckets (~15 KiB).
pub const SPAN_SUB_BITS: u32 = 5;

/// The bucket index for `value` under `sub_bits` mantissa bits — shared
/// by [`LogHistogram`] and [`AtomicHistogram`] so their buckets line up
/// at equal `sub_bits`.
fn bucket_index(sub_bits: u32, value: u64) -> usize {
    // `value | 1` makes 0 well-defined (bucket 0) without a branch.
    let msb = 63 - (value | 1).leading_zeros();
    let e = msb.saturating_sub(sub_bits);
    ((e as usize) << sub_bits) + (value >> e) as usize
}

/// The inclusive `(low, high)` value range of bucket `index` — every
/// value in the range maps to this bucket and no other.
fn bucket_bounds(sub_bits: u32, index: usize) -> (u64, u64) {
    let base = 1usize << sub_bits;
    if index < 2 * base {
        // The exact region: unit-width buckets.
        (index as u64, index as u64)
    } else {
        let e = (index / base - 1) as u32;
        let mantissa = (base + index % base) as u64;
        let low = mantissa << e;
        // `(width - 1)` before adding: the topmost bucket's `low +
        // width` is exactly 2^64 and would overflow.
        (low, low + ((1u64 << e) - 1))
    }
}

/// Buckets needed to cover all of `u64` at `sub_bits` — the fixed table
/// size of an [`AtomicHistogram`].
fn bucket_table_len(sub_bits: u32) -> usize {
    bucket_index(sub_bits, u64::MAX) + 1
}

/// A log-bucketed histogram of `u64` values (HDR-histogram bucketing).
#[derive(Clone, Debug)]
pub struct LogHistogram {
    sub_bits: u32,
    counts: Vec<u64>,
    count: u64,
    min: u64,
    max: u64,
    sum: u128,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new(DEFAULT_SUB_BITS)
    }
}

impl LogHistogram {
    /// An empty histogram with `2^sub_bits` sub-buckets per octave
    /// (`1 ..= 16`; the relative error bound is `2^-sub_bits`).
    pub fn new(sub_bits: u32) -> LogHistogram {
        assert!(
            (1..=16).contains(&sub_bits),
            "sub_bits must be in 1..=16, got {sub_bits}"
        );
        LogHistogram {
            sub_bits,
            counts: Vec::new(),
            count: 0,
            min: u64::MAX,
            max: 0,
            sum: 0,
        }
    }

    /// The configured mantissa bits.
    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    /// The worst-case relative error of any reported percentile:
    /// `2^-sub_bits`.
    pub fn relative_error(&self) -> f64 {
        1.0 / (1u64 << self.sub_bits) as f64
    }

    /// The bucket index for `value`.
    fn index(&self, value: u64) -> usize {
        bucket_index(self.sub_bits, value)
    }

    /// The inclusive `(low, high)` value range of bucket `index` — every
    /// value in the range maps to this bucket and no other.
    pub fn bucket_range(&self, index: usize) -> (u64, u64) {
        bucket_bounds(self.sub_bits, index)
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` occurrences of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self.index(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        self.count += n;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value as u128 * n as u128;
    }

    /// Folds another histogram in. Panics on mismatched `sub_bits` —
    /// bucket boundaries would not line up.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(
            self.sub_bits, other.sub_bits,
            "cannot merge histograms with different sub_bits"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, tracked exactly (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (`0.0 ..= 1.0`): an upper bound for the
    /// `⌈q·count⌉`-th smallest recorded value that at most one bucket
    /// width — a factor of `relative_error()` — above it. `q = 1.0`
    /// returns [`LogHistogram::max`] exactly; an empty histogram
    /// returns 0.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // The bucket's upper bound cannot exceed the tracked
                // exact max (the max lives in the last occupied bucket).
                return self.bucket_range(idx).1.min(self.max);
            }
        }
        self.max
    }
}

/// A wait-free concurrent histogram: the [`LogHistogram`] bucketing over
/// a fixed table of relaxed atomics. Any thread may
/// [`record`](AtomicHistogram::record) without coordination;
/// [`snapshot`](AtomicHistogram::snapshot) folds the table into a
/// [`LogHistogram`] for percentile queries. A snapshot taken while
/// writers are active is a consistent-enough view for reporting: each
/// bucket is read once, and the summary statistics (min/max/sum) may lag
/// in-flight records by design.
#[derive(Debug)]
pub struct AtomicHistogram {
    sub_bits: u32,
    counts: Box<[AtomicU64]>,
    // Tracked exactly (modulo racing reads) so snapshots can report
    // min/max/mean without widening bucket error.
    min: AtomicU64,
    max: AtomicU64,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> AtomicHistogram {
        AtomicHistogram::new(SPAN_SUB_BITS)
    }
}

impl AtomicHistogram {
    /// An empty concurrent histogram with `2^sub_bits` sub-buckets per
    /// octave (`1 ..= 16`). The whole `u64` range is covered by an
    /// eagerly allocated table: `(64 - sub_bits + 1) * 2^sub_bits`
    /// buckets of 8 bytes — keep `sub_bits` small (see
    /// [`SPAN_SUB_BITS`]) unless load-report precision is needed.
    pub fn new(sub_bits: u32) -> AtomicHistogram {
        assert!(
            (1..=16).contains(&sub_bits),
            "sub_bits must be in 1..=16, got {sub_bits}"
        );
        let counts = (0..bucket_table_len(sub_bits))
            .map(|_| AtomicU64::new(0))
            .collect();
        AtomicHistogram {
            sub_bits,
            counts,
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The configured mantissa bits.
    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    /// Records one value. Wait-free: four relaxed atomic operations, no
    /// allocation, no lock.
    pub fn record(&self, value: u64) {
        let idx = bucket_index(self.sub_bits, value);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total recorded values at this instant (sums the bucket table).
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Folds the current table into a [`LogHistogram`] (same
    /// `sub_bits`). The snapshot's count is the sum of the bucket reads,
    /// so its percentile arithmetic is internally consistent even when
    /// writers race the read pass.
    pub fn snapshot(&self) -> LogHistogram {
        let mut counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        while counts.last() == Some(&0) {
            counts.pop();
        }
        let count: u64 = counts.iter().sum();
        let (min, max, sum) = if count == 0 {
            (u64::MAX, 0, 0)
        } else {
            (
                self.min.load(Ordering::Relaxed),
                // A racing `record` may have bumped a bucket before the
                // max; never report a max below the occupied range.
                self.max
                    .load(Ordering::Relaxed)
                    .max(bucket_bounds(self.sub_bits, counts.len() - 1).0),
                self.sum.load(Ordering::Relaxed),
            )
        };
        LogHistogram {
            sub_bits: self.sub_bits,
            counts,
            count,
            min,
            max,
            sum: sum as u128,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_quantile(0.5), 0);
    }

    #[test]
    fn small_values_are_exact() {
        // Values below 2^(sub_bits+1) occupy unit-width buckets, so
        // percentiles on them are exact order statistics.
        let mut h = LogHistogram::new(7);
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.value_at_quantile(0.01), 1);
        assert_eq!(h.value_at_quantile(0.50), 50);
        assert_eq!(h.value_at_quantile(0.90), 90);
        assert_eq!(h.value_at_quantile(0.99), 99);
        assert_eq!(h.value_at_quantile(1.0), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn hand_built_distribution_percentiles() {
        // 9 copies of 10 and one 1000: p90 is the ninth smallest (10),
        // anything above 0.9 lands on the outlier.
        let mut h = LogHistogram::new(7);
        h.record_n(10, 9);
        h.record(1000);
        assert_eq!(h.value_at_quantile(0.5), 10);
        assert_eq!(h.value_at_quantile(0.9), 10);
        let p99 = h.value_at_quantile(0.99);
        assert!(
            (1000..=1007).contains(&p99),
            "p99 {p99} outside the outlier's bucket"
        );
        assert_eq!(h.value_at_quantile(1.0), 1000);
    }

    #[test]
    fn merge_matches_single_histogram() {
        let mut a = LogHistogram::new(7);
        let mut b = LogHistogram::new(7);
        let mut whole = LogHistogram::new(7);
        for v in 0..1000u64 {
            let v = v * v; // spread across octaves
            if v % 3 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.value_at_quantile(q), whole.value_at_quantile(q), "{q}");
        }
    }

    #[test]
    #[should_panic(expected = "different sub_bits")]
    fn merge_rejects_mismatched_precision() {
        let mut a = LogHistogram::new(7);
        a.merge(&LogHistogram::new(8));
    }

    #[test]
    fn atomic_snapshot_matches_sequential_histogram() {
        let atomic = AtomicHistogram::new(7);
        let mut plain = LogHistogram::new(7);
        for v in 0..2000u64 {
            let v = v * v * 31; // spread across ~27 octaves, sum far from u64 overflow
            atomic.record(v);
            plain.record(v);
        }
        let snap = atomic.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.min(), plain.min());
        assert_eq!(snap.max(), plain.max());
        assert!((snap.mean() - plain.mean()).abs() < 1e-6);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(snap.value_at_quantile(q), plain.value_at_quantile(q), "{q}");
        }
    }

    #[test]
    fn atomic_empty_snapshot_is_empty() {
        let snap = AtomicHistogram::default().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.value_at_quantile(0.99), 0);
        assert_eq!(snap.max(), 0);
    }

    proptest! {
        #[test]
        fn recorded_value_lands_in_its_bucket(
            value in 0u64..u64::MAX,
            sub_bits in 1u32..=10,
        ) {
            let h = LogHistogram::new(sub_bits);
            let (low, high) = h.bucket_range(h.index(value));
            prop_assert!(low <= value && value <= high,
                "value {value} outside bucket [{low}, {high}]");
            // Bucket width respects the relative error bound.
            if high >= (2u64 << sub_bits) {
                let width = high - low + 1;
                prop_assert!(width as f64 <= low as f64 * h.relative_error() * (1.0 + 1e-9),
                    "bucket [{low}, {high}] wider than the error bound");
            }
        }

        #[test]
        fn bucket_ranges_partition_contiguously(idx in 0usize..4000) {
            let h = LogHistogram::new(7);
            let (low, high) = h.bucket_range(idx);
            prop_assert!(low <= high);
            // The next bucket starts exactly one past this one's end.
            let (next_low, _) = h.bucket_range(idx + 1);
            prop_assert_eq!(next_low, high + 1);
            // And values at both edges map back to this index.
            prop_assert_eq!(h.index(low), idx);
            prop_assert_eq!(h.index(high), idx);
        }

        #[test]
        fn percentiles_are_monotone_and_bounded(
            values in proptest::collection::vec(0u64..1_000_000_000_000, 1..200),
        ) {
            let mut h = LogHistogram::default();
            for &v in &values {
                h.record(v);
            }
            let qs = [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0];
            let ps: Vec<u64> = qs.iter().map(|&q| h.value_at_quantile(q)).collect();
            for w in ps.windows(2) {
                prop_assert!(w[0] <= w[1], "percentiles not monotone: {ps:?}");
            }
            let true_max = *values.iter().max().unwrap();
            let true_min = *values.iter().min().unwrap();
            prop_assert_eq!(h.value_at_quantile(1.0), true_max);
            prop_assert_eq!(h.max(), true_max);
            prop_assert_eq!(h.min(), true_min);
            prop_assert!(ps[0] >= true_min);
        }

        #[test]
        fn quantiles_within_relative_error_of_exact(
            values in proptest::collection::vec(0u64..1_000_000_000_000, 1..200),
            q in 0.0f64..1.0,
        ) {
            let mut h = LogHistogram::default();
            for &v in &values {
                h.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let got = h.value_at_quantile(q);
            // Reported value is an upper bound within one bucket width.
            prop_assert!(got >= exact, "reported {got} below exact {exact}");
            let slack = exact as f64 * h.relative_error() + 1.0;
            prop_assert!(got as f64 <= exact as f64 + slack,
                "reported {got} more than one bucket above exact {exact}");
        }

        #[test]
        fn atomic_and_plain_agree_on_any_values(
            values in proptest::collection::vec(0u64..u64::MAX, 0..100),
            sub_bits in 1u32..=8,
        ) {
            let atomic = AtomicHistogram::new(sub_bits);
            let mut plain = LogHistogram::new(sub_bits);
            for &v in &values {
                atomic.record(v);
                plain.record(v);
            }
            let snap = atomic.snapshot();
            prop_assert_eq!(snap.count(), plain.count());
            prop_assert_eq!(snap.min(), plain.min());
            prop_assert_eq!(snap.max(), plain.max());
            for q in [0.0, 0.5, 0.99, 1.0] {
                prop_assert_eq!(snap.value_at_quantile(q), plain.value_at_quantile(q));
            }
        }
    }
}
