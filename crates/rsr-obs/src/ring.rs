//! A bounded structured event ring for post-mortem dumps.
//!
//! Metrics aggregate; sometimes the question is "what were the last
//! things that *went wrong*?". The ring keeps the most recent
//! [`EventRing::capacity`] structured events — a static kind string plus
//! two caller-defined `u64` fields, stamped with microseconds since the
//! ring was created — overwriting the oldest on overflow and counting
//! what it dropped. Pushes take a mutex but no allocation; the ring is
//! for *rare* events (connection teardowns, stranded sessions, protocol
//! errors), not per-frame traffic.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default capacity of the [`global_ring`].
pub const DEFAULT_RING_CAPACITY: usize = 1024;

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingEvent {
    /// Microseconds from ring creation to the push.
    pub at_us: u64,
    /// Static event kind, e.g. `"conn_failed"`.
    pub kind: &'static str,
    /// First caller-defined field (conventionally an id).
    pub a: u64,
    /// Second caller-defined field (conventionally a detail code).
    pub b: u64,
}

/// A fixed-capacity, overwrite-oldest event buffer.
#[derive(Debug)]
pub struct EventRing {
    epoch: Instant,
    capacity: usize,
    events: Mutex<VecDeque<RingEvent>>,
    dropped: AtomicU64,
}

impl EventRing {
    /// An empty ring holding at most `capacity` events (≥ 1).
    pub fn new(capacity: usize) -> EventRing {
        assert!(capacity >= 1, "ring capacity must be at least 1");
        EventRing {
            epoch: Instant::now(),
            capacity,
            events: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: AtomicU64::new(0),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&self, kind: &'static str, a: u64, b: u64) {
        let event = RingEvent {
            at_us: self.epoch.elapsed().as_micros() as u64,
            kind,
            a,
            b,
        };
        let mut events = self.events.lock().expect("event ring poisoned");
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    /// Events evicted to make room, ever.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// A copy of the buffered events, oldest first.
    pub fn dump(&self) -> Vec<RingEvent> {
        self.events
            .lock()
            .expect("event ring poisoned")
            .iter()
            .copied()
            .collect()
    }

    /// Renders the buffer as one `kind a b @t_us` line per event —
    /// the post-mortem text a failure handler can print or write next
    /// to a metrics snapshot.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let dropped = self.dropped();
        if dropped > 0 {
            out.push_str(&format!("({dropped} earlier events dropped)\n"));
        }
        for e in self.dump() {
            out.push_str(&format!("{} a={} b={} @{}us\n", e.kind, e.a, e.b, e.at_us));
        }
        out
    }
}

/// The process-wide ring ([`DEFAULT_RING_CAPACITY`] events) the
/// instrumented layers push teardown/strand events into.
pub fn global_ring() -> &'static EventRing {
    static GLOBAL: OnceLock<EventRing> = OnceLock::new();
    GLOBAL.get_or_init(|| EventRing::new(DEFAULT_RING_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent_events() {
        let ring = EventRing::new(3);
        for i in 0..5u64 {
            ring.push("ev", i, 100 + i);
        }
        let dump = ring.dump();
        assert_eq!(dump.len(), 3);
        assert_eq!(dump[0].a, 2);
        assert_eq!(dump[2].a, 4);
        assert_eq!(ring.dropped(), 2);
    }

    #[test]
    fn timestamps_are_monotone() {
        let ring = EventRing::new(8);
        ring.push("first", 0, 0);
        ring.push("second", 1, 0);
        let dump = ring.dump();
        assert!(dump[0].at_us <= dump[1].at_us);
    }

    #[test]
    fn render_mentions_drops() {
        let ring = EventRing::new(1);
        ring.push("a", 1, 2);
        ring.push("b", 3, 4);
        let text = ring.render();
        assert!(text.contains("1 earlier events dropped"), "{text}");
        assert!(text.contains("b a=3 b=4"), "{text}");
    }
}
