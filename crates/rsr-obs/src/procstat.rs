//! Process-level resource readings from `/proc/self/status`.
//!
//! The bench harness asserts a flat thread count across its connection
//! sweep and reports peak memory per cell; both come from the same
//! four-line parse of `/proc/self/status`. On platforms without procfs
//! every reading is zero — callers treat zero as "unavailable" (the
//! only tier-1 target is Linux, matching `netpoll`'s stance).
//!
//! [`sample_peaks_during`] wraps a closure with a short-interval
//! sampler thread so transient threads (an executor that lives only for
//! one batch) are still observed at their peak. Thread peaks need the
//! sampling; RSS peak does not — the kernel tracks `VmHWM` itself —
//! but both are returned together for convenience.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One parse of `/proc/self/status`. Zeros when unavailable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcStat {
    /// Live threads in the process (`Threads:`).
    pub threads: u64,
    /// Current resident set size in KiB (`VmRSS:`).
    pub rss_kb: u64,
    /// Peak resident set size in KiB over the process lifetime
    /// (`VmHWM:` — kernel-tracked high-water mark, never decreases).
    pub rss_peak_kb: u64,
}

impl ProcStat {
    /// Peak RSS in MiB, the unit the bench keys report.
    pub fn rss_peak_mb(&self) -> f64 {
        self.rss_peak_kb as f64 / 1024.0
    }
}

/// Reads and parses `/proc/self/status`; all-zero on any failure.
pub fn read() -> ProcStat {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return ProcStat::default();
    };
    let mut stat = ProcStat::default();
    for line in status.lines() {
        let field = |out: &mut u64, rest: &str| {
            // "Threads:\t19" / "VmRSS:\t  123456 kB"
            if let Some(first) = rest.split_whitespace().next() {
                if let Ok(v) = first.parse() {
                    *out = v;
                }
            }
        };
        if let Some(rest) = line.strip_prefix("Threads:") {
            field(&mut stat.threads, rest);
        } else if let Some(rest) = line.strip_prefix("VmRSS:") {
            field(&mut stat.rss_kb, rest);
        } else if let Some(rest) = line.strip_prefix("VmHWM:") {
            field(&mut stat.rss_peak_kb, rest);
        }
    }
    stat
}

/// Peak resource readings observed across a [`sample_peaks_during`]
/// call.
#[derive(Clone, Copy, Debug, Default)]
pub struct Peaks {
    /// Highest live-thread count seen by any sample (including the
    /// sampler thread itself — one extra, constant across calls).
    pub threads: u64,
    /// Kernel-tracked peak RSS in KiB at the end of the call
    /// (process-lifetime high-water mark, monotone across calls).
    pub rss_peak_kb: u64,
}

impl Peaks {
    /// Peak RSS in MiB.
    pub fn rss_peak_mb(&self) -> f64 {
        self.rss_peak_kb as f64 / 1024.0
    }
}

/// Runs `f` while a sampler thread polls [`read`] every 2 ms, and
/// returns `f`'s result with the observed [`Peaks`]. The sampler is
/// joined before returning, so the caller's thread count is back to
/// baseline when this returns.
pub fn sample_peaks_during<T>(f: impl FnOnce() -> T) -> (T, Peaks) {
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut peak_threads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                peak_threads = peak_threads.max(read().threads);
                std::thread::sleep(Duration::from_millis(2));
            }
            peak_threads.max(read().threads)
        })
    };
    let result = f();
    stop.store(true, Ordering::Relaxed);
    let peak_threads = sampler.join().expect("procstat sampler panicked");
    let peaks = Peaks {
        threads: peak_threads,
        rss_peak_kb: read().rss_peak_kb,
    };
    (result, peaks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_reports_plausible_values_on_linux() {
        let stat = read();
        if cfg!(target_os = "linux") {
            assert!(stat.threads >= 1, "{stat:?}");
            assert!(stat.rss_kb > 0, "{stat:?}");
            assert!(stat.rss_peak_kb >= stat.rss_kb, "{stat:?}");
        }
    }

    #[test]
    fn sampler_sees_transient_threads() {
        let baseline = read().threads;
        let ((), peaks) = sample_peaks_during(|| {
            let spawned: Vec<_> = (0..4)
                .map(|_| std::thread::spawn(|| std::thread::sleep(Duration::from_millis(20))))
                .collect();
            for t in spawned {
                t.join().unwrap();
            }
        });
        if cfg!(target_os = "linux") {
            assert!(
                peaks.threads > baseline,
                "peak {} not above baseline {baseline}",
                peaks.threads
            );
        }
    }
}
