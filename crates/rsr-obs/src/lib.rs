//! Process-wide observability for the reconciliation stack: an atomic
//! metrics registry, RAII span timers, a bounded post-mortem event
//! ring, and `/proc` resource sampling — std-only, allocation-free on
//! every hot path.
//!
//! The paper's contribution is a *cost model* (rounds, wire bits,
//! decode work); this crate makes the running system report those costs
//! live instead of only after the fact through transcripts. Three
//! layers instrument themselves against it: the `rsr-net` reactor
//! (poll iterations, wake reasons, wire bytes, write-buffer high-water
//! marks, connection lifecycle), the `rsr-core` executor (mailbox
//! depths, shard occupancy, open→first-frame→settle phase timings,
//! event-channel depth), and the session layer (frames and bits per
//! protocol, `on_frame` decode duration). `exp_net --metrics-out`
//! exports the whole registry as a flat JSON snapshot in the
//! `BENCH_*.json` key style; see docs/observability.md for the key
//! inventory and the overhead budget.
//!
//! # Design rules
//!
//! * **No dependencies.** This crate sits below `rsr-core`; anything it
//!   pulled in would be pulled into every crate in the workspace. Its
//!   histogram is therefore the canonical one — `rsr-bench` re-exports
//!   [`hist`] rather than the other way around.
//! * **Handles, not lookups.** Registry lookups take a mutex;
//!   instrumented layers resolve their handles once (a `OnceLock`
//!   struct per layer) and hot paths touch only relaxed atomics.
//! * **Off means off.** Recording is gated on [`enabled`]; a process
//!   that never calls [`set_enabled`]`(true)` pays one relaxed load per
//!   instrumentation site and nothing else. The bench harness measures
//!   exactly this on/off delta and holds it under 5%.
//! * **Bounded everything.** Histograms are fixed tables, the event
//!   ring overwrites its oldest entry, the [`Reporter`] is one thread
//!   for its whole lifetime — observability may not change the thread
//!   count or memory profile it is trying to observe.

pub mod hist;
pub mod procstat;
pub mod registry;
pub mod reporter;
pub mod ring;
pub mod span;

pub use hist::{AtomicHistogram, LogHistogram, DEFAULT_SUB_BITS, SPAN_SUB_BITS};
pub use registry::{global, Counter, Gauge, MetricsSnapshot, Registry};
pub use reporter::Reporter;
pub use ring::{global_ring, EventRing, RingEvent, DEFAULT_RING_CAPACITY};
pub use span::Span;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether instrumented layers should record. Defaults to **off**: a
/// library user who never opts in pays one relaxed load per
/// instrumentation site. One relaxed read — safe anywhere.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide. Flipping mid-run is safe
/// (counters simply stop or resume); bench code uses that to measure
/// its own instrumentation overhead.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_defaults_off_and_toggles() {
        // Other tests in this binary do not toggle the flag, so the
        // default is observable here.
        assert!(!super::enabled());
        super::set_enabled(true);
        assert!(super::enabled());
        super::set_enabled(false);
        assert!(!super::enabled());
    }
}
