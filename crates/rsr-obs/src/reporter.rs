//! The periodic reporter: one bounded background thread that delivers a
//! fresh [`MetricsSnapshot`] to a callback at a fixed interval.
//!
//! Exactly **one** thread per [`Reporter`], started eagerly and joined
//! on drop — never a thread per tick — so a process holding a reporter
//! adds a constant `+1` to its thread count for the reporter's whole
//! lifetime. That constant-ness is what keeps the bench harness's
//! zero-tolerance `_threads` gate honest when `exp_net --metrics-out`
//! turns reporting on: the peak thread count stays flat across sweep
//! cells, just one higher than a run without the reporter.

use crate::registry::{global, MetricsSnapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running periodic reporter. Dropping it stops the thread (after at
/// most one more interval) and delivers one final snapshot.
#[derive(Debug)]
pub struct Reporter {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Reporter {
    /// Starts a reporter over the [`global`] registry:
    /// every `interval`, `deliver` receives a fresh snapshot on the
    /// reporter thread. A final snapshot is delivered on shutdown, so
    /// short-lived processes still report once.
    pub fn start(
        interval: Duration,
        mut deliver: impl FnMut(&MetricsSnapshot) + Send + 'static,
    ) -> Reporter {
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Sleep in short slices so drop-triggered shutdown does
                // not stall a closing process for a whole interval.
                let slice = interval.min(Duration::from_millis(50));
                let mut elapsed = Duration::ZERO;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(slice);
                    elapsed += slice;
                    if elapsed >= interval {
                        elapsed = Duration::ZERO;
                        deliver(&global().snapshot());
                    }
                }
                deliver(&global().snapshot());
            })
        };
        Reporter {
            stop,
            handle: Some(handle),
        }
    }

    /// Starts a reporter that rewrites `path` with the latest snapshot's
    /// JSON every `interval` (and once at shutdown). Write errors are
    /// ignored after the first successful ones — reporting must never
    /// take down the process it observes.
    pub fn to_file(path: std::path::PathBuf, interval: Duration) -> Reporter {
        Reporter::start(interval, move |snap| {
            let _ = std::fs::write(&path, snap.to_json());
        })
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn reporter_delivers_and_stops() {
        let seen = Arc::new(Mutex::new(0usize));
        {
            let seen = Arc::clone(&seen);
            let reporter = Reporter::start(Duration::from_millis(10), move |_snap| {
                *seen.lock().unwrap() += 1;
            });
            std::thread::sleep(Duration::from_millis(40));
            drop(reporter);
        }
        let delivered = *seen.lock().unwrap();
        // At least one periodic tick plus the final snapshot.
        assert!(delivered >= 2, "only {delivered} deliveries");
    }

    #[test]
    fn file_reporter_writes_snapshot_json() {
        let path =
            std::env::temp_dir().join(format!("rsr_obs_reporter_test_{}.json", std::process::id()));
        crate::global().counter("reporter_test_marker").inc();
        {
            let _reporter = Reporter::to_file(path.clone(), Duration::from_millis(5));
            std::thread::sleep(Duration::from_millis(20));
        }
        let text = std::fs::read_to_string(&path).expect("snapshot file written");
        assert!(text.contains("reporter_test_marker"), "{text}");
        let _ = std::fs::remove_file(&path);
    }
}
