//! The process-wide metrics registry: named counters, gauges, and
//! concurrent histograms behind `Arc` handles.
//!
//! Registration is the only locked operation — an instrumented layer
//! looks its handles up **once** (typically into a `OnceLock` struct)
//! and every subsequent record is one or two relaxed atomic operations
//! on the handle itself. That keeps the hot-path cost of a counter at
//! roughly a cache-line touch, which is what makes the ≤ 5% overhead
//! budget in `exp_net` achievable (see docs/observability.md).
//!
//! Recording is additionally gated by a global enable flag
//! ([`crate::enabled`]): the registry always exists, but layers skip
//! their record calls when metrics are off, so the *disabled* cost is a
//! single relaxed load per instrumentation site.
//!
//! [`Registry::snapshot`] flattens everything into a
//! [`MetricsSnapshot`]: sorted `key → f64` pairs in the same one-line
//! key style as the `BENCH_*.json` files (histograms expand to
//! `_count/_mean/_p50/_p90/_p99/_max` keys), serialized by
//! [`MetricsSnapshot::to_json`] in the identical flat-object format so
//! the bench tooling can parse either kind of file.

use crate::hist::{AtomicHistogram, LogHistogram, SPAN_SUB_BITS};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing `u64` metric.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, live connections) that
/// also tracks its **high-water mark** — snapshots report both the
/// current value and the peak, because for a queue the peak is usually
/// the interesting number.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    hwm: AtomicI64,
}

impl Gauge {
    /// Adds `n` (which may be negative) and folds the new level into the
    /// high-water mark.
    pub fn add(&self, n: i64) {
        let now = self.value.fetch_add(n, Ordering::Relaxed) + n;
        if n > 0 {
            self.hwm.fetch_max(now, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Raises the gauge to `level` if above the current value — for
    /// levels sampled externally (a buffer length) rather than tracked
    /// by inc/dec. Updates the high-water mark, never lowers the value.
    pub fn set_max(&self, level: i64) {
        self.value.fetch_max(level, Ordering::Relaxed);
        self.hwm.fetch_max(level, Ordering::Relaxed);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The highest level ever observed.
    pub fn hwm(&self) -> i64 {
        self.hwm.load(Ordering::Relaxed)
    }
}

/// One registered metric.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<AtomicHistogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of metrics. Most callers want the process-wide
/// [`global`] registry; a private registry is useful in tests.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first request. Panics if the
    /// name is already registered as a different metric kind — two
    /// layers disagreeing about a key is a bug worth failing loudly on.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.register(name, || Metric::Counter(Arc::default())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// The gauge named `name`, created on first request (panics on a
    /// kind mismatch, as [`Registry::counter`]).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.register(name, || Metric::Gauge(Arc::default())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// The concurrent histogram named `name`, created on first request
    /// with [`SPAN_SUB_BITS`] precision (panics on a kind mismatch).
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        match self.register(name, || {
            Metric::Histogram(Arc::new(AtomicHistogram::new(SPAN_SUB_BITS)))
        }) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    fn register(&self, name: &str, create: impl FnOnce() -> Metric) -> Metric {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        metrics
            .entry(name.to_owned())
            .or_insert_with(create)
            .clone()
    }

    /// Flattens every registered metric into sorted `key → f64` pairs.
    /// Counters and gauges emit their value under their own name (plus
    /// `<name>_hwm` for gauges); a histogram named `x` expands to
    /// `x_count`, `x_mean`, `x_p50`, `x_p90`, `x_p99`, and `x_max` in
    /// the histogram's recorded unit.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let mut entries = Vec::with_capacity(metrics.len() * 2);
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => entries.push((name.clone(), c.get() as f64)),
                Metric::Gauge(g) => {
                    entries.push((name.clone(), g.get() as f64));
                    entries.push((format!("{name}_hwm"), g.hwm() as f64));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    entries.push((format!("{name}_count"), snap.count() as f64));
                    entries.push((format!("{name}_mean"), snap.mean()));
                    entries.push((format!("{name}_p50"), snap.value_at_quantile(0.50) as f64));
                    entries.push((format!("{name}_p90"), snap.value_at_quantile(0.90) as f64));
                    entries.push((format!("{name}_p99"), snap.value_at_quantile(0.99) as f64));
                    entries.push((format!("{name}_max"), snap.max() as f64));
                }
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { entries }
    }

    /// The merged [`LogHistogram`] view of histogram `name`, if it is
    /// registered — for callers that want full quantile access rather
    /// than the snapshot's fixed expansion.
    pub fn histogram_snapshot(&self, name: &str) -> Option<LogHistogram> {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        match metrics.get(name) {
            Some(Metric::Histogram(h)) => Some(h.snapshot()),
            _ => None,
        }
    }
}

/// The process-wide registry every instrumented layer records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A point-in-time flattening of a [`Registry`]: sorted `(key, value)`
/// pairs, serializable in the `BENCH_*.json` flat-object style.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    entries: Vec<(String, f64)>,
}

impl MetricsSnapshot {
    /// The sorted `(key, value)` pairs.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }

    /// The value under `key`, if present.
    pub fn value(&self, key: &str) -> Option<f64> {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// `self - earlier` for every counter-like key: keys present in both
    /// snapshots get the difference, keys only in `self` keep their
    /// value. Meaningful for counters and `_count` expansions; gauge and
    /// percentile keys become deltas too, which callers should ignore.
    pub fn delta_from(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let entries = self
            .entries
            .iter()
            .map(|(k, v)| (k.clone(), v - earlier.value(k).unwrap_or(0.0)))
            .collect();
        MetricsSnapshot { entries }
    }

    /// Serializes as a flat JSON object, one key per line, sorted —
    /// byte-compatible with the `BENCH_*.json` format so
    /// `rsr-bench`'s parser reads metrics files too.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (key, value)) in self.entries.iter().enumerate() {
            let sep = if i + 1 == self.entries.len() { "" } else { "," };
            if value.fract() == 0.0 && value.abs() < 1e15 {
                out.push_str(&format!("  \"{key}\": {}{sep}\n", *value as i64));
            } else {
                out.push_str(&format!("  \"{key}\": {value:.6}{sep}\n"));
            }
        }
        out.push('}');
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let reg = Registry::new();
        reg.counter("c").add(41);
        reg.counter("c").inc();
        let g = reg.gauge("g");
        g.add(5);
        g.add(-2);
        g.set_max(2); // below current: value unchanged
        for v in [10u64, 20, 30] {
            reg.histogram("h_us").record(v);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.value("c"), Some(42.0));
        assert_eq!(snap.value("g"), Some(3.0));
        assert_eq!(snap.value("g_hwm"), Some(5.0));
        assert_eq!(snap.value("h_us_count"), Some(3.0));
        assert_eq!(snap.value("h_us_max"), Some(30.0));
        assert!((snap.value("h_us_mean").unwrap() - 20.0).abs() < 1e-9);
        assert_eq!(snap.value("missing"), None);
    }

    #[test]
    fn handles_are_shared() {
        let reg = Registry::new();
        let a = reg.counter("shared");
        let b = reg.counter("shared");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().value("shared"), Some(2.0));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn delta_subtracts_counters() {
        let reg = Registry::new();
        let c = reg.counter("n");
        c.add(10);
        let before = reg.snapshot();
        c.add(7);
        let after = reg.snapshot();
        assert_eq!(after.delta_from(&before).value("n"), Some(7.0));
    }

    #[test]
    fn json_is_flat_sorted_object() {
        let reg = Registry::new();
        reg.counter("b").add(2);
        reg.counter("a").inc();
        let json = reg.snapshot().to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        let a = json.find("\"a\"").unwrap();
        let b = json.find("\"b\"").unwrap();
        assert!(a < b, "keys not sorted: {json}");
    }

    #[test]
    fn parallel_updates_lose_nothing() {
        let reg = Arc::new(Registry::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let reg = Arc::clone(&reg);
                thread::spawn(move || {
                    let c = reg.counter("hits");
                    let g = reg.gauge("depth");
                    let h = reg.histogram("lat_us");
                    for i in 0..per_thread {
                        c.inc();
                        g.inc();
                        h.record(t * per_thread + i);
                        g.dec();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = reg.snapshot();
        let total = (threads * per_thread) as f64;
        assert_eq!(snap.value("hits"), Some(total));
        assert_eq!(snap.value("depth"), Some(0.0));
        assert_eq!(snap.value("lat_us_count"), Some(total));
        let hist = reg.histogram_snapshot("lat_us").unwrap();
        assert_eq!(hist.count(), threads * per_thread);
        assert_eq!(hist.max(), threads * per_thread - 1);
        assert_eq!(hist.min(), 0);
    }
}
