//! Micro-benchmarks for the Robust IBLT: insert/delete of key–value pairs
//! and the breadth-first peel, including the noisy-cancellation path that
//! exercises the error-propagation machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsr_iblt::riblt::RibltConfig;
use rsr_iblt::Riblt;
use rsr_metric::Point;
use std::hint::black_box;

fn config(k: usize, dim: usize) -> RibltConfig {
    RibltConfig::for_pairs(k, 3, dim, 1_000_000, 11)
}

fn bench_insert_delete(c: &mut Criterion) {
    let mut group = c.benchmark_group("riblt_insert_delete");
    for &dim in &[2usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, &dim| {
            let mut rng = StdRng::seed_from_u64(3);
            let pts: Vec<Point> = (0..1000)
                .map(|_| Point::new((0..dim).map(|_| rng.gen_range(0..1000)).collect()))
                .collect();
            b.iter(|| {
                let mut t = Riblt::new(config(16, dim));
                for (i, p) in pts.iter().enumerate() {
                    t.insert(i as u64, black_box(p));
                }
                for (i, p) in pts.iter().enumerate() {
                    t.delete(i as u64, p);
                }
                t
            });
        });
    }
    group.finish();
}

fn bench_peel(c: &mut Criterion) {
    let mut group = c.benchmark_group("riblt_peel");
    // Survivor-only peel vs peel over heavy cancelled-noise residue.
    for &(label, cancelled) in &[("clean", 0usize), ("noisy_1000", 1000)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &cancelled,
            |b, &cancelled| {
                let mut rng = StdRng::seed_from_u64(4);
                let k = 16;
                let mut t = Riblt::new(config(k, 4));
                for i in 0..cancelled {
                    let v = Point::new((0..4).map(|_| rng.gen_range(0..1000)).collect());
                    let mut w = v.clone();
                    w.coords_mut()[0] += 1;
                    t.insert(i as u64, &v);
                    t.delete(i as u64, &w);
                }
                for i in 0..2 * k {
                    let v = Point::new((0..4).map(|_| rng.gen_range(0..1000)).collect());
                    t.insert(1_000_000 + i as u64, &v);
                }
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(5);
                    black_box(t.clone()).decode(&mut rng)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_insert_delete, bench_peel);
criterion_main!(benches);
