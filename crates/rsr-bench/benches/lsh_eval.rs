//! Micro-benchmarks for LSH evaluation and key construction — the
//! dominant cost in Theorem 3.4's encode phase (`t` in the theorem is
//! "an upper bound on the time to evaluate functions from H").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsr_hash::keys::{BatchKeyer, MultiScaleKeyer};
use rsr_hash::{BitSamplingFamily, GridFamily, LshFamily, LshFunction, PStableFamily};
use rsr_metric::Point;
use std::hint::black_box;

fn bench_single_eval(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsh_single_eval");
    let dim = 64;
    let p = Point::new((0..dim as i64).map(|i| i % 2).collect());
    let mut rng = StdRng::seed_from_u64(1);

    let bit = BitSamplingFamily::new(dim, 128.0).sample(&mut rng);
    group.bench_function("bit_sampling_d64", |b| b.iter(|| bit.hash(black_box(&p))));

    let grid = GridFamily::new(dim, 20.0).sample(&mut rng);
    group.bench_function("grid_d64", |b| b.iter(|| grid.hash(black_box(&p))));

    let ps = PStableFamily::new(dim, 20.0).sample(&mut rng);
    group.bench_function("pstable_d64", |b| b.iter(|| ps.hash(black_box(&p))));
    group.finish();
}

fn bench_keyers(c: &mut Criterion) {
    let mut group = c.benchmark_group("key_construction");
    let dim = 64;
    let p = Point::new((0..dim as i64).map(|i| i % 2).collect());
    let fam = BitSamplingFamily::new(dim, 128.0);
    for &s in &[64usize, 512, 4096] {
        group.bench_with_input(BenchmarkId::new("multiscale_all_levels", s), &s, |b, &s| {
            let mut rng = StdRng::seed_from_u64(2);
            let keyer = MultiScaleKeyer::sample(&fam, s, 32, &mut rng);
            let lens: Vec<usize> = (0..8).map(|i| ((s >> i).max(1)).min(s)).rev().collect();
            b.iter(|| keyer.level_keys(black_box(&p), &lens));
        });
    }
    group.bench_function("gap_key_h32_m4", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let keyer = BatchKeyer::sample(&fam, 32, 4, 24, &mut rng);
        b.iter(|| keyer.key(black_box(&p)));
    });
    group.finish();
}

criterion_group!(benches, bench_single_eval, bench_keyers);
criterion_main!(benches);
