//! Micro-benchmarks for the Hungarian assignment and EMD_k — the O(nk²)
//! term in Theorem 3.4's running time ("use the Hungarian method to find
//! the min-cost matching between X_B and S_B").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsr_emd::{assign, emd, emd_k};
use rsr_metric::{Metric, Point};
use std::hint::black_box;

fn random_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new(vec![rng.gen_range(0..1000), rng.gen_range(0..1000)]))
        .collect()
}

fn bench_square_assignment(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian_square");
    for &n in &[32usize, 128, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(7);
            let costs: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..n).map(|_| rng.gen_range(0..1000) as f64).collect())
                .collect();
            b.iter(|| assign(n, n, |i, j| black_box(costs[i][j])));
        });
    }
    group.finish();
}

fn bench_rectangular_repair_matching(c: &mut Criterion) {
    // Bob's repair: |X_B| = 2k rows against n columns.
    let mut group = c.benchmark_group("hungarian_repair_2k_x_n");
    for &(k, n) in &[(4usize, 256usize), (16, 1024)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}_n{n}")),
            &(k, n),
            |b, &(k, n)| {
                let xs = random_points(2 * k, 8);
                let ys = random_points(n, 9);
                b.iter(|| {
                    assign(2 * k, n, |i, j| {
                        Metric::L1.distance(black_box(&xs[i]), &ys[j])
                    })
                });
            },
        );
    }
    group.finish();
}

fn bench_emd_and_emdk(c: &mut Criterion) {
    let mut group = c.benchmark_group("emd");
    group.sample_size(20);
    for &n in &[64usize, 128] {
        let x = random_points(n, 10);
        let y = random_points(n, 11);
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| emd(Metric::L1, black_box(&x), &y));
        });
        group.bench_with_input(BenchmarkId::new("emd_k4", n), &n, |b, _| {
            b.iter(|| emd_k(Metric::L1, black_box(&x), &y, 4));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_square_assignment,
    bench_rectangular_repair_matching,
    bench_emd_and_emdk
);
criterion_main!(benches);
