//! Micro-benchmarks for standard IBLT operations: insert throughput and
//! decode cost at several loads (Theorem 2.6's O(m) decode claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsr_iblt::Iblt;
use std::hint::black_box;

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("iblt_insert");
    for &m in &[1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            let mut rng = StdRng::seed_from_u64(1);
            let keys: Vec<u64> = (0..m / 2).map(|_| rng.gen()).collect();
            b.iter(|| {
                let mut t = Iblt::new(m, 3, 7);
                for &k in &keys {
                    t.insert(black_box(k));
                }
                t
            });
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("iblt_decode");
    for &load in &[0.25f64, 0.5, 0.75] {
        let m = 10_000usize;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("load_{load}")),
            &load,
            |b, &load| {
                let mut rng = StdRng::seed_from_u64(2);
                let keys: Vec<u64> = (0..(m as f64 * load) as usize).map(|_| rng.gen()).collect();
                let mut t = Iblt::new(m, 3, 8);
                for &k in &keys {
                    t.insert(k);
                }
                b.iter(|| black_box(t.clone()).decode());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_decode);
criterion_main!(benches);
