//! End-to-end protocol benchmarks: Algorithm 1 encode/decode and the Gap
//! protocol, backing the paper's running-time claims (Theorem 3.4's
//! encode O(t·n·k/(D1·log(1/p))) and decode O(dnk + nk²); Theorem 4.2's
//! O(t·n·log n / log(1/p2)) key construction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rsr_core::emd_protocol::{EmdProtocol, EmdProtocolConfig};
use rsr_core::gap_protocol::{GapConfig, GapProtocol};
use rsr_hash::lsh::LshParams;
use rsr_hash::BitSamplingFamily;
use rsr_metric::MetricSpace;
use rsr_workloads::{planted_emd_sparse, sensor_pairs};
use std::hint::black_box;

fn bench_emd_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("emd_protocol");
    group.sample_size(10);
    for &n in &[100usize, 200] {
        let d = 64;
        let k = 4;
        let space = MetricSpace::hamming(d);
        let w = planted_emd_sparse(space, n, k, 1, n / 10, 21);
        let cfg = EmdProtocolConfig::for_space(&space, n, k);
        let proto = EmdProtocol::new(space, cfg, 22);
        group.bench_with_input(BenchmarkId::new("alice_encode", n), &n, |b, _| {
            b.iter(|| proto.alice_encode(black_box(&w.alice)));
        });
        let msg = proto.alice_encode(&w.alice);
        group.bench_with_input(BenchmarkId::new("bob_decode", n), &n, |b, _| {
            b.iter(|| proto.bob_decode(black_box(&msg), &w.bob));
        });
    }
    group.finish();
}

fn bench_gap_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("gap_protocol");
    group.sample_size(10);
    for &n in &[100usize, 200] {
        let d = 256;
        let k = 3;
        let space = MetricSpace::hamming(d);
        let (r1, r2) = (2.0, (d / 3) as f64);
        let w = sensor_pairs(space, n, k, r1, r2, 23);
        let fam = BitSamplingFamily::new(d, d as f64);
        let params = LshParams::new(r1, r2, 1.0 - r1 / d as f64, 1.0 - r2 / d as f64);
        let cfg = GapConfig::for_params(params, n, k);
        let proto = GapProtocol::new(space, &fam, cfg, 24);
        group.bench_with_input(BenchmarkId::new("full_run", n), &n, |b, _| {
            b.iter(|| proto.run(black_box(&w.alice), &w.bob));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_emd_protocol, bench_gap_protocol);
criterion_main!(benches);
