//! The round-trip gate: a real (tiny) load sweep must emit a
//! `BENCH_net.json` latency section that parses back verbatim, carries
//! every key the schema promises, and compares cleanly against itself
//! under both `bench_check` gates — the same self-comparison CI's
//! bench-baseline job runs with the actual binaries.

use rsr_bench::experiments::load::{self, LoadOptions};
use rsr_bench::{latency_regressions, regressions, Arrival, BenchReport};

/// One 24-session cell at a gentle rate: fast enough for the debug test
/// profile, real enough to exercise the whole server/client/histogram
/// path.
fn tiny_sweep() -> BenchReport {
    let mut bench = BenchReport::new("net", true);
    let opts = LoadOptions {
        rates: Some(vec![150.0]),
        arrival: Some(Arrival::Exponential),
        sessions: Some(24),
        shards: Some(vec![1]),
        conns: None,
        payload_scale: None,
    };
    let section = load::extend(&mut bench, true, &opts);
    assert!(
        section.contains("L1") && section.contains("r150_s1"),
        "markdown section must name the experiment and the cell"
    );
    bench
}

#[test]
fn load_json_round_trips_and_gates_cleanly() {
    let bench = tiny_sweep();

    // Every key the flat schema promises for a cell, in one place.
    for suffix in [
        "offered_per_sec",
        "achieved_per_sec",
        "completed",
        "p50_ms",
        "p90_ms",
        "p95_ms",
        "p99_ms",
        "max_ms",
        "inject_lag_ms",
    ] {
        let key = format!("load_r150_s1_{suffix}");
        assert!(bench.metric(&key).is_some(), "missing {key}");
    }

    // The run must be internally sane: everything completed, latency
    // percentiles monotone, achieved rate positive.
    let m = |k: &str| bench.metric(&format!("load_r150_s1_{k}")).unwrap();
    assert_eq!(m("completed"), 24.0);
    assert!(m("achieved_per_sec") > 0.0);
    let (p50, p90, p95, p99, max) = (
        m("p50_ms"),
        m("p90_ms"),
        m("p95_ms"),
        m("p99_ms"),
        m("max_ms"),
    );
    assert!(
        p50 <= p90 && p90 <= p95 && p95 <= p99 && p99 <= max,
        "percentiles must be monotone: {p50} {p90} {p95} {p99} {max}"
    );

    // Serialize, parse back, and self-compare under both gates — the
    // exact pipeline bench-baseline runs against the committed file.
    let parsed = BenchReport::parse(&bench.to_json()).expect("own JSON parses");
    assert_eq!(parsed, bench, "JSON round trip must be lossless");
    assert!(
        regressions(&parsed, &parsed, 0.30).is_empty(),
        "a report must never regress against itself"
    );
    assert!(
        latency_regressions(&parsed, &parsed, 1.00, 3.00).is_empty(),
        "a report must never show latency regressions against itself"
    );
}
