//! Experiment harness for the paper's quantitative claims.
//!
//! Each module under [`experiments`] regenerates one table or figure from
//! DESIGN.md's experiment index (T1–T12, F1). Every experiment is a pure
//! function `run(quick: bool) -> String` returning a markdown section, so
//! the same code backs the per-experiment binaries (`cargo run --release
//! -p rsr-bench --bin exp_<name>`), the `run_all` binary that regenerates
//! EXPERIMENTS.md's measured numbers, and the smoke tests.
//!
//! `quick` mode shrinks trial counts so the whole suite stays in CI
//! budgets; the full mode is what EXPERIMENTS.md reports.

pub mod experiments;
pub mod table;

pub use table::Table;

/// Parses the conventional `--quick` flag from process args.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}
