//! Experiment harness for the paper's quantitative claims.
//!
//! Each module under [`experiments`] regenerates one table or figure
//! (T1–T12 and F1 reproduce the paper's evaluation; N1 and P1 measure
//! the transport and solver layers this repo added). Every experiment is
//! a pure function `run(quick: bool) -> String` returning a markdown
//! section, so the same code backs the per-experiment binaries (`cargo
//! run --release -p rsr-bench --bin exp_<name>`), the `run_all` binary
//! that regenerates the full report, and the smoke tests. Four of them
//! also emit machine-readable `BENCH_*.json` reports that CI gates
//! against committed baselines (see docs/benchmarks.md).
//!
//! `quick` mode shrinks trial counts so the whole suite stays in CI
//! budgets; the full mode is what EXPERIMENTS.md reports.

pub mod benchjson;
pub mod experiments;
pub mod loadgen;
pub mod table;

/// Log-bucketed histograms, now provided by `rsr-obs` (the observability
/// layer needs them below `rsr-core` in the dependency graph); re-exported
/// here so load-harness callers keep their `rsr_bench::hist::…` paths.
pub use rsr_obs::hist;

pub use benchjson::{
    latency_regressions, regressions, success_regressions, thread_regressions, BenchReport,
    Regression,
};
pub use hist::LogHistogram;
pub use loadgen::Arrival;
pub use table::Table;

/// Parses the conventional `--quick` flag from process args.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Parses the conventional `--json` flag: `Some(path)` when present,
/// writing to `default_name` in the working directory unless
/// `--json-out PATH` overrides it (so CI can compare a fresh run
/// against a committed baseline of the same name). A `--json-out` with
/// no following path aborts instead of silently writing to the default
/// location — a CI step expecting the redirected file must not compare
/// a stale one.
pub fn json_out(default_name: &str) -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    let mut path = None;
    let mut wanted = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => wanted = true,
            "--json-out" => {
                wanted = true;
                match args.next() {
                    Some(p) => path = Some(std::path::PathBuf::from(p)),
                    None => {
                        eprintln!("--json-out requires a PATH argument");
                        std::process::exit(2);
                    }
                }
            }
            _ => {}
        }
    }
    wanted.then(|| path.unwrap_or_else(|| std::path::PathBuf::from(default_name)))
}
