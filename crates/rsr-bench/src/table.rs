//! Minimal markdown table builder for experiment reports.

use std::fmt::Write as _;

/// A markdown table with a fixed header.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as github-flavoured markdown.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        let _ = ncols;
        out
    }
}

/// Formats a float tersely (3 significant-ish digits).
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("| a | bb |"));
        assert!(s.contains("| 1 | 2  |"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.6), "1235");
        assert_eq!(f(3.456), "3.46");
        assert_eq!(f(0.01234), "0.0123");
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        Table::new(&["a"]).row(vec!["1".into(), "2".into()]);
    }
}
