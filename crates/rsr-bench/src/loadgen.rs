//! Open-loop arrival schedules for the load harness.
//!
//! A *closed-loop* driver (everything `exp_net` measured before the load
//! mode) starts the next session when a previous one finishes, so the
//! measured system throttles its own offered load and queueing delay
//! never shows up in the numbers. The load harness is *open-loop*: session
//! arrival times are **pre-computed here, before the run starts**, from a
//! target offered rate, and the generator injects each session at its
//! scheduled instant whether or not earlier sessions have finished. A
//! slow server makes latencies grow; it cannot make arrivals stop.
//!
//! Latency must then be measured from the *scheduled* arrival, not the
//! actual injection instant — if the generator itself falls behind, the
//! delay it introduced is part of the latency the target would have
//! inflicted on a punctual client (the coordinated-omission rule; see
//! `docs/loadgen.md`). This module only owns the schedule side:
//! [`schedule`] produces the offsets, [`offered_rate`] reports the rate a
//! schedule actually encodes, and `rsr-net`'s
//! `ReconClient::run_load` does the paced injection and timestamping.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// The inter-arrival law of an open-loop schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arrival {
    /// Deterministic, evenly spaced arrivals: session `i` at `i / rate`.
    /// The gentlest arrival process at a given rate — no bursts — so it
    /// isolates the service-time component of latency.
    Uniform,
    /// Seeded-exponential inter-arrival gaps (a Poisson process): the
    /// memoryless arrival law production traffic is usually modeled by,
    /// and the honest default — bursts arrive for free.
    Exponential,
}

impl Arrival {
    /// The canonical CLI token.
    pub fn token(self) -> &'static str {
        match self {
            Arrival::Uniform => "uniform",
            Arrival::Exponential => "exp",
        }
    }

    /// Parses a CLI token (`uniform` | `exp` | `exponential` | `poisson`).
    pub fn parse(token: &str) -> Option<Arrival> {
        match token {
            "uniform" => Some(Arrival::Uniform),
            "exp" | "exponential" | "poisson" => Some(Arrival::Exponential),
            _ => None,
        }
    }
}

/// Pre-computes an open-loop arrival schedule: `count` non-decreasing
/// offsets from the run's start, targeting `rate_per_sec` offered
/// sessions per second. Deterministic in `(count, rate, arrival, seed)`
/// — the seed only matters for [`Arrival::Exponential`], whose gaps are
/// drawn with inverse-CDF sampling from the workspace's seeded RNG, so a
/// committed baseline pins its exact arrival pattern.
pub fn schedule(count: usize, rate_per_sec: f64, arrival: Arrival, seed: u64) -> Vec<Duration> {
    assert!(
        rate_per_sec.is_finite() && rate_per_sec > 0.0,
        "offered rate must be a positive, finite sessions/sec"
    );
    match arrival {
        Arrival::Uniform => (0..count)
            .map(|i| Duration::from_secs_f64(i as f64 / rate_per_sec))
            .collect(),
        Arrival::Exponential => {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x10ad_6e4a_2242_1a77);
            let mut at = 0.0f64;
            (0..count)
                .map(|_| {
                    // Inverse CDF of Exp(rate): -ln(1 - U) / rate, with
                    // U in [0, 1) so the argument never hits zero.
                    let u: f64 = rng.gen();
                    at += -(1.0 - u).ln() / rate_per_sec;
                    Duration::from_secs_f64(at)
                })
                .collect()
        }
    }
}

/// The offered rate a schedule encodes, in sessions/sec: arrivals per
/// unit of schedule span. Zero for schedules with fewer than two
/// arrivals or no span (a burst of simultaneous arrivals has no finite
/// rate).
pub fn offered_rate(schedule: &[Duration]) -> f64 {
    match (schedule.first(), schedule.last()) {
        (Some(&first), Some(&last)) if schedule.len() >= 2 && last > first => {
            (schedule.len() - 1) as f64 / (last - first).as_secs_f64()
        }
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_schedule_is_exact() {
        let s = schedule(5, 100.0, Arrival::Uniform, 99);
        let expect: Vec<Duration> = (0..5).map(|i| Duration::from_millis(10 * i)).collect();
        assert_eq!(s, expect);
        assert!((offered_rate(&s) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_schedule_is_deterministic_per_seed() {
        let a = schedule(64, 200.0, Arrival::Exponential, 7);
        let b = schedule(64, 200.0, Arrival::Exponential, 7);
        assert_eq!(a, b, "same seed must reproduce the schedule exactly");
        let c = schedule(64, 200.0, Arrival::Exponential, 8);
        assert_ne!(a, c, "the seed must matter");
    }

    #[test]
    fn exponential_schedule_is_sorted_with_plausible_rate() {
        let s = schedule(2000, 500.0, Arrival::Exponential, 3);
        assert!(
            s.windows(2).all(|w| w[0] <= w[1]),
            "offsets must not go back in time"
        );
        // The mean of 2000 Exp(500) gaps concentrates tightly: the
        // realized rate should be within 10% of the target.
        let rate = offered_rate(&s);
        assert!(
            (rate / 500.0 - 1.0).abs() < 0.10,
            "realized rate {rate:.1}/s too far from offered 500/s"
        );
    }

    #[test]
    fn degenerate_schedules_have_no_rate() {
        assert_eq!(offered_rate(&[]), 0.0);
        assert_eq!(offered_rate(&[Duration::ZERO]), 0.0);
        assert_eq!(offered_rate(&[Duration::ZERO, Duration::ZERO]), 0.0);
    }

    #[test]
    fn arrival_tokens_round_trip() {
        for a in [Arrival::Uniform, Arrival::Exponential] {
            assert_eq!(Arrival::parse(a.token()), Some(a));
        }
        assert_eq!(Arrival::parse("poisson"), Some(Arrival::Exponential));
        assert_eq!(Arrival::parse("bursty"), None);
    }
}
