//! Machine-readable benchmark reports: the `BENCH_*.json` format.
//!
//! Experiments that measure throughput emit a [`BenchReport`] next to
//! their markdown table when run with `--json`. The schema is flat by
//! design — one metrics object of `"key": number` pairs — so CI can
//! compare a fresh run against the committed baseline without a JSON
//! library on either side:
//!
//! ```json
//! {
//!   "bench": "net",
//!   "quick": true,
//!   "metrics": {
//!     "sessions": 64,
//!     "serial_wall_ms": 152.1,
//!     "serial_sessions_per_sec": 420.7
//!   }
//! }
//! ```
//!
//! Keys ending in `_per_sec` are throughputs: [`regressions`] flags any
//! of them that dropped by more than the tolerance against a baseline
//! (slower wall times follow from lower throughput, so only the rates
//! are gated). The emitter writes one key per line and the parser reads
//! exactly that shape — this module is the single owner of both sides.

use std::fmt::Write as _;

/// One experiment's machine-readable results.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Which experiment produced this (e.g. `"net"`).
    pub bench: String,
    /// Whether the reduced-trial `--quick` mode produced it; baselines
    /// and fresh runs must agree on this or the numbers are not
    /// comparable.
    pub quick: bool,
    /// `(key, value)` metrics in emission order.
    pub metrics: Vec<(String, f64)>,
}

impl BenchReport {
    /// An empty report for `bench`.
    pub fn new(bench: impl Into<String>, quick: bool) -> BenchReport {
        BenchReport {
            bench: bench.into(),
            quick,
            metrics: Vec::new(),
        }
    }

    /// Appends a metric. Keys must be unique; the parser keeps the first.
    pub fn push(&mut self, key: impl Into<String>, value: f64) {
        self.metrics.push((key.into(), value));
    }

    /// Looks a metric up by key.
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Renders the report as the canonical one-key-per-line JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"{}\",", self.bench);
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(out, "  \"metrics\": {{");
        for (i, (key, value)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{key}\": {value}{comma}");
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses the canonical format back. Tolerates whitespace and key
    /// order but not structural deviations; unknown non-numeric values
    /// are an error so a corrupted baseline fails loudly.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let mut bench: Option<String> = None;
        let mut quick: Option<bool> = None;
        let mut metrics: Vec<(String, f64)> = Vec::new();
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            let Some(rest) = line.strip_prefix('"') else {
                continue; // braces and blank lines
            };
            let Some((key, rest)) = rest.split_once('"') else {
                return Err(format!("unterminated key on line: {line}"));
            };
            let Some(value) = rest.trim_start().strip_prefix(':') else {
                return Err(format!("missing ':' after key {key:?}"));
            };
            let value = value.trim();
            match key {
                "bench" => {
                    bench = Some(
                        value
                            .strip_prefix('"')
                            .and_then(|v| v.strip_suffix('"'))
                            .ok_or_else(|| format!("bench value is not a string: {value}"))?
                            .to_owned(),
                    );
                }
                "quick" => match value {
                    "true" => quick = Some(true),
                    "false" => quick = Some(false),
                    other => return Err(format!("quick value is not a bool: {other}")),
                },
                "metrics" => {} // the opening brace of the metrics object
                key => {
                    let parsed: f64 = value
                        .parse()
                        .map_err(|_| format!("metric {key:?} is not a number: {value}"))?;
                    if !metrics.iter().any(|(k, _)| k == key) {
                        metrics.push((key.to_owned(), parsed));
                    }
                }
            }
        }
        Ok(BenchReport {
            bench: bench.ok_or("missing \"bench\" field")?,
            quick: quick.ok_or("missing \"quick\" field")?,
            metrics,
        })
    }
}

/// One throughput metric that fell below the tolerated floor.
#[derive(Clone, Debug)]
pub struct Regression {
    /// The metric key.
    pub key: String,
    /// The committed baseline value.
    pub baseline: f64,
    /// The fresh measurement.
    pub fresh: f64,
}

impl Regression {
    /// Fractional drop, e.g. `0.42` for a 42% slowdown.
    pub fn drop_fraction(&self) -> f64 {
        1.0 - self.fresh / self.baseline
    }

    /// Fractional increase, e.g. `0.42` for a latency 42% above its
    /// baseline (infinite when the fresh key is missing).
    pub fn increase_fraction(&self) -> f64 {
        self.fresh / self.baseline - 1.0
    }
}

/// Key suffixes marking latency percentiles (milliseconds). These are
/// gated in the *opposite* direction from throughputs: increases are
/// regressions.
const LATENCY_SUFFIXES: [&str; 5] = ["_p50_ms", "_p90_ms", "_p95_ms", "_p99_ms", "_max_ms"];

/// The subset of latency keys that are tail percentiles, gated with a
/// separate (looser) tolerance — tails are the first casualty of
/// scheduling noise, especially on small-core CI hosts.
const TAIL_SUFFIXES: [&str; 2] = ["_p99_ms", "_max_ms"];

/// Latency increases below this absolute delta never gate, regardless of
/// ratio: sub-millisecond percentiles would otherwise flap on scheduler
/// jitter alone (a 0.3 ms → 0.8 ms p50 is noise, not a regression).
pub const LATENCY_FLOOR_MS: f64 = 1.0;

/// Whether `key` is a gated latency percentile.
pub fn is_latency_key(key: &str) -> bool {
    LATENCY_SUFFIXES.iter().any(|s| key.ends_with(s))
}

/// Whether `key` is a tail percentile (gated with the tail tolerance).
pub fn is_tail_latency_key(key: &str) -> bool {
    TAIL_SUFFIXES.iter().any(|s| key.ends_with(s))
}

/// Compares every baseline latency-percentile metric against the fresh
/// report and returns those where
/// `fresh > baseline * (1 + tol) && fresh > baseline + LATENCY_FLOOR_MS`,
/// with `tol` being `tail_tolerance` for tail keys (`_p99_ms`,
/// `_max_ms`) and `tolerance` for the body (`_p50_ms`, `_p90_ms`,
/// `_p95_ms`). A baseline latency key *missing* from the fresh report is
/// reported as `fresh = +∞` and always flagged — dropping a percentile
/// must fail loudly, exactly like dropping a throughput. Decreases and
/// fresh-only keys never flag.
pub fn latency_regressions(
    baseline: &BenchReport,
    fresh: &BenchReport,
    tolerance: f64,
    tail_tolerance: f64,
) -> Vec<Regression> {
    baseline
        .metrics
        .iter()
        .filter(|(k, _)| is_latency_key(k))
        .map(|(key, base)| Regression {
            key: key.clone(),
            baseline: *base,
            fresh: fresh.metric(key).unwrap_or(f64::INFINITY),
        })
        .filter(|r| {
            let tol = if is_tail_latency_key(&r.key) {
                tail_tolerance
            } else {
                tolerance
            };
            r.fresh > r.baseline * (1.0 + tol) && r.fresh > r.baseline + LATENCY_FLOOR_MS
        })
        .collect()
}

/// Compares every baseline `_threads` metric against the fresh report
/// and returns those that **increased at all** — zero tolerance. Thread
/// counts are structural, not noisy: the reactor architecture pins one
/// reactor thread plus a fixed executor pool per endpoint regardless of
/// connection count, so any upward drift is a per-connection thread
/// leaking back in, not scheduler jitter. A baseline key missing from
/// the fresh report is treated as `+∞` and always flagged; decreases
/// and fresh-only keys never flag.
pub fn thread_regressions(baseline: &BenchReport, fresh: &BenchReport) -> Vec<Regression> {
    baseline
        .metrics
        .iter()
        .filter(|(k, _)| k.ends_with("_threads"))
        .map(|(key, base)| Regression {
            key: key.clone(),
            baseline: *base,
            fresh: fresh.metric(key).unwrap_or(f64::INFINITY),
        })
        .filter(|r| r.fresh > r.baseline)
        .collect()
}

/// Compares every baseline `_success_rate` metric against the fresh
/// report and returns those that **decreased at all** — zero downward
/// tolerance. Success rates in the gated reports are deterministic
/// (fixed seeds, no wall-clock in any decode path), so unlike
/// throughputs there is no noise band to tolerate: any dip is a real
/// decoder regression. A baseline key missing from the fresh report is
/// treated as `-∞` and always flagged; increases and fresh-only keys
/// never flag.
pub fn success_regressions(baseline: &BenchReport, fresh: &BenchReport) -> Vec<Regression> {
    baseline
        .metrics
        .iter()
        .filter(|(k, _)| k.ends_with("_success_rate"))
        .map(|(key, base)| Regression {
            key: key.clone(),
            baseline: *base,
            fresh: fresh.metric(key).unwrap_or(f64::NEG_INFINITY),
        })
        .filter(|r| r.fresh < r.baseline)
        .collect()
}

/// Compares every baseline `_per_sec` metric against the fresh report
/// and returns those where `fresh < baseline * (1 - tolerance)`. A
/// baseline throughput key *missing* from the fresh report is treated
/// as `fresh = 0` and always flagged — a renamed or dropped metric must
/// fail CI loudly, never silently leave a path ungated. Fresh-only
/// metrics are ignored (an experiment may grow new rows).
pub fn regressions(baseline: &BenchReport, fresh: &BenchReport, tolerance: f64) -> Vec<Regression> {
    baseline
        .metrics
        .iter()
        .filter(|(k, _)| k.ends_with("_per_sec"))
        .map(|(key, base)| Regression {
            key: key.clone(),
            baseline: *base,
            fresh: fresh.metric(key).unwrap_or(0.0),
        })
        .filter(|r| r.fresh < r.baseline * (1.0 - tolerance))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("net", true);
        r.push("sessions", 64.0);
        r.push("serial_wall_ms", 152.25);
        r.push("serial_sessions_per_sec", 420.5);
        r.push("shards4_sessions_per_sec", 1300.0);
        r
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let text = report.to_json();
        assert_eq!(BenchReport::parse(&text).expect("parses"), report);
    }

    #[test]
    fn parse_rejects_non_numeric_metrics() {
        let text = "{\n\"bench\": \"net\",\n\"quick\": false,\n\"metrics\": {\n\"x\": oops\n}\n}";
        assert!(BenchReport::parse(text).is_err());
    }

    #[test]
    fn parse_requires_header_fields() {
        assert!(BenchReport::parse("{\n\"quick\": true\n}").is_err());
        assert!(BenchReport::parse("{\n\"bench\": \"x\"\n}").is_err());
    }

    #[test]
    fn regressions_gate_only_per_sec_drops() {
        let baseline = sample();
        let mut fresh = sample();
        // Wall time exploding alone is not gated…
        fresh.metrics[1].1 = 1e6;
        assert!(regressions(&baseline, &fresh, 0.3).is_empty());
        // …a small throughput dip within tolerance passes…
        fresh.metrics[2].1 = 420.5 * 0.8;
        assert!(regressions(&baseline, &fresh, 0.3).is_empty());
        // …a drop past the tolerance is flagged.
        fresh.metrics[2].1 = 420.5 * 0.5;
        let regs = regressions(&baseline, &fresh, 0.3);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "serial_sessions_per_sec");
        assert!((regs[0].drop_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn disjoint_metric_sets_fail_loudly() {
        let baseline = sample();
        let mut fresh = BenchReport::new("net", true);
        fresh.push("renamed_sessions_per_sec", 9e9);
        let regs = regressions(&baseline, &fresh, 0.3);
        assert_eq!(regs.len(), 2, "every baseline throughput is flagged");
    }

    #[test]
    fn single_missing_throughput_key_is_flagged() {
        // One renamed/dropped key must fail even when other throughput
        // keys still match — a partial overlap is not a pass.
        let baseline = sample();
        let mut fresh = sample();
        fresh
            .metrics
            .retain(|(k, _)| k != "shards4_sessions_per_sec");
        let regs = regressions(&baseline, &fresh, 0.3);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "shards4_sessions_per_sec");
        assert_eq!(regs[0].fresh, 0.0);
    }

    fn latency_sample() -> BenchReport {
        let mut r = BenchReport::new("net", false);
        r.push("load_r100_s4_offered_per_sec", 100.0);
        r.push("load_r100_s4_p50_ms", 8.0);
        r.push("load_r100_s4_p99_ms", 40.0);
        r.push("load_r100_s4_max_ms", 55.0);
        r.push("load_r100_s4_inject_lag_ms", 0.2); // not a gated key
        r
    }

    #[test]
    fn latency_keys_are_classified_by_suffix() {
        assert!(is_latency_key("load_r100_s4_p50_ms"));
        assert!(is_latency_key("load_r100_s4_max_ms"));
        assert!(!is_latency_key("load_r100_s4_inject_lag_ms"));
        assert!(!is_latency_key("serial_wall_ms"));
        assert!(is_tail_latency_key("load_r100_s4_p99_ms"));
        assert!(!is_tail_latency_key("load_r100_s4_p50_ms"));
    }

    #[test]
    fn latency_gate_flags_increases_not_decreases() {
        let baseline = latency_sample();
        let mut fresh = latency_sample();
        // Identical (the round-trip self-compare) passes.
        assert!(latency_regressions(&baseline, &fresh, 1.0, 3.0).is_empty());
        // A large improvement passes.
        fresh.metrics[1].1 = 1.0;
        assert!(latency_regressions(&baseline, &fresh, 1.0, 3.0).is_empty());
        // Body percentile past its tolerance is flagged.
        fresh.metrics[1].1 = 8.0 * 2.5;
        let regs = latency_regressions(&baseline, &fresh, 1.0, 3.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "load_r100_s4_p50_ms");
        assert!((regs[0].increase_fraction() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn tail_percentiles_use_the_looser_tolerance() {
        let baseline = latency_sample();
        let mut fresh = latency_sample();
        // 3x on p99 is within the 300% tail tolerance…
        fresh.metrics[2].1 = 40.0 * 3.5;
        assert!(latency_regressions(&baseline, &fresh, 1.0, 3.0).is_empty());
        // …but past it flags; the same ratio on a body key would have
        // flagged at the tighter body tolerance already.
        fresh.metrics[2].1 = 40.0 * 4.5;
        let regs = latency_regressions(&baseline, &fresh, 1.0, 3.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "load_r100_s4_p99_ms");
    }

    #[test]
    fn sub_millisecond_jitter_never_gates() {
        let mut baseline = latency_sample();
        baseline.metrics[1].1 = 0.3; // p50 of 0.3 ms
        let mut fresh = latency_sample();
        fresh.metrics[1].1 = 0.9; // 3x, but only +0.6 ms
        assert!(latency_regressions(&baseline, &fresh, 1.0, 3.0).is_empty());
        fresh.metrics[1].1 = 2.5; // past the 1 ms absolute floor too
        assert_eq!(latency_regressions(&baseline, &fresh, 1.0, 3.0).len(), 1);
    }

    #[test]
    fn missing_latency_key_is_flagged_as_infinite() {
        let baseline = latency_sample();
        let mut fresh = latency_sample();
        fresh.metrics.retain(|(k, _)| k != "load_r100_s4_max_ms");
        let regs = latency_regressions(&baseline, &fresh, 1.0, 3.0);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "load_r100_s4_max_ms");
        assert!(regs[0].fresh.is_infinite());
    }

    #[test]
    fn churn_key_family_is_gated_by_the_standard_suffixes() {
        // The C1 experiment's keys ride the same suffix-driven gates as
        // the N1/L1 families: `_rounds_per_sec` is a throughput key,
        // `_round_p50_ms`/`_round_max_ms` are latency keys, and the
        // informational keys (`_round_bits`, `_flat_time_ratio`) gate
        // nothing.
        let mut baseline = BenchReport::new("net", false);
        baseline.push("churn_n4096_c32_rounds_per_sec", 9000.0);
        baseline.push("churn_n4096_c32_round_p50_ms", 5.0);
        baseline.push("churn_n4096_c32_round_max_ms", 9.0);
        baseline.push("churn_n4096_c32_round_bits", 13731.0);
        baseline.push("churn_flat_time_ratio", 1.1);

        let mut fresh = baseline.clone();
        assert!(regressions(&baseline, &fresh, 0.3).is_empty());
        assert!(latency_regressions(&baseline, &fresh, 1.0, 3.0).is_empty());

        fresh.metrics[0].1 = 9000.0 * 0.5; // throughput halved
        fresh.metrics[1].1 = 5.0 * 2.5; // body latency past 100%
        fresh.metrics[2].1 = 9.0 * 4.5; // tail latency past 300%
        fresh.metrics[3].1 = 1e9; // bits are informational
        fresh.metrics[4].1 = 50.0; // so is the flatness ratio
        let throughput = regressions(&baseline, &fresh, 0.3);
        assert_eq!(throughput.len(), 1);
        assert_eq!(throughput[0].key, "churn_n4096_c32_rounds_per_sec");
        let latency = latency_regressions(&baseline, &fresh, 1.0, 3.0);
        let keys: Vec<&str> = latency.iter().map(|r| r.key.as_str()).collect();
        assert_eq!(
            keys,
            [
                "churn_n4096_c32_round_p50_ms",
                "churn_n4096_c32_round_max_ms"
            ]
        );
    }

    #[test]
    fn success_rates_gate_with_zero_downward_tolerance() {
        let mut baseline = BenchReport::new("iblt", true);
        baseline.push("iblt_threshold_q3_l80_hybrid_success_rate", 0.85);
        baseline.push("iblt_decode_hybrid_keys_per_sec", 1e6); // not this gate
        let mut fresh = baseline.clone();
        // Identical passes; so does an improvement.
        assert!(success_regressions(&baseline, &fresh).is_empty());
        fresh.metrics[0].1 = 0.90;
        assert!(success_regressions(&baseline, &fresh).is_empty());
        // Any decrease flags — no tolerance band.
        fresh.metrics[0].1 = 0.8499;
        let regs = success_regressions(&baseline, &fresh);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "iblt_threshold_q3_l80_hybrid_success_rate");
        // A dropped key fails loudly.
        fresh.metrics.retain(|(k, _)| !k.ends_with("_success_rate"));
        let regs = success_regressions(&baseline, &fresh);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].fresh.is_infinite());
    }

    #[test]
    fn thread_counts_gate_with_zero_tolerance() {
        let mut baseline = BenchReport::new("net", true);
        baseline.push("sweep_c16_s64_sessions_per_sec", 400.0);
        baseline.push("sweep_c16_s64_threads", 11.0);
        let mut fresh = baseline.clone();
        // Identical passes; so does a decrease.
        assert!(thread_regressions(&baseline, &fresh).is_empty());
        fresh.metrics[1].1 = 9.0;
        assert!(thread_regressions(&baseline, &fresh).is_empty());
        // Even one extra thread flags — no tolerance band.
        fresh.metrics[1].1 = 12.0;
        let regs = thread_regressions(&baseline, &fresh);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "sweep_c16_s64_threads");
        // A dropped key fails loudly as infinite.
        fresh.metrics.retain(|(k, _)| k != "sweep_c16_s64_threads");
        let regs = thread_regressions(&baseline, &fresh);
        assert_eq!(regs.len(), 1);
        assert!(regs[0].fresh.is_infinite());
    }

    #[test]
    fn improvements_never_flag() {
        let baseline = sample();
        let mut fresh = sample();
        fresh.metrics[2].1 *= 10.0;
        fresh.metrics[3].1 *= 10.0;
        assert!(regressions(&baseline, &fresh, 0.3).is_empty());
    }
}
