//! Machine-readable benchmark reports: the `BENCH_*.json` format.
//!
//! Experiments that measure throughput emit a [`BenchReport`] next to
//! their markdown table when run with `--json`. The schema is flat by
//! design — one metrics object of `"key": number` pairs — so CI can
//! compare a fresh run against the committed baseline without a JSON
//! library on either side:
//!
//! ```json
//! {
//!   "bench": "net",
//!   "quick": true,
//!   "metrics": {
//!     "sessions": 64,
//!     "serial_wall_ms": 152.1,
//!     "serial_sessions_per_sec": 420.7
//!   }
//! }
//! ```
//!
//! Keys ending in `_per_sec` are throughputs: [`regressions`] flags any
//! of them that dropped by more than the tolerance against a baseline
//! (slower wall times follow from lower throughput, so only the rates
//! are gated). The emitter writes one key per line and the parser reads
//! exactly that shape — this module is the single owner of both sides.

use std::fmt::Write as _;

/// One experiment's machine-readable results.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Which experiment produced this (e.g. `"net"`).
    pub bench: String,
    /// Whether the reduced-trial `--quick` mode produced it; baselines
    /// and fresh runs must agree on this or the numbers are not
    /// comparable.
    pub quick: bool,
    /// `(key, value)` metrics in emission order.
    pub metrics: Vec<(String, f64)>,
}

impl BenchReport {
    /// An empty report for `bench`.
    pub fn new(bench: impl Into<String>, quick: bool) -> BenchReport {
        BenchReport {
            bench: bench.into(),
            quick,
            metrics: Vec::new(),
        }
    }

    /// Appends a metric. Keys must be unique; the parser keeps the first.
    pub fn push(&mut self, key: impl Into<String>, value: f64) {
        self.metrics.push((key.into(), value));
    }

    /// Looks a metric up by key.
    pub fn metric(&self, key: &str) -> Option<f64> {
        self.metrics.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Renders the report as the canonical one-key-per-line JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"{}\",", self.bench);
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(out, "  \"metrics\": {{");
        for (i, (key, value)) in self.metrics.iter().enumerate() {
            let comma = if i + 1 < self.metrics.len() { "," } else { "" };
            let _ = writeln!(out, "    \"{key}\": {value}{comma}");
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses the canonical format back. Tolerates whitespace and key
    /// order but not structural deviations; unknown non-numeric values
    /// are an error so a corrupted baseline fails loudly.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let mut bench: Option<String> = None;
        let mut quick: Option<bool> = None;
        let mut metrics: Vec<(String, f64)> = Vec::new();
        for line in text.lines() {
            let line = line.trim().trim_end_matches(',');
            let Some(rest) = line.strip_prefix('"') else {
                continue; // braces and blank lines
            };
            let Some((key, rest)) = rest.split_once('"') else {
                return Err(format!("unterminated key on line: {line}"));
            };
            let Some(value) = rest.trim_start().strip_prefix(':') else {
                return Err(format!("missing ':' after key {key:?}"));
            };
            let value = value.trim();
            match key {
                "bench" => {
                    bench = Some(
                        value
                            .strip_prefix('"')
                            .and_then(|v| v.strip_suffix('"'))
                            .ok_or_else(|| format!("bench value is not a string: {value}"))?
                            .to_owned(),
                    );
                }
                "quick" => match value {
                    "true" => quick = Some(true),
                    "false" => quick = Some(false),
                    other => return Err(format!("quick value is not a bool: {other}")),
                },
                "metrics" => {} // the opening brace of the metrics object
                key => {
                    let parsed: f64 = value
                        .parse()
                        .map_err(|_| format!("metric {key:?} is not a number: {value}"))?;
                    if !metrics.iter().any(|(k, _)| k == key) {
                        metrics.push((key.to_owned(), parsed));
                    }
                }
            }
        }
        Ok(BenchReport {
            bench: bench.ok_or("missing \"bench\" field")?,
            quick: quick.ok_or("missing \"quick\" field")?,
            metrics,
        })
    }
}

/// One throughput metric that fell below the tolerated floor.
#[derive(Clone, Debug)]
pub struct Regression {
    /// The metric key.
    pub key: String,
    /// The committed baseline value.
    pub baseline: f64,
    /// The fresh measurement.
    pub fresh: f64,
}

impl Regression {
    /// Fractional drop, e.g. `0.42` for a 42% slowdown.
    pub fn drop_fraction(&self) -> f64 {
        1.0 - self.fresh / self.baseline
    }
}

/// Compares every baseline `_per_sec` metric against the fresh report
/// and returns those where `fresh < baseline * (1 - tolerance)`. A
/// baseline throughput key *missing* from the fresh report is treated
/// as `fresh = 0` and always flagged — a renamed or dropped metric must
/// fail CI loudly, never silently leave a path ungated. Fresh-only
/// metrics are ignored (an experiment may grow new rows).
pub fn regressions(baseline: &BenchReport, fresh: &BenchReport, tolerance: f64) -> Vec<Regression> {
    baseline
        .metrics
        .iter()
        .filter(|(k, _)| k.ends_with("_per_sec"))
        .map(|(key, base)| Regression {
            key: key.clone(),
            baseline: *base,
            fresh: fresh.metric(key).unwrap_or(0.0),
        })
        .filter(|r| r.fresh < r.baseline * (1.0 - tolerance))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut r = BenchReport::new("net", true);
        r.push("sessions", 64.0);
        r.push("serial_wall_ms", 152.25);
        r.push("serial_sessions_per_sec", 420.5);
        r.push("shards4_sessions_per_sec", 1300.0);
        r
    }

    #[test]
    fn json_round_trips() {
        let report = sample();
        let text = report.to_json();
        assert_eq!(BenchReport::parse(&text).expect("parses"), report);
    }

    #[test]
    fn parse_rejects_non_numeric_metrics() {
        let text = "{\n\"bench\": \"net\",\n\"quick\": false,\n\"metrics\": {\n\"x\": oops\n}\n}";
        assert!(BenchReport::parse(text).is_err());
    }

    #[test]
    fn parse_requires_header_fields() {
        assert!(BenchReport::parse("{\n\"quick\": true\n}").is_err());
        assert!(BenchReport::parse("{\n\"bench\": \"x\"\n}").is_err());
    }

    #[test]
    fn regressions_gate_only_per_sec_drops() {
        let baseline = sample();
        let mut fresh = sample();
        // Wall time exploding alone is not gated…
        fresh.metrics[1].1 = 1e6;
        assert!(regressions(&baseline, &fresh, 0.3).is_empty());
        // …a small throughput dip within tolerance passes…
        fresh.metrics[2].1 = 420.5 * 0.8;
        assert!(regressions(&baseline, &fresh, 0.3).is_empty());
        // …a drop past the tolerance is flagged.
        fresh.metrics[2].1 = 420.5 * 0.5;
        let regs = regressions(&baseline, &fresh, 0.3);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "serial_sessions_per_sec");
        assert!((regs[0].drop_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn disjoint_metric_sets_fail_loudly() {
        let baseline = sample();
        let mut fresh = BenchReport::new("net", true);
        fresh.push("renamed_sessions_per_sec", 9e9);
        let regs = regressions(&baseline, &fresh, 0.3);
        assert_eq!(regs.len(), 2, "every baseline throughput is flagged");
    }

    #[test]
    fn single_missing_throughput_key_is_flagged() {
        // One renamed/dropped key must fail even when other throughput
        // keys still match — a partial overlap is not a pass.
        let baseline = sample();
        let mut fresh = sample();
        fresh
            .metrics
            .retain(|(k, _)| k != "shards4_sessions_per_sec");
        let regs = regressions(&baseline, &fresh, 0.3);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].key, "shards4_sessions_per_sec");
        assert_eq!(regs[0].fresh, 0.0);
    }

    #[test]
    fn improvements_never_flag() {
        let baseline = sample();
        let mut fresh = sample();
        fresh.metrics[2].1 *= 10.0;
        fresh.metrics[3].1 *= 10.0;
        assert!(regressions(&baseline, &fresh, 0.3).is_empty());
    }
}
