//! Regenerates the `lower_bound` experiment table (see DESIGN.md index).
//! Pass `--quick` for a reduced-trial smoke run.

fn main() {
    println!(
        "{}",
        rsr_bench::experiments::lower_bound::run(rsr_bench::quick_flag())
    );
}
