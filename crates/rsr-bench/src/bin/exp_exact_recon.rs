//! Regenerates the `exact_recon` experiment table (see DESIGN.md index).
//! Pass `--quick` for a reduced-trial smoke run.

fn main() {
    println!(
        "{}",
        rsr_bench::experiments::exact_recon::run(rsr_bench::quick_flag())
    );
}
