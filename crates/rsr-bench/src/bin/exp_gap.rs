//! Regenerates the `gap` experiment table (see DESIGN.md index).
//! Pass `--quick` for a reduced-trial smoke run.

fn main() {
    println!(
        "{}",
        rsr_bench::experiments::gap::run(rsr_bench::quick_flag())
    );
}
