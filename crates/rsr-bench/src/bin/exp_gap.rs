//! Regenerates the T7 Gap-protocol table. Pass `--quick` for a
//! reduced-trial smoke run; `--json` additionally writes
//! `BENCH_gap.json` (`--json-out PATH` to redirect it) — the
//! machine-readable report CI gates against the committed baseline
//! (schema and key inventory in docs/benchmarks.md).

fn main() {
    let quick = rsr_bench::quick_flag();
    match rsr_bench::json_out("BENCH_gap.json") {
        Some(path) => {
            let (report, bench) = rsr_bench::experiments::gap::run_with_json(quick);
            std::fs::write(&path, bench.to_json())
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            eprintln!("wrote {}", path.display());
            println!("{report}");
        }
        None => println!("{}", rsr_bench::experiments::gap::run(quick)),
    }
}
