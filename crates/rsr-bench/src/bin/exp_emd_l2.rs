//! Regenerates the `emd_l2` experiment table (see DESIGN.md index).
//! Pass `--quick` for a reduced-trial smoke run.

fn main() {
    println!(
        "{}",
        rsr_bench::experiments::emd_l2::run(rsr_bench::quick_flag())
    );
}
