//! Regenerates the `emd_hamming` experiment table (see DESIGN.md index).
//! Pass `--quick` for a reduced-trial smoke run.

fn main() {
    println!(
        "{}",
        rsr_bench::experiments::emd_hamming::run(rsr_bench::quick_flag())
    );
}
