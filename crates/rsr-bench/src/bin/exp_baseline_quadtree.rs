//! Regenerates the `baseline_quadtree` experiment table (see DESIGN.md index).
//! Pass `--quick` for a reduced-trial smoke run.

fn main() {
    println!(
        "{}",
        rsr_bench::experiments::baseline_quadtree::run(rsr_bench::quick_flag())
    );
}
