//! Regenerates the `mlsh_collision` experiment table (see DESIGN.md index).
//! Pass `--quick` for a reduced-trial smoke run.

fn main() {
    println!(
        "{}",
        rsr_bench::experiments::mlsh_collision::run(rsr_bench::quick_flag())
    );
}
