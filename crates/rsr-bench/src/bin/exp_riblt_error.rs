//! Regenerates the `riblt_error` experiment table (see DESIGN.md index).
//! Pass `--quick` for a reduced-trial smoke run.

fn main() {
    println!(
        "{}",
        rsr_bench::experiments::riblt_error::run(rsr_bench::quick_flag())
    );
}
