//! Regenerates the `emd_ratio` experiment table (see DESIGN.md index).
//! Pass `--quick` for a reduced-trial smoke run.

fn main() {
    println!(
        "{}",
        rsr_bench::experiments::emd_ratio::run(rsr_bench::quick_flag())
    );
}
