//! Regenerates the `gap_lowdim` experiment table (see DESIGN.md index).
//! Pass `--quick` for a reduced-trial smoke run.

fn main() {
    println!(
        "{}",
        rsr_bench::experiments::gap_lowdim::run(rsr_bench::quick_flag())
    );
}
