//! Gates a metrics snapshot in CI: every named key must be present in
//! the snapshot JSON **and non-zero**.
//!
//! ```text
//! obs_check <snapshot.json> <key> [key...]
//! ```
//!
//! The snapshot is the flat object `exp_net --metrics-out` writes (one
//! `"key": value` pair per line — [`rsr_obs::MetricsSnapshot::to_json`]).
//! A key that is present but zero fails just like a missing one: the
//! smoke run drives real traffic, so a zero poll count or byte counter
//! means the instrumentation came unwired, not that nothing happened.
//! Key inventory and semantics: docs/observability.md.

use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path, keys @ ..] = args.as_slice() else {
        usage("expected a snapshot path");
    };
    if keys.is_empty() {
        usage("expected at least one key to check");
    }

    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("obs_check: cannot read {path}: {e}");
        exit(1)
    });
    let entries = parse_flat_object(&text).unwrap_or_else(|e| {
        eprintln!("obs_check: cannot parse {path}: {e}");
        exit(1)
    });

    let mut failures = 0;
    for key in keys {
        match entries.iter().find(|(k, _)| k == key) {
            None => {
                eprintln!("obs_check: {path}: key {key:?} missing from snapshot");
                failures += 1;
            }
            Some((_, v)) if *v == 0.0 => {
                eprintln!("obs_check: {path}: key {key:?} is zero (instrumentation unwired?)");
                failures += 1;
            }
            Some((_, v)) => println!("  {key}: {v}"),
        }
    }
    if failures > 0 {
        eprintln!(
            "obs_check: {failures} of {} required keys failed in {path}",
            keys.len()
        );
        exit(1);
    }
    println!(
        "ok: all {} required keys present and non-zero in {path}",
        keys.len()
    );
}

/// Parses the one-pair-per-line flat JSON object the snapshot writer
/// emits. Structural deviations are errors — a truncated file must not
/// pass as "keys missing, but parseable".
fn parse_flat_object(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue; // braces and blank lines
        };
        let Some((key, rest)) = rest.split_once('"') else {
            return Err(format!("unterminated key on line: {line}"));
        };
        let Some(value) = rest.trim_start().strip_prefix(':') else {
            return Err(format!("missing ':' after key {key:?}"));
        };
        let value: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("key {key:?} has a non-numeric value: {}", value.trim()))?;
        entries.push((key.to_owned(), value));
    }
    if entries.is_empty() {
        return Err("no key/value pairs found".into());
    }
    Ok(entries)
}

fn usage(what: &str) -> ! {
    eprintln!("obs_check: {what}");
    eprintln!("usage: obs_check <snapshot.json> <key> [key...]");
    exit(2)
}
