//! Regenerates the C1 continuous-reconciliation-under-churn table: a
//! base set and its 4× growth driven through incremental rounds at a
//! fixed churn rate, every round asserted bit-for-bit against a
//! from-scratch reconciliation, plus a TCP replay of the same trace
//! over `OPEN`/`ROUND` records. Pass `--quick` for the CI smoke grid;
//! `--json` writes a standalone `BENCH_churn.json` (`--json-out PATH`
//! to redirect). The *gated* copy of these keys lives in
//! `BENCH_net.json`, which `exp_net --json` regenerates whole.

use rsr_bench::experiments::churn;
use rsr_bench::BenchReport;

fn main() {
    let quick = rsr_bench::quick_flag();
    let mut bench = BenchReport::new("churn", quick);
    let report = churn::extend(&mut bench, quick);
    match rsr_bench::json_out("BENCH_churn.json") {
        Some(path) => {
            std::fs::write(&path, bench.to_json())
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            eprintln!("wrote {}", path.display());
            println!("{report}");
        }
        None => println!("{report}"),
    }
}
