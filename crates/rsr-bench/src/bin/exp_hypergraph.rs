//! Regenerates the `hypergraph` experiment table (see DESIGN.md index).
//! Pass `--quick` for a reduced-trial smoke run.

fn main() {
    println!(
        "{}",
        rsr_bench::experiments::hypergraph::run(rsr_bench::quick_flag())
    );
}
