//! Regenerates the P1 assignment-solver table (Hungarian vs ε-scaling
//! auction vs greedy across the EMD hot paths). Pass `--quick` for a
//! reduced-size smoke run; `--json` additionally writes `BENCH_emd.json`
//! (`--json-out PATH` to redirect it) — the machine-readable report CI
//! gates against the committed baseline (see docs/benchmarks.md).

fn main() {
    let quick = rsr_bench::quick_flag();
    match rsr_bench::json_out("BENCH_emd.json") {
        Some(path) => {
            let (report, bench) = rsr_bench::experiments::emd_solvers::run_with_json(quick);
            std::fs::write(&path, bench.to_json())
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            eprintln!("wrote {}", path.display());
            println!("{report}");
        }
        None => println!("{}", rsr_bench::experiments::emd_solvers::run(quick)),
    }
}
