//! Regenerates the N1 session-throughput table (serial driver vs the
//! sharded executor sweep vs executor-driven TCP). Pass `--quick` for a
//! reduced-trial smoke run; `--json` additionally writes
//! `BENCH_net.json` (`--json-out PATH` to redirect it) — the
//! machine-readable report CI gates against the committed baseline
//! (schema and key inventory in docs/benchmarks.md).

fn main() {
    let quick = rsr_bench::quick_flag();
    match rsr_bench::json_out("BENCH_net.json") {
        Some(path) => {
            let (report, bench) = rsr_bench::experiments::net::run_with_json(quick);
            std::fs::write(&path, bench.to_json())
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            eprintln!("wrote {}", path.display());
            println!("{report}");
        }
        None => println!("{}", rsr_bench::experiments::net::run(quick)),
    }
}
