//! Regenerates the N1 session-throughput table (serial driver vs the
//! sharded executor sweep vs executor-driven TCP) and, with `--load`,
//! the L1 open-loop latency sweep on top of it. Pass `--quick` for a
//! reduced-trial smoke run; `--json` additionally writes
//! `BENCH_net.json` (`--json-out PATH` to redirect it) — the
//! machine-readable report CI gates against the committed baseline
//! (schema and key inventory in docs/benchmarks.md; latency methodology
//! in docs/loadgen.md).
//!
//! `--metrics-out PATH` turns on the `rsr-obs` registry for the whole
//! run, measures the recording overhead in-bin on the single-connection
//! sweep cell (asserting it stays within the budget), and writes the
//! final [`MetricsSnapshot`](rsr_obs::MetricsSnapshot) JSON to `PATH`
//! (rewritten once a second while running). Key inventory in
//! docs/observability.md.
//!
//! Load-mode sweep overrides (all optional; defaults are the committed
//! baseline's grid):
//!
//! ```text
//! exp_net --load [--rate 100,300] [--arrival uniform|exp]
//!         [--load-sessions 160] [--load-shards 1,4] [--conns 2]
//!         [--payload-scale 2.0]
//! ```

use rsr_bench::experiments::churn;
use rsr_bench::experiments::load::{self, LoadOptions};
use rsr_bench::experiments::net;
use rsr_bench::Arrival;
use std::path::PathBuf;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wants_load = args.iter().any(|a| a == "--load");
    let opts = parse_load_options(&args);
    if !wants_load && !opts_empty(&opts) {
        die("load sweep flags (--rate/--arrival/--load-sessions/--load-shards/--conns/--payload-scale) require --load");
    }
    let metrics_out = parse_metrics_out(&args);

    // With --metrics-out the rsr-obs registry records for the whole run
    // and a periodic reporter rewrites the snapshot file once a second —
    // a crash still leaves the last-written internals on disk. The
    // reporter is exactly one extra thread for the whole run, so the
    // sweep's flat-threads assertion sees a constant.
    let reporter = metrics_out.as_ref().map(|path| {
        rsr_obs::set_enabled(true);
        rsr_obs::Reporter::to_file(path.clone(), Duration::from_secs(1))
    });

    let quick = rsr_bench::quick_flag();
    let (mut report, mut bench) = net::run_with_json_metrics(quick, metrics_out.is_some());
    if wants_load {
        let section = load::extend(&mut bench, quick, &opts);
        report.push_str("\n\n");
        report.push_str(&section);
    }
    // The continuous-reconciliation sweep always rides along, so one
    // `exp_net --load --json` run regenerates every gated key family
    // (N1 + L1 + C1) in the committed BENCH_net.json.
    let section = churn::extend(&mut bench, quick);
    report.push_str("\n\n");
    report.push_str(&section);
    if let Some(path) = &metrics_out {
        // Stop the reporter first so its final write cannot race ours,
        // then write the end-of-run snapshot loudly — an unwritable
        // path should fail the run, not pass silently.
        drop(reporter);
        std::fs::write(path, rsr_obs::global().snapshot().to_json())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("wrote {}", path.display());
    }
    match rsr_bench::json_out("BENCH_net.json") {
        Some(path) => {
            std::fs::write(&path, bench.to_json())
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            eprintln!("wrote {}", path.display());
            println!("{report}");
        }
        None => println!("{report}"),
    }
}

fn parse_metrics_out(args: &[String]) -> Option<PathBuf> {
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--metrics-out" {
            return Some(PathBuf::from(
                it.next()
                    .unwrap_or_else(|| die("--metrics-out requires a path")),
            ));
        }
    }
    None
}

fn opts_empty(opts: &LoadOptions) -> bool {
    opts.rates.is_none()
        && opts.arrival.is_none()
        && opts.sessions.is_none()
        && opts.shards.is_none()
        && opts.conns.is_none()
        && opts.payload_scale.is_none()
}

fn parse_load_options(args: &[String]) -> LoadOptions {
    let mut opts = LoadOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> &str {
            it.next()
                .unwrap_or_else(|| die(&format!("{what} requires a value")))
        };
        match arg.as_str() {
            "--rate" => opts.rates = Some(parse_list(value("--rate"), "--rate", |r| *r > 0.0)),
            "--arrival" => {
                let token = value("--arrival");
                opts.arrival = Some(Arrival::parse(token).unwrap_or_else(|| {
                    die(&format!(
                        "--arrival {token:?} is not uniform|exp|exponential|poisson"
                    ))
                }));
            }
            "--load-sessions" => {
                opts.sessions = Some(parse_one(
                    value("--load-sessions"),
                    "--load-sessions",
                    |n| *n > 0usize,
                ));
            }
            "--load-shards" => {
                opts.shards = Some(parse_list(value("--load-shards"), "--load-shards", |s| {
                    *s >= 1usize
                }));
            }
            "--conns" => {
                opts.conns = Some(parse_one(value("--conns"), "--conns", |c| *c >= 1usize))
            }
            "--payload-scale" => {
                opts.payload_scale = Some(parse_one(
                    value("--payload-scale"),
                    "--payload-scale",
                    |s| *s > 0.0,
                ));
            }
            _ => {}
        }
    }
    opts
}

fn parse_one<T: std::str::FromStr>(raw: &str, what: &str, ok: impl Fn(&T) -> bool) -> T {
    raw.parse()
        .ok()
        .filter(&ok)
        .unwrap_or_else(|| die(&format!("{what} cannot use {raw:?}")))
}

fn parse_list<T: std::str::FromStr>(raw: &str, what: &str, ok: impl Fn(&T) -> bool) -> Vec<T> {
    let parsed: Vec<T> = raw
        .split(',')
        .map(|tok| parse_one(tok.trim(), what, &ok))
        .collect();
    if parsed.is_empty() {
        die(&format!("{what} needs at least one value"));
    }
    parsed
}

fn die(msg: &str) -> ! {
    eprintln!("exp_net: {msg}");
    std::process::exit(2)
}
