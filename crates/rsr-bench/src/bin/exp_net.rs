//! Regenerates the `net` experiment table (see DESIGN.md index).
//! Pass `--quick` for a reduced-trial smoke run.

fn main() {
    println!(
        "{}",
        rsr_bench::experiments::net::run(rsr_bench::quick_flag())
    );
}
