//! Regenerates the `ablation_dsbf` ablation table (see DESIGN.md / EXPERIMENTS.md).
//! Pass `--quick` for a reduced-trial smoke run.

fn main() {
    println!(
        "{}",
        rsr_bench::experiments::ablation_dsbf::run(rsr_bench::quick_flag())
    );
}
