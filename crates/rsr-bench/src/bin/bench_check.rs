//! Gates a fresh `BENCH_*.json` against a committed baseline.
//!
//! ```text
//! bench_check <baseline.json> <fresh.json> [--tolerance 0.30]
//! ```
//!
//! Exits non-zero if any shared `_per_sec` metric in the fresh run is
//! more than the tolerance below the baseline (default 30%), if the two
//! files describe different benches or modes, or if either file fails
//! to parse. Improvements and non-throughput metrics never fail the
//! check; a baseline whose throughput keys are all missing from the
//! fresh run fails loudly (a silent rename must not pass as green).

use rsr_bench::{regressions, BenchReport};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.30f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tolerance" {
            tolerance = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage("--tolerance takes a fraction like 0.30"));
        } else {
            paths.push(arg.clone());
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        usage("expected exactly two file arguments");
    };

    let baseline = load(baseline_path);
    let fresh = load(fresh_path);
    if baseline.bench != fresh.bench {
        eprintln!(
            "bench_check: comparing different benches: baseline {:?} vs fresh {:?}",
            baseline.bench, fresh.bench
        );
        exit(1);
    }
    if baseline.quick != fresh.quick {
        eprintln!(
            "bench_check: mode mismatch: baseline quick={} vs fresh quick={}",
            baseline.quick, fresh.quick
        );
        exit(1);
    }

    println!(
        "bench {} ({} mode), tolerance {:.0}%:",
        baseline.bench,
        if baseline.quick { "quick" } else { "full" },
        tolerance * 100.0
    );
    for (key, base) in &baseline.metrics {
        match fresh.metric(key) {
            Some(now) => println!("  {key}: baseline {base:.3} -> fresh {now:.3}"),
            None => println!("  {key}: baseline {base:.3} -> (absent)"),
        }
    }

    let regs = regressions(&baseline, &fresh, tolerance);
    if regs.is_empty() {
        println!(
            "ok: no throughput regression beyond {:.0}%",
            tolerance * 100.0
        );
        return;
    }
    for r in &regs {
        eprintln!(
            "REGRESSION {}: {:.3} -> {:.3} ({:.0}% drop, tolerance {:.0}%)",
            r.key,
            r.baseline,
            r.fresh,
            r.drop_fraction() * 100.0,
            tolerance * 100.0
        );
    }
    exit(1);
}

fn load(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot read {path}: {e}");
        exit(1)
    });
    BenchReport::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot parse {path}: {e}");
        exit(1)
    })
}

fn usage(what: &str) -> ! {
    eprintln!("bench_check: {what}");
    eprintln!("usage: bench_check <baseline.json> <fresh.json> [--tolerance 0.30]");
    exit(2)
}
