//! Gates a fresh `BENCH_*.json` against a committed baseline.
//!
//! ```text
//! bench_check <baseline.json> <fresh.json> [--tolerance 0.30]
//!             [--latency-tolerance 1.00] [--tail-tolerance 3.00]
//! ```
//!
//! Exits non-zero if any shared `_per_sec` metric in the fresh run is
//! more than the throughput tolerance below the baseline (default 30%),
//! if any shared latency percentile (`_p50_ms`/`_p90_ms`/`_p95_ms`
//! body keys, `_p99_ms`/`_max_ms` tail keys) is above its baseline by
//! more than the latency tolerance (default 100% body, 300% tail, and
//! never for sub-millisecond deltas), if any `_threads` metric increased
//! at all (thread counts are structural — zero tolerance, no flag to
//! loosen it), if any `_success_rate` metric decreased at all (success
//! rates are deterministic — zero downward tolerance, no flag to loosen
//! it), if the two files describe different benches or modes, or
//! if either file fails to parse.
//! Improvements never fail the check; a baseline key missing from the
//! fresh run fails loudly in both gates (a silent rename must not pass
//! as green). Rules and rationale: docs/benchmarks.md.

use rsr_bench::{
    latency_regressions, regressions, success_regressions, thread_regressions, BenchReport,
};
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut tolerance = 0.30f64;
    let mut latency_tolerance = 1.00f64;
    let mut tail_tolerance = 3.00f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut fraction = |what: &str| -> f64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage(&format!("{what} takes a fraction like 0.30")))
        };
        match arg.as_str() {
            "--tolerance" => tolerance = fraction("--tolerance"),
            "--latency-tolerance" => latency_tolerance = fraction("--latency-tolerance"),
            "--tail-tolerance" => tail_tolerance = fraction("--tail-tolerance"),
            _ => paths.push(arg.clone()),
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        usage("expected exactly two file arguments");
    };

    let baseline = load(baseline_path);
    let fresh = load(fresh_path);
    if baseline.bench != fresh.bench {
        eprintln!(
            "bench_check: comparing different benches: baseline {:?} vs fresh {:?}",
            baseline.bench, fresh.bench
        );
        exit(1);
    }
    if baseline.quick != fresh.quick {
        eprintln!(
            "bench_check: mode mismatch: baseline quick={} vs fresh quick={}",
            baseline.quick, fresh.quick
        );
        exit(1);
    }

    println!(
        "bench {} ({} mode), throughput tolerance {:.0}%, latency {:.0}% (tail {:.0}%):",
        baseline.bench,
        if baseline.quick { "quick" } else { "full" },
        tolerance * 100.0,
        latency_tolerance * 100.0,
        tail_tolerance * 100.0
    );
    for (key, base) in &baseline.metrics {
        match fresh.metric(key) {
            Some(now) => println!("  {key}: baseline {base:.3} -> fresh {now:.3}"),
            None => println!("  {key}: baseline {base:.3} -> (absent)"),
        }
    }

    let throughput_regs = regressions(&baseline, &fresh, tolerance);
    let latency_regs = latency_regressions(&baseline, &fresh, latency_tolerance, tail_tolerance);
    let thread_regs = thread_regressions(&baseline, &fresh);
    let success_regs = success_regressions(&baseline, &fresh);
    if throughput_regs.is_empty()
        && latency_regs.is_empty()
        && thread_regs.is_empty()
        && success_regs.is_empty()
    {
        println!(
            "ok: no throughput regression beyond {:.0}%, no latency regression beyond {:.0}% (tail {:.0}%), no thread-count increase, no success-rate decrease",
            tolerance * 100.0,
            latency_tolerance * 100.0,
            tail_tolerance * 100.0
        );
        return;
    }
    // Every regression line names the offending file, the key, and the
    // tolerance class that flagged it, so a CI log line is actionable
    // on its own — no cross-referencing the invocation to find out
    // which report or which rule tripped.
    for r in &throughput_regs {
        eprintln!(
            "REGRESSION {fresh_path}: {} [throughput, tolerance {:.0}% drop]: \
             baseline {:.3} -> fresh {:.3} ({:.0}% drop)",
            r.key,
            tolerance * 100.0,
            r.baseline,
            r.fresh,
            r.drop_fraction() * 100.0,
        );
    }
    for r in &thread_regs {
        if r.fresh.is_infinite() {
            eprintln!(
                "REGRESSION {fresh_path}: {} [threads, zero tolerance]: \
                 baseline {:.0} -> (absent from fresh report)",
                r.key, r.baseline
            );
        } else {
            eprintln!(
                "REGRESSION {fresh_path}: {} [threads, zero tolerance]: \
                 baseline {:.0} -> fresh {:.0} (thread counts must never increase)",
                r.key, r.baseline, r.fresh
            );
        }
    }
    for r in &success_regs {
        if r.fresh.is_infinite() {
            eprintln!(
                "REGRESSION {fresh_path}: {} [success rate, zero tolerance]: \
                 baseline {:.4} -> (absent from fresh report)",
                r.key, r.baseline
            );
        } else {
            eprintln!(
                "REGRESSION {fresh_path}: {} [success rate, zero tolerance]: \
                 baseline {:.4} -> fresh {:.4} (deterministic rates must never decrease)",
                r.key, r.baseline, r.fresh
            );
        }
    }
    for r in &latency_regs {
        let (class, tol) = if rsr_bench::benchjson::is_tail_latency_key(&r.key) {
            ("latency tail", tail_tolerance)
        } else {
            ("latency body", latency_tolerance)
        };
        if r.fresh.is_infinite() {
            eprintln!(
                "REGRESSION {fresh_path}: {} [{class}, tolerance +{:.0}%]: \
                 baseline {:.3} ms -> (absent from fresh report)",
                r.key,
                tol * 100.0,
                r.baseline
            );
        } else {
            eprintln!(
                "REGRESSION {fresh_path}: {} [{class}, tolerance +{:.0}%]: \
                 baseline {:.3} ms -> fresh {:.3} ms (+{:.0}%)",
                r.key,
                tol * 100.0,
                r.baseline,
                r.fresh,
                r.increase_fraction() * 100.0,
            );
        }
    }
    eprintln!(
        "bench_check: {} regression(s) in {fresh_path} vs baseline {baseline_path}",
        throughput_regs.len() + thread_regs.len() + latency_regs.len() + success_regs.len()
    );
    exit(1);
}

fn load(path: &str) -> BenchReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot read {path}: {e}");
        exit(1)
    });
    BenchReport::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_check: cannot parse {path}: {e}");
        exit(1)
    })
}

fn usage(what: &str) -> ! {
    eprintln!("bench_check: {what}");
    eprintln!(
        "usage: bench_check <baseline.json> <fresh.json> [--tolerance 0.30] \
         [--latency-tolerance 1.00] [--tail-tolerance 3.00]"
    );
    exit(2)
}
