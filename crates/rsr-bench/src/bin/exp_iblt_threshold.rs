//! Regenerates the `iblt_threshold` experiment table (see DESIGN.md index).
//! Pass `--quick` for a reduced-trial smoke run.

fn main() {
    println!(
        "{}",
        rsr_bench::experiments::iblt_threshold::run(rsr_bench::quick_flag())
    );
}
