//! Regenerates the T1 IBLT decode-threshold table (peel vs hybrid; see
//! DESIGN.md index). Pass `--quick` for a reduced-trial smoke run;
//! `--json` additionally writes `BENCH_iblt.json` (`--json-out PATH` to
//! redirect it) — the machine-readable report CI gates against the
//! committed baseline with zero downward tolerance on the deterministic
//! `_success_rate` keys (docs/benchmarks.md).

fn main() {
    let quick = rsr_bench::quick_flag();
    let (mut report, mut bench) = rsr_bench::experiments::iblt_threshold::run_with_json(quick);
    let section = rsr_bench::experiments::riblt_error::extend(&mut bench, quick);
    report.push_str("\n\n");
    report.push_str(&section);
    match rsr_bench::json_out("BENCH_iblt.json") {
        Some(path) => {
            std::fs::write(&path, bench.to_json())
                .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
            eprintln!("wrote {}", path.display());
            println!("{report}");
        }
        None => println!("{report}"),
    }
}
