//! Regenerates the `setsofsets` experiment table (see DESIGN.md index).
//! Pass `--quick` for a reduced-trial smoke run.

fn main() {
    println!(
        "{}",
        rsr_bench::experiments::setsofsets::run(rsr_bench::quick_flag())
    );
}
