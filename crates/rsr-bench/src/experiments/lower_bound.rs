//! T9 — Theorem 4.6: one-round protocols fail on index instances.
//!
//! The theorem says no one-round O(n)-bit protocol reaches success 2/3.
//! We measure (a) a natural one-round Bloom-filter straw-man at several
//! bit budgets — its success rate stays below the 2/3 bar until the
//! budget grows well past O(n) — and (b) the four-round Gap protocol,
//! which solves the same instances reliably.

use crate::table::{f, Table};
use rsr_core::gap_protocol::{GapConfig, GapProtocol};
use rsr_core::lower_bound::{one_round_bloom_guess, IndexInstance};
use rsr_hash::lsh::LshParams;
use rsr_hash::BitSamplingFamily;

/// Runs the experiment.
pub fn run(quick: bool) -> String {
    let trials = if quick { 40 } else { 200 };
    let r2 = 8;
    let mut table = Table::new(&["n", "protocol", "bits budget", "success rate", "2/3 bar"]);
    let ns: &[usize] = if quick { &[24] } else { &[16, 24, 32, 48] };
    for &n in ns {
        // One-round straw-man at budgets ~n, 2n, 4n bits.
        for mult in [1usize, 2, 4] {
            let budget = mult * n;
            let mut ok = 0usize;
            for t in 0..trials {
                let inst = IndexInstance::build(n, r2, 0x1_0000 + t as u64).expect("feasible");
                if one_round_bloom_guess(&inst, budget, 0x2_0000 + t as u64) {
                    ok += 1;
                }
            }
            table.row(vec![
                n.to_string(),
                "1-round Bloom".into(),
                budget.to_string(),
                f(ok as f64 / trials as f64),
                "0.667".into(),
            ]);
        }
        // Four-round Gap protocol on the same instances.
        let proto_trials = if quick { 8 } else { 25 };
        let mut ok = 0usize;
        let mut bits = 0u64;
        for t in 0..proto_trials {
            let inst = IndexInstance::build(n, r2, 0x1_0000 + t as u64).expect("feasible");
            let dim = inst.space.dim();
            let fam = BitSamplingFamily::new(dim, dim as f64);
            let params = LshParams::new(
                1.0,
                r2 as f64,
                1.0 - 1.0 / dim as f64,
                1.0 - r2 as f64 / dim as f64,
            );
            let cfg = GapConfig::for_params(params, n, 1);
            let proto = GapProtocol::new(inst.space, &fam, cfg, 0x3_0000 + t as u64);
            let Ok(out) = proto.run(&inst.alice, &inst.bob) else {
                continue;
            };
            bits = out.transcript.total_bits();
            if inst.extract_answer(&out.reconciled) == Some(inst.x[inst.i]) {
                ok += 1;
            }
        }
        table.row(vec![
            n.to_string(),
            "4-round Gap".into(),
            bits.to_string(),
            f(ok as f64 / proto_trials as f64),
            "0.667".into(),
        ]);
    }
    format!(
        "## T9 — one-round lower bound (Theorem 4.6)\n\n\
         Index instances with r1 = 1, r2 = {r2}, k = 1, GV codewords; \
         {trials} trials per straw-man row. Expected: the one-round \
         straw-man hovers near the 2/3 bar at O(n)-bit budgets (errors = \
         Bloom false positives on x_i = 0); the 4-round protocol clears it \
         decisively.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_renders() {
        assert!(super::run(true).contains("## T9"));
    }
}
