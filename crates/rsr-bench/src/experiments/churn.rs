//! C1 — continuous reconciliation under churn: per-round cost tracks
//! the drift, not the set.
//!
//! The one-shot experiments rebuild a sketch over the whole set every
//! time; a continuous pair keeps a [`ContinuousParty`] resident and each
//! round ships only the delta since the last settle. This experiment
//! measures the headline invariant: **at a fixed churn rate, per-round
//! wall time and wire bits stay flat as the base set grows 4×** — while
//! a from-scratch reconciliation of the same sets grows with `n`.
//!
//! Every incremental round is checked bit-for-bit against a
//! from-scratch reference: a *fresh* pair is built over the exact
//! pre-round sets, driven one round, and its settled set must equal the
//! incremental round's settled set key-for-key (which the continuous
//! module's algebra promises — see `rsr_core::continuous`). The sweep
//! also re-runs the same churn trace over the wire — `OPEN` + `ROUND`
//! records against a spec-only server whose factory builds its resident
//! Bob from the wire spec alone — asserting the client party converges
//! to the same union every round.
//!
//! Gated keys (`churn_…_rounds_per_sec`, `churn_…_round_p50_ms`,
//! `churn_…_round_max_ms`) land in `BENCH_net.json` next to the N1/L1
//! families; `bench_check` applies the standard throughput and latency
//! tolerances (docs/benchmarks.md).

use crate::benchjson::BenchReport;
use crate::experiments::net::{continuous_party_of, continuous_spec, InstanceFactory};
use crate::table::Table;
use rsr_core::continuous::{ContinuousConfig, ContinuousParty, ContinuousSession, SharedParty};
use rsr_net::{Driver, ReconServer, SessionPlan};
use rsr_workloads::{base_set, sample_churn, ChurnSpec};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-round wall time may drift between the small and the 4× base set
/// by at most this factor (medians; the real invariant is the wire-bit
/// bound below — wall clock gets slack for scheduler noise on a busy
/// 1-core CI host).
pub const FLATNESS_BUDGET: f64 = 5.0;

/// Per-round wire bits at 4× the base set must stay within this factor
/// of the small set's, plus [`BITS_SLACK`] absolute bits. The delta
/// table's size is pinned by the churn bound, so the only cross-`n`
/// wiggle is reply keys from coincidental delete overlap.
pub const BITS_BUDGET: f64 = 1.25;

/// Absolute per-round bit slack on top of [`BITS_BUDGET`] (a few 64-bit
/// reply keys plus framing).
pub const BITS_SLACK: f64 = 2048.0;

/// One cell of the churn sweep: a base-set size driven `rounds` rounds
/// at a steady churn rate.
#[derive(Clone, Debug)]
pub struct ChurnCell {
    /// Short key naming the cell inside metric names (`churn_<key>_…`).
    pub key: String,
    /// Base-set size both parties start from.
    pub n: usize,
    /// Mean mutations per round across both parties.
    pub rate: usize,
    /// Incremental rounds driven (after the settling round 0).
    pub rounds: usize,
}

/// The sweep: one churn rate over a base set and its 4× growth, so the
/// flatness claim is a same-trace comparison, not an extrapolation.
pub fn cells(quick: bool) -> Vec<ChurnCell> {
    let (n_small, rounds) = if quick { (512, 6) } else { (4096, 12) };
    let rate = 32;
    [n_small, 4 * n_small]
        .into_iter()
        .map(|n| ChurnCell {
            key: format!("n{n}_c{rate}"),
            n,
            rate,
            rounds,
        })
        .collect()
}

/// What one in-memory cell measured.
pub struct MemCellResult {
    /// Incremental round wall times, in trace order.
    pub round_times: Vec<Duration>,
    /// Incremental round transcript bits, in trace order.
    pub round_bits: Vec<u64>,
    /// From-scratch reference wall times (party build + one round over
    /// the same pre-round sets), in trace order.
    pub oneshot_times: Vec<Duration>,
    /// Final settled set size.
    pub final_keys: usize,
}

fn lock(party: &SharedParty) -> std::sync::MutexGuard<'_, ContinuousParty> {
    party.lock().unwrap_or_else(|e| e.into_inner())
}

/// Applies one round's churn to a party and its reference set, keeping
/// the two in lockstep. Keys are materialized against the reference
/// (equal to the party's set by construction) so the trace stays
/// deterministic in `(spec, rounds, seed)`.
fn apply_churn(party: &SharedParty, reference: &mut BTreeSet<u64>, ins: &[u64], del: &[u64]) {
    let mut p = lock(party);
    for &key in ins {
        p.insert(key).expect("insert between rounds");
        reference.insert(key);
    }
    for &key in del {
        p.remove(key).expect("delete between rounds");
        reference.remove(&key);
    }
}

/// Runs one cell in memory: round 0 settles the (empty) initial
/// difference, then `cell.rounds` churned rounds run incrementally,
/// each asserted bit-for-bit against a from-scratch reconciliation of
/// the same pre-round sets.
pub fn run_mem_cell(cell: &ChurnCell, seed: u64) -> MemCellResult {
    let spec = ChurnSpec::steady(cell.rate);
    let cfg = ContinuousConfig::for_churn(spec.peak_round_ops(), seed);
    let base = base_set(cell.n, seed);
    let mut session = ContinuousSession::new(
        ContinuousParty::new(cfg, base.iter().copied()),
        ContinuousParty::new(cfg, base.iter().copied()),
    );
    session.drive_round().expect("round 0 settles");

    let trace = sample_churn(&spec, cell.rounds, seed);
    let mut a_ref = base.clone();
    let mut b_ref = base;
    let mut round_times = Vec::with_capacity(cell.rounds);
    let mut round_bits = Vec::with_capacity(cell.rounds);
    let mut oneshot_times = Vec::with_capacity(cell.rounds);
    for (r, round) in trace.iter().enumerate() {
        let (a_ins, a_del) = round.alice_keys(&a_ref);
        let (b_ins, b_del) = round.bob_keys(&b_ref);
        apply_churn(&session.alice(), &mut a_ref, &a_ins, &a_del);
        apply_churn(&session.bob(), &mut b_ref, &b_ins, &b_del);
        let expected: BTreeSet<u64> = a_ref.union(&b_ref).copied().collect();

        // The from-scratch reference: a fresh pair over the exact
        // pre-round sets, timed end to end (sketch build included —
        // that is the cost a one-shot caller actually pays).
        let t0 = Instant::now();
        let mut fresh = ContinuousSession::new(
            ContinuousParty::new(cfg, a_ref.iter().copied()),
            ContinuousParty::new(cfg, b_ref.iter().copied()),
        );
        fresh
            .drive_round()
            .unwrap_or_else(|e| panic!("cell {}: fresh round {r}: {e}", cell.key));
        oneshot_times.push(t0.elapsed());

        let t0 = Instant::now();
        let t = session
            .drive_round()
            .unwrap_or_else(|e| panic!("cell {}: incremental round {r}: {e}", cell.key));
        round_times.push(t0.elapsed());
        round_bits.push(t.total_bits());

        // Bit-for-bit: incremental settle, from-scratch settle, and the
        // directly computed union must be the same set, key for key.
        let incremental = lock(&session.alice()).set().clone();
        assert_eq!(
            incremental,
            *lock(&fresh.alice()).set(),
            "cell {}: round {r}: incremental settle diverged from the from-scratch reference",
            cell.key
        );
        assert_eq!(
            incremental, expected,
            "cell {}: round {r}: settle is not the union of the pre-round sets",
            cell.key
        );
        assert_eq!(
            incremental,
            *lock(&session.bob()).set(),
            "cell {}: round {r}: parties diverged",
            cell.key
        );
        a_ref = expected.clone();
        b_ref = expected;
    }
    MemCellResult {
        round_times,
        round_bits,
        oneshot_times,
        final_keys: a_ref.len(),
    }
}

/// What the wire section measured.
pub struct WireResult {
    /// Cell key (`wire_<key>` in metric names).
    pub key: String,
    /// Per-round wall times as the driver saw them (connect and churn
    /// excluded; `OPEN`+`ROUND` round trip included for round 0).
    pub round_times: Vec<Duration>,
    /// Final settled set size on the client party.
    pub final_keys: usize,
}

/// Replays a skewed churn trace over TCP: one continuous session opened
/// with `OPEN`(spec, continuous)+`ROUND 0`, then incremental `ROUND`s
/// under the same id on a persistent connection. The server's factory
/// builds its resident Bob from the wire spec alone, so the only state
/// crossing the wire is the per-round delta. All churn lands on the
/// client (skew 1.0) — the server party is mutated by settles only.
pub fn run_wire(quick: bool, seed: u64) -> WireResult {
    let n = if quick { 512 } else { 4096 };
    let rounds = if quick { 3 } else { 8 };
    let spec = ChurnSpec {
        skew: 1.0,
        ..ChurnSpec::steady(32)
    };
    let wire_spec = continuous_spec(n, spec.peak_round_ops(), seed);
    let key = format!("wire_n{n}_c{}", spec.rate);

    let factory = Arc::new(InstanceFactory::spec_only());
    let server = ReconServer::bind("127.0.0.1:0", Arc::clone(&factory))
        .expect("bind loopback")
        .with_shards(2);
    let addr = server.local_addr().expect("bound address");

    let trace = sample_churn(&spec, rounds + 1, seed);
    let mut round_times = Vec::with_capacity(rounds + 1);
    let final_keys = std::thread::scope(|s| {
        let server_handle = s.spawn(|| server.serve(Some(1)));
        let party = rsr_core::continuous::shared(continuous_party_of(&wire_spec));
        let mut expected = base_set(n, seed);
        let mut driver = Driver::new(addr)
            .shards(2)
            .idle_timeout(Some(Duration::from_secs(120)))
            .connect()
            .expect("connect");

        for (r, round) in trace.iter().enumerate() {
            // Churn lands between rounds (round 0 included: the open
            // reconciles it as the initial difference). With the server
            // side never deleting, union settles resurrect client
            // deletes — the expected set only ever grows.
            let (ins, del) = round.alice_keys(&expected);
            apply_wire_churn(&party, &ins, &del);
            for &k in &ins {
                expected.insert(k);
            }

            let plan = if r == 0 {
                SessionPlan::open_continuous(7, wire_spec, &party).expect("fresh party")
            } else {
                SessionPlan::next_round(7, &party).expect("settled party")
            };
            let t0 = Instant::now();
            let report = driver
                .batch(vec![vec![plan]])
                .unwrap_or_else(|e| panic!("wire round {r}: {e}"));
            round_times.push(t0.elapsed());
            assert!(
                report.transport_error().is_none(),
                "wire round {r}: transport failed: {:?}",
                report.transport_error()
            );
            assert_eq!(report.completed(), 1, "wire round {r} did not settle");
            assert_eq!(
                *lock(&party).set(),
                expected,
                "wire round {r}: client party diverged from the expected union"
            );
        }
        let final_keys = lock(&party).set().len();
        driver.close_session(0, 7).expect("retire the session");
        driver.finish();
        server_handle
            .join()
            .expect("server thread")
            .expect("connection served");
        final_keys
    });
    WireResult {
        key,
        round_times,
        final_keys,
    }
}

fn apply_wire_churn(party: &SharedParty, ins: &[u64], del: &[u64]) {
    let mut p = lock(party);
    for &key in ins {
        p.insert(key).expect("insert between rounds");
    }
    for &key in del {
        p.remove(key).expect("delete between rounds");
    }
}

fn quantile(times: &[Duration], q: f64) -> Duration {
    let mut sorted = times.to_vec();
    sorted.sort();
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn per_sec(rounds: usize, times: &[Duration]) -> f64 {
    let total: Duration = times.iter().sum();
    if total > Duration::ZERO {
        rounds as f64 / total.as_secs_f64()
    } else {
        0.0
    }
}

/// Runs the experiment, discarding the machine-readable report.
pub fn run(quick: bool) -> String {
    let mut bench = BenchReport::new("net", quick);
    extend(&mut bench, quick)
}

/// Runs the sweep and appends the `churn_*` metric family to `bench`
/// (the combined `BENCH_net.json` the `exp_net --json` path commits).
/// Returns the markdown section.
pub fn extend(bench: &mut BenchReport, quick: bool) -> String {
    let seed = 0xc402_2026_u64;
    let cells = cells(quick);
    let mut results = Vec::new();
    let mut table = Table::new(&[
        "cell",
        "n",
        "rounds",
        "keys",
        "incr p50 ms",
        "incr max ms",
        "oneshot p50 ms",
        "bits/round",
        "rounds/s",
    ]);
    for cell in &cells {
        let result = run_mem_cell(cell, seed);
        let mean_bits =
            result.round_bits.iter().sum::<u64>() as f64 / result.round_bits.len() as f64;
        table.row(vec![
            cell.key.clone(),
            cell.n.to_string(),
            cell.rounds.to_string(),
            result.final_keys.to_string(),
            format!("{:.4}", ms(quantile(&result.round_times, 0.50))),
            format!("{:.4}", ms(quantile(&result.round_times, 1.0))),
            format!("{:.4}", ms(quantile(&result.oneshot_times, 0.50))),
            format!("{mean_bits:.0}"),
            format!("{:.0}", per_sec(cell.rounds, &result.round_times)),
        ]);
        let k = &cell.key;
        bench.push(
            format!("churn_{k}_rounds_per_sec"),
            per_sec(cell.rounds, &result.round_times),
        );
        bench.push(
            format!("churn_{k}_round_p50_ms"),
            ms(quantile(&result.round_times, 0.50)),
        );
        bench.push(
            format!("churn_{k}_round_max_ms"),
            ms(quantile(&result.round_times, 1.0)),
        );
        bench.push(format!("churn_{k}_round_bits"), mean_bits);
        bench.push(
            format!("churn_{k}_oneshot_ms"),
            ms(quantile(&result.oneshot_times, 0.50)),
        );
        results.push(result);
    }

    // The flatness claim, asserted in-bin over the same trace: wire
    // bits per round must not grow with n (the delta table is pinned by
    // the churn bound; only coincidental delete overlap in the replies
    // moves), and median wall time gets a generous scheduler-noise
    // budget.
    let (small, big) = (&results[0], &results[1]);
    for (r, (&sb, &bb)) in small.round_bits.iter().zip(&big.round_bits).enumerate() {
        let cap = (sb as f64) * BITS_BUDGET + BITS_SLACK;
        assert!(
            (bb as f64) <= cap,
            "round {r}: {bb} bits at n={} vs {sb} at n={} — wire cost grew with the set",
            cells[1].n,
            cells[0].n
        );
    }
    let ratio = ms(quantile(&big.round_times, 0.50)) / ms(quantile(&small.round_times, 0.50));
    assert!(
        ratio <= FLATNESS_BUDGET,
        "median round time grew {ratio:.2}× from n={} to n={} (budget {FLATNESS_BUDGET}×)",
        cells[0].n,
        cells[1].n
    );
    bench.push("churn_flat_time_ratio", ratio);

    let wire = run_wire(quick, seed);
    table.row(vec![
        wire.key.clone(),
        "-".into(),
        (wire.round_times.len() - 1).to_string(),
        wire.final_keys.to_string(),
        format!("{:.4}", ms(quantile(&wire.round_times, 0.50))),
        format!("{:.4}", ms(quantile(&wire.round_times, 1.0))),
        "-".into(),
        "-".into(),
        format!("{:.0}", per_sec(wire.round_times.len(), &wire.round_times)),
    ]);
    let k = &wire.key;
    bench.push(
        format!("churn_{k}_rounds_per_sec"),
        per_sec(wire.round_times.len(), &wire.round_times),
    );
    bench.push(
        format!("churn_{k}_round_p50_ms"),
        ms(quantile(&wire.round_times, 0.50)),
    );
    bench.push(
        format!("churn_{k}_round_max_ms"),
        ms(quantile(&wire.round_times, 1.0)),
    );

    format!(
        "## C1 — continuous reconciliation under churn\n\n\
         Each cell settles a shared base set, then drives {} incremental \
         rounds of steady churn ({} mutations/round mean, 25% deletes). \
         Every incremental round was asserted bit-for-bit against a \
         from-scratch reconciliation of the same pre-round sets (and \
         against the directly computed union). Growing the base set 4× \
         at fixed churn left per-round wire bits flat (within reply-key \
         slack) and the median round time within {:.0}× (measured \
         {ratio:.2}×) — the from-scratch column grows with n, the \
         incremental columns do not. The `wire_*` row replays the trace \
         over TCP: one `OPEN`(continuous spec) + `ROUND 0`, then \
         incremental `ROUND`s on a persistent connection against a \
         spec-only factory, client party asserted against the expected \
         union every round.\n\n{}",
        cells[0].rounds,
        cells[0].rate,
        FLATNESS_BUDGET,
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_cells_cover_a_4x_growth_at_fixed_rate() {
        let cells = cells(true);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[1].n, 4 * cells[0].n);
        assert_eq!(cells[0].rate, cells[1].rate);
    }

    #[test]
    fn mem_cell_settles_every_round() {
        let cell = ChurnCell {
            key: "t".into(),
            n: 128,
            rate: 16,
            rounds: 3,
        };
        let result = run_mem_cell(&cell, 9);
        assert_eq!(result.round_times.len(), 3);
        assert_eq!(result.round_bits.len(), 3);
        assert!(result.final_keys >= 128, "union only grows");
    }

    #[test]
    fn churn_trace_is_replayable() {
        let spec = ChurnSpec::steady(16);
        assert_eq!(sample_churn(&spec, 4, 1), sample_churn(&spec, 4, 1));
    }
}
