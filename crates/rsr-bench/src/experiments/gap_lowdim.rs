//! T8 — Theorem 4.5: the one-sided low-dimension variant vs Theorem 4.2.
//!
//! In constant dimension the one-sided grid LSH (`p2 = 0`) shortens keys
//! from `h = Θ(log n)` batches of `m` to `Θ(log n / log(1/ρ̂))` single
//! draws — roughly a `log(r2/r1)` communication saving.

use crate::table::{f, Table};
use rsr_core::gap_protocol::{verify_gap_guarantee, GapConfig, GapProtocol};
use rsr_core::low_dim_gap_config;
use rsr_hash::lsh::LshParams;
use rsr_hash::GridFamily;
use rsr_metric::MetricSpace;
use rsr_workloads::sensor_pairs;

/// Runs the experiment.
pub fn run(quick: bool) -> String {
    let trials = if quick { 3 } else { 8 };
    let k = 3;
    let mut table = Table::new(&[
        "n",
        "r2/r1",
        "low-dim bits",
        "general bits",
        "saving",
        "low-dim h",
        "general h·m",
        "guarantee ok",
    ]);
    let configs: &[(usize, f64)] = if quick {
        &[(100, 25_000.0)]
    } else {
        &[
            (100, 25_000.0),
            (200, 25_000.0),
            (400, 25_000.0),
            (200, 100_000.0),
        ]
    };
    for &(n, r2) in configs {
        let space = MetricSpace::l1(1_000_000, 2);
        let r1 = 4.0;
        let mut low_bits = 0u64;
        let mut gen_bits = 0u64;
        let mut low_h = 0usize;
        let mut gen_hm = 0usize;
        let mut ok = 0usize;
        let mut runs = 0usize;
        for t in 0..trials {
            let w = sensor_pairs(space, n, k, r1, r2, 0xd000 + t as u64);

            let (fam_low, cfg_low) = low_dim_gap_config(&space, n, k, r1, r2);
            low_h = cfg_low.h;
            let low = GapProtocol::new(space, &fam_low, cfg_low, 0xe000 + t as u64);
            let Ok(out_low) = low.run(&w.alice, &w.bob) else {
                continue;
            };

            let fam_gen = GridFamily::new(2, r2 / 2.0);
            // Conservative parameterization of the general protocol.
            let params = LshParams::new(r1, r2, (1.0 - 4.0 * r1 / r2).max(0.5), 0.6);
            let cfg_gen = GapConfig::for_params(params, n, k);
            gen_hm = cfg_gen.h * cfg_gen.m;
            let gen = GapProtocol::new(space, &fam_gen, cfg_gen, 0xf000 + t as u64);
            let Ok(out_gen) = gen.run(&w.alice, &w.bob) else {
                continue;
            };

            runs += 1;
            low_bits = out_low.transcript.total_bits();
            gen_bits = out_gen.transcript.total_bits();
            if verify_gap_guarantee(&space, &w.alice, &out_low.reconciled, r2) {
                ok += 1;
            }
        }
        table.row(vec![
            n.to_string(),
            f(r2 / r1),
            low_bits.to_string(),
            gen_bits.to_string(),
            f(gen_bits as f64 / low_bits.max(1) as f64),
            low_h.to_string(),
            gen_hm.to_string(),
            format!("{ok}/{runs}"),
        ]);
    }
    format!(
        "## T8 — low-dimension one-sided variant (Theorem 4.5)\n\n\
         ([10^6]², ℓ1), r1 = 4, k = {k}, {trials} seeds. Expected: the \
         one-sided variant's keys are much shorter (h vs h·m column) and \
         its total bits lower, while the guarantee still holds.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_renders() {
        assert!(super::run(true).contains("## T8"));
    }
}
