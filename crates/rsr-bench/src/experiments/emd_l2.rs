//! T4 — Corollary 3.6: the interval-scaled EMD protocol on `([Δ]^d, ℓ2)`.
//!
//! Claims measured: communication `O(k·d·log(nΔ)·log(D2/D1))`; success
//! ≥ 5/8; quality `≤ O(log n)·EMD_k`; the winning interval tracks the
//! instance's actual EMD_k scale.

use crate::table::{f, Table};
use rsr_core::ScaledEmdProtocol;
use rsr_emd::{emd, emd_k};
use rsr_metric::MetricSpace;
use rsr_workloads::{planted_emd_sparse, stats};

/// Runs the experiment.
pub fn run(quick: bool) -> String {
    let trials = if quick { 4 } else { 12 };
    let mut table = Table::new(&[
        "n",
        "Δ",
        "k",
        "intervals",
        "comm bits",
        "success",
        "median ratio",
        "median i*-interval",
    ]);
    let configs: &[(usize, i64, usize)] = if quick {
        &[(100, 1024, 3)]
    } else {
        &[
            (100, 1024, 3),
            (200, 1024, 3),
            (100, 4096, 3),
            (100, 1024, 6),
        ]
    };
    for &(n, delta, k) in configs {
        let space = MetricSpace::l2(delta, 2);
        let mut bits = 0u64;
        let mut ratios = Vec::new();
        let mut intervals = Vec::new();
        let mut success = 0usize;
        let mut num_intervals = 0usize;
        for t in 0..trials {
            let w = planted_emd_sparse(space, n, k, 1, n / 10, 0x5000 + t as u64);
            let proto = ScaledEmdProtocol::new(space, n, k, 0x6000 + t as u64);
            num_intervals = proto.num_intervals();
            let msg = proto.alice_encode(&w.alice);
            bits = msg.wire_bits();
            let Ok(out) = proto.bob_decode(&msg, &w.bob) else {
                continue;
            };
            success += 1;
            let floor = emd_k(space.metric(), &w.alice, &w.bob, k).max(1.0);
            ratios.push(emd(space.metric(), &w.alice, &out.inner.reconciled) / floor);
            intervals.push(out.interval as f64);
        }
        table.row(vec![
            n.to_string(),
            delta.to_string(),
            k.to_string(),
            num_intervals.to_string(),
            bits.to_string(),
            f(success as f64 / trials as f64),
            f(stats::quantile(&ratios, 0.5)),
            f(stats::quantile(&intervals, 0.5)),
        ]);
    }
    format!(
        "## T4 — scaled EMD protocol on ℓ2 (Corollary 3.6)\n\n\
         Workload: n points in [Δ]², n/10 with ±1 coordinate noise, k \
         outliers/side; {trials} seeds per row. Expected: success ≥ 5/8 \
         and median approximation ratio ≪ ln n (≈ 4.6–5.3 here).\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_renders() {
        assert!(super::run(true).contains("## T4"));
    }
}
