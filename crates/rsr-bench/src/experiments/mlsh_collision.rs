//! T2 — Lemmas 2.3–2.5: MLSH collision-probability envelopes.
//!
//! For each family the empirical collision probability at distance `f`
//! must lie in `[p^f, p^{α·f}]` (Definition 2.2) for `f ≤ r`.

use crate::table::{f as ff, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsr_hash::{BitSamplingFamily, GridFamily, LshFamily, LshFunction, MlshFamily, PStableFamily};
use rsr_metric::Point;

fn measure<F: LshFamily>(family: &F, x: &Point, y: &Point, trials: u32, seed: u64) -> f64
where
    F::Function: LshFunction,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let hits = (0..trials)
        .filter(|_| {
            let h = family.sample(&mut rng);
            h.hash(x) == h.hash(y)
        })
        .count();
    hits as f64 / f64::from(trials)
}

/// Runs the experiment.
pub fn run(quick: bool) -> String {
    let trials: u32 = if quick { 4_000 } else { 40_000 };
    let mut table = Table::new(&[
        "family",
        "distance",
        "empirical",
        "lower p^f",
        "upper p^(αf)",
        "in envelope",
    ]);

    // Hamming bit sampling, d = 32, w = 64.
    let dim = 32;
    let ham = BitSamplingFamily::new(dim, 64.0);
    let hp = ham.mlsh_params();
    for dist in [1usize, 4, 8, 16] {
        let x = Point::from_bits(&vec![false; dim]);
        let mut yb = vec![false; dim];
        yb.iter_mut().take(dist).for_each(|b| *b = true);
        let y = Point::from_bits(&yb);
        let emp = measure(&ham, &x, &y, trials, 0x200 + dist as u64);
        let (lo, hi) = (
            hp.lower_envelope(dist as f64),
            hp.upper_envelope(dist as f64),
        );
        let ok = emp >= lo - 0.02 && emp <= hi + 0.02;
        table.row(vec![
            "Hamming bit-sample".into(),
            dist.to_string(),
            ff(emp),
            ff(lo),
            ff(hi),
            ok.to_string(),
        ]);
    }

    // ℓ1 shifted grid, d = 4, w = 24.
    let grid = GridFamily::new(4, 24.0);
    let gp = grid.mlsh_params();
    for dist in [1i64, 3, 6, 12] {
        let x = Point::new(vec![50, 50, 50, 50]);
        let y = Point::new(vec![50 + dist, 50, 50, 50]);
        let emp = measure(&grid, &x, &y, trials, 0x300 + dist as u64);
        let (lo, hi) = (
            gp.lower_envelope(dist as f64),
            gp.upper_envelope(dist as f64),
        );
        let ok = emp >= lo - 0.02 && emp <= hi + 0.02;
        table.row(vec![
            "ℓ1 shifted grid".into(),
            dist.to_string(),
            ff(emp),
            ff(lo),
            ff(hi),
            ok.to_string(),
        ]);
    }

    // ℓ2 2-stable, d = 2, w = 24.
    let ps = PStableFamily::new(2, 24.0);
    let pp = ps.mlsh_params();
    for (dx, dy, dist) in [(3i64, 4i64, 5.0f64), (6, 8, 10.0), (9, 12, 15.0)] {
        let x = Point::new(vec![100, 100]);
        let y = Point::new(vec![100 + dx, 100 + dy]);
        let emp = measure(&ps, &x, &y, trials, 0x400 + dx as u64);
        let (lo, hi) = (pp.lower_envelope(dist), pp.upper_envelope(dist));
        let ok = emp >= lo - 0.02 && emp <= hi + 0.02;
        table.row(vec![
            "ℓ2 2-stable".into(),
            ff(dist),
            ff(emp),
            ff(lo),
            ff(hi),
            ok.to_string(),
        ]);
    }

    format!(
        "## T2 — MLSH collision envelopes (Lemmas 2.3–2.5)\n\n\
         {trials} sampled functions per point. Every empirical collision \
         probability must lie within [p^f, p^(αf)] (±0.02 sampling slack).\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn all_rows_in_envelope() {
        let report = super::run(true);
        assert!(report.contains("## T2"));
        assert!(!report.contains("false"), "envelope violated:\n{report}");
    }
}
