//! L1 — open-loop latency under load: session arrivals at a target
//! offered rate against the executor-driven TCP server, per-session
//! latency from *scheduled* arrival to settle, percentiles from an
//! HDR-style log-bucketed histogram.
//!
//! Where N1 measures how fast the transport can drain a batch it fully
//! controls (closed loop), L1 asks the production question: **with
//! sessions arriving whether you are ready or not, how long does one
//! take?** The arrival schedule is pre-computed by [`crate::loadgen`]
//! (deterministic per seed, so a committed baseline pins the exact
//! arrival pattern), the session blend comes from
//! [`rsr_workloads::trace::TraceMix::production_day`], and latency obeys
//! the coordinated-omission rule: measured from the scheduled arrival,
//! not the actual injection (docs/loadgen.md has the full methodology).
//!
//! The sweep covers offered rate × executor shards, plus — in full mode
//! — an overload cell (offered above the host's measured capacity, so
//! queueing delay dominates), a two-connection cell, and a double-size
//! payload cell. Each cell's percentiles land in `BENCH_net.json` as
//! `load_<cell>_p50_ms` … `_max_ms` keys that `bench_check` gates with
//! the latency tolerances (docs/benchmarks.md).

use crate::benchjson::BenchReport;
use crate::experiments::net::{Instance, InstanceFactory};
use crate::hist::{LogHistogram, DEFAULT_SUB_BITS};
use crate::loadgen::{self, Arrival};
use crate::table::Table;
use rsr_net::{Driver, ReconServer, SessionPlan};
use rsr_workloads::trace::{sample_trace_with, TraceMix};
use std::sync::Arc;
use std::time::Duration;

/// Sweep axes the `exp_net --load` CLI can override; `None` keeps the
/// built-in grid for the mode.
#[derive(Clone, Debug, Default)]
pub struct LoadOptions {
    /// Offered rates (sessions/sec) to sweep.
    pub rates: Option<Vec<f64>>,
    /// Arrival law; defaults to [`Arrival::Exponential`] (Poisson).
    pub arrival: Option<Arrival>,
    /// Sessions per cell.
    pub sessions: Option<usize>,
    /// Executor shard widths to sweep (both endpoints).
    pub shards: Option<Vec<usize>>,
    /// Client connections per cell.
    pub conns: Option<usize>,
    /// Instance-size multiplier applied to every cell's trace mix.
    pub payload_scale: Option<f64>,
}

impl LoadOptions {
    fn is_default_grid(&self) -> bool {
        self.rates.is_none()
            && self.sessions.is_none()
            && self.shards.is_none()
            && self.conns.is_none()
            && self.payload_scale.is_none()
    }
}

/// One cell of the load sweep.
#[derive(Clone, Debug)]
pub struct LoadCell {
    /// Short key naming the cell inside metric names (`load_<key>_…`).
    pub key: String,
    /// Sessions injected.
    pub sessions: usize,
    /// Target offered rate, sessions/sec.
    pub rate: f64,
    /// Inter-arrival law.
    pub arrival: Arrival,
    /// Executor shards on both endpoints.
    pub shards: usize,
    /// Concurrent client connections (sessions split round-robin).
    pub conns: usize,
    /// The protocol blend and sizing of the trace.
    pub mix: TraceMix,
}

/// What one cell measured.
pub struct CellResult {
    /// The rate the (deterministic) schedule actually encodes.
    pub offered_per_sec: f64,
    /// Completed sessions over the span from first arrival to last settle.
    pub achieved_per_sec: f64,
    /// Sessions that completed on both endpoints.
    pub completed: usize,
    /// Sessions that failed under load — verified by [`run_cell`] to be
    /// exactly the sessions whose instances also fail in the serial
    /// in-memory reference (a trace can legitimately contain instances
    /// whose decode fails; load must not add or mask failures).
    pub failed: usize,
    /// Scheduled-arrival-to-settle latencies, in **microseconds**.
    pub hist: LogHistogram,
    /// The generator's own worst tardiness (injection after schedule).
    pub max_inject_lag: Duration,
    /// Registry delta across the cell (counters become per-cell counts)
    /// when `rsr-obs` recording was on; `None` otherwise.
    pub internals: Option<rsr_obs::MetricsSnapshot>,
}

impl CellResult {
    /// A histogram quantile converted to milliseconds.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.hist.value_at_quantile(q) as f64 / 1e3
    }
}

/// The default sweep for the mode, with CLI overrides applied. Quick
/// mode is a small rate × shard grid sized for CI smoke; full mode adds
/// the overload, multi-connection, and big-payload cells (only when no
/// axis was overridden — an explicit sweep means the caller wants
/// exactly that grid).
pub fn cells(quick: bool, opts: &LoadOptions) -> Vec<LoadCell> {
    let sessions = opts.sessions.unwrap_or(if quick { 48 } else { 160 });
    let rates = opts.rates.clone().unwrap_or_else(|| {
        if quick {
            vec![50.0, 200.0]
        } else {
            vec![100.0, 300.0]
        }
    });
    let shard_sweep =
        opts.shards
            .clone()
            .unwrap_or_else(|| if quick { vec![1, 2] } else { vec![1, 4] });
    let arrival = opts.arrival.unwrap_or(Arrival::Exponential);
    let conns = opts.conns.unwrap_or(1);
    let mix = TraceMix::production_day().scaled(opts.payload_scale.unwrap_or(1.0));

    let mut cells = Vec::new();
    for &rate in &rates {
        for &shards in &shard_sweep {
            cells.push(LoadCell {
                key: format!("r{}_s{shards}", rate_token(rate)),
                sessions,
                rate,
                arrival,
                shards,
                conns,
                mix,
            });
        }
    }
    if !quick && opts.is_default_grid() {
        // Overload: offered well above the 1-core capacity N1 measures
        // (~500 sessions/sec), so the queue — not the service time —
        // sets the tail.
        cells.push(LoadCell {
            key: "r900_s4".into(),
            sessions,
            rate: 900.0,
            arrival,
            shards: 4,
            conns: 1,
            mix,
        });
        // Two connections sharing one server, half the sessions each.
        cells.push(LoadCell {
            key: "c2_r300_s2".into(),
            sessions,
            rate: 300.0,
            arrival,
            shards: 2,
            conns: 2,
            mix,
        });
        // Double-size instances at a gentle rate: payload-bound latency.
        cells.push(LoadCell {
            key: "big_r100_s4".into(),
            sessions: 96,
            rate: 100.0,
            arrival,
            shards: 4,
            conns: 1,
            mix: mix.scaled(2.0),
        });
    }
    cells
}

fn rate_token(rate: f64) -> String {
    if rate.fract() == 0.0 {
        format!("{rate:.0}")
    } else {
        format!("{rate}").replace('.', "p")
    }
}

/// Runs one cell: builds the trace, binds a loopback server, injects the
/// sessions on the cell's schedule over `conns` connections, and folds
/// every completed session's latency into one histogram. Every session's
/// outcome (and, for completed ones, measured transcript bits) must
/// agree with the serial in-memory reference — load may change *when* a
/// session finishes, never *how*.
pub fn run_cell(cell: &LoadCell, seed: u64) -> CellResult {
    let entries = sample_trace_with(cell.sessions, seed, &cell.mix);
    let factory = Arc::new(InstanceFactory::from_trace(&entries));
    // The untimed correctness reference (the same instances, serially).
    let baseline: Vec<Result<u64, String>> = factory
        .instances
        .iter()
        .map(Instance::run_in_memory)
        .collect();
    let schedule = loadgen::schedule(cell.sessions, cell.rate, cell.arrival, seed);

    let server = ReconServer::bind("127.0.0.1:0", Arc::clone(&factory))
        .expect("bind loopback")
        .with_shards(cell.shards);
    let addr = server.local_addr().expect("bound address");
    // Snapshot the registry around the cell so its counters read as
    // per-cell counts (the registry itself is cumulative per process).
    let obs_before = rsr_obs::enabled().then(|| rsr_obs::global().snapshot());

    // One server reactor accepts every connection; one client reactor
    // injects every schedule. All connections share one executor and one
    // clock on each endpoint — no per-connection threads on either side.
    let report = std::thread::scope(|s| {
        let server_handle = s.spawn(|| server.serve(Some(cell.conns)));
        // Connection `c` takes every `conns`-th session; each
        // sub-schedule stays non-decreasing and the ids are the global
        // trace positions the shared factory serves.
        let loads: Vec<(Vec<SessionPlan<'_>>, Vec<Duration>)> = (0..cell.conns)
            .map(|c| {
                let sessions: Vec<SessionPlan<'_>> = factory
                    .instances
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % cell.conns == c)
                    .map(|(i, inst)| SessionPlan::new(i as u64, inst.alice_session()))
                    .collect();
                let sub_schedule: Vec<Duration> = schedule
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % cell.conns == c)
                    .map(|(_, &at)| at)
                    .collect();
                (sessions, sub_schedule)
            })
            .collect();
        let report = Driver::new(addr)
            .conns(cell.conns)
            .shards(cell.shards)
            .idle_timeout(Some(Duration::from_secs(120)))
            .load(loads)
            .expect("load run completes");
        server_handle
            .join()
            .expect("server thread")
            .expect("connections served");
        report
    });

    let mut hist = LogHistogram::new(DEFAULT_SUB_BITS);
    let mut completed = 0;
    let mut failed = 0;
    let mut max_inject_lag = Duration::ZERO;
    let mut span = Duration::ZERO;
    for report in &report.conns {
        assert!(
            report.transport_error.is_none(),
            "cell {}: transport failed: {:?}",
            cell.key,
            report.transport_error
        );
        completed += report.completed();
        failed += report.failed();
        max_inject_lag = max_inject_lag.max(report.max_inject_lag());
        span = span.max(report.elapsed);
        for session in &report.sessions {
            let mem = &baseline[session.id as usize];
            match mem {
                Ok(bits) => {
                    assert!(
                        session.is_ok(),
                        "cell {}: session {} ok in memory but failed under load: {:?}",
                        cell.key,
                        session.id,
                        session.error
                    );
                    assert_eq!(
                        *bits,
                        session.transcript.total_bits(),
                        "cell {}: session {} transcript bits under load",
                        cell.key,
                        session.id
                    );
                }
                Err(_) => assert!(
                    !session.is_ok(),
                    "cell {}: session {} fails in memory but completed under load",
                    cell.key,
                    session.id
                ),
            }
            // Only completed sessions contribute latency: a failed
            // session settles fast for the wrong reason and would
            // flatter the percentiles.
            if session.is_ok() {
                if let Some(latency) = session.latency() {
                    hist.record(latency.as_micros() as u64);
                }
            }
        }
    }
    let achieved_per_sec = if span > Duration::ZERO {
        completed as f64 / span.as_secs_f64()
    } else {
        0.0
    };
    CellResult {
        offered_per_sec: loadgen::offered_rate(&schedule),
        achieved_per_sec,
        completed,
        failed,
        hist,
        max_inject_lag,
        internals: obs_before.map(|before| rsr_obs::global().snapshot().delta_from(&before)),
    }
}

/// Runs the sweep with default options, discarding the JSON keys — the
/// `run_all`/report entry point.
pub fn run(quick: bool) -> String {
    let mut bench = BenchReport::new("net", quick);
    extend(&mut bench, quick, &LoadOptions::default())
}

/// Runs the sweep and appends every cell's metrics to `bench` (the
/// combined `BENCH_net.json` the `exp_net --load --json` path commits).
/// Returns the markdown section.
pub fn extend(bench: &mut BenchReport, quick: bool, opts: &LoadOptions) -> String {
    let cells = cells(quick, opts);
    let arrival = opts.arrival.unwrap_or(Arrival::Exponential);
    let base_seed = 0x10ad_7ace_u64;

    let mut table = Table::new(&[
        "cell",
        "sessions",
        "conns",
        "offered/s",
        "achieved/s",
        "done",
        "p50 ms",
        "p90 ms",
        "p95 ms",
        "p99 ms",
        "max ms",
        "lag ms",
    ]);
    let mut sections = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let result = run_cell(cell, base_seed + i as u64);
        table.row(vec![
            cell.key.clone(),
            cell.sessions.to_string(),
            cell.conns.to_string(),
            format!("{:.0}", result.offered_per_sec),
            format!("{:.0}", result.achieved_per_sec),
            result.completed.to_string(),
            format!("{:.2}", result.quantile_ms(0.50)),
            format!("{:.2}", result.quantile_ms(0.90)),
            format!("{:.2}", result.quantile_ms(0.95)),
            format!("{:.2}", result.quantile_ms(0.99)),
            format!("{:.2}", result.quantile_ms(1.0)),
            format!("{:.2}", result.max_inject_lag.as_secs_f64() * 1e3),
        ]);
        let k = &cell.key;
        bench.push(format!("load_{k}_offered_per_sec"), result.offered_per_sec);
        bench.push(
            format!("load_{k}_achieved_per_sec"),
            result.achieved_per_sec,
        );
        bench.push(format!("load_{k}_completed"), result.completed as f64);
        bench.push(format!("load_{k}_p50_ms"), result.quantile_ms(0.50));
        bench.push(format!("load_{k}_p90_ms"), result.quantile_ms(0.90));
        bench.push(format!("load_{k}_p95_ms"), result.quantile_ms(0.95));
        bench.push(format!("load_{k}_p99_ms"), result.quantile_ms(0.99));
        bench.push(format!("load_{k}_max_ms"), result.quantile_ms(1.0));
        bench.push(
            format!("load_{k}_inject_lag_ms"),
            result.max_inject_lag.as_secs_f64() * 1e3,
        );
        // Informational (ungated) internals, when recording is on: the
        // per-cell registry delta for a few load-bearing counters, so a
        // regression investigation can see *how* a cell did its work
        // (poll pressure, wire volume) next to its latency numbers.
        if let Some(obs) = &result.internals {
            for key in [
                "exec_sessions_completed",
                "net_reactor_polls",
                "net_client_polls",
                "net_wire_bytes_in",
                "net_wire_bytes_out",
            ] {
                if let Some(v) = obs.value(key) {
                    bench.push(format!("load_{k}_obs_{key}"), v);
                }
            }
        }
        sections.push(format!(
            "cell `{k}`: {} sessions over {} connection(s), {} arrivals at \
             {:.0}/s offered, {} shards",
            cell.sessions,
            cell.conns,
            arrival.token(),
            cell.rate,
            cell.shards
        ));
    }

    format!(
        "## L1 — open-loop latency under load\n\n\
         Injected each cell's production-day trace \
         (emd-heavy blend, periodic bulk sessions) on a pre-computed \
         {}-arrival schedule against the loopback server; every session's \
         outcome and transcript bits matched the serial in-memory \
         reference (instances whose decode intrinsically fails must fail \
         identically under load). Latency is measured from the *scheduled* \
         arrival to full settle (local half done and server `DONE`), so \
         generator lag is charged to the system, never forgiven \
         (coordinated omission — docs/loadgen.md). Percentiles come from a \
         log-bucketed histogram with ≤{:.1}% relative bucket error.\n\n\
         Cells: {}.\n\n{}",
        arrival.token(),
        LogHistogram::new(DEFAULT_SUB_BITS).relative_error() * 100.0,
        sections.join("; "),
        table.render()
    )
}
