//! N1 — session throughput across drivers: the serial in-memory loop,
//! the sharded executor at 1→2→4→8 workers, and executor-driven TCP,
//! all replaying one trace.
//!
//! Claims measured: every driver produces bit-identical per-session
//! transcripts and identical per-session outcomes; a single
//! [`ReconServer`] connection carries the whole trace concurrently; the
//! wire overhead beyond the payload is just the record headers; and the
//! sharded executor's sessions/sec scales with the worker count (on
//! multi-core hosts — the sweep reports whatever the hardware gives).
//! Timing covers **only the drive loops**: trace parsing, instance
//! construction, and socket setup all happen outside the clocks, so the
//! shard-count comparison is apples-to-apples.
//!
//! The session batch comes from `rsr-workloads`' replayable trace
//! format: the trace is written out, parsed back, and every driver
//! replays the parsed copy. With `--json` the measured rates are also
//! emitted as a `BENCH_net.json` [`BenchReport`] that CI gates against
//! the committed baseline.

use crate::benchjson::BenchReport;
use crate::table::Table;
use rsr_core::channel::Frame;
use rsr_core::continuous::{shared, ContinuousConfig, ContinuousParty, SharedParty};
use rsr_core::emd_protocol::{EmdProtocol, EmdProtocolConfig};
use rsr_core::executor::{drive_batch, DynSession, DEFAULT_STALL_TIMEOUT};
use rsr_core::gap_protocol::{GapConfig, GapProtocol};
use rsr_core::ScaledEmdProtocol;
use rsr_hash::lsh::LshParams;
use rsr_hash::BitSamplingFamily;
use rsr_metric::{MetricSpace, Point};
use rsr_net::{
    Driver, NetSession, ReconServer, SessionFactory, SessionPlan, SessionSpec, PROTO_CONT,
    PROTO_EMD, PROTO_GAP, PROTO_SCALED_EMD,
};
use rsr_obs::procstat::{sample_peaks_during, Peaks};
use rsr_workloads::trace::{read_trace, sample_trace, write_trace, TraceEntry, TraceProtocol};
use rsr_workloads::{base_set, planted_emd, sensor_pairs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One buildable, runnable protocol instance from a trace entry. Owns
/// the protocol object (public coins) and both parties' points; sessions
/// are borrowed views, so the same instance can back the in-memory
/// baseline, the server factory, and the client batch.
pub enum Instance {
    /// Algorithm 1 on a Hamming cube.
    Emd {
        /// The protocol (public coins shared by both parties).
        proto: EmdProtocol,
        /// Alice's points.
        alice: Vec<Point>,
        /// Bob's points.
        bob: Vec<Point>,
    },
    /// The interval-scaled protocol on an ℓ2 grid.
    ScaledEmd {
        /// The protocol.
        proto: ScaledEmdProtocol,
        /// Alice's points.
        alice: Vec<Point>,
        /// Bob's points.
        bob: Vec<Point>,
    },
    /// The Gap Guarantee protocol on a Hamming cube.
    Gap {
        /// The protocol.
        proto: GapProtocol<BitSamplingFamily>,
        /// Alice's points.
        alice: Vec<Point>,
        /// Bob's points.
        bob: Vec<Point>,
    },
}

impl Instance {
    /// Deterministically regenerates the instance a trace entry pins:
    /// same entry, same workload, same public coins — anywhere.
    pub fn build(entry: &TraceEntry) -> Instance {
        let TraceEntry {
            protocol,
            n,
            k,
            dim,
            seed,
        } = *entry;
        match protocol {
            TraceProtocol::Emd => {
                let space = MetricSpace::hamming(dim);
                let w = planted_emd(space, n, k, 1, seed);
                let cfg = EmdProtocolConfig::for_space(&space, n, k);
                Instance::Emd {
                    proto: EmdProtocol::new(space, cfg, seed ^ 0x5e55),
                    alice: w.alice,
                    bob: w.bob,
                }
            }
            TraceProtocol::ScaledEmd => {
                let space = MetricSpace::l2(256, dim);
                let w = planted_emd(space, n, k, 1, seed);
                Instance::ScaledEmd {
                    proto: ScaledEmdProtocol::new(space, n, k, seed ^ 0xa1a1),
                    alice: w.alice,
                    bob: w.bob,
                }
            }
            TraceProtocol::Gap => {
                let space = MetricSpace::hamming(dim);
                let (r1, r2) = (2.0, 44.0 * dim as f64 / 128.0);
                let family = BitSamplingFamily::new(dim, dim as f64);
                let params = LshParams::new(r1, r2, 1.0 - r1 / dim as f64, 1.0 - r2 / dim as f64);
                let w = sensor_pairs(space, n, k, r1, r2, seed);
                let cfg = GapConfig::for_params(params, n, k);
                Instance::Gap {
                    proto: GapProtocol::new(space, &family, cfg, seed ^ 0x6a6a),
                    alice: w.alice,
                    bob: w.bob,
                }
            }
        }
    }

    /// Runs the instance through the in-memory driver; `Ok` carries the
    /// measured total transcript bits.
    pub fn run_in_memory(&self) -> Result<u64, String> {
        self.run_in_memory_transcript().map(|t| t.total_bits())
    }

    /// Runs the instance through the in-memory driver and returns the
    /// full transcript, for entry-level (bit-for-bit) comparisons.
    pub fn run_in_memory_transcript(&self) -> Result<rsr_core::Transcript, String> {
        match self {
            Instance::Emd { proto, alice, bob } => proto
                .run(alice, bob)
                .map(|o| o.transcript)
                .map_err(|e| e.to_string()),
            Instance::ScaledEmd { proto, alice, bob } => proto
                .run(alice, bob)
                .map(|o| o.transcript)
                .map_err(|e| e.to_string()),
            Instance::Gap { proto, alice, bob } => proto
                .run(alice, bob)
                .map(|o| o.transcript)
                .map_err(|e| e.to_string()),
        }
    }

    /// The client-side (Alice) session over this instance.
    pub fn alice_session(&self) -> Box<dyn NetSession + '_> {
        match self {
            Instance::Emd { proto, alice, .. } => Box::new(proto.alice_session(alice)),
            Instance::ScaledEmd { proto, alice, .. } => Box::new(proto.alice_session(alice)),
            Instance::Gap { proto, alice, .. } => Box::new(proto.alice_session(alice)),
        }
    }

    /// The server-side (Bob) session over this instance.
    pub fn bob_session(&self) -> Box<dyn NetSession + '_> {
        match self {
            Instance::Emd { proto, bob, .. } => Box::new(proto.bob_session(bob)),
            Instance::ScaledEmd { proto, bob, .. } => Box::new(proto.bob_session(bob)),
            Instance::Gap { proto, bob, .. } => Box::new(proto.bob_session(bob)),
        }
    }
}

/// The one bench-side [`SessionFactory`]: spec-primary, with the
/// pre-built trace as a fallback for bare opens.
///
/// An `OPEN` carrying a [`SessionSpec`] always wins — the instance is
/// rebuilt on demand from the wire parameters, exactly as
/// [`entry_of`] decodes them. A bare open (no spec) falls back to the
/// trace the factory was built from, by session id = trace position;
/// a [`InstanceFactory::spec_only`] factory has no trace and refuses
/// bare opens. Continuous opens ([`SessionSpec::continuous`] set, with
/// [`PROTO_CONT`]) get a resident
/// [`ContinuousParty`] derived from the same spec both endpoints see,
/// so no state crosses out of band.
///
/// This replaces the PR 6/7 `TraceFactory`/`SpecFactory` pair — two
/// types, two trait shapes, and callers picking between them — with
/// one factory whose behaviour depends only on what the wire says.
pub struct InstanceFactory {
    /// The trace-bound instances bare opens fall back to, indexed by
    /// session id; empty for a spec-only factory.
    pub instances: Vec<Instance>,
}

impl InstanceFactory {
    /// A factory that serves only spec-carrying opens — the common case
    /// once every client negotiates over the wire.
    pub fn spec_only() -> InstanceFactory {
        InstanceFactory {
            instances: Vec::new(),
        }
    }

    /// The trace-bound adapter: bare opens resolve session id → trace
    /// position against these pre-built instances (spec-carrying opens
    /// still take the spec path).
    pub fn from_trace(entries: &[TraceEntry]) -> InstanceFactory {
        InstanceFactory {
            instances: entries.iter().map(Instance::build).collect(),
        }
    }
}

impl SessionFactory for InstanceFactory {
    fn open_spec(
        &self,
        session_id: u64,
        spec: Option<&SessionSpec>,
    ) -> Option<Box<dyn NetSession + '_>> {
        match spec {
            Some(spec) => Some(Box::new(OwnedBobSession::build(&entry_of(spec)?))),
            None => self
                .instances
                .get(session_id as usize)
                .map(|inst| inst.bob_session()),
        }
    }

    fn open_continuous(&self, _session_id: u64, spec: &SessionSpec) -> Option<SharedParty> {
        (spec.protocol == PROTO_CONT).then(|| shared(continuous_party_of(spec)))
    }
}

/// The continuous spec both endpoints derive their party from: `n`
/// initial keys, churn bound `k`, shared coins from `seed`.
pub fn continuous_spec(n: usize, churn_bound: usize, seed: u64) -> SessionSpec {
    SessionSpec {
        protocol: PROTO_CONT,
        n: n as u32,
        k: churn_bound as u32,
        dim: 0,
        seed,
        continuous: false,
    }
}

/// Builds one endpoint's [`ContinuousParty`] from a continuous spec —
/// deterministic in the spec, so the client's Alice and the server's
/// Bob start from identical sets and identical table coins.
pub fn continuous_party_of(spec: &SessionSpec) -> ContinuousParty {
    let cfg = ContinuousConfig::for_churn(spec.k as usize, spec.seed ^ 0xc047_1a61);
    ContinuousParty::new(cfg, base_set(spec.n as usize, spec.seed))
}

/// The wire spec that lets a spec-primary server rebuild `entry`'s
/// instance from the OPEN record alone — no pre-shared trace.
pub fn spec_of(entry: &TraceEntry) -> SessionSpec {
    SessionSpec {
        protocol: match entry.protocol {
            TraceProtocol::Emd => PROTO_EMD,
            TraceProtocol::ScaledEmd => PROTO_SCALED_EMD,
            TraceProtocol::Gap => PROTO_GAP,
        },
        n: entry.n as u32,
        k: entry.k as u32,
        dim: entry.dim as u32,
        seed: entry.seed,
        continuous: false,
    }
}

/// The trace entry a wire spec pins, or `None` for a protocol code this
/// build does not speak.
pub fn entry_of(spec: &SessionSpec) -> Option<TraceEntry> {
    let protocol = match spec.protocol {
        PROTO_EMD => TraceProtocol::Emd,
        PROTO_SCALED_EMD => TraceProtocol::ScaledEmd,
        PROTO_GAP => TraceProtocol::Gap,
        _ => return None,
    };
    Some(TraceEntry {
        protocol,
        n: spec.n as usize,
        k: spec.k as usize,
        dim: spec.dim as usize,
        seed: spec.seed,
    })
}

/// A Bob session that owns the instance backing it, so a factory can
/// build instances at OPEN time from the wire spec instead of holding a
/// pre-agreed trace.
struct OwnedBobSession {
    /// Borrows from `_instance`; declared first so it drops first.
    session: Box<dyn NetSession + 'static>,
    /// The heap-pinned instance `session` borrows.
    _instance: Box<Instance>,
}

impl OwnedBobSession {
    fn build(entry: &TraceEntry) -> OwnedBobSession {
        let instance = Box::new(Instance::build(entry));
        let session: Box<dyn NetSession + '_> = instance.bob_session();
        // SAFETY: `session` borrows the `Instance` behind `instance`'s
        // heap allocation, whose address is stable however the box
        // moves. The box moves into this struct alongside the session,
        // the struct is never taken apart, and the field order drops
        // `session` first, so the erased borrow never dangles.
        let session: Box<dyn NetSession + 'static> = unsafe { std::mem::transmute(session) };
        OwnedBobSession {
            session,
            _instance: instance,
        }
    }
}

impl NetSession for OwnedBobSession {
    fn poll_send(&mut self) -> Result<Option<Frame>, String> {
        self.session.poll_send()
    }

    fn protocol(&self) -> &'static str {
        // Forwarded so the per-protocol session counters attribute
        // spec-built sessions to their real protocol, not the default.
        self.session.protocol()
    }

    fn on_frame(&mut self, frame: Frame) -> Result<(), String> {
        self.session.on_frame(frame)
    }

    fn is_done(&self) -> bool {
        self.session.is_done()
    }
}

/// The slowdown budget for metrics recording, asserted in-bin on the
/// single-connection sweep cell when metrics are on: the instrumented
/// sessions/sec must stay within this percentage of the uninstrumented
/// rate.
pub const METRICS_OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// Runs the experiment, discarding the machine-readable report.
pub fn run(quick: bool) -> String {
    run_with_json(quick).0
}

/// Runs the experiment with metrics recording off; returns the markdown
/// section and the `BENCH_net.json` report.
pub fn run_with_json(quick: bool) -> (String, BenchReport) {
    run_with_json_metrics(quick, false)
}

/// Runs the experiment; returns the markdown section and the
/// `BENCH_net.json` report. With `metrics` the `rsr-obs` registry
/// records throughout, the single-connection sweep cell is measured
/// both with and without recording (asserting the overhead stays within
/// [`METRICS_OVERHEAD_BUDGET_PCT`]), and the gated throughput keys come
/// from the metrics-on timing.
pub fn run_with_json_metrics(quick: bool, metrics: bool) -> (String, BenchReport) {
    if metrics {
        rsr_obs::set_enabled(true);
    }
    let count = if quick { 64 } else { 256 };
    let shard_sweep: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let tcp_shards = *shard_sweep.last().expect("non-empty sweep");
    let trace_seed = 0xbea7_1e55;
    let mut bench = BenchReport::new("net", quick);
    bench.push("sessions", count as f64);

    // Pin the batch through the trace format itself: write, parse back,
    // replay the parsed copy. None of this is timed.
    let mut text = Vec::new();
    write_trace(&mut text, &sample_trace(count, trace_seed)).expect("in-memory write");
    let entries = read_trace(&mut text.as_slice()).expect("own trace parses");
    let factory = Arc::new(InstanceFactory::from_trace(&entries));

    // Driver A: the serial in-memory loop, one session at a time — the
    // reference for both correctness and throughput.
    let t0 = Instant::now();
    let baseline: Vec<Result<u64, String>> = factory
        .instances
        .iter()
        .map(Instance::run_in_memory)
        .collect();
    let serial_elapsed = t0.elapsed();
    let serial_rate = count as f64 / serial_elapsed.as_secs_f64();
    bench.push("serial_wall_ms", serial_elapsed.as_secs_f64() * 1e3);
    bench.push("serial_sessions_per_sec", serial_rate);

    let mut table = Table::new(&[
        "driver",
        "shards",
        "sessions",
        "completed",
        "wire bytes",
        "elapsed ms",
        "sessions/sec",
        "vs serial",
    ]);
    let completed = baseline.iter().filter(|r| r.is_ok()).count();
    table.row(vec![
        "serial in-memory".into(),
        "—".into(),
        count.to_string(),
        completed.to_string(),
        "—".into(),
        format!("{:.1}", serial_elapsed.as_secs_f64() * 1e3),
        format!("{serial_rate:.0}"),
        "1.00x".into(),
    ]);

    // Driver B: the sharded executor's in-process drive_batch, over the
    // same instances, at each worker count. Pair construction (cheap
    // borrowed views) happens outside the clock; the drive is timed.
    for &shards in shard_sweep {
        let pairs: Vec<(Box<dyn DynSession + '_>, Box<dyn DynSession + '_>)> = factory
            .instances
            .iter()
            .map(|inst| (inst.alice_session(), inst.bob_session()))
            .collect();
        let t0 = Instant::now();
        let outcomes = drive_batch(shards, trace_seed, pairs, DEFAULT_STALL_TIMEOUT);
        let elapsed = t0.elapsed();
        let rate = count as f64 / elapsed.as_secs_f64();
        for (i, (mem, out)) in baseline.iter().zip(&outcomes).enumerate() {
            match mem {
                Ok(bits) => {
                    assert!(
                        out.is_ok(),
                        "session {i}: serial ok but {shards}-shard executor failed: {:?}",
                        out.error
                    );
                    assert_eq!(
                        *bits,
                        out.transcript.total_bits(),
                        "session {i} bits at {shards} shards"
                    );
                }
                Err(_) => assert!(
                    !out.is_ok(),
                    "session {i}: serial failed but {shards}-shard executor ok"
                ),
            }
        }
        table.row(vec![
            "executor in-memory".into(),
            shards.to_string(),
            count.to_string(),
            outcomes.iter().filter(|o| o.is_ok()).count().to_string(),
            "—".into(),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            format!("{rate:.0}"),
            format!("{:.2}x", rate / serial_rate),
        ]);
        bench.push(
            format!("shards{shards}_wall_ms"),
            elapsed.as_secs_f64() * 1e3,
        );
        bench.push(format!("shards{shards}_sessions_per_sec"), rate);
    }

    // Driver C: every session multiplexed over ONE TCP connection, both
    // endpoints executor-driven at the widest sweep setting. Socket
    // setup and session-view construction stay outside the clock.
    let server = ReconServer::bind("127.0.0.1:0", Arc::clone(&factory))
        .expect("bind loopback")
        .with_shards(tcp_shards);
    let addr = server.local_addr().expect("bound address");
    let server_thread = std::thread::spawn(move || server.serve_one());
    let plans: Vec<SessionPlan<'_>> = factory
        .instances
        .iter()
        .enumerate()
        .map(|(i, inst)| SessionPlan::new(i as u64, inst.alice_session()))
        .collect();
    let t0 = Instant::now();
    let report = Driver::new(addr)
        .shards(tcp_shards)
        // A wedged session must fail the run, not hang CI forever.
        .idle_timeout(Some(Duration::from_secs(120)))
        .batch(vec![plans])
        .expect("batch completes");
    let tcp_elapsed = t0.elapsed();
    let batch = report.conns.into_iter().next().expect("one connection");
    assert!(
        batch.transport_error.is_none(),
        "tcp batch transport failure: {:?}",
        batch.transport_error
    );
    let conn = server_thread
        .join()
        .expect("server thread")
        .expect("connection served");
    let tcp_rate = count as f64 / tcp_elapsed.as_secs_f64();
    bench.push("tcp_shards", tcp_shards as f64);
    bench.push("tcp_wall_ms", tcp_elapsed.as_secs_f64() * 1e3);
    bench.push("tcp_sessions_per_sec", tcp_rate);

    // Every driver must agree session by session: same success, same
    // measured bits, on the client, the server, and the baseline.
    assert_eq!(batch.sessions.len(), entries.len());
    assert_eq!(conn.sessions.len(), entries.len());
    let mut agreeing = 0;
    let mut failed_on_both = 0;
    for (i, (mem, net)) in baseline.iter().zip(&batch.sessions).enumerate() {
        let srv = &conn.sessions[i];
        match mem {
            Ok(bits) => {
                assert!(
                    net.is_ok(),
                    "session {i}: in-memory ok but tcp failed: {:?}",
                    net.error
                );
                assert_eq!(*bits, net.transcript.total_bits(), "session {i} bits");
                assert_eq!(
                    *bits,
                    srv.transcript.total_bits(),
                    "session {i} server bits"
                );
                agreeing += 1;
            }
            Err(_) => {
                assert!(!net.is_ok(), "session {i}: in-memory failed but tcp ok");
                failed_on_both += 1;
            }
        }
    }

    let payload_bytes = batch
        .sessions
        .iter()
        .flat_map(|s| s.transcript.entries().map(|(_, bits)| bits.div_ceil(8)))
        .sum::<u64>();
    let wire_bytes = batch.wire_bytes_out + batch.wire_bytes_in;
    bench.push("payload_bits", batch.payload_bits() as f64);
    bench.push("wire_bits", (wire_bytes * 8) as f64);
    table.row(vec![
        "executor tcp loopback".into(),
        tcp_shards.to_string(),
        count.to_string(),
        batch.completed().to_string(),
        wire_bytes.to_string(),
        format!("{:.1}", tcp_elapsed.as_secs_f64() * 1e3),
        format!("{tcp_rate:.0}"),
        format!("{:.2}x", tcp_rate / serial_rate),
    ]);

    // Driver D: the connections × sessions sweep. C connections carry
    // several successive batch rounds each, all multiplexed through ONE
    // server reactor and ONE client reactor sharing one executor per
    // endpoint; sessions negotiate their instance over the wire (the
    // OPEN spec), so the server rebuilds each instance on demand instead
    // of holding a pre-agreed trace. The process thread count is sampled
    // throughout and must stay flat as C grows — adding connections adds
    // sockets, never threads. The client replays a small instance pool
    // (cheap borrowed session views), bounding memory while the session
    // count scales.
    let pool_entries = sample_trace(16, trace_seed ^ 0x51ee9);
    let pool: Vec<Instance> = pool_entries.iter().map(Instance::build).collect();
    let pool_specs: Vec<SessionSpec> = pool_entries.iter().map(spec_of).collect();
    let pool_baseline: Vec<Result<u64, String>> =
        pool.iter().map(Instance::run_in_memory).collect();
    // (connections, rounds, sessions per connection per round).
    let sweep: &[(usize, usize, usize)] = if quick {
        &[(1, 2, 32), (4, 2, 8), (16, 2, 2)]
    } else {
        &[(1, 4, 256), (8, 4, 32), (64, 5, 32)]
    };
    let mut sweep_table = Table::new(&[
        "connections",
        "rounds",
        "sessions",
        "elapsed ms",
        "sessions/sec",
        "peak threads",
    ]);
    let mut peaks: Vec<u64> = Vec::new();
    for &(conns, rounds, per_round) in sweep {
        let total = conns * rounds * per_round;
        let cell = || {
            run_sweep_cell(
                conns,
                rounds,
                per_round,
                tcp_shards,
                &pool,
                &pool_specs,
                &pool_baseline,
            )
        };
        // The single-connection cell doubles as the overhead probe when
        // metrics are on: its reported timing is the metrics-on run, so
        // the gated sessions/sec keys always carry the instrumented
        // cost.
        let mut overhead_pct = None;
        let (elapsed, cell_peaks) = if metrics && conns == 1 {
            let (elapsed, cell_peaks, pct) = measure_cell_overhead(total, cell);
            overhead_pct = Some(pct);
            (elapsed, cell_peaks)
        } else {
            cell()
        };
        let rate = total as f64 / elapsed.as_secs_f64();
        sweep_table.row(vec![
            conns.to_string(),
            rounds.to_string(),
            total.to_string(),
            format!("{:.1}", elapsed.as_secs_f64() * 1e3),
            format!("{rate:.0}"),
            cell_peaks.threads.to_string(),
        ]);
        bench.push(format!("sweep_c{conns}_s{total}_sessions_per_sec"), rate);
        bench.push(
            format!("sweep_c{conns}_s{total}_threads"),
            cell_peaks.threads as f64,
        );
        // Informational (ungated): the kernel's lifetime RSS high-water
        // mark as of this cell — monotone across cells by construction.
        bench.push(
            format!("sweep_c{conns}_s{total}_rss_mb"),
            cell_peaks.rss_peak_mb(),
        );
        if let Some(pct) = overhead_pct {
            // Informational (ungated): the measured metrics tax.
            bench.push("sweep_c1_metrics_overhead_pct", pct);
        }
        peaks.push(cell_peaks.threads);
    }
    let (peak_min, peak_max) = (
        *peaks.iter().min().expect("non-empty sweep"),
        *peaks.iter().max().expect("non-empty sweep"),
    );
    assert_eq!(
        peak_min, peak_max,
        "thread count must stay flat across the connection sweep: {peaks:?}"
    );

    let report = format!(
        "## N1 — session throughput: serial vs sharded executor vs TCP\n\n\
         Replayed one {count}-session trace (seed {trace_seed:#x}; emd/semd/gap \
         mix) over every driver; each executor width and both TCP endpoints \
         agree bit-for-bit with the serial driver on all {agreeing} completed \
         sessions and {failed_on_both} failed identically everywhere. Timing \
         covers only the drive loops (no trace parsing, instance building, or \
         socket setup). The single server connection multiplexed {count} \
         sessions ({} frames in, {} frames out) across {tcp_shards} worker \
         shards per endpoint; framing overhead was {} bytes over the \
         {payload_bytes}-byte payload. Two-choice placement spread the \
         sessions over the shards; scaling depends on available cores.\n\n{}\n\n\
         ### Connections × sessions sweep (one reactor, flat threads)\n\n\
         Each sweep cell multiplexes its connections through one server \
         reactor and one client reactor (one executor per endpoint); every \
         session negotiates its instance over the wire via the OPEN spec, \
         and each connection carries several successive batch rounds. The \
         peak process thread count was {peak_max} in every cell — flat \
         across the connection sweep by construction, and asserted so.\n\n{}",
        conn.frames_in,
        conn.frames_out,
        wire_bytes - payload_bytes,
        table.render(),
        sweep_table.render()
    );
    (report, bench)
}

/// One cell of the connections × sessions sweep: `conns` connections,
/// each carrying `rounds` successive rounds of `per_round` sessions,
/// all through one server reactor and one client reactor. Socket setup
/// stays outside the clock; process peaks (threads, RSS) are sampled
/// across the timed drive. Every session's outcome is asserted against
/// the in-memory pool baseline.
fn run_sweep_cell(
    conns: usize,
    rounds: usize,
    per_round: usize,
    tcp_shards: usize,
    pool: &[Instance],
    pool_specs: &[SessionSpec],
    pool_baseline: &[Result<u64, String>],
) -> (Duration, Peaks) {
    let server = ReconServer::bind("127.0.0.1:0", Arc::new(InstanceFactory::spec_only()))
        .expect("bind loopback")
        .with_shards(tcp_shards);
    let addr = server.local_addr().expect("bound address");
    let server_thread = std::thread::spawn(move || server.serve(Some(conns)));
    let mut driver = Driver::new(addr)
        .conns(conns)
        .shards(tcp_shards)
        .idle_timeout(Some(Duration::from_secs(120)))
        .connect()
        .expect("connect loopback");
    let (elapsed, peaks) = sample_peaks_during(|| {
        let t0 = Instant::now();
        for round in 0..rounds {
            let batches: Vec<Vec<SessionPlan<'_>>> = (0..conns)
                .map(|_| {
                    (0..per_round)
                        .map(|i| {
                            let id = (round * per_round + i) as u64;
                            let p = id as usize % pool.len();
                            SessionPlan::new(id, pool[p].alice_session()).with_spec(pool_specs[p])
                        })
                        .collect()
                })
                .collect();
            let round_report = driver.batch(batches).expect("sweep round");
            for report in &round_report.conns {
                assert!(
                    report.transport_error.is_none(),
                    "c{conns} round {round}: {:?}",
                    report.transport_error
                );
                for s in &report.sessions {
                    let p = s.id as usize % pool.len();
                    match &pool_baseline[p] {
                        Ok(bits) => {
                            assert!(
                                s.is_ok(),
                                "c{conns} session {}: in-memory ok but sweep failed: {:?}",
                                s.id,
                                s.error
                            );
                            assert_eq!(
                                *bits,
                                s.transcript.total_bits(),
                                "c{conns} session {} bits",
                                s.id
                            );
                        }
                        Err(_) => assert!(
                            !s.is_ok(),
                            "c{conns} session {}: in-memory failed but sweep ok",
                            s.id
                        ),
                    }
                }
            }
        }
        t0.elapsed()
    });
    driver.finish();
    server_thread
        .join()
        .expect("server thread")
        .expect("server serves the sweep");
    (elapsed, peaks)
}

/// Measures the metrics tax on one sweep cell: runs `cell` with
/// recording off, then on, and compares sessions/sec. A single pair on
/// a noisy (often 1-CPU) CI box proves nothing, so an over-budget pair
/// is retried — up to three attempts, keeping the best — and only if
/// every attempt exceeds [`METRICS_OVERHEAD_BUDGET_PCT`] does the run
/// panic. Returns the metrics-ON timing and peaks (what the caller
/// reports) plus the measured overhead percentage (negative when the
/// instrumented run was faster — pure noise).
fn measure_cell_overhead(
    total: usize,
    cell: impl Fn() -> (Duration, Peaks),
) -> (Duration, Peaks, f64) {
    assert!(rsr_obs::enabled(), "overhead probe needs metrics on");
    let mut best: Option<(Duration, Peaks, f64)> = None;
    for _attempt in 0..3 {
        rsr_obs::set_enabled(false);
        let (off_elapsed, _) = cell();
        rsr_obs::set_enabled(true);
        let (on_elapsed, on_peaks) = cell();
        let off_rate = total as f64 / off_elapsed.as_secs_f64();
        let on_rate = total as f64 / on_elapsed.as_secs_f64();
        let pct = (1.0 - on_rate / off_rate) * 100.0;
        if best.is_none() || pct < best.expect("just checked").2 {
            best = Some((on_elapsed, on_peaks, pct));
        }
        if pct <= METRICS_OVERHEAD_BUDGET_PCT {
            break;
        }
    }
    let (on_elapsed, on_peaks, pct) = best.expect("at least one attempt ran");
    assert!(
        pct <= METRICS_OVERHEAD_BUDGET_PCT,
        "metrics recording cost {pct:.1}% sessions/sec on the c1 sweep cell \
         (budget {METRICS_OVERHEAD_BUDGET_PCT}%) across three attempts"
    );
    (on_elapsed, on_peaks, pct)
}
