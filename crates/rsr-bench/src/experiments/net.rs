//! N1 — the TCP transport: many multiplexed sessions over one
//! connection, replaying one trace across transports.
//!
//! Claims measured: a single [`ReconServer`] connection carries ≥ 64
//! concurrently multiplexed sessions of all three protocols; every
//! session's outcome and measured transcript bits over TCP loopback are
//! identical to the in-memory driver's; the wire overhead beyond the
//! payload is just the record headers. Reports sessions/sec on loopback
//! vs in memory.
//!
//! The session batch comes from `rsr-workloads`' replayable trace
//! format: the trace is written out, parsed back, and both transports
//! replay the parsed copy — the first use of the ROADMAP's "replayable
//! trace format" item.

use crate::table::Table;
use rsr_core::emd_protocol::{EmdProtocol, EmdProtocolConfig};
use rsr_core::gap_protocol::{GapConfig, GapProtocol};
use rsr_core::ScaledEmdProtocol;
use rsr_hash::lsh::LshParams;
use rsr_hash::BitSamplingFamily;
use rsr_metric::{MetricSpace, Point};
use rsr_net::{NetSession, ReconClient, ReconServer, SessionFactory};
use rsr_workloads::trace::{read_trace, sample_trace, write_trace, TraceEntry, TraceProtocol};
use rsr_workloads::{planted_emd, sensor_pairs};
use std::sync::Arc;
use std::time::Instant;

/// One buildable, runnable protocol instance from a trace entry. Owns
/// the protocol object (public coins) and both parties' points; sessions
/// are borrowed views, so the same instance can back the in-memory
/// baseline, the server factory, and the client batch.
pub enum Instance {
    /// Algorithm 1 on a Hamming cube.
    Emd {
        /// The protocol (public coins shared by both parties).
        proto: EmdProtocol,
        /// Alice's points.
        alice: Vec<Point>,
        /// Bob's points.
        bob: Vec<Point>,
    },
    /// The interval-scaled protocol on an ℓ2 grid.
    ScaledEmd {
        /// The protocol.
        proto: ScaledEmdProtocol,
        /// Alice's points.
        alice: Vec<Point>,
        /// Bob's points.
        bob: Vec<Point>,
    },
    /// The Gap Guarantee protocol on a Hamming cube.
    Gap {
        /// The protocol.
        proto: GapProtocol<BitSamplingFamily>,
        /// Alice's points.
        alice: Vec<Point>,
        /// Bob's points.
        bob: Vec<Point>,
    },
}

impl Instance {
    /// Deterministically regenerates the instance a trace entry pins:
    /// same entry, same workload, same public coins — anywhere.
    pub fn build(entry: &TraceEntry) -> Instance {
        let TraceEntry {
            protocol,
            n,
            k,
            dim,
            seed,
        } = *entry;
        match protocol {
            TraceProtocol::Emd => {
                let space = MetricSpace::hamming(dim);
                let w = planted_emd(space, n, k, 1, seed);
                let cfg = EmdProtocolConfig::for_space(&space, n, k);
                Instance::Emd {
                    proto: EmdProtocol::new(space, cfg, seed ^ 0x5e55),
                    alice: w.alice,
                    bob: w.bob,
                }
            }
            TraceProtocol::ScaledEmd => {
                let space = MetricSpace::l2(256, dim);
                let w = planted_emd(space, n, k, 1, seed);
                Instance::ScaledEmd {
                    proto: ScaledEmdProtocol::new(space, n, k, seed ^ 0xa1a1),
                    alice: w.alice,
                    bob: w.bob,
                }
            }
            TraceProtocol::Gap => {
                let space = MetricSpace::hamming(dim);
                let (r1, r2) = (2.0, 44.0 * dim as f64 / 128.0);
                let family = BitSamplingFamily::new(dim, dim as f64);
                let params = LshParams::new(r1, r2, 1.0 - r1 / dim as f64, 1.0 - r2 / dim as f64);
                let w = sensor_pairs(space, n, k, r1, r2, seed);
                let cfg = GapConfig::for_params(params, n, k);
                Instance::Gap {
                    proto: GapProtocol::new(space, &family, cfg, seed ^ 0x6a6a),
                    alice: w.alice,
                    bob: w.bob,
                }
            }
        }
    }

    /// Runs the instance through the in-memory driver; `Ok` carries the
    /// measured total transcript bits.
    pub fn run_in_memory(&self) -> Result<u64, String> {
        match self {
            Instance::Emd { proto, alice, bob } => proto
                .run(alice, bob)
                .map(|o| o.transcript.total_bits())
                .map_err(|e| e.to_string()),
            Instance::ScaledEmd { proto, alice, bob } => proto
                .run(alice, bob)
                .map(|o| o.transcript.total_bits())
                .map_err(|e| e.to_string()),
            Instance::Gap { proto, alice, bob } => proto
                .run(alice, bob)
                .map(|o| o.transcript.total_bits())
                .map_err(|e| e.to_string()),
        }
    }

    /// The client-side (Alice) session over this instance.
    pub fn alice_session(&self) -> Box<dyn NetSession + '_> {
        match self {
            Instance::Emd { proto, alice, .. } => Box::new(proto.alice_session(alice)),
            Instance::ScaledEmd { proto, alice, .. } => Box::new(proto.alice_session(alice)),
            Instance::Gap { proto, alice, .. } => Box::new(proto.alice_session(alice)),
        }
    }

    /// The server-side (Bob) session over this instance.
    pub fn bob_session(&self) -> Box<dyn NetSession + '_> {
        match self {
            Instance::Emd { proto, bob, .. } => Box::new(proto.bob_session(bob)),
            Instance::ScaledEmd { proto, bob, .. } => Box::new(proto.bob_session(bob)),
            Instance::Gap { proto, bob, .. } => Box::new(proto.bob_session(bob)),
        }
    }
}

/// Serves the Bob half of every instance of a trace, by session id =
/// trace position.
pub struct TraceFactory {
    /// The built instances, indexed by session id.
    pub instances: Vec<Instance>,
}

impl SessionFactory for TraceFactory {
    fn open(&self, session_id: u64) -> Option<Box<dyn NetSession + '_>> {
        self.instances
            .get(session_id as usize)
            .map(|inst| inst.bob_session())
    }
}

/// Runs the experiment.
pub fn run(quick: bool) -> String {
    let count = if quick { 64 } else { 128 };
    let trace_seed = 0xbea7_1e55;

    // Pin the batch through the trace format itself: write, parse back,
    // replay the parsed copy.
    let mut text = Vec::new();
    write_trace(&mut text, &sample_trace(count, trace_seed)).expect("in-memory write");
    let entries = read_trace(&mut text.as_slice()).expect("own trace parses");
    let factory = Arc::new(TraceFactory {
        instances: entries.iter().map(Instance::build).collect(),
    });

    // Transport A: the in-memory driver, one session at a time.
    let t0 = Instant::now();
    let baseline: Vec<Result<u64, String>> = factory
        .instances
        .iter()
        .map(Instance::run_in_memory)
        .collect();
    let mem_elapsed = t0.elapsed();

    // Transport B: every session multiplexed over ONE TCP connection.
    let server = ReconServer::bind("127.0.0.1:0", Arc::clone(&factory)).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let server_thread = std::thread::spawn(move || server.serve_one());
    let client = ReconClient::connect(addr).expect("connect loopback");
    // A wedged session must fail the run, not hang CI until its timeout.
    client
        .set_read_timeout(Some(std::time::Duration::from_secs(120)))
        .expect("set timeout");
    let t0 = Instant::now();
    let sessions: Vec<(u64, Box<dyn NetSession + '_>)> = factory
        .instances
        .iter()
        .enumerate()
        .map(|(i, inst)| (i as u64, inst.alice_session()))
        .collect();
    let batch = client.run_batch(sessions).expect("batch completes");
    let tcp_elapsed = t0.elapsed();
    let conn = server_thread
        .join()
        .expect("server thread")
        .expect("connection served");

    // The transports must agree session by session: same success, same
    // measured bits, on the client, the server, and the baseline.
    assert_eq!(batch.sessions.len(), entries.len());
    assert_eq!(conn.sessions.len(), entries.len());
    let mut agreeing = 0;
    let mut failed_on_both = 0;
    for (i, (mem, net)) in baseline.iter().zip(&batch.sessions).enumerate() {
        let srv = &conn.sessions[i];
        match mem {
            Ok(bits) => {
                assert!(
                    net.is_ok(),
                    "session {i}: in-memory ok but tcp failed: {:?}",
                    net.error
                );
                assert_eq!(*bits, net.transcript.total_bits(), "session {i} bits");
                assert_eq!(
                    *bits,
                    srv.transcript.total_bits(),
                    "session {i} server bits"
                );
                agreeing += 1;
            }
            Err(_) => {
                assert!(!net.is_ok(), "session {i}: in-memory failed but tcp ok");
                failed_on_both += 1;
            }
        }
    }

    let mem_rate = count as f64 / mem_elapsed.as_secs_f64();
    let tcp_rate = count as f64 / tcp_elapsed.as_secs_f64();
    let payload_bytes = batch
        .sessions
        .iter()
        .flat_map(|s| s.transcript.entries().map(|(_, bits)| bits.div_ceil(8)))
        .sum::<u64>();
    let wire_bytes = batch.wire_bytes_out + batch.wire_bytes_in;

    let mut table = Table::new(&[
        "transport",
        "sessions",
        "connections",
        "completed",
        "payload bytes",
        "wire bytes",
        "elapsed ms",
        "sessions/sec",
    ]);
    table.row(vec![
        "in-memory".into(),
        count.to_string(),
        "—".into(),
        baseline.iter().filter(|r| r.is_ok()).count().to_string(),
        payload_bytes.to_string(),
        "—".into(),
        format!("{:.1}", mem_elapsed.as_secs_f64() * 1e3),
        format!("{mem_rate:.0}"),
    ]);
    table.row(vec![
        "tcp loopback".into(),
        count.to_string(),
        "1".into(),
        batch.completed().to_string(),
        payload_bytes.to_string(),
        wire_bytes.to_string(),
        format!("{:.1}", tcp_elapsed.as_secs_f64() * 1e3),
        format!("{tcp_rate:.0}"),
    ]);

    format!(
        "## N1 — TCP transport: multiplexed sessions vs in-memory driver\n\n\
         Replayed one {count}-session trace (seed {trace_seed:#x}; emd/semd/gap \
         mix) over both transports; {agreeing} completed sessions agree \
         bit-for-bit with the in-memory driver on both endpoints and \
         {failed_on_both} failed identically on both. The single server \
         connection multiplexed {count} sessions ({} frames in, {} frames out); \
         framing overhead was {} bytes over the {payload_bytes}-byte payload.\n\n{}",
        conn.frames_in,
        conn.frames_out,
        wire_bytes - payload_bytes,
        table.render()
    )
}
