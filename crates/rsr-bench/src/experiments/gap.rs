//! T7 — Theorem 4.2 / Corollary 4.3: the Gap Guarantee protocol.
//!
//! Claims measured: 4 rounds; every far point recovered; guarantee
//! satisfied with probability ≥ 1 − 1/n; communication beating the naive
//! n·d transfer for large d; the far-point term ≈ k·log|U|.

use crate::benchjson::BenchReport;
use crate::table::{f, Table};
use rsr_core::gap_protocol::{verify_gap_guarantee, GapConfig, GapProtocol};
use rsr_hash::lsh::LshParams;
use rsr_hash::BitSamplingFamily;
use rsr_metric::MetricSpace;
use rsr_workloads::sensor_pairs;
use std::time::Instant;

/// Runs the experiment, discarding the machine-readable report.
pub fn run(quick: bool) -> String {
    run_with_json(quick).0
}

/// Runs the experiment; returns the markdown section and the
/// `BENCH_gap.json` report (wall time and *completed* protocol runs/sec
/// over the whole trial grid — failed trials don't count, so a
/// regression that makes runs fail fast lowers the rate rather than
/// inflating it; session construction and drive are included, as that
/// *is* the protocol's unit of work).
pub fn run_with_json(quick: bool) -> (String, BenchReport) {
    let trials = if quick { 3 } else { 10 };
    let mut table = Table::new(&[
        "n",
        "d",
        "k",
        "total bits",
        "naive n·d",
        "far recovered",
        "guarantee ok",
        "round4 bits / k·d",
        "rounds",
    ]);
    let configs: &[(usize, usize, usize)] = if quick {
        &[(50, 256, 3)]
    } else {
        &[
            (50, 256, 3),
            (100, 256, 3),
            (200, 256, 3),
            (100, 512, 3),
            (100, 1024, 3),
            (100, 256, 6),
        ]
    };
    let mut total_runs = 0usize;
    let mut sum_bits = 0u64;
    let t0 = Instant::now();
    for &(n, d, k) in configs {
        let space = MetricSpace::hamming(d);
        let (r1, r2) = (2.0, (d / 3) as f64);
        let fam = BitSamplingFamily::new(d, d as f64);
        let params = LshParams::new(r1, r2, 1.0 - r1 / d as f64, 1.0 - r2 / d as f64);
        let mut bits = 0u64;
        let mut round4 = 0u64;
        let mut rounds = 0usize;
        let mut far_recovered = 0usize;
        let mut far_total = 0usize;
        let mut guarantee_ok = 0usize;
        let mut runs = 0usize;
        for t in 0..trials {
            let w = sensor_pairs(space, n, k, r1, r2, 0xb000 + t as u64);
            let cfg = GapConfig::for_params(params, n, k);
            let proto = GapProtocol::new(space, &fam, cfg, 0xc000 + t as u64);
            let Ok(out) = proto.run(&w.alice, &w.bob) else {
                continue;
            };
            runs += 1;
            bits = out.transcript.total_bits();
            round4 = out.transcript.entries().last().unwrap().1;
            rounds = out.transcript.num_rounds();
            far_total += w.alice_far.len();
            far_recovered += w
                .alice_far
                .iter()
                .filter(|p| out.transmitted.contains(p))
                .count();
            if verify_gap_guarantee(&space, &w.alice, &out.reconciled, r2) {
                guarantee_ok += 1;
            }
        }
        total_runs += runs;
        sum_bits += bits;
        table.row(vec![
            n.to_string(),
            d.to_string(),
            k.to_string(),
            bits.to_string(),
            (n * d).to_string(),
            format!("{far_recovered}/{far_total}"),
            format!("{guarantee_ok}/{runs}"),
            f(round4 as f64 / (k * d) as f64),
            rounds.to_string(),
        ]);
    }
    let elapsed = t0.elapsed();
    let mut bench = BenchReport::new("gap", quick);
    bench.push("configs", configs.len() as f64);
    bench.push("trials_per_config", trials as f64);
    bench.push("wall_ms", elapsed.as_secs_f64() * 1e3);
    bench.push("runs_per_sec", total_runs as f64 / elapsed.as_secs_f64());
    bench.push("sum_total_bits", sum_bits as f64);
    let report = format!(
        "## T7 — Gap Guarantee protocol on Hamming space (Thm 4.2 / Cor 4.3)\n\n\
         r1 = 2, r2 = d/3, {trials} seeds per row. Expected: all far \
         points recovered, guarantee satisfied in every run, total bits \
         below naive n·d for large d, and round-4 bits ≈ k·d (the k·log|U| \
         term; slightly above 1 when close points are false-positive \
         transmitted).\n\n{}",
        table.render()
    );
    (report, bench)
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_renders() {
        assert!(super::run(true).contains("## T7"));
    }
}
