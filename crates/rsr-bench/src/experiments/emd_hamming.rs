//! T3 — Corollary 3.5: the EMD protocol on Hamming space.
//!
//! Claims measured: communication `O(k·d·log n·log(dn))` bits; success
//! probability ≥ 5/8; quality `EMD(S_A, S'_B) ≤ O(log n)·EMD_k`.

use crate::table::{f, Table};
use rsr_core::emd_protocol::{EmdProtocol, EmdProtocolConfig};
use rsr_emd::{emd, emd_k};
use rsr_metric::MetricSpace;
use rsr_workloads::{planted_emd_sparse, stats};

/// Runs the experiment.
pub fn run(quick: bool) -> String {
    let trials = if quick { 4 } else { 12 };
    let mut table = Table::new(&[
        "n",
        "d",
        "k",
        "comm bits",
        "bits / (k·d·lg n·lg(dn))",
        "success",
        "median ratio",
        "lg n",
    ]);
    let configs: &[(usize, usize, usize)] = if quick {
        &[(100, 64, 4), (200, 64, 4)]
    } else {
        &[
            (100, 64, 4),
            (200, 64, 4),
            (400, 64, 4),
            (200, 32, 4),
            (200, 128, 4),
            (200, 64, 2),
            (200, 64, 8),
        ]
    };
    for &(n, d, k) in configs {
        let space = MetricSpace::hamming(d);
        let mut bits = 0u64;
        let mut ratios = Vec::new();
        let mut success = 0usize;
        for t in 0..trials {
            let w = planted_emd_sparse(space, n, k, 1, n / 10, 0x3000 + t as u64);
            let cfg = EmdProtocolConfig::for_space(&space, n, k);
            let proto = EmdProtocol::new(space, cfg, 0x4000 + t as u64);
            let msg = proto.alice_encode(&w.alice);
            bits = msg.wire_bits();
            let Ok(out) = proto.bob_decode(&msg, &w.bob) else {
                continue;
            };
            success += 1;
            let floor = emd_k(space.metric(), &w.alice, &w.bob, k).max(1.0);
            ratios.push(emd(space.metric(), &w.alice, &out.reconciled) / floor);
        }
        let lg_n = (n as f64).log2();
        let lg_dn = ((d * n) as f64).log2();
        let theory = k as f64 * d as f64 * lg_n * lg_dn;
        table.row(vec![
            n.to_string(),
            d.to_string(),
            k.to_string(),
            bits.to_string(),
            f(bits as f64 / theory),
            f(success as f64 / trials as f64),
            f(stats::quantile(&ratios, 0.5)),
            f(lg_n),
        ]);
    }
    format!(
        "## T3 — EMD protocol on Hamming space (Corollary 3.5)\n\n\
         Workload: n points, n/10 carry 1 bit of noise, k outliers/side; \
         {trials} seeds per row. Expected: the bits/(k·d·lg n·lg(dn)) \
         column is a roughly constant factor (the paper's hidden constant \
         ≈ 4q²·cell overhead); success ≥ 5/8; median ratio ≪ lg n.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_renders() {
        let report = super::run(true);
        assert!(report.contains("## T3"));
    }
}
