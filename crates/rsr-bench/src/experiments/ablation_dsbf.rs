//! A3 — distance-sensitive Bloom filter (\[18\]) as a far-point detector,
//! versus the Gap protocol's key comparison.
//!
//! A DSBF costs one constant-size message but decides near/far with
//! two-sided constant error; the Gap protocol spends
//! `(k + ρn)·polylog n` bits to get a one-sided w.h.p. guarantee. This
//! ablation quantifies the trade: the DSBF straw-man misses far points
//! (violating the Gap guarantee) and/or falsely transmits close points,
//! at rates the Gap protocol does not exhibit.

use crate::table::{f, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsr_core::gap_protocol::{verify_gap_guarantee, GapConfig, GapProtocol};
use rsr_hash::lsh::LshParams;
use rsr_hash::{BitSamplingFamily, DistanceSensitiveBloom};
use rsr_metric::MetricSpace;
use rsr_workloads::sensor_pairs;

/// Runs the experiment.
pub fn run(quick: bool) -> String {
    let trials = if quick { 4 } else { 15 };
    let n = 80;
    let k = 4;
    let d = 256;
    let space = MetricSpace::hamming(d);
    let (r1, r2) = (2.0, (d / 3) as f64);
    let fam = BitSamplingFamily::new(d, d as f64);

    let mut table = Table::new(&[
        "detector",
        "bits",
        "far recovered",
        "close falsely sent",
        "guarantee ok",
    ]);

    // DSBF straw-man at two sizes: Bob sends a DSBF of his set; Alice
    // transmits every point the filter calls far. The small variant is
    // saturated (bit arrays fill up, far points look near); the large one
    // works in the common case but keeps a two-sided constant error.
    for (label, l, m, b) in [
        ("DSBF small", 16usize, 6usize, 128usize),
        ("DSBF large", 48, 14, 512),
    ] {
        let mut bits = 0u64;
        let mut far_rec = 0usize;
        let mut far_tot = 0usize;
        let mut false_sent = 0usize;
        let mut ok = 0usize;
        for t in 0..trials {
            let w = sensor_pairs(space, n, k, r1, r2, 0xd5b_0000 + t as u64);
            let mut rng = StdRng::seed_from_u64(0xd5b_1000 + t as u64);
            let mut filter = DistanceSensitiveBloom::new(&fam, l, m, b, 0.55, &mut rng);
            for p in &w.bob {
                filter.insert(p);
            }
            let transmitted: Vec<_> = w
                .alice
                .iter()
                .filter(|p| !filter.is_near(p))
                .cloned()
                .collect();
            // Total communication: the filter plus the far elements.
            bits =
                filter.wire_bits() + transmitted.len() as u64 * space.universe().point_wire_bits();
            far_tot += w.alice_far.len();
            far_rec += w
                .alice_far
                .iter()
                .filter(|p| transmitted.contains(p))
                .count();
            false_sent += transmitted.len()
                - w.alice_far
                    .iter()
                    .filter(|p| transmitted.contains(p))
                    .count();
            let mut reconciled = w.bob.clone();
            reconciled.extend(transmitted);
            if verify_gap_guarantee(&space, &w.alice, &reconciled, r2) {
                ok += 1;
            }
        }
        table.row(vec![
            label.into(),
            bits.to_string(),
            format!("{far_rec}/{far_tot}"),
            f(false_sent as f64 / trials as f64),
            format!("{ok}/{trials}"),
        ]);
    }

    // The Gap protocol on the same workloads.
    let params = LshParams::new(r1, r2, 1.0 - r1 / d as f64, 1.0 - r2 / d as f64);
    let mut bits = 0u64;
    let mut far_rec = 0usize;
    let mut far_tot = 0usize;
    let mut false_sent = 0usize;
    let mut ok = 0usize;
    let mut runs = 0usize;
    for t in 0..trials {
        let w = sensor_pairs(space, n, k, r1, r2, 0xd5b_0000 + t as u64);
        let cfg = GapConfig::for_params(params, n, k);
        let proto = GapProtocol::new(space, &fam, cfg, 0xd5b_2000 + t as u64);
        let Ok(out) = proto.run(&w.alice, &w.bob) else {
            continue;
        };
        runs += 1;
        bits = out.transcript.total_bits();
        far_tot += w.alice_far.len();
        far_rec += w
            .alice_far
            .iter()
            .filter(|p| out.transmitted.contains(p))
            .count();
        false_sent += out.transmitted.len()
            - w.alice_far
                .iter()
                .filter(|p| out.transmitted.contains(p))
                .count();
        if verify_gap_guarantee(&space, &w.alice, &out.reconciled, r2) {
            ok += 1;
        }
    }
    table.row(vec![
        "Gap protocol (Thm 4.2)".into(),
        bits.to_string(),
        format!("{far_rec}/{far_tot}"),
        f(false_sent as f64 / runs.max(1) as f64),
        format!("{ok}/{runs}"),
    ]);

    format!(
        "## A3 — DSBF straw-man vs the Gap protocol ([18] vs §4.1)\n\n\
         n = {n}, d = {d}, k = {k}, r1 = {r1}, r2 = {r2}; {trials} seeds. \
         The note \"far recovered\" counts the points the Gap model \
         *requires*. An under-sized DSBF saturates and misses everything; \
         a well-sized one is competitive on this forgiving workload (far \
         points sit at ≈ d/2 ≫ r2). The Gap protocol's extra bits buy the \
         w.h.p. one-sided guarantee that survives far points *at* the r2 \
         margin and hostile multiplicities — plus Alice actually learns \
         Bob's keys, which the DSBF cannot offer.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_renders() {
        assert!(super::run(true).contains("## A3"));
    }
}
