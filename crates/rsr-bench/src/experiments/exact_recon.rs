//! T12 — exact set reconciliation (the `EMD_k = 0` fallback of §3):
//! communication proportional to the difference bound, success below it,
//! clean failure above it.

use crate::table::{f, Table};
use rsr_core::set_recon::exact_reconcile;
use rsr_metric::{MetricSpace, Point};

/// Runs the experiment.
pub fn run(quick: bool) -> String {
    let n = if quick { 2_000 } else { 20_000 };
    let space = MetricSpace::l1(1_000_000, 2);
    let shared: Vec<Point> = (0..n as i64)
        .map(|i| Point::new(vec![i % 1000, i / 1000 + 7]))
        .collect();
    let mut table = Table::new(&[
        "set size",
        "true diff",
        "bound D",
        "result",
        "bits",
        "bits / D",
    ]);
    // Note: the RIBLT keeps decoding well past its nominal bound — the
    // peeling threshold (≈ 0.81·m items) is far above the 4k sizing — so
    // the hard-failure row plants a difference beyond even that capacity.
    for &(diff, bound) in &[(2usize, 4usize), (8, 16), (32, 64), (300, 16)] {
        let mut alice = shared.clone();
        let mut bob = shared.clone();
        for j in 0..diff as i64 {
            alice.push(Point::new(vec![900_000 + j, 1]));
            bob.push(Point::new(vec![800_000 + j, 2]));
        }
        match exact_reconcile(&space, &alice, &bob, bound, 0x12) {
            Ok(out) => {
                let mut got = out.alice_set;
                got.sort();
                alice.sort();
                let exact = got == alice;
                table.row(vec![
                    n.to_string(),
                    (2 * diff).to_string(),
                    bound.to_string(),
                    if exact {
                        "exact".into()
                    } else {
                        "WRONG".into()
                    },
                    out.transcript.total_bits().to_string(),
                    f(out.transcript.total_bits() as f64 / bound as f64),
                ]);
            }
            Err(_) => {
                table.row(vec![
                    n.to_string(),
                    (2 * diff).to_string(),
                    bound.to_string(),
                    "failure reported".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    format!(
        "## T12 — exact reconciliation fallback (§3, EMD_k = 0 case)\n\n\
         {n} shared records, planted whole-record differences. Expected: \
         exact recovery whenever the true difference fits the bound D, \
         bits ∝ D, and an explicit failure (never silent corruption) when \
         the difference exceeds D.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn exactness_and_clean_failure() {
        let report = super::run(true);
        assert!(report.contains("## T12"));
        assert!(!report.contains("WRONG"));
        assert!(report.contains("failure reported"));
    }
}
