//! One module per experiment: T1–T12/F1 reproduce the paper's
//! evaluation; N1 (transport throughput), L1 (open-loop latency under
//! load), and P1 (assignment solvers) measure the layers this repo
//! added.

pub mod ablation_dsbf;
pub mod ablation_peel;
pub mod baseline_quadtree;
pub mod churn;
pub mod emd_hamming;
pub mod emd_l2;
pub mod emd_ratio;
pub mod emd_solvers;
pub mod exact_recon;
pub mod gap;
pub mod gap_lowdim;
pub mod hypergraph;
pub mod iblt_threshold;
pub mod load;
pub mod lower_bound;
pub mod mlsh_collision;
pub mod net;
pub mod riblt_error;
pub mod setsofsets;

/// An experiment entry: `(id, name, runner)`.
pub type Experiment = (&'static str, &'static str, fn(bool) -> String);

/// Every experiment, in index order.
pub fn all() -> Vec<Experiment> {
    vec![
        (
            "T1",
            "iblt_threshold",
            iblt_threshold::run as fn(bool) -> String,
        ),
        ("T2", "mlsh_collision", mlsh_collision::run),
        ("F1", "riblt_error", riblt_error::run),
        ("T3", "emd_hamming", emd_hamming::run),
        ("T4", "emd_l2", emd_l2::run),
        ("T5", "emd_ratio", emd_ratio::run),
        ("T6", "baseline_quadtree", baseline_quadtree::run),
        ("T7", "gap", gap::run),
        ("T8", "gap_lowdim", gap_lowdim::run),
        ("T9", "lower_bound", lower_bound::run),
        ("T10", "setsofsets", setsofsets::run),
        ("T11", "hypergraph", hypergraph::run),
        ("T12", "exact_recon", exact_recon::run),
        ("N1", "net", net::run),
        ("L1", "load", load::run),
        ("C1", "churn", churn::run),
        ("P1", "emd_solvers", emd_solvers::run),
        ("A1/A2", "ablation_peel", ablation_peel::run),
        ("A3", "ablation_dsbf", ablation_dsbf::run),
    ]
}
