//! T1 — Theorem 2.6: IBLT decode success vs load.
//!
//! "There exists a constant 0 < c < 1 so that an IBLT with m cells and at
//! most cm keys will successfully extract all key-value pairs with
//! probability at least 1 − O(1/poly(m))." The constant is the 2-core
//! threshold of random q-uniform hypergraphs: c*₃ ≈ 0.818, c*₄ ≈ 0.772,
//! c*₅ ≈ 0.702. The table shows the success probability collapsing from
//! ≈1 to ≈0 across each threshold.

use crate::table::{f, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsr_iblt::Iblt;

/// Known asymptotic peeling thresholds (Molloy / \[26\]).
pub const THRESHOLDS: [(usize, f64); 3] = [(3, 0.818), (4, 0.772), (5, 0.702)];

/// Runs the experiment.
pub fn run(quick: bool) -> String {
    let m = if quick { 300 } else { 1200 };
    let trials = if quick { 20 } else { 100 };
    let loads = [0.60, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95];
    let mut table = Table::new(&["q", "load c", "success rate", "threshold c*_q"]);
    let mut rng = StdRng::seed_from_u64(0x71);
    for &(q, threshold) in &THRESHOLDS {
        for &load in &loads {
            let items = (load * m as f64) as usize;
            let mut ok = 0;
            for t in 0..trials {
                let mut iblt = Iblt::new(m, q, 0x1000 + t as u64 * 31 + q as u64);
                for _ in 0..items {
                    iblt.insert(rng.gen());
                }
                if iblt.decode().complete {
                    ok += 1;
                }
            }
            table.row(vec![
                q.to_string(),
                f(load),
                f(ok as f64 / trials as f64),
                f(threshold),
            ]);
        }
    }
    format!(
        "## T1 — IBLT decode threshold (Theorem 2.6)\n\n\
         m = {m} cells, {trials} trials per point. Expected: success ≈ 1 \
         below the q-core threshold c*_q, ≈ 0 above.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_and_shows_phase_transition() {
        let report = super::run(true);
        assert!(report.contains("## T1"));
        // Sanity: the table has 3 q-values × 7 loads rows.
        assert_eq!(
            report.matches("\n| 3").count()
                + report.matches("\n| 4").count()
                + report.matches("\n| 5").count(),
            21
        );
    }
}
