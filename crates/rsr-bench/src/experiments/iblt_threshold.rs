//! T1 — Theorem 2.6: IBLT decode success vs load, peel vs hybrid.
//!
//! "There exists a constant 0 < c < 1 so that an IBLT with m cells and at
//! most cm keys will successfully extract all key-value pairs with
//! probability at least 1 − O(1/poly(m))." The constant is the 2-core
//! threshold of random q-uniform hypergraphs: c*₃ ≈ 0.818, c*₄ ≈ 0.772,
//! c*₅ ≈ 0.702. The table shows the success probability collapsing from
//! ≈1 to ≈0 across each threshold — once for pure peeling and once for
//! the hybrid peel + GF(2) decoder ([`DecodeMode::Hybrid`]), whose curve
//! sits at a **strictly higher** load: whenever peeling stalls on a
//! small 2-core, Gaussian elimination over the residual cells recovers
//! the stuck keys and peeling resumes. The shift is largest at small m,
//! where finite-size stalls are usually small cores within
//! `MAX_SOLVE_RANK`; at large m a failed table is typically a giant core
//! and both curves converge to the same asymptotic c*.
//!
//! Every success rate is deterministic (fixed seeds, no wall-clock in
//! the decode path), so the emitted `iblt_threshold_*_success_rate` keys
//! are gated with **zero downward tolerance** in CI — any dip is a real
//! decoder regression, not noise (docs/benchmarks.md).

use crate::benchjson::BenchReport;
use crate::table::{f, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsr_iblt::{DecodeMode, Iblt};
use std::time::Instant;

/// Known asymptotic peeling thresholds (Molloy / \[26\]).
pub const THRESHOLDS: [(usize, f64); 3] = [(3, 0.818), (4, 0.772), (5, 0.702)];

/// Success counts for one (m, q, load) cell: both modes decode clones of
/// the **same** tables, so hybrid ≥ peel holds table-by-table, not just
/// in expectation.
fn success_rates(m: usize, q: usize, load: f64, trials: usize) -> (f64, f64) {
    let items = (load * m as f64) as usize;
    let (mut peel_ok, mut hybrid_ok) = (0usize, 0usize);
    for t in 0..trials {
        let seed = 0x1000 + t as u64 * 31 + q as u64 + m as u64;
        let mut krng = StdRng::seed_from_u64(
            0x71 ^ (q as u64) << 40 ^ ((load * 100.0) as u64) << 20 ^ t as u64,
        );
        let mut iblt = Iblt::new(m, q, seed);
        for _ in 0..items {
            iblt.insert(krng.gen());
        }
        let peeled = iblt.clone().decode_with(DecodeMode::PeelOnly).complete;
        let hybrid = iblt.decode_with(DecodeMode::Hybrid).complete;
        assert!(
            hybrid || !peeled,
            "hybrid failed a table pure peeling decodes (m={m} q={q} load={load} t={t})"
        );
        peel_ok += usize::from(peeled);
        hybrid_ok += usize::from(hybrid);
    }
    (
        peel_ok as f64 / trials as f64,
        hybrid_ok as f64 / trials as f64,
    )
}

/// Decode throughput (keys per second) at a comfortably sub-threshold
/// load, where both modes decode everything and measure the same work.
fn keys_per_sec(mode: DecodeMode, trials: usize) -> f64 {
    let (m, q, load) = (300usize, 3usize, 0.70f64);
    let items = (load * m as f64) as usize;
    let tables: Vec<Iblt> = (0..trials)
        .map(|t| {
            let mut krng = StdRng::seed_from_u64(0x7B17 + t as u64);
            let mut iblt = Iblt::new(m, q, 0x9000 + t as u64);
            for _ in 0..items {
                iblt.insert(krng.gen());
            }
            iblt
        })
        .collect();
    let start = Instant::now();
    let mut decoded = 0usize;
    for table in tables {
        let d = table.decode_with(mode);
        decoded += d.inserted.len() + d.deleted.len();
    }
    decoded as f64 / start.elapsed().as_secs_f64()
}

/// Runs the experiment (markdown only).
pub fn run(quick: bool) -> String {
    run_with_json(quick).0
}

/// Runs the experiment, returning both the markdown section and the
/// `BENCH_iblt.json` report.
pub fn run_with_json(quick: bool) -> (String, BenchReport) {
    let mut bench = BenchReport::new("iblt", quick);
    let mut out = String::new();

    // Part 1: the paper's phase transition at large m, both modes.
    let m = if quick { 300 } else { 1200 };
    let trials = if quick { 20 } else { 100 };
    let loads = [0.60, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95];
    let mut table = Table::new(&[
        "q",
        "load c",
        "peel success",
        "hybrid success",
        "threshold c*_q",
    ]);
    for &(q, threshold) in &THRESHOLDS {
        for &load in &loads {
            let (peel, hybrid) = success_rates(m, q, load, trials);
            table.row(vec![
                q.to_string(),
                f(load),
                f(peel),
                f(hybrid),
                f(threshold),
            ]);
            let l = (load * 100.0) as u64;
            bench.push(format!("iblt_threshold_q{q}_l{l}_peel_success_rate"), peel);
            bench.push(
                format!("iblt_threshold_q{q}_l{l}_hybrid_success_rate"),
                hybrid,
            );
        }
    }
    out.push_str(&format!(
        "## T1 — IBLT decode threshold (Theorem 2.6), peel vs hybrid\n\n\
         m = {m} cells, {trials} trials per point, both modes decoding \
         the same tables. Expected: success ≈ 1 below the q-core \
         threshold c*_q, ≈ 0 above; hybrid ≥ peel pointwise.\n\n{}",
        table.render()
    ));

    // Part 2: the hybrid shift where it bites — small tables, where a
    // stall is usually a small core within MAX_SOLVE_RANK.
    let m2 = 60;
    let trials2 = if quick { 40 } else { 200 };
    let loads2 = [0.75, 0.80, 0.85, 0.90, 0.95, 1.00];
    let mut table2 = Table::new(&["load c", "peel success", "hybrid success", "shift"]);
    let (mut peel_sum, mut hybrid_sum) = (0.0f64, 0.0f64);
    for &load in &loads2 {
        let (peel, hybrid) = success_rates(m2, 3, load, trials2);
        peel_sum += peel;
        hybrid_sum += hybrid;
        table2.row(vec![f(load), f(peel), f(hybrid), f(hybrid - peel)]);
        let l = (load * 100.0) as u64;
        bench.push(
            format!("iblt_threshold_q3_m{m2}_l{l}_peel_success_rate"),
            peel,
        );
        bench.push(
            format!("iblt_threshold_q3_m{m2}_l{l}_hybrid_success_rate"),
            hybrid,
        );
    }
    // The tentpole's measured claim, asserted in-bin: across the
    // transition window the hybrid decoder succeeds at a strictly
    // higher keys/cells ratio than pure peeling.
    assert!(
        hybrid_sum > peel_sum,
        "hybrid did not shift the q=3 small-table threshold: Σ peel = {peel_sum}, Σ hybrid = {hybrid_sum}"
    );
    out.push_str(&format!(
        "\nSmall-table transition (q = 3, m = {m2} cells, {trials2} trials \
         per load): the hybrid GF(2) stage rescues the small stuck cores \
         that dominate finite-size failures, shifting the empirical \
         success threshold strictly upward \
         (Σ success: peel {:.2} → hybrid {:.2}).\n\n{}",
        peel_sum,
        hybrid_sum,
        table2.render()
    ));

    // Decode throughput, both modes, at a load where both fully decode.
    let tp_trials = if quick { 20 } else { 100 };
    let peel_rate = keys_per_sec(DecodeMode::PeelOnly, tp_trials);
    let hybrid_rate = keys_per_sec(DecodeMode::Hybrid, tp_trials);
    bench.push("iblt_decode_peel_keys_per_sec", peel_rate);
    bench.push("iblt_decode_hybrid_keys_per_sec", hybrid_rate);
    out.push_str(&format!(
        "\nDecode throughput at load 0.70 (every table fully decodes, so \
         both modes do identical peeling work and hybrid's solver never \
         runs): peel {:.0} keys/s, hybrid {:.0} keys/s.\n",
        peel_rate, hybrid_rate
    ));

    (out, bench)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_shows_phase_transition() {
        let (report, bench) = run_with_json(true);
        assert!(report.contains("## T1"));
        // Sanity: the part-1 table has 3 q-values × 7 loads rows.
        assert_eq!(
            report.matches("\n| 3").count()
                + report.matches("\n| 4").count()
                + report.matches("\n| 5").count(),
            21
        );
        // Key inventory: 21 points × 2 modes + 6 small-m loads × 2 modes
        // success rates, plus the two throughputs.
        let rates = bench
            .metrics
            .iter()
            .filter(|(k, _)| k.ends_with("_success_rate"))
            .count();
        assert_eq!(rates, 21 * 2 + 6 * 2);
        assert!(bench.metric("iblt_decode_peel_keys_per_sec").unwrap() > 0.0);
        assert!(bench.metric("iblt_decode_hybrid_keys_per_sec").unwrap() > 0.0);
    }

    #[test]
    fn hybrid_dominates_peel_pointwise_and_shifts_the_small_table_threshold() {
        let (_, bench) = run_with_json(true);
        let mut strictly_better = 0usize;
        for (key, peel) in &bench.metrics {
            let Some(prefix) = key.strip_suffix("_peel_success_rate") else {
                continue;
            };
            let hybrid = bench
                .metric(&format!("{prefix}_hybrid_success_rate"))
                .expect("paired key");
            assert!(hybrid >= *peel, "{key}: hybrid {hybrid} < peel {peel}");
            if hybrid > *peel {
                strictly_better += 1;
            }
        }
        assert!(
            strictly_better > 0,
            "hybrid never beat peel at any (q, load) point"
        );
    }

    #[test]
    fn success_rates_are_deterministic() {
        // The zero-tolerance CI gate on `_success_rate` keys is only
        // sound if reruns reproduce bit-identical rates.
        let (_, a) = run_with_json(true);
        let (_, b) = run_with_json(true);
        let rates = |r: &BenchReport| -> Vec<(String, f64)> {
            r.metrics
                .iter()
                .filter(|(k, _)| k.ends_with("_success_rate"))
                .cloned()
                .collect()
        };
        assert_eq!(rates(&a), rates(&b));
    }
}
