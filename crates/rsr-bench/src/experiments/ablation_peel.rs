//! A1/A2 — ablations of the RIBLT's two §2.2 design choices:
//! breadth-first peeling (item 1) and randomized rounding (item 5).
//!
//! * **A1 (order):** Lemma 3.10's error-propagation bound is *proved*
//!   for breadth-first order. The ablation measures depth-first on the
//!   same tables. Finding: at Algorithm 1's sparse sizing (m = 4q²k, so
//!   peel trees are shallow) the measured error is essentially identical
//!   — the BFS requirement is load-bearing for the proof technique, not
//!   a measurable win in the protocol's own regime. Near the peel
//!   threshold the orders do diverge (see F1's divergence point).
//! * **A2 (rounding):** flooring instead of randomized rounding biases
//!   every averaged coordinate downward; over many extractions the mean
//!   signed error drifts negative, while randomized rounding stays
//!   centred at 0.

use crate::table::{f, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsr_iblt::riblt::RibltConfig;
use rsr_iblt::{DecodeOptions, PeelOrder, Riblt, RoundingMode};
use rsr_metric::Point;

/// Builds a table with `pairs` cancelled near-pairs and `k` clean
/// survivors; returns (table, survivor ground truth).
fn plant(pairs: usize, k: usize, seed: u64) -> (Riblt, std::collections::HashMap<u64, i64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = RibltConfig::for_pairs(k, 3, 1, 100_000, seed);
    let mut t = Riblt::new(config);
    for i in 0..pairs {
        let v = rng.gen_range(0..90_000);
        t.insert(i as u64, &Point::new(vec![v]));
        t.delete(i as u64, &Point::new(vec![v + 1]));
    }
    let mut truth = std::collections::HashMap::new();
    for i in 0..k {
        let key = 1_000_000 + i as u64;
        let v = rng.gen_range(0..90_000);
        t.insert(key, &Point::new(vec![v]));
        truth.insert(key, v);
    }
    (t, truth)
}

/// Runs the experiment.
pub fn run(quick: bool) -> String {
    let trials = if quick { 20 } else { 100 };
    let k = 8;

    // A1: |error| under BFS vs DFS peeling, sweeping planted error mass.
    let mut t1 = Table::new(&[
        "cancelled near-pairs",
        "BFS mean |err|",
        "DFS mean |err|",
        "DFS/BFS",
    ]);
    for pairs in [40usize, 120, 250] {
        let mut err = [0f64; 2];
        for t in 0..trials {
            let seed = 0xab1_0000 + t as u64;
            for (slot, order) in [PeelOrder::BreadthFirst, PeelOrder::DepthFirst]
                .into_iter()
                .enumerate()
            {
                let (table, truth) = plant(pairs, k, seed);
                let mut rng = StdRng::seed_from_u64(seed ^ 0x9);
                let d = table.decode_with(
                    &mut rng,
                    DecodeOptions {
                        order,
                        rounding: RoundingMode::Randomized,
                        ..DecodeOptions::default()
                    },
                );
                for pair in &d.inserted {
                    if let Some(&want) = truth.get(&pair.key) {
                        err[slot] += (pair.value.coord(0) - want).abs() as f64;
                    }
                }
            }
        }
        let bfs = err[0] / trials as f64;
        let dfs = err[1] / trials as f64;
        t1.row(vec![
            pairs.to_string(),
            f(bfs),
            f(dfs),
            f(dfs / bfs.max(1e-9)),
        ]);
    }

    // A2: signed drift under randomized rounding vs flooring on
    // duplicate-key averaging (two copies of each key, values v, v+1 →
    // true mean v + 0.5).
    let mut t2 = Table::new(&["rounding", "mean signed error", "mean |error|"]);
    for (label, rounding) in [
        ("randomized (paper)", RoundingMode::Randomized),
        ("floor (ablation)", RoundingMode::Floor),
    ] {
        let mut signed = 0f64;
        let mut absolute = 0f64;
        let mut count = 0usize;
        for t in 0..trials {
            let seed = 0xab2_0000 + t as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let config = RibltConfig::for_pairs(8, 3, 1, 100_000, seed);
            let mut table = Riblt::new(config);
            let mut truth = Vec::new();
            for i in 0..8u64 {
                let v = rng.gen_range(0..90_000);
                table.insert(i, &Point::new(vec![v]));
                table.insert(i, &Point::new(vec![v + 1]));
                truth.push((i, v as f64 + 0.5));
            }
            let d = table.decode_with(
                &mut rng,
                DecodeOptions {
                    order: PeelOrder::BreadthFirst,
                    rounding,
                    ..DecodeOptions::default()
                },
            );
            for pair in &d.inserted {
                if let Some(&(_, want)) = truth.iter().find(|(key, _)| *key == pair.key) {
                    signed += pair.value.coord(0) as f64 - want;
                    absolute += (pair.value.coord(0) as f64 - want).abs();
                    count += 1;
                }
            }
        }
        t2.row(vec![
            label.into(),
            f(signed / count.max(1) as f64),
            f(absolute / count.max(1) as f64),
        ]);
    }

    format!(
        "## A1/A2 — RIBLT design-choice ablations (§2.2 items 1 and 5)\n\n\
         A1: total extracted-value error for {k} survivors over planted \
         cancelled near-pairs, breadth-first (the paper) vs depth-first \
         peel order; {trials} trials. Finding: at Algorithm 1's sparse \
         sizing the orders are statistically indistinguishable — the BFS \
         requirement backs the Lemma 3.10 proof, not a measurable \
         difference at this density.\n\n{}\n\
         A2: duplicate-key averaging of values (v, v+1): signed drift of \
         extracted values. Expected: randomized rounding ≈ 0 (unbiased), \
         flooring ≈ −0.5.\n\n{}",
        t1.render(),
        t2.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn flooring_is_biased_randomized_is_not() {
        let report = super::run(true);
        assert!(report.contains("## A1/A2"));
        let rows: Vec<&str> = report
            .lines()
            .filter(|l| l.starts_with("| randomized") || l.starts_with("| floor"))
            .collect();
        assert_eq!(rows.len(), 2);
        let signed =
            |line: &str| -> f64 { line.split('|').nth(2).unwrap().trim().parse().unwrap() };
        assert!(
            signed(rows[0]).abs() < 0.2,
            "randomized biased: {}",
            signed(rows[0])
        );
        assert!(
            signed(rows[1]) < -0.3,
            "floor not biased down: {}",
            signed(rows[1])
        );
    }
}
