//! T5 — the approximation ratio grows like log n, not like d.
//!
//! The paper's headline improvement over Chen et al.: their factor is
//! O(d), ours O(log n). We sweep n at two very different dimensions; the
//! measured ratio must track n (slowly) and stay flat in d.

use crate::table::{f, Table};
use rsr_core::emd_protocol::{EmdProtocol, EmdProtocolConfig};
use rsr_emd::{emd, emd_k};
use rsr_metric::MetricSpace;
use rsr_workloads::{planted_emd_sparse, stats};

/// Runs the experiment.
pub fn run(quick: bool) -> String {
    let trials = if quick { 4 } else { 10 };
    let k = 3;
    let ns: &[usize] = if quick {
        &[50, 100]
    } else {
        &[50, 100, 200, 400]
    };
    let ds: &[usize] = &[32, 128];
    let mut table = Table::new(&["n", "d", "median ratio", "p90 ratio", "ln n"]);
    let mut by_dim: Vec<(usize, Vec<f64>)> = Vec::new();
    for &d in ds {
        let mut dim_ratios = Vec::new();
        for &n in ns {
            let space = MetricSpace::hamming(d);
            let mut ratios = Vec::new();
            for t in 0..trials {
                let w = planted_emd_sparse(space, n, k, 1, n / 10, 0x7000 + t as u64);
                let cfg = EmdProtocolConfig::for_space(&space, n, k);
                let proto = EmdProtocol::new(space, cfg, 0x8000 + t as u64);
                let Ok(out) = proto.run(&w.alice, &w.bob) else {
                    continue;
                };
                let floor = emd_k(space.metric(), &w.alice, &w.bob, k).max(1.0);
                ratios.push(emd(space.metric(), &w.alice, &out.reconciled) / floor);
            }
            let median = stats::quantile(&ratios, 0.5);
            dim_ratios.push(median);
            table.row(vec![
                n.to_string(),
                d.to_string(),
                f(median),
                f(stats::quantile(&ratios, 0.9)),
                f((n as f64).ln()),
            ]);
        }
        by_dim.push((d, dim_ratios));
    }
    // Flatness across d: compare the per-n medians at d = 32 vs 128.
    let flat = by_dim[0]
        .1
        .iter()
        .zip(&by_dim[1].1)
        .map(|(a, b)| b / a.max(0.1))
        .collect::<Vec<_>>();
    format!(
        "## T5 — approximation ratio vs n and d (Theorem 3.4)\n\n\
         {trials} seeds per point, k = {k}, sparse noise. Expected: the \
         median ratio stays below ln n at every point and does *not* grow \
         when d quadruples (d-ratio column ≈ 1, vs 4 for an O(d) method).\n\n{}\n\
         per-n ratio (d=128)/(d=32): {:?}\n",
        table.render(),
        flat.iter().map(|x| f(*x)).collect::<Vec<_>>()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_renders() {
        assert!(super::run(true).contains("## T5"));
    }
}
