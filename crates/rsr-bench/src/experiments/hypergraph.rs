//! T11 — Lemma B.3: below density `1/(q(q−1))` the hypergraph is all
//! trees and unicyclic components w.h.p.; the 2-core is empty far below
//! the peeling threshold.

use crate::table::{f, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsr_iblt::hypergraph::Hypergraph;

/// Runs the experiment.
pub fn run(quick: bool) -> String {
    let m = if quick { 500 } else { 2000 };
    let trials = if quick { 20 } else { 100 };
    let q = 3;
    let threshold = 1.0 / (q as f64 * (q - 1) as f64);
    let mut table = Table::new(&[
        "density c",
        "c / (1/(q(q−1)))",
        "frac with complex comp.",
        "frac with nonempty 2-core",
        "mean peel rounds",
    ]);
    let mut rng = StdRng::seed_from_u64(0x47);
    for rel in [0.4, 0.8, 1.0, 1.5, 2.5, 4.0, 4.8, 5.2] {
        let c = rel * threshold;
        let edges = (c * m as f64) as usize;
        let mut complex = 0usize;
        let mut core = 0usize;
        let mut rounds = 0usize;
        for _ in 0..trials {
            let g = Hypergraph::sample_uniform(m, edges, q, &mut rng);
            if g.classify_components().complex > 0 {
                complex += 1;
            }
            let peel = g.peel();
            if !peel.core.is_empty() {
                core += 1;
            }
            rounds += peel.rounds;
        }
        table.row(vec![
            f(c),
            f(rel),
            f(complex as f64 / trials as f64),
            f(core as f64 / trials as f64),
            f(rounds as f64 / trials as f64),
        ]);
    }
    format!(
        "## T11 — random hypergraph structure (Lemma B.3)\n\n\
         q = {q}, m = {m} vertices, {trials} graphs per density. Expected: \
         complex components appear only above c = 1/(q(q−1)) ≈ {:.3}; the \
         2-core stays empty until the peeling threshold c* ≈ 0.818 \
         (≈ 4.9× the sparsity threshold); peel rounds stay O(log log n) \
         below c*.\n\n{}",
        threshold,
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_renders() {
        assert!(super::run(true).contains("## T11"));
    }
}
