//! F1 — Lemma 3.10 / Figure 1: error propagation in RIBLT peeling.
//!
//! Two measurements:
//!
//! 1. **Idealized model** (exactly Lemma 3.10): in `G^q_{m,cm}`, one
//!    random vertex starts with an error; breadth-first peeling adds a
//!    peeled vertex's error count to its edge-mates. Below the density
//!    threshold `1/(q(q−1))` the final `Σ C_v` is O(1); above, it grows.
//! 2. **End-to-end RIBLT**: plant cancelled near-pairs (same key, value
//!    off by 1) plus clean survivors; measure the total coordinate error
//!    of the extracted survivors against ground truth. The error stays a
//!    small multiple of the planted error mass (the paper's
//!    `EMD(X, Z) = O(1)·µ`).

use crate::benchjson::BenchReport;
use crate::table::{f, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsr_iblt::hypergraph::Hypergraph;
use rsr_iblt::iblt::DecodeMode;
use rsr_iblt::riblt::RibltConfig;
use rsr_iblt::{DecodeOptions, Riblt};
use rsr_metric::Point;

/// Runs the experiment.
pub fn run(quick: bool) -> String {
    let mut out = String::new();

    // Part 1: idealized branching-process model.
    let m = if quick { 600 } else { 3000 };
    let trials = if quick { 40 } else { 200 };
    let mut table = Table::new(&[
        "q",
        "c/(1/(q(q−1)))",
        "density c",
        "mean Σ C_v",
        "max Σ C_v",
    ]);
    let mut rng = StdRng::seed_from_u64(0xf1);
    for q in [3usize, 4] {
        let threshold = 1.0 / (q as f64 * (q - 1) as f64);
        // Sweep from deep inside the Lemma 3.10 regime up to the peeling
        // threshold (≈ 4.9× the sparsity threshold for q = 3), where the
        // error mass diverges, and past it, where the surviving 2-core
        // stops propagation entirely.
        for rel in [0.2, 0.5, 1.0, 2.0, 3.5, 4.5, 4.8, 5.5] {
            let c = rel * threshold;
            let edges = (c * m as f64) as usize;
            let mut total = 0u64;
            let mut max_v = 0u64;
            for _ in 0..trials {
                let g = Hypergraph::sample_uniform(m, edges, q, &mut rng);
                let v = g.error_propagation(rng.gen_range(0..m));
                total += v;
                max_v = max_v.max(v);
            }
            table.row(vec![
                q.to_string(),
                f(rel),
                f(c),
                f(total as f64 / trials as f64),
                max_v.to_string(),
            ]);
        }
    }
    out.push_str(&format!(
        "## F1 — RIBLT error propagation (Lemma 3.10, Figure 1)\n\n\
         Idealized model on G^q_{{m,cm}}, m = {m}, {trials} trials: one \
         planted error, breadth-first peel, final Σ C_v. Expected: O(1) \
         below the sparsity threshold 1/(q(q−1)) (Lemma 3.10), slow growth \
         above it, a sharp divergence at the *peeling* threshold \
         (c* ≈ 0.818 for q = 3), and a collapse past c* where the \
         unpeeled 2-core absorbs the error.\n\n{}",
        table.render()
    ));

    // Part 2: end-to-end RIBLT error accounting.
    let trials2 = if quick { 10 } else { 50 };
    let k = 8; // clean survivors
    let mut table2 = Table::new(&[
        "cancelled near-pairs",
        "planted error mass µ",
        "mean |extracted error|",
        "ratio",
    ]);
    for pairs in [0usize, 20, 60, 150] {
        let mut total_err = 0f64;
        for t in 0..trials2 {
            let seed = 0x2000 + t as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let config = RibltConfig::for_pairs(k, 3, 1, 10_000, seed);
            let mut table_r = Riblt::new(config);
            // Cancelled near-pairs: same key, value off by exactly 1.
            for i in 0..pairs {
                let v = rng.gen_range(0..9_000);
                table_r.insert(i as u64, &Point::new(vec![v]));
                table_r.delete(i as u64, &Point::new(vec![v + 1]));
            }
            // Clean survivors with known values.
            let mut truth = std::collections::HashMap::new();
            for i in 0..k {
                let key = 1_000_000 + i as u64;
                let v = rng.gen_range(0..9_000);
                table_r.insert(key, &Point::new(vec![v]));
                truth.insert(key, v);
            }
            let d = table_r.decode(&mut rng);
            for pair in &d.inserted {
                if let Some(&want) = truth.get(&pair.key) {
                    total_err += (pair.value.coord(0) - want).abs() as f64;
                }
            }
        }
        let mean_err = total_err / trials2 as f64;
        let mu = pairs as f64; // each pair plants error mass 1
        table2.row(vec![
            pairs.to_string(),
            f(mu),
            f(mean_err),
            if mu > 0.0 {
                f(mean_err / mu)
            } else {
                "-".into()
            },
        ]);
    }
    out.push_str(&format!(
        "\nEnd-to-end RIBLT (q = 3, m = {} cells, {k} clean survivors, \
         {trials2} trials): extracted-value error vs planted error mass µ. \
         Expected: error a small constant fraction of µ (Theorem 3.4's \
         O(1)·µ term).\n\n{}",
        4 * 9 * k,
        table2.render()
    ));
    out
}

/// Part 3: the hybrid pairwise-difference stage's effect on the error
/// floor, appended to `bench` as the `riblt_recover_*` key family
/// (success rates are deterministic — fixed seeds — so CI gates them
/// with zero downward tolerance).
///
/// 24 exact-valued keys in a 30-cell q = 3 table sit past the peeling
/// threshold often enough that pure peeling stalls in most trials. A
/// stalled decode leaves its keys unrecovered — each one is floor error
/// the protocol can never reconcile. The hybrid stage inverts stuck
/// cells through pairwise cell differences and resumes peeling, so it
/// completes strictly more tables and strands strictly fewer keys.
pub fn extend(bench: &mut BenchReport, quick: bool) -> String {
    let trials = if quick { 60 } else { 300 };
    let (cells, keys) = (30usize, 24usize);
    let mut table = Table::new(&["decode mode", "success rate", "mean unrecovered keys"]);
    let mut rates = Vec::new();
    for (label, mode) in [
        ("peel only", DecodeMode::PeelOnly),
        ("hybrid", DecodeMode::Hybrid),
    ] {
        let mut ok = 0usize;
        let mut unrecovered = 0usize;
        for seed in 0..trials as u64 {
            let config = RibltConfig {
                min_cells: cells,
                q: 3,
                dim: 1,
                delta: 9000,
                seed,
            };
            let mut t = Riblt::new(config);
            let mut vrng = StdRng::seed_from_u64(seed ^ 0xbeef);
            for i in 0..keys as u64 {
                t.insert(i, &Point::new(vec![vrng.gen_range(0..9000)]));
            }
            let mut rng = StdRng::seed_from_u64(seed);
            let d = t.decode_with(
                &mut rng,
                DecodeOptions {
                    mode,
                    ..DecodeOptions::default()
                },
            );
            ok += usize::from(d.complete);
            unrecovered += keys - d.inserted.len().min(keys);
        }
        let rate = ok as f64 / trials as f64;
        let floor = unrecovered as f64 / trials as f64;
        table.row(vec![label.into(), f(rate), f(floor)]);
        let key = if matches!(mode, DecodeMode::PeelOnly) {
            "peel"
        } else {
            "hybrid"
        };
        bench.push(format!("riblt_recover_{key}_success_rate"), rate);
        bench.push(format!("riblt_unrecovered_keys_{key}"), floor);
        rates.push((rate, floor));
    }
    let [(peel_rate, peel_floor), (hybrid_rate, hybrid_floor)] = rates.as_slice() else {
        unreachable!();
    };
    // The measured claim, asserted in-bin: hybrid lowers the error
    // floor — more completed decodes, fewer stranded keys.
    assert!(
        hybrid_rate > peel_rate,
        "hybrid did not complete more decodes: peel {peel_rate}, hybrid {hybrid_rate}"
    );
    assert!(
        hybrid_floor < peel_floor,
        "hybrid did not lower the floor: peel {peel_floor}, hybrid {hybrid_floor}"
    );
    format!(
        "## F1b — hybrid pairwise stage vs the unrecovered-key floor\n\n\
         {keys} exact-valued keys in {cells} cells (q = 3), {trials} \
         seeds, both modes decoding the same tables. A stalled peel \
         strands its remaining keys; the pairwise-difference stage \
         completes strictly more tables and strands strictly fewer \
         keys.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_completes_more_and_strands_fewer() {
        // `extend` asserts the peel-vs-hybrid ordering in-bin; here we
        // additionally pin the key inventory and determinism the CI
        // zero-tolerance gate relies on.
        let mut a = BenchReport::new("iblt", true);
        let report = extend(&mut a, true);
        assert!(report.contains("## F1b"));
        for key in [
            "riblt_recover_peel_success_rate",
            "riblt_recover_hybrid_success_rate",
            "riblt_unrecovered_keys_peel",
            "riblt_unrecovered_keys_hybrid",
        ] {
            assert!(a.metric(key).is_some(), "missing {key}");
        }
        let mut b = BenchReport::new("iblt", true);
        extend(&mut b, true);
        assert_eq!(a.metrics, b.metrics, "rates must be deterministic");
    }

    #[test]
    fn error_is_constant_below_threshold_and_diverges_at_peel_point() {
        let report = super::run(true);
        assert!(report.contains("## F1"));
        let rows: Vec<&str> = report.lines().filter(|l| l.starts_with("| 3")).collect();
        assert_eq!(rows.len(), 8);
        let mean = |line: &str| -> f64 { line.split('|').nth(4).unwrap().trim().parse().unwrap() };
        let low = mean(rows[0]); // rel = 0.2, inside Lemma 3.10
        let peak = mean(rows[6]); // rel = 4.8, at the peeling threshold
        assert!(low < 4.0, "below-threshold error not O(1): {low}");
        assert!(
            peak > 5.0 * low,
            "no divergence near the peeling threshold: {low} vs {peak}"
        );
    }
}
