//! F1 — Lemma 3.10 / Figure 1: error propagation in RIBLT peeling.
//!
//! Two measurements:
//!
//! 1. **Idealized model** (exactly Lemma 3.10): in `G^q_{m,cm}`, one
//!    random vertex starts with an error; breadth-first peeling adds a
//!    peeled vertex's error count to its edge-mates. Below the density
//!    threshold `1/(q(q−1))` the final `Σ C_v` is O(1); above, it grows.
//! 2. **End-to-end RIBLT**: plant cancelled near-pairs (same key, value
//!    off by 1) plus clean survivors; measure the total coordinate error
//!    of the extracted survivors against ground truth. The error stays a
//!    small multiple of the planted error mass (the paper's
//!    `EMD(X, Z) = O(1)·µ`).

use crate::table::{f, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsr_iblt::hypergraph::Hypergraph;
use rsr_iblt::riblt::RibltConfig;
use rsr_iblt::Riblt;
use rsr_metric::Point;

/// Runs the experiment.
pub fn run(quick: bool) -> String {
    let mut out = String::new();

    // Part 1: idealized branching-process model.
    let m = if quick { 600 } else { 3000 };
    let trials = if quick { 40 } else { 200 };
    let mut table = Table::new(&[
        "q",
        "c/(1/(q(q−1)))",
        "density c",
        "mean Σ C_v",
        "max Σ C_v",
    ]);
    let mut rng = StdRng::seed_from_u64(0xf1);
    for q in [3usize, 4] {
        let threshold = 1.0 / (q as f64 * (q - 1) as f64);
        // Sweep from deep inside the Lemma 3.10 regime up to the peeling
        // threshold (≈ 4.9× the sparsity threshold for q = 3), where the
        // error mass diverges, and past it, where the surviving 2-core
        // stops propagation entirely.
        for rel in [0.2, 0.5, 1.0, 2.0, 3.5, 4.5, 4.8, 5.5] {
            let c = rel * threshold;
            let edges = (c * m as f64) as usize;
            let mut total = 0u64;
            let mut max_v = 0u64;
            for _ in 0..trials {
                let g = Hypergraph::sample_uniform(m, edges, q, &mut rng);
                let v = g.error_propagation(rng.gen_range(0..m));
                total += v;
                max_v = max_v.max(v);
            }
            table.row(vec![
                q.to_string(),
                f(rel),
                f(c),
                f(total as f64 / trials as f64),
                max_v.to_string(),
            ]);
        }
    }
    out.push_str(&format!(
        "## F1 — RIBLT error propagation (Lemma 3.10, Figure 1)\n\n\
         Idealized model on G^q_{{m,cm}}, m = {m}, {trials} trials: one \
         planted error, breadth-first peel, final Σ C_v. Expected: O(1) \
         below the sparsity threshold 1/(q(q−1)) (Lemma 3.10), slow growth \
         above it, a sharp divergence at the *peeling* threshold \
         (c* ≈ 0.818 for q = 3), and a collapse past c* where the \
         unpeeled 2-core absorbs the error.\n\n{}",
        table.render()
    ));

    // Part 2: end-to-end RIBLT error accounting.
    let trials2 = if quick { 10 } else { 50 };
    let k = 8; // clean survivors
    let mut table2 = Table::new(&[
        "cancelled near-pairs",
        "planted error mass µ",
        "mean |extracted error|",
        "ratio",
    ]);
    for pairs in [0usize, 20, 60, 150] {
        let mut total_err = 0f64;
        for t in 0..trials2 {
            let seed = 0x2000 + t as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let config = RibltConfig::for_pairs(k, 3, 1, 10_000, seed);
            let mut table_r = Riblt::new(config);
            // Cancelled near-pairs: same key, value off by exactly 1.
            for i in 0..pairs {
                let v = rng.gen_range(0..9_000);
                table_r.insert(i as u64, &Point::new(vec![v]));
                table_r.delete(i as u64, &Point::new(vec![v + 1]));
            }
            // Clean survivors with known values.
            let mut truth = std::collections::HashMap::new();
            for i in 0..k {
                let key = 1_000_000 + i as u64;
                let v = rng.gen_range(0..9_000);
                table_r.insert(key, &Point::new(vec![v]));
                truth.insert(key, v);
            }
            let d = table_r.decode(&mut rng);
            for pair in &d.inserted {
                if let Some(&want) = truth.get(&pair.key) {
                    total_err += (pair.value.coord(0) - want).abs() as f64;
                }
            }
        }
        let mean_err = total_err / trials2 as f64;
        let mu = pairs as f64; // each pair plants error mass 1
        table2.row(vec![
            pairs.to_string(),
            f(mu),
            f(mean_err),
            if mu > 0.0 {
                f(mean_err / mu)
            } else {
                "-".into()
            },
        ]);
    }
    out.push_str(&format!(
        "\nEnd-to-end RIBLT (q = 3, m = {} cells, {k} clean survivors, \
         {trials2} trials): extracted-value error vs planted error mass µ. \
         Expected: error a small constant fraction of µ (Theorem 3.4's \
         O(1)·µ term).\n\n{}",
        4 * 9 * k,
        table2.render()
    ));
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn error_is_constant_below_threshold_and_diverges_at_peel_point() {
        let report = super::run(true);
        assert!(report.contains("## F1"));
        let rows: Vec<&str> = report.lines().filter(|l| l.starts_with("| 3")).collect();
        assert_eq!(rows.len(), 8);
        let mean = |line: &str| -> f64 { line.split('|').nth(4).unwrap().trim().parse().unwrap() };
        let low = mean(rows[0]); // rel = 0.2, inside Lemma 3.10
        let peak = mean(rows[6]); // rel = 4.8, at the peeling threshold
        assert!(low < 4.0, "below-threshold error not O(1): {low}");
        assert!(
            peak > 5.0 * low,
            "no divergence near the peeling threshold: {low} vs {peak}"
        );
    }
}
