//! T6 — ours vs the Chen et al. quadtree baseline across dimension.
//!
//! The baseline's approximation factor is O(d) (cell-diameter rounding);
//! ours is O(log n). Sweeping d at fixed n should show the baseline's
//! final EMD (and failure rate) degrading with d while ours stays flat —
//! with the crossover where d overtakes log n.

use crate::table::{f, Table};
use rsr_core::ScaledEmdProtocol;
use rsr_emd::{emd, emd_k};
use rsr_metric::MetricSpace;
use rsr_quadtree::{QuadtreeConfig, QuadtreeProtocol};
use rsr_workloads::{planted_emd_sparse, stats};

/// Runs the experiment.
pub fn run(quick: bool) -> String {
    let trials = if quick { 4 } else { 10 };
    let n = 80;
    let k = 3;
    let dims: &[usize] = if quick { &[2, 16] } else { &[2, 4, 8, 16, 32] };
    let mut table = Table::new(&[
        "d",
        "ours: median ratio",
        "ours: success",
        "quadtree: median ratio",
        "quadtree: success",
        "ours bits",
        "quadtree bits",
    ]);
    for &d in dims {
        // ℓ1 grid with total volume held roughly constant: Δ^d ≈ 2^24.
        let delta = (2f64.powf(24.0 / d as f64).round() as i64).max(2);
        let space = MetricSpace::l1(delta, d);
        let mut ours_ratios = Vec::new();
        let mut ours_bits = 0u64;
        let mut ours_ok = 0usize;
        let mut qt_ratios = Vec::new();
        let mut qt_bits = 0u64;
        let mut qt_ok = 0usize;
        for t in 0..trials {
            let w = planted_emd_sparse(space, n, k, 1, n / 10, 0x9000 + t as u64);
            let floor = emd_k(space.metric(), &w.alice, &w.bob, k).max(1.0);

            // The interval-scaled variant (Cor 3.6) is the right protocol
            // for wide-Δ ℓ1/ℓ2 grids: it keeps the per-interval hash-draw
            // count s constant.
            let ours = ScaledEmdProtocol::new(space, n, k, 0xa000 + t as u64);
            let msg = ours.alice_encode(&w.alice);
            ours_bits = msg.wire_bits();
            if let Ok(out) = ours.bob_decode(&msg, &w.bob) {
                ours_ok += 1;
                ours_ratios.push(emd(space.metric(), &w.alice, &out.inner.reconciled) / floor);
            }

            let qt = QuadtreeProtocol::new(space, QuadtreeConfig { k, q: 3 }, 0xa000 + t as u64);
            let qmsg = qt.alice_encode(&w.alice);
            qt_bits = qmsg.wire_bits();
            if let Ok(out) = qt.bob_decode(&qmsg, &w.bob) {
                qt_ok += 1;
                qt_ratios.push(emd(space.metric(), &w.alice, &out.reconciled) / floor);
            }
        }
        table.row(vec![
            d.to_string(),
            f(stats::quantile(&ours_ratios, 0.5)),
            f(ours_ok as f64 / trials as f64),
            f(stats::quantile(&qt_ratios, 0.5)),
            f(qt_ok as f64 / trials as f64),
            ours_bits.to_string(),
            qt_bits.to_string(),
        ]);
    }
    format!(
        "## T6 — ours (O(log n)) vs quadtree baseline (O(d))\n\n\
         n = {n}, k = {k}, ℓ1 grids with Δ^d ≈ 2^24, {trials} seeds. \
         Expected: the quadtree's ratio/failure rate degrades as d grows \
         past log n ≈ {:.1}, ours stays flat.\n\n{}",
        (n as f64).log2(),
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn report_renders() {
        assert!(super::run(true).contains("## T6"));
    }
}
