//! P1 — assignment-solver throughput in the EMD hot paths: the
//! Hungarian legacy solver vs the ε-scaling auction vs the greedy
//! matcher, swept over instance size `n`.
//!
//! Two measurements per (solver, n) cell:
//!
//! * `bob_decode` — the full `EmdProtocol::bob_decode` path (level
//!   search, RIBLT peel, matched replacement) with the solver plumbed in
//!   through `EmdProtocolConfig::with_solver`, on a **catch-up**
//!   workload: Bob holds `n` points, Alice holds the same `n` plus `n`
//!   fresh ones (`k = n/2`, so the `2k` budget admits every new point).
//!   All of Bob's pairs cancel, the decode yields `(X_A, X_B) = (n, 0)`,
//!   and the repair step becomes a *square* min-cost matching of `n`
//!   fresh points against Bob's `n` — the regime where the assignment
//!   solver, not the sketch machinery, dominates decode time. (When
//!   `X_B` decodes non-empty its matching against `S_B` has a zero-cost
//!   pairing per row — Bob's own points — and every solver dispatches it
//!   in near-linear scans; the catch-up shape is the one that actually
//!   stresses the seam.) Alice's message is encoded once, outside the
//!   clocks; every solver must decode at the same level with the same
//!   survivor counts.
//! * `emd_k` — the exact `EMD_k` measurement between the two fresh
//!   `n`-point sets via `emd_k_with`: a dummy-augmented `(n+k)²` square
//!   assignment whose zero-cost border is the classic worst case for
//!   shortest-augmenting-path solvers. The two exact solvers must agree
//!   on the value (asserted); the greedy value is reported as the upper
//!   bound it is.
//!
//! With `--json` the measured rates are emitted as `BENCH_emd.json`
//! (flat `*_per_sec` keys, one per solver × n × path) and CI gates them
//! against the committed baseline like the net and gap reports — this is
//! what pins the auction speedup permanently (see docs/benchmarks.md).

use crate::benchjson::BenchReport;
use crate::table::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsr_core::emd_protocol::{EmdProtocol, EmdProtocolConfig};
use rsr_emd::{emd_k_with, AssignmentSolver};
use rsr_metric::{MetricSpace, Point};
use std::time::Instant;

/// The three solvers, with the stable lowercase names used in metric
/// keys and table rows.
const SOLVERS: [(AssignmentSolver, &str); 3] = [
    (AssignmentSolver::Hungarian, "hungarian"),
    (AssignmentSolver::Auction, "auction"),
    (AssignmentSolver::Greedy, "greedy"),
];

/// Mean seconds per call, over enough repetitions to fill `budget`
/// seconds of measured work (at least `min_reps`): sub-millisecond
/// single-shot timings are far too noisy for a 30%-tolerance CI gate,
/// so cheap cells get proportionally more reps. The warmup call's
/// result is returned alongside for the caller's assertions.
fn time_per_call<T>(budget: f64, min_reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let warmup_start = Instant::now();
    let value = f();
    let warmup = warmup_start.elapsed().as_secs_f64().max(1e-9);
    let reps = ((budget / warmup).ceil() as usize).clamp(min_reps, 500);
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    (t0.elapsed().as_secs_f64() / reps as f64, value)
}

/// Runs the experiment, discarding the machine-readable report.
pub fn run(quick: bool) -> String {
    run_with_json(quick).0
}

/// Runs the experiment; returns the markdown section and the
/// `BENCH_emd.json` report.
pub fn run_with_json(quick: bool) -> (String, BenchReport) {
    let dim = 64;
    let ns: &[usize] = if quick { &[32, 64] } else { &[64, 128, 256] };
    let decode_reps = if quick { 3 } else { 5 };
    let time_budget = if quick { 0.01 } else { 0.06 };
    let seed = 0x00ed_bea7u64;
    let mut bench = BenchReport::new("emd", quick);
    let mut table = Table::new(&[
        "n",
        "solver",
        "bob_decode ms",
        "bob_decode/sec",
        "vs hungarian",
        "emd_k ms",
        "emd_k value",
    ]);

    for &n in ns {
        let k = n / 2;
        let space = MetricSpace::hamming(dim);
        let mut rng = StdRng::seed_from_u64(seed ^ n as u64);
        let mut point = || Point::from_bits(&(0..dim).map(|_| rng.gen()).collect::<Vec<bool>>());
        let bob: Vec<Point> = (0..n).map(|_| point()).collect();
        let fresh: Vec<Point> = (0..n).map(|_| point()).collect();
        let mut alice = bob.clone();
        alice.extend(fresh.iter().cloned());
        // Catch-up configuration: a coarse prior D1 (the difference is n
        // far outliers, far above 1) keeps the level schedule short, and
        // a small MLSH draw cap suffices because far points never
        // collide — both keep the sketch-side work proportionate so the
        // measurement exercises the repair matching.
        let mut cfg = EmdProtocolConfig::for_space(&space, alice.len(), k);
        cfg.d1 = 256.0;
        cfg.max_s = 32;
        // One protocol object per solver, all from the same seed: the
        // public coins (and therefore Alice's message) are identical, so
        // each solver decodes the *same* wire bytes.
        let protos: Vec<EmdProtocol> = SOLVERS
            .iter()
            .map(|&(solver, _)| {
                EmdProtocol::new(space, cfg.with_solver(solver), seed ^ 0x5e55 ^ n as u64)
            })
            .collect();
        let msg = protos[0].alice_encode(&alice);

        let mut hungarian_decode_rate = 0.0f64;
        let mut exact_emdk: Option<f64> = None;
        let mut reference_i_star: Option<usize> = None;
        for (proto, &(solver, name)) in protos.iter().zip(&SOLVERS) {
            // Timed: the whole decode path, repair matching included.
            let (decode_elapsed, outcome) = time_per_call(time_budget, decode_reps, || {
                proto
                    .bob_decode(&msg, &bob)
                    .unwrap_or_else(|e| panic!("n={n} k={k} {name}: decode failed: {e}"))
            });
            // Every solver walks the same solver-independent level
            // schedule and sees the catch-up survivor shape.
            let i_star = *reference_i_star.get_or_insert(outcome.i_star);
            assert_eq!(outcome.i_star, i_star, "n={n} {name}: level disagreement");
            assert_eq!(
                outcome.decoded,
                (n, 0),
                "n={n} {name}: not a catch-up decode"
            );
            assert_eq!(outcome.reconciled.len(), n, "n={n} {name}: size drift");
            let decode_rate = 1.0 / decode_elapsed;
            if solver == AssignmentSolver::Hungarian {
                hungarian_decode_rate = decode_rate;
            }

            // Timed: exact EMD_k between the two fresh n-point sets —
            // the dummy-augmented square assignment on the measurement
            // side of the crate.
            let (emdk_elapsed, emdk) = time_per_call(time_budget, decode_reps, || {
                emd_k_with(solver, space.metric(), &fresh, &bob, n / 4)
            });
            match (solver.is_exact(), exact_emdk) {
                (true, None) => exact_emdk = Some(emdk),
                (true, Some(reference)) => assert!(
                    (emdk - reference).abs() < 1e-6,
                    "n={n} {name}: EMD_k {emdk} disagrees with exact {reference}"
                ),
                (false, reference) => assert!(
                    emdk + 1e-9 >= reference.expect("exact solvers run first"),
                    "n={n} greedy EMD_k {emdk} below exact"
                ),
            }

            bench.push(format!("{name}_n{n}_bob_decode_per_sec"), decode_rate);
            bench.push(format!("{name}_n{n}_emdk_per_sec"), 1.0 / emdk_elapsed);
            table.row(vec![
                n.to_string(),
                name.into(),
                format!("{:.2}", decode_elapsed * 1e3),
                format!("{decode_rate:.1}"),
                format!("{:.2}x", decode_rate / hungarian_decode_rate),
                format!("{:.2}", emdk_elapsed * 1e3),
                format!("{emdk:.1}"),
            ]);
        }
    }

    let report = format!(
        "## P1 — EMD assignment solvers: Hungarian vs ε-scaling auction vs greedy\n\n\
         Catch-up workloads on the d = {dim} Hamming cube (Bob holds n points, \
         Alice those plus n fresh ones, k = n/2): Alice's message is encoded \
         once per n and each solver decodes the same bytes, timed over enough \
         reps (≥ {decode_reps}) to fill a {time_budget}s budget per cell; \
         decode yields (n, 0) survivors, so the repair step is a square n×n \
         min-cost matching. The exact solvers are asserted to \
         agree on EMD_k (a dummy-augmented square instance) and to decode at \
         the same RIBLT level; greedy is reported as the upper bound it is. \
         `bob_decode` is the protocol hot path the solver seam accelerates; \
         `emd_k` is the assignment used by the measurement harness.\n\n{}",
        table.render()
    );
    (report, bench)
}
