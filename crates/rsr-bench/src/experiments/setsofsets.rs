//! T10 — Theorem E.1 shape: sets-of-sets communication tracks the number
//! of differing children, not the parent-set size.

use crate::table::{f, Table};
use rsr_setsofsets::{estimate_fp_cells, reconcile, ChildSet, SosConfig};

fn make_parents(shared: usize, diffs: usize, h: usize) -> (Vec<ChildSet>, Vec<ChildSet>) {
    let child = |tag: u64| -> ChildSet { (0..h as u64).map(|j| tag * 1000 + j).collect() };
    let alice: Vec<ChildSet> = (0..shared as u64).map(child).collect();
    let mut bob = alice.clone();
    for i in 0..diffs as u64 {
        bob.push(child(1_000_000 + i));
    }
    (alice, bob)
}

/// Runs the experiment.
pub fn run(quick: bool) -> String {
    let h = 16;
    let mut table = Table::new(&[
        "parent size",
        "differing children z",
        "total bits",
        "bits / z",
        "rounds",
    ]);
    let sizes: &[usize] = if quick {
        &[100, 1000]
    } else {
        &[100, 1000, 10_000]
    };
    let diffs: &[usize] = &[2, 8, 32];
    for &shared in sizes {
        for &z in diffs {
            let (alice, bob) = make_parents(shared, z, h);
            let cfg = SosConfig {
                fp_cells: estimate_fp_cells(z),
                q: 3,
                seed: 0x505,
                entry_bits: 24,
            };
            let out = reconcile(&alice, &bob, &cfg).expect("within sizing");
            assert_eq!(out.bob_only_children.len(), z);
            table.row(vec![
                shared.to_string(),
                z.to_string(),
                out.total_bits().to_string(),
                f(out.total_bits() as f64 / z as f64),
                "3".into(),
            ]);
        }
    }
    format!(
        "## T10 — sets-of-sets reconciliation (Theorem E.1 substrate)\n\n\
         Child sets of h = {h} entries; Bob holds z extra children. \
         Expected: bits grow with z and stay flat (up to the count-width \
         log factor) as the parent size grows 100×.\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn bits_track_diffs_not_parents() {
        let report = super::run(true);
        assert!(report.contains("## T10"));
        // Extract "total bits" for (100, 8) and (1000, 8): ratio < 1.3.
        let rows: Vec<Vec<String>> = report
            .lines()
            .filter(|l| l.starts_with("| 10") || l.starts_with("| 100"))
            .map(|l| l.split('|').map(|c| c.trim().to_string()).collect())
            .collect();
        let bits = |parent: &str, z: &str| -> f64 {
            rows.iter()
                .find(|r| r[1] == parent && r[2] == z)
                .map(|r| r[3].parse().unwrap())
                .unwrap()
        };
        let ratio = bits("1000", "8") / bits("100", "8");
        assert!(ratio < 1.3, "bits grew with parent size: {ratio}");
    }
}
