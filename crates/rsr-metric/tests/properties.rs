//! Property-based tests for the metric substrate: the axioms the
//! reconciliation protocols silently rely on (symmetry, triangle inequality,
//! identity) must hold for every supported metric.

use proptest::prelude::*;
use rsr_metric::{GridUniverse, Metric, Point};

fn coords(dim: usize, delta: i64) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(0..delta, dim)
}

fn all_metrics() -> Vec<Metric> {
    vec![Metric::L1, Metric::L2, Metric::Lp(1.5), Metric::Hamming]
}

proptest! {
    #[test]
    fn symmetry(a in coords(6, 50), b in coords(6, 50)) {
        let (pa, pb) = (Point::new(a), Point::new(b));
        for m in all_metrics() {
            let d1 = m.distance(&pa, &pb);
            let d2 = m.distance(&pb, &pa);
            prop_assert!((d1 - d2).abs() < 1e-9, "{m:?}: {d1} vs {d2}");
        }
    }

    #[test]
    fn triangle_inequality(a in coords(5, 30), b in coords(5, 30), c in coords(5, 30)) {
        let (pa, pb, pc) = (Point::new(a), Point::new(b), Point::new(c));
        for m in all_metrics() {
            let ab = m.distance(&pa, &pb);
            let bc = m.distance(&pb, &pc);
            let ac = m.distance(&pa, &pc);
            prop_assert!(ac <= ab + bc + 1e-9, "{m:?}: {ac} > {ab} + {bc}");
        }
    }

    #[test]
    fn identity(a in coords(8, 100)) {
        let pa = Point::new(a);
        for m in all_metrics() {
            prop_assert_eq!(m.distance(&pa, &pa), 0.0);
        }
    }

    #[test]
    fn positivity_on_distinct(a in coords(4, 20), b in coords(4, 20)) {
        let (pa, pb) = (Point::new(a), Point::new(b));
        if pa != pb {
            for m in all_metrics() {
                prop_assert!(m.distance(&pa, &pb) > 0.0, "{m:?} gave 0 for distinct points");
            }
        }
    }

    #[test]
    fn lp_monotone_in_p(a in coords(5, 40), b in coords(5, 40)) {
        // ℓ_p norms are non-increasing in p.
        let (pa, pb) = (Point::new(a), Point::new(b));
        let d1 = Metric::Lp(1.0).distance(&pa, &pb);
        let d15 = Metric::Lp(1.5).distance(&pa, &pb);
        let d2 = Metric::Lp(2.0).distance(&pa, &pb);
        prop_assert!(d1 + 1e-9 >= d15 && d15 + 1e-9 >= d2);
    }

    #[test]
    fn clamp_is_idempotent_and_in_grid(a in prop::collection::vec(-200i64..200, 5)) {
        let u = GridUniverse::new(50, 5);
        let p = Point::new(a);
        let c = u.clamp(&p);
        prop_assert!(u.contains(&c));
        prop_assert_eq!(u.clamp(&c), c.clone());
    }

    #[test]
    fn hamming_agrees_with_l1_on_binary(a in coords(10, 2), b in coords(10, 2)) {
        let (pa, pb) = (Point::new(a), Point::new(b));
        prop_assert_eq!(
            Metric::Hamming.distance(&pa, &pb),
            Metric::L1.distance(&pa, &pb)
        );
    }
}
