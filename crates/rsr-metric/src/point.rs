//! Points of the discretized universe `[Δ]^d`.

use std::fmt;

/// A point of `[Δ]^d` with non-negative integer coordinates.
///
/// Coordinates are stored as `i64` so that the same representation can hold
/// intermediate *sums* of points (which live in `{−nΔ, …, nΔ}^d`, see §2.2
/// item 4 of the paper) without a separate type. A `Point` produced by a
/// [`crate::GridUniverse`] always has every coordinate in `[0, Δ−1]`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Point {
    coords: Vec<i64>,
}

impl Point {
    /// Creates a point from raw coordinates.
    pub fn new(coords: Vec<i64>) -> Self {
        Point { coords }
    }

    /// Creates the origin of a `dim`-dimensional space.
    pub fn zero(dim: usize) -> Self {
        Point {
            coords: vec![0; dim],
        }
    }

    /// Creates a point from a bit string (for Hamming-space workloads).
    /// `bits[j] == true` becomes coordinate `1`.
    pub fn from_bits(bits: &[bool]) -> Self {
        Point {
            coords: bits.iter().map(|&b| i64::from(b)).collect(),
        }
    }

    /// The dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// Coordinate accessor.
    pub fn coord(&self, j: usize) -> i64 {
        self.coords[j]
    }

    /// All coordinates as a slice.
    pub fn coords(&self) -> &[i64] {
        &self.coords
    }

    /// Mutable access to the coordinates (used by workload generators).
    pub fn coords_mut(&mut self) -> &mut [i64] {
        &mut self.coords
    }

    /// Consumes the point, returning its coordinates.
    pub fn into_coords(self) -> Vec<i64> {
        self.coords
    }

    /// Coordinate-wise sum (`self + other`), used by RIBLT value cells.
    pub fn add(&self, other: &Point) -> Point {
        debug_assert_eq!(self.dim(), other.dim());
        Point {
            coords: self
                .coords
                .iter()
                .zip(&other.coords)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// Coordinate-wise difference (`self − other`).
    pub fn sub(&self, other: &Point) -> Point {
        debug_assert_eq!(self.dim(), other.dim());
        Point {
            coords: self
                .coords
                .iter()
                .zip(&other.coords)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// True if every coordinate lies in `[0, delta−1]`.
    pub fn in_grid(&self, delta: i64) -> bool {
        self.coords.iter().all(|&c| (0..delta).contains(&c))
    }

    /// Interprets the point as a bit vector (Hamming space); coordinates
    /// other than 0/1 are reported as an error by returning `None`.
    pub fn as_bits(&self) -> Option<Vec<bool>> {
        self.coords
            .iter()
            .map(|&c| match c {
                0 => Some(false),
                1 => Some(true),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point{:?}", self.coords)
    }
}

impl From<Vec<i64>> for Point {
    fn from(coords: Vec<i64>) -> Self {
        Point::new(coords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_has_requested_dim() {
        let p = Point::zero(7);
        assert_eq!(p.dim(), 7);
        assert!(p.coords().iter().all(|&c| c == 0));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Point::new(vec![1, 2, 3]);
        let b = Point::new(vec![10, -4, 0]);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn from_bits_and_back() {
        let bits = vec![true, false, true, true];
        let p = Point::from_bits(&bits);
        assert_eq!(p.as_bits().unwrap(), bits);
        assert_eq!(p.coord(0), 1);
        assert_eq!(p.coord(1), 0);
    }

    #[test]
    fn as_bits_rejects_non_binary() {
        let p = Point::new(vec![0, 2]);
        assert!(p.as_bits().is_none());
    }

    #[test]
    fn in_grid_bounds() {
        let p = Point::new(vec![0, 9]);
        assert!(p.in_grid(10));
        assert!(!p.in_grid(9));
        let q = Point::new(vec![-1, 3]);
        assert!(!q.in_grid(10));
    }
}
