//! Discretized metric spaces for robust set reconciliation.
//!
//! The paper (Mitzenmacher & Morgan, PODS 2019) works throughout in a
//! discretized metric space `(U, f)` of the form `U = [Δ]^d` under an `ℓ_p`
//! norm, or `U = {0,1}^d` under the Hamming metric. This crate provides:
//!
//! * [`Point`] — a point of `[Δ]^d` with integer coordinates,
//! * [`Metric`] — the distance functions (`ℓ1`, `ℓ2`, general `ℓ_p`, Hamming),
//! * [`GridUniverse`] — the universe `[Δ]^d` itself (bounds, sampling,
//!   clamping, bit-size accounting `log |U| = d·log Δ`),
//! * [`space::MetricSpace`] — a universe paired with a metric, the object
//!   protocols are parameterized by.
//!
//! Coordinates are `i64` internally so that intermediate sums in the robust
//! IBLT (`{−nΔ, …, nΔ}^d` per §2.2 of the paper) never overflow for any
//! realistic `n·Δ`.

pub mod metric;
pub mod point;
pub mod space;
pub mod universe;

pub use metric::Metric;
pub use point::Point;
pub use space::MetricSpace;
pub use universe::GridUniverse;
