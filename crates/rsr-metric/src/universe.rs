//! The discretized universe `[Δ]^d`.

use crate::point::Point;
use rand::Rng;

/// The universe `U = [Δ]^d`: points with `d` coordinates in `{0, …, Δ−1}`.
///
/// The paper's communication bounds depend on `log |U| = d·log2 Δ` bits per
/// point; [`GridUniverse::point_bits`] is that quantity and is what the
/// transcript accountant charges for a raw point transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridUniverse {
    delta: i64,
    dim: usize,
}

impl GridUniverse {
    /// Creates the universe `[Δ]^d`. Panics if `Δ < 1` or `d == 0`.
    pub fn new(delta: i64, dim: usize) -> Self {
        assert!(delta >= 1, "Δ must be ≥ 1, got {delta}");
        assert!(dim >= 1, "dimension must be ≥ 1");
        GridUniverse { delta, dim }
    }

    /// The binary cube `{0,1}^d` (Hamming-space universes, §4.2/Thm 4.6).
    pub fn binary(dim: usize) -> Self {
        GridUniverse::new(2, dim)
    }

    /// Side length `Δ`.
    pub fn delta(&self) -> i64 {
        self.delta
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// `log2 |U| = d·log2 Δ`, the bit cost of one raw point.
    pub fn point_bits(&self) -> f64 {
        self.dim as f64 * (self.delta as f64).log2().max(1.0)
    }

    /// Number of bits used by the wire encoding of one coordinate:
    /// `ceil(log2 Δ)`, at least 1.
    pub fn coord_wire_bits(&self) -> u32 {
        (64 - (self.delta.max(2) as u64 - 1).leading_zeros()).max(1)
    }

    /// Number of bits used by the wire encoding of one point: coordinates
    /// are packed with [`GridUniverse::coord_wire_bits`] bits each.
    pub fn point_wire_bits(&self) -> u64 {
        self.dim as u64 * u64::from(self.coord_wire_bits())
    }

    /// True if `p` is a member of the universe.
    pub fn contains(&self, p: &Point) -> bool {
        p.dim() == self.dim && p.in_grid(self.delta)
    }

    /// Clamps every coordinate into `[0, Δ−1]`. Used by the RIBLT extraction
    /// step ("shift the result into \[0,Δ\] by changing entries less than 0 to
    /// 0 and entries greater than Δ to Δ", §2.2 item 5).
    pub fn clamp(&self, p: &Point) -> Point {
        Point::new(
            p.coords()
                .iter()
                .map(|&c| c.clamp(0, self.delta - 1))
                .collect(),
        )
    }

    /// Samples a uniform point of the universe.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        Point::new(
            (0..self.dim)
                .map(|_| rng.gen_range(0..self.delta))
                .collect(),
        )
    }

    /// Samples `count` uniform *distinct* points. Panics if the universe is
    /// too small to contain `count` distinct points.
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<Point> {
        let capacity = (self.delta as f64).powi(self.dim as i32);
        assert!(
            capacity >= count as f64,
            "universe too small for {count} distinct points"
        );
        let mut seen = std::collections::HashSet::with_capacity(count);
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let p = self.sample(rng);
            if seen.insert(p.clone()) {
                out.push(p);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn contains_respects_bounds() {
        let u = GridUniverse::new(10, 2);
        assert!(u.contains(&Point::new(vec![0, 9])));
        assert!(!u.contains(&Point::new(vec![0, 10])));
        assert!(!u.contains(&Point::new(vec![0, 1, 2]))); // wrong dim
    }

    #[test]
    fn clamp_pulls_into_grid() {
        let u = GridUniverse::new(10, 3);
        let p = Point::new(vec![-5, 3, 12]);
        assert_eq!(u.clamp(&p), Point::new(vec![0, 3, 9]));
    }

    #[test]
    fn sample_is_in_universe() {
        let u = GridUniverse::new(7, 4);
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert!(u.contains(&u.sample(&mut rng)));
        }
    }

    #[test]
    fn sample_distinct_yields_distinct() {
        let u = GridUniverse::binary(8);
        let mut rng = StdRng::seed_from_u64(7);
        let pts = u.sample_distinct(&mut rng, 50);
        let set: std::collections::HashSet<_> = pts.iter().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn point_bits_binary_cube() {
        let u = GridUniverse::binary(128);
        assert_eq!(u.point_bits(), 128.0);
        assert_eq!(u.point_wire_bits(), 128);
    }

    #[test]
    fn point_wire_bits_rounds_up() {
        let u = GridUniverse::new(10, 3); // ceil(log2 10) = 4
        assert_eq!(u.point_wire_bits(), 12);
    }

    #[test]
    #[should_panic]
    fn zero_delta_rejected() {
        GridUniverse::new(0, 3);
    }
}
