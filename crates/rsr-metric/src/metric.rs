//! Distance functions over `[Δ]^d`.

use crate::point::Point;

/// The metric `f` of the space `(U, f)`.
///
/// The paper's results are stated for `ℓ1` (Lemma 2.4, Cor 4.4), `ℓ2`
/// (Lemma 2.5, Cor 3.6), general `ℓ_p` with `p ∈ [1, 2]` (Thm 4.5), and the
/// Hamming metric on `{0,1}^d` (Lemma 2.3, Cor 3.5, Cor 4.3, Thm 4.6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Metric {
    /// `ℓ1` (Manhattan) distance.
    L1,
    /// `ℓ2` (Euclidean) distance.
    L2,
    /// General `ℓ_p` distance for `p ≥ 1`.
    Lp(f64),
    /// Hamming distance: number of coordinates that differ. On `{0,1}^d`
    /// this coincides with `ℓ1`, but it is well defined for any grid.
    Hamming,
}

impl Metric {
    /// Distance between two points. Panics (debug) on dimension mismatch.
    pub fn distance(&self, a: &Point, b: &Point) -> f64 {
        debug_assert_eq!(a.dim(), b.dim(), "dimension mismatch");
        match *self {
            Metric::L1 => a
                .coords()
                .iter()
                .zip(b.coords())
                .map(|(x, y)| (x - y).abs() as f64)
                .sum(),
            Metric::L2 => a
                .coords()
                .iter()
                .zip(b.coords())
                .map(|(x, y)| {
                    let d = (x - y) as f64;
                    d * d
                })
                .sum::<f64>()
                .sqrt(),
            Metric::Lp(p) => {
                assert!(p >= 1.0, "ℓ_p requires p ≥ 1, got {p}");
                a.coords()
                    .iter()
                    .zip(b.coords())
                    .map(|(x, y)| ((x - y).abs() as f64).powf(p))
                    .sum::<f64>()
                    .powf(1.0 / p)
            }
            Metric::Hamming => a
                .coords()
                .iter()
                .zip(b.coords())
                .filter(|(x, y)| x != y)
                .count() as f64,
        }
    }

    /// The `p` exponent of the norm, where applicable (`Hamming` maps to 1,
    /// matching its behaviour on `{0,1}^d`).
    pub fn p_exponent(&self) -> f64 {
        match *self {
            Metric::L1 | Metric::Hamming => 1.0,
            Metric::L2 => 2.0,
            Metric::Lp(p) => p,
        }
    }

    /// Diameter of `[Δ]^d` under this metric: the distance between opposite
    /// grid corners. Used to derive the paper's default bound
    /// `M = maximum pairwise distance` when no prior knowledge is available.
    pub fn diameter(&self, delta: i64, dim: usize) -> f64 {
        let lo = Point::zero(dim);
        let hi = Point::new(vec![delta - 1; dim]);
        self.distance(&lo, &hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: &[i64]) -> Point {
        Point::new(v.to_vec())
    }

    #[test]
    fn l1_distance() {
        assert_eq!(Metric::L1.distance(&p(&[0, 0]), &p(&[3, 4])), 7.0);
    }

    #[test]
    fn l2_distance() {
        assert_eq!(Metric::L2.distance(&p(&[0, 0]), &p(&[3, 4])), 5.0);
    }

    #[test]
    fn lp_matches_l1_l2_at_endpoints() {
        let a = p(&[1, 5, 2]);
        let b = p(&[4, 0, 2]);
        assert!((Metric::Lp(1.0).distance(&a, &b) - Metric::L1.distance(&a, &b)).abs() < 1e-9);
        assert!((Metric::Lp(2.0).distance(&a, &b) - Metric::L2.distance(&a, &b)).abs() < 1e-9);
    }

    #[test]
    fn hamming_counts_differing_coords() {
        assert_eq!(
            Metric::Hamming.distance(&p(&[1, 0, 1]), &p(&[1, 1, 0])),
            2.0
        );
        // On non-binary grids Hamming still counts mismatches.
        assert_eq!(Metric::Hamming.distance(&p(&[5, 7]), &p(&[5, 9])), 1.0);
    }

    #[test]
    fn identity_of_indiscernibles() {
        let a = p(&[2, 3, 4]);
        for m in [Metric::L1, Metric::L2, Metric::Lp(1.5), Metric::Hamming] {
            assert_eq!(m.distance(&a, &a), 0.0);
        }
    }

    #[test]
    fn diameter_of_binary_cube_is_d_under_hamming() {
        assert_eq!(Metric::Hamming.diameter(2, 10), 10.0);
        assert_eq!(Metric::L1.diameter(4, 3), 9.0);
    }

    #[test]
    #[should_panic]
    fn lp_rejects_p_below_one() {
        Metric::Lp(0.5).distance(&p(&[0]), &p(&[1]));
    }
}
