//! A universe paired with a metric: the object protocols range over.

use crate::metric::Metric;
use crate::point::Point;
use crate::universe::GridUniverse;

/// A metric space `(U, f) = ([Δ]^d, ℓ_p)` or `({0,1}^d, Hamming)`.
///
/// All protocols in `rsr-core` are parameterized by a `MetricSpace`; it
/// bundles the universe bounds used for wire encoding with the distance
/// function used for matching and guarantees.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MetricSpace {
    universe: GridUniverse,
    metric: Metric,
}

impl MetricSpace {
    /// Creates a metric space over `[Δ]^d`.
    pub fn new(universe: GridUniverse, metric: Metric) -> Self {
        MetricSpace { universe, metric }
    }

    /// `({0,1}^d, Hamming)` — the space of Cor 3.5, Cor 4.3 and Thm 4.6.
    pub fn hamming(dim: usize) -> Self {
        MetricSpace::new(GridUniverse::binary(dim), Metric::Hamming)
    }

    /// `([Δ]^d, ℓ1)` — the space of Lemma 2.4 and Cor 4.4.
    pub fn l1(delta: i64, dim: usize) -> Self {
        MetricSpace::new(GridUniverse::new(delta, dim), Metric::L1)
    }

    /// `([Δ]^d, ℓ2)` — the space of Lemma 2.5 and Cor 3.6.
    pub fn l2(delta: i64, dim: usize) -> Self {
        MetricSpace::new(GridUniverse::new(delta, dim), Metric::L2)
    }

    /// The universe `U`.
    pub fn universe(&self) -> &GridUniverse {
        &self.universe
    }

    /// The metric `f`.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Distance `f(a, b)`.
    pub fn distance(&self, a: &Point, b: &Point) -> f64 {
        self.metric.distance(a, b)
    }

    /// Dimension `d`.
    pub fn dim(&self) -> usize {
        self.universe.dim()
    }

    /// Side length `Δ`.
    pub fn delta(&self) -> i64 {
        self.universe.delta()
    }

    /// Diameter of the space: the paper's default `M` bound
    /// (`M = d·Δ` for ℓ1 / Hamming-style defaults in §3).
    pub fn diameter(&self) -> f64 {
        self.metric
            .diameter(self.universe.delta(), self.universe.dim())
    }

    /// Distance of `a` to the nearest point of `set` (∞ for an empty set).
    pub fn nearest_distance(&self, a: &Point, set: &[Point]) -> f64 {
        set.iter()
            .map(|b| self.distance(a, b))
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_space_shape() {
        let s = MetricSpace::hamming(16);
        assert_eq!(s.dim(), 16);
        assert_eq!(s.delta(), 2);
        assert_eq!(s.diameter(), 16.0);
    }

    #[test]
    fn nearest_distance_over_set() {
        let s = MetricSpace::l1(100, 2);
        let set = vec![Point::new(vec![0, 0]), Point::new(vec![10, 10])];
        let q = Point::new(vec![9, 9]);
        assert_eq!(s.nearest_distance(&q, &set), 2.0);
        assert_eq!(s.nearest_distance(&q, &[]), f64::INFINITY);
    }

    #[test]
    fn l2_space_distance() {
        let s = MetricSpace::l2(100, 2);
        assert_eq!(
            s.distance(&Point::new(vec![0, 0]), &Point::new(vec![3, 4])),
            5.0
        );
    }
}
