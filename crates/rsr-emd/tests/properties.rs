//! Property-based tests for the EMD substrate, cross-validating the
//! Hungarian implementation against brute force and checking the metric
//! properties the protocol analysis relies on.

use proptest::prelude::*;
use rsr_emd::hungarian::assign_brute_force;
use rsr_emd::{emd, emd_greedy, emd_k};
use rsr_metric::{Metric, Point};

fn point_set(n: usize, dim: usize, delta: i64) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(0..delta, dim), n..=n)
        .prop_map(|vs| vs.into_iter().map(Point::new).collect())
}

proptest! {
    /// Exact EMD equals the brute-force min-cost bijection on tiny sets.
    #[test]
    fn emd_matches_brute_force(
        n in 1usize..6,
        seed_x in point_set(6, 2, 50),
        seed_y in point_set(6, 2, 50),
    ) {
        let x = &seed_x[..n];
        let y = &seed_y[..n];
        let got = emd(Metric::L1, x, y);
        let want = assign_brute_force(n, n, |i, j| Metric::L1.distance(&x[i], &y[j]));
        prop_assert!((got - want).abs() < 1e-9);
    }

    /// EMD is symmetric.
    #[test]
    fn emd_symmetric(n in 1usize..7, xs in point_set(7, 2, 40), ys in point_set(7, 2, 40)) {
        let x = &xs[..n];
        let y = &ys[..n];
        let d1 = emd(Metric::L2, x, y);
        let d2 = emd(Metric::L2, y, x);
        prop_assert!((d1 - d2).abs() < 1e-6);
    }

    /// EMD obeys the triangle inequality (used in the Theorem 3.4 proof).
    #[test]
    fn emd_triangle(
        n in 1usize..6,
        xs in point_set(6, 2, 30),
        ys in point_set(6, 2, 30),
        zs in point_set(6, 2, 30),
    ) {
        let (x, y, z) = (&xs[..n], &ys[..n], &zs[..n]);
        let xy = emd(Metric::L1, x, y);
        let yz = emd(Metric::L1, y, z);
        let xz = emd(Metric::L1, x, z);
        prop_assert!(xz <= xy + yz + 1e-9);
    }

    /// EMD_k is non-increasing in k and hits 0 at k = n.
    #[test]
    fn emd_k_monotone(n in 1usize..6, xs in point_set(6, 2, 60), ys in point_set(6, 2, 60)) {
        let (x, y) = (&xs[..n], &ys[..n]);
        let mut prev = f64::INFINITY;
        for k in 0..=n {
            let v = emd_k(Metric::L1, x, y, k);
            prop_assert!(v <= prev + 1e-9);
            prev = v;
        }
        prop_assert_eq!(emd_k(Metric::L1, x, y, n), 0.0);
    }

    /// EMD_k lower-bounds EMD minus the k largest matched distances (the
    /// exclusion can never help by more than the heaviest k edges of the
    /// optimal matching, but always helps at least that much on *some*
    /// matching) — we check just the sound direction: EMD_k ≤ EMD.
    #[test]
    fn emd_k_below_emd(n in 1usize..6, xs in point_set(6, 2, 60), ys in point_set(6, 2, 60), k in 0usize..4) {
        let (x, y) = (&xs[..n], &ys[..n]);
        prop_assert!(emd_k(Metric::L1, x, y, k) <= emd(Metric::L1, x, y) + 1e-9);
    }

    /// Greedy matching is an upper bound for the exact EMD.
    #[test]
    fn greedy_upper_bound(n in 1usize..8, xs in point_set(8, 3, 40), ys in point_set(8, 3, 40)) {
        let (x, y) = (&xs[..n], &ys[..n]);
        prop_assert!(emd_greedy(Metric::L2, x, y) + 1e-9 >= emd(Metric::L2, x, y));
    }

    /// Identity: EMD(X, X) = 0 for any set.
    #[test]
    fn emd_identity(n in 1usize..8, xs in point_set(8, 2, 100)) {
        let x = &xs[..n];
        prop_assert_eq!(emd(Metric::L1, x, x), 0.0);
    }
}

// ---------------------------------------------------------------------
// Assignment-solver properties: the ε-scaling auction must be *exact*
// (equal total cost to the Hungarian reference on integer cost
// matrices), and greedy must stay within its documented bound.

fn cost_matrix(n: usize, m: usize, max: i64) -> impl Strategy<Value = Vec<Vec<i64>>> {
    prop::collection::vec(prop::collection::vec(0..max, m..=m), n..=n)
}

proptest! {
    /// Auction and Hungarian agree on the optimal total cost for random
    /// integer cost matrices up to n = 64 rows, square and rectangular.
    #[test]
    fn auction_equals_hungarian_cost(
        n in 1usize..=64,
        extra in 0usize..=16,
        costs in cost_matrix(64, 80, 10_000),
    ) {
        let m = n + extra;
        let cost = |i: usize, j: usize| costs[i][j] as f64;
        let fast = rsr_emd::auction_assign(n, m, cost);
        let slow = rsr_emd::assign(n, m, cost);
        // Both injective…
        let distinct: std::collections::HashSet<_> = fast.iter().collect();
        prop_assert_eq!(distinct.len(), n);
        // …and equal in total cost (different optimal matchings allowed).
        let got = rsr_emd::assignment_cost(&fast, cost);
        let want = rsr_emd::assignment_cost(&slow, cost);
        prop_assert!((got - want).abs() < 1e-9, "auction {} vs hungarian {}", got, want);
    }

    /// The solver-enum dispatch agrees with the direct entry points.
    #[test]
    fn solver_dispatch_matches_direct_calls(
        n in 1usize..=12,
        extra in 0usize..=4,
        costs in cost_matrix(12, 16, 1_000),
    ) {
        let m = n + extra;
        let cost = |i: usize, j: usize| costs[i][j] as f64;
        use rsr_emd::AssignmentSolver as S;
        prop_assert_eq!(S::Hungarian.assign(n, m, cost), rsr_emd::assign(n, m, cost));
        prop_assert_eq!(S::Auction.assign(n, m, cost), rsr_emd::auction_assign(n, m, cost));
        prop_assert_eq!(S::Greedy.assign(n, m, cost), rsr_emd::greedy_assign(n, m, cost));
    }

    /// Greedy stays within its documented bound on metric instances:
    /// cost(Greedy) ≤ 2·n^{log₂(3/2)}·cost(optimal) (Reingold–Tarjan
    /// worst case is Θ(n^{log₂ 3/2})), with an additive slack for
    /// instances whose optimum is 0 (a maximal zero-cost matching found
    /// greedily need not be a perfect one).
    #[test]
    fn greedy_within_documented_bound(
        n in 1usize..=24,
        xs in point_set(24, 2, 64),
        ys in point_set(24, 2, 64),
    ) {
        let (x, y) = (&xs[..n], &ys[..n]);
        let cost = |i: usize, j: usize| Metric::L1.distance(&x[i], &y[j]);
        let opt = rsr_emd::assignment_cost(&rsr_emd::assign(n, n, cost), cost);
        let greedy = rsr_emd::assignment_cost(&rsr_emd::greedy_assign(n, n, cost), cost);
        let ratio_bound = 2.0 * (n as f64).powf(1.5f64.log2());
        prop_assert!(
            greedy <= ratio_bound * opt + 1e-9,
            "greedy {} vs bound {} (opt {})", greedy, ratio_bound * opt, opt
        );
    }

    /// EMD under the auction solver equals EMD under the Hungarian
    /// reference (both exact; ℓ1 distances are integers).
    #[test]
    fn emd_with_auction_equals_reference(
        n in 1usize..10,
        xs in point_set(10, 3, 100),
        ys in point_set(10, 3, 100),
        k in 0usize..4,
    ) {
        use rsr_emd::AssignmentSolver as S;
        let (x, y) = (&xs[..n], &ys[..n]);
        let reference = emd(Metric::L1, x, y);
        prop_assert!((rsr_emd::emd_with(S::Auction, Metric::L1, x, y) - reference).abs() < 1e-9);
        let reference_k = emd_k(Metric::L1, x, y, k);
        prop_assert!(
            (rsr_emd::emd_k_with(S::Auction, Metric::L1, x, y, k) - reference_k).abs() < 1e-9
        );
    }
}
