//! Property-based tests for the EMD substrate, cross-validating the
//! Hungarian implementation against brute force and checking the metric
//! properties the protocol analysis relies on.

use proptest::prelude::*;
use rsr_emd::hungarian::assign_brute_force;
use rsr_emd::{emd, emd_greedy, emd_k};
use rsr_metric::{Metric, Point};

fn point_set(n: usize, dim: usize, delta: i64) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(prop::collection::vec(0..delta, dim), n..=n)
        .prop_map(|vs| vs.into_iter().map(Point::new).collect())
}

proptest! {
    /// Exact EMD equals the brute-force min-cost bijection on tiny sets.
    #[test]
    fn emd_matches_brute_force(
        n in 1usize..6,
        seed_x in point_set(6, 2, 50),
        seed_y in point_set(6, 2, 50),
    ) {
        let x = &seed_x[..n];
        let y = &seed_y[..n];
        let got = emd(Metric::L1, x, y);
        let want = assign_brute_force(n, n, |i, j| Metric::L1.distance(&x[i], &y[j]));
        prop_assert!((got - want).abs() < 1e-9);
    }

    /// EMD is symmetric.
    #[test]
    fn emd_symmetric(n in 1usize..7, xs in point_set(7, 2, 40), ys in point_set(7, 2, 40)) {
        let x = &xs[..n];
        let y = &ys[..n];
        let d1 = emd(Metric::L2, x, y);
        let d2 = emd(Metric::L2, y, x);
        prop_assert!((d1 - d2).abs() < 1e-6);
    }

    /// EMD obeys the triangle inequality (used in the Theorem 3.4 proof).
    #[test]
    fn emd_triangle(
        n in 1usize..6,
        xs in point_set(6, 2, 30),
        ys in point_set(6, 2, 30),
        zs in point_set(6, 2, 30),
    ) {
        let (x, y, z) = (&xs[..n], &ys[..n], &zs[..n]);
        let xy = emd(Metric::L1, x, y);
        let yz = emd(Metric::L1, y, z);
        let xz = emd(Metric::L1, x, z);
        prop_assert!(xz <= xy + yz + 1e-9);
    }

    /// EMD_k is non-increasing in k and hits 0 at k = n.
    #[test]
    fn emd_k_monotone(n in 1usize..6, xs in point_set(6, 2, 60), ys in point_set(6, 2, 60)) {
        let (x, y) = (&xs[..n], &ys[..n]);
        let mut prev = f64::INFINITY;
        for k in 0..=n {
            let v = emd_k(Metric::L1, x, y, k);
            prop_assert!(v <= prev + 1e-9);
            prev = v;
        }
        prop_assert_eq!(emd_k(Metric::L1, x, y, n), 0.0);
    }

    /// EMD_k lower-bounds EMD minus the k largest matched distances (the
    /// exclusion can never help by more than the heaviest k edges of the
    /// optimal matching, but always helps at least that much on *some*
    /// matching) — we check just the sound direction: EMD_k ≤ EMD.
    #[test]
    fn emd_k_below_emd(n in 1usize..6, xs in point_set(6, 2, 60), ys in point_set(6, 2, 60), k in 0usize..4) {
        let (x, y) = (&xs[..n], &ys[..n]);
        prop_assert!(emd_k(Metric::L1, x, y, k) <= emd(Metric::L1, x, y) + 1e-9);
    }

    /// Greedy matching is an upper bound for the exact EMD.
    #[test]
    fn greedy_upper_bound(n in 1usize..8, xs in point_set(8, 3, 40), ys in point_set(8, 3, 40)) {
        let (x, y) = (&xs[..n], &ys[..n]);
        prop_assert!(emd_greedy(Metric::L2, x, y) + 1e-9 >= emd(Metric::L2, x, y));
    }

    /// Identity: EMD(X, X) = 0 for any set.
    #[test]
    fn emd_identity(n in 1usize..8, xs in point_set(8, 2, 100)) {
        let x = &xs[..n];
        prop_assert_eq!(emd(Metric::L1, x, x), 0.0);
    }
}
