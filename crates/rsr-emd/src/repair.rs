//! Bob's repair step, shared by the EMD protocol and the quadtree baseline.
//!
//! Algorithm 1's last line: "Bob finds Y_B, the subset of S_B matched in
//! the min cost matching between X_B and S_B. He then outputs
//! S'_B = (S_B \ Y_B) ∪ X_A." Here `X_B` are the decoded survivors from
//! Bob's own side (telling him which of his points are stale) and `X_A`
//! the decoded survivors from Alice's side (their replacements).
//!
//! The paper implicitly assumes `|X_A| = |X_B|`; in practice decode
//! asymmetries can make them differ, so this implementation enforces
//! `|S'_B| = |S_B|` with a deterministic policy, documented on
//! [`replace_matched`].

use crate::assignment::AssignmentSolver;
use rsr_metric::{Metric, Point};

/// Computes `S'_B = (S_B \ Y_B) ∪ X_A` with `|S'_B| = |S_B|`, matching
/// with the Hungarian reference solver; [`replace_matched_with`] picks
/// the solver (the protocol decode paths default to the auction).
///
/// Policy when `|X_A| ≠ |X_B|`:
/// * The removal budget is `min(|X_A|, |S_B|)` — one removal per inserted
///   replacement, never more than the set holds.
/// * `X_B` is matched to `S_B` by a min-cost rectangular assignment; the
///   matched partners are removed in ascending match-cost order until the
///   budget is spent (cheap matches are the most confidently stale).
/// * If `|X_B|` provides fewer removals than the budget, the surplus
///   replacements from `X_A` are themselves matched against the remaining
///   points of `S_B` and those partners are removed (a surplus Alice point
///   most plausibly replaces its nearest stale point).
pub fn replace_matched(metric: Metric, s_b: &[Point], x_b: &[Point], x_a: &[Point]) -> Vec<Point> {
    replace_matched_with(AssignmentSolver::Hungarian, metric, s_b, x_b, x_a)
}

/// [`replace_matched`] under a chosen [`AssignmentSolver`]. The exact
/// solvers remove equally-cheap matched subsets (ties may break towards
/// different, equally optimal matchings); `Greedy` trades optimality of
/// the matching for speed.
pub fn replace_matched_with(
    solver: AssignmentSolver,
    metric: Metric,
    s_b: &[Point],
    x_b: &[Point],
    x_a: &[Point],
) -> Vec<Point> {
    let n = s_b.len();
    let budget = x_a.len().min(n);
    let x_a = &x_a[..budget];
    // Match X_B (truncated to n rows) to S_B.
    let x_b = &x_b[..x_b.len().min(n)];
    let mut removed = vec![false; n];
    let mut removals: Vec<(f64, usize)> = Vec::with_capacity(budget);
    if !x_b.is_empty() {
        let assignment = solver.assign(x_b.len(), n, |i, j| metric.distance(&x_b[i], &s_b[j]));
        let mut matched: Vec<(f64, usize)> = assignment
            .iter()
            .enumerate()
            .map(|(i, &j)| (metric.distance(&x_b[i], &s_b[j]), j))
            .collect();
        matched.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        removals.extend(matched.into_iter().take(budget));
    }
    for &(_, j) in &removals {
        removed[j] = true;
    }
    // Spend any remaining budget by matching surplus X_A points against
    // the not-yet-removed points of S_B.
    let deficit = budget - removals.len().min(budget);
    if deficit > 0 {
        let surplus = &x_a[x_a.len() - deficit..];
        let remaining: Vec<usize> = (0..n).filter(|&j| !removed[j]).collect();
        let take = surplus.len().min(remaining.len());
        if take > 0 {
            let assignment = solver.assign(take, remaining.len(), |i, j| {
                metric.distance(&surplus[i], &s_b[remaining[j]])
            });
            for &j in assignment.iter() {
                removed[remaining[j]] = true;
            }
        }
    }
    let mut result: Vec<Point> = s_b
        .iter()
        .enumerate()
        .filter(|(j, _)| !removed[*j])
        .map(|(_, p)| p.clone())
        .collect();
    result.extend(x_a.iter().cloned());
    // The two phases remove exactly `budget` points, so the size is
    // preserved; truncate/pad guards the degenerate corner cases.
    result.truncate(n);
    while result.len() < n {
        // Only reachable if s_b was smaller than the removal accounting
        // allowed; repopulate deterministically from X_A or S_B.
        if let Some(p) = x_a.first().or_else(|| s_b.first()) {
            result.push(p.clone());
        } else {
            break;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(vs: &[&[i64]]) -> Vec<Point> {
        vs.iter().map(|v| Point::new(v.to_vec())).collect()
    }

    #[test]
    fn balanced_replacement() {
        let s_b = pts(&[&[0], &[10], &[20]]);
        let x_b = pts(&[&[10]]); // Bob's stale point
        let x_a = pts(&[&[11]]); // Alice's replacement
        let out = replace_matched(Metric::L1, &s_b, &x_b, &x_a);
        assert_eq!(out.len(), 3);
        assert!(out.contains(&Point::new(vec![11])));
        assert!(!out.contains(&Point::new(vec![10])));
        assert!(out.contains(&Point::new(vec![0])));
    }

    #[test]
    fn size_preserved_when_xa_larger() {
        let s_b = pts(&[&[0], &[10], &[20]]);
        let x_b = pts(&[&[10]]);
        let x_a = pts(&[&[11], &[21]]);
        let out = replace_matched(Metric::L1, &s_b, &x_b, &x_a);
        assert_eq!(out.len(), 3);
        assert!(out.contains(&Point::new(vec![11])));
        assert!(out.contains(&Point::new(vec![21])));
    }

    #[test]
    fn size_preserved_when_xb_larger() {
        let s_b = pts(&[&[0], &[10], &[20]]);
        let x_b = pts(&[&[10], &[20]]);
        let x_a = pts(&[&[12]]);
        let out = replace_matched(Metric::L1, &s_b, &x_b, &x_a);
        assert_eq!(out.len(), 3);
        assert!(out.contains(&Point::new(vec![12])));
        // Only one removal happens (budget = |X_A| = 1); the cheapest
        // match is removed.
    }

    #[test]
    fn empty_decodes_are_identity() {
        let s_b = pts(&[&[3], &[4]]);
        let out = replace_matched(Metric::L1, &s_b, &[], &[]);
        assert_eq!(out, s_b);
    }

    #[test]
    fn all_points_replaced() {
        let s_b = pts(&[&[0], &[1]]);
        let x_b = s_b.clone();
        let x_a = pts(&[&[50], &[60]]);
        let out = replace_matched(Metric::L1, &s_b, &x_b, &x_a);
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Point::new(vec![50])));
        assert!(out.contains(&Point::new(vec![60])));
    }

    #[test]
    fn empty_sb() {
        let out = replace_matched(Metric::L1, &[], &[], &pts(&[&[1]]));
        assert!(out.is_empty());
    }
}
