//! Pluggable assignment solvers: exact-legacy, exact-fast, and approximate.
//!
//! Every hot path in this crate — the [`emd`](mod@crate::emd) module's exact `EMD`/`EMD_k`,
//! [`crate::repair`]'s matched-replacement step, and through them
//! `EmdProtocol::bob_decode` in `rsr-core` — bottoms out in one rectangular
//! assignment problem: minimize `Σ_i cost(i, σ(i))` over injections `σ`
//! from `n` rows into `m ≥ n` columns. [`AssignmentSolver`] names the three
//! ways this crate can solve it, so callers pick the cost/exactness point
//! they need instead of being hard-wired to the O(n³) Hungarian method:
//!
//! * [`AssignmentSolver::Hungarian`] — the legacy exact solver
//!   ([`crate::hungarian::assign`]): shortest augmenting paths with dual
//!   potentials, O(n²m) and it re-evaluates the cost closure inside the
//!   innermost loop. Kept as the reference implementation.
//! * [`AssignmentSolver::Auction`] — Bertsekas' forward auction with
//!   ε-scaling ([`auction_assign`]): materializes the costs once as
//!   fixed-point integers and then runs integer-only bidding phases,
//!   O(n²·log n·log(nC)) in practice. **Exact** whenever the fixed-point
//!   conversion is (always for integer-valued costs such as ℓ1/Hamming
//!   distances; to ~2⁻¹⁶ relative quantization otherwise), because the
//!   final phase runs at ε < 1/n where ε-complementary-slackness pins the
//!   optimum — see [`auction_assign`] for the argument.
//! * [`AssignmentSolver::Greedy`] — globally-cheapest-pair-first
//!   ([`greedy_assign`]), O(nm·log(nm)). An upper bound only: on metric
//!   instances Reingold–Tarjan bound the ratio by Θ(n^{log₂ 3/2}) ≈
//!   n^0.585, and the property suite pins `cost(Greedy) ≤
//!   2·n^{log₂ 3/2}·cost(optimal)` on random ℓ1 instances; on arbitrary
//!   non-negative costs no multiplicative bound exists.
//!
//! The solvers agree on *total cost* (exact ones), not necessarily on the
//! assignment itself: when several matchings are optimal, each solver
//! deterministically picks one of them, but not the same one.

use crate::hungarian;

/// Which algorithm resolves a rectangular assignment problem.
///
/// See the [module docs](self) for the cost/exactness trade-off. The
/// default is [`AssignmentSolver::Auction`] — exact at integer costs and
/// asymptotically the fastest exact option.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AssignmentSolver {
    /// Exact-legacy: Kuhn–Munkres with potentials, O(n²m).
    Hungarian,
    /// Exact-fast: ε-scaling forward auction on fixed-point integer
    /// costs, O(n²·log n·log(nC)) in practice.
    #[default]
    Auction,
    /// Approximate: cheapest-pair-first greedy, O(nm·log(nm)).
    Greedy,
}

impl AssignmentSolver {
    /// Solves the rectangular assignment problem with this solver.
    ///
    /// `cost(i, j)` gives the cost of assigning row `i ∈ 0..n` to column
    /// `j ∈ 0..m`; requires `n ≤ m` and finite, non-negative costs.
    /// Returns, for each row, the column it is assigned to (all
    /// distinct).
    ///
    /// ```
    /// use rsr_emd::AssignmentSolver;
    ///
    /// let c = [[10.0, 1.0], [1.0, 10.0]];
    /// for solver in [
    ///     AssignmentSolver::Hungarian,
    ///     AssignmentSolver::Auction,
    ///     AssignmentSolver::Greedy,
    /// ] {
    ///     assert_eq!(solver.assign(2, 2, |i, j| c[i][j]), vec![1, 0]);
    /// }
    /// ```
    pub fn assign<F>(self, n: usize, m: usize, cost: F) -> Vec<usize>
    where
        F: Fn(usize, usize) -> f64,
    {
        match self {
            AssignmentSolver::Hungarian => hungarian::assign(n, m, cost),
            AssignmentSolver::Auction => auction_assign(n, m, cost),
            AssignmentSolver::Greedy => greedy_assign(n, m, cost),
        }
    }

    /// True for the solvers that return a minimum-cost assignment
    /// (everything except [`AssignmentSolver::Greedy`]).
    pub fn is_exact(self) -> bool {
        !matches!(self, AssignmentSolver::Greedy)
    }
}

/// Fixed-point scale for converting `f64` costs to auction integers:
/// integer-valued costs (ℓ1, Hamming) stay exact under it, fractional
/// ones are quantized at 2⁻¹⁶.
const FP_BITS: u32 = 16;

/// Headroom bound: after fixed-point conversion and the `(N+1)` exactness
/// scaling, every cost must stay well inside `i64` so prices (bounded by
/// a small multiple of `N·C`) cannot overflow.
const MAX_SCALED: f64 = (1i64 << 45) as f64;

/// Solves the rectangular assignment problem by Bertsekas' forward
/// auction with ε-scaling. Exact for integer-valued costs; for
/// fractional costs it is exact on the 2⁻¹⁶ fixed-point quantization of
/// the instance (see below). Requires `n ≤ m` and finite, non-negative
/// costs.
///
/// The algorithm and its exactness argument:
///
/// 1. Costs are materialized **once** as integers `c[i][j] =
///    round(cost(i, j)·2¹⁶)` (scaled down if needed to keep headroom) —
///    in contrast to the Hungarian implementation, which re-evaluates
///    the closure O(n²m) times, this is the only place the metric is
///    evaluated, O(nm) total.
/// 2. The rectangular instance is squared up with `m − n` implicit
///    all-zero dummy rows (they absorb the unused columns at zero
///    cost, so the real rows of an optimal square solution form an
///    optimal rectangular one). Squaring matters for correctness: with
///    every column owned at termination, the ε-complementary-slackness
///    argument needs no assumption about unassigned columns' prices,
///    which is what lets the phases below warm-start prices.
/// 3. Costs are further scaled by `N + 1` (`N = m` = square size) and
///    the auction runs in phases with `ε` shrinking from `C/2` down to
///    `ε = 1`. Each phase keeps the previous phase's prices (the warm
///    start that makes ε-scaling fast) and re-runs the bidding loop:
///    unassigned rows bid `price + (best − second best) + ε` for their
///    best-value column, displacing the previous owner.
/// 4. At termination of the final phase every row is within `ε = 1` of
///    its best choice (ε-CS), so the total cost is within `N·ε = N` of
///    optimal; all costs being multiples of `N + 1 > N`, it *is*
///    optimal — the classic `ε < 1/n` exactness guarantee, in integer
///    arithmetic.
pub fn auction_assign<F>(n: usize, m: usize, cost: F) -> Vec<usize>
where
    F: Fn(usize, usize) -> f64,
{
    assert!(n <= m, "need at most as many rows ({n}) as columns ({m})");
    if n == 0 {
        return Vec::new();
    }
    // Materialize the fixed-point cost matrix (row-major, real rows only;
    // dummy rows are implicit zeros).
    let mut cmax = 0.0f64;
    let mut raw = vec![0.0f64; n * m];
    for i in 0..n {
        for j in 0..m {
            let c = cost(i, j);
            assert!(c.is_finite() && c >= 0.0, "cost({i}, {j}) = {c} invalid");
            raw[i * m + j] = c;
            cmax = cmax.max(c);
        }
    }
    let big = (m + 1) as f64;
    // Integer-valued costs (ℓ1/Hamming distances, integer matrices) skip
    // the fixed-point scale entirely: smaller magnitudes mean fewer
    // ε-phases and shorter bidding wars, and exactness is free. Otherwise
    // start from the 2¹⁶ fixed-point scale. Either way the scale is then
    // halved until (N+1)·scale·cmax fits the headroom bound — prices are
    // sums of bid increments and must stay well inside `i64` — so a
    // scale below the starting point (quantizing even integer costs)
    // only occurs for astronomically large inputs.
    let integral = raw.iter().all(|v| v.fract() == 0.0);
    let mut scale = if integral {
        1.0
    } else {
        (1u64 << FP_BITS) as f64
    };
    while cmax * scale * big > MAX_SCALED {
        scale /= 2.0;
    }
    let c: Vec<i64> = raw
        .iter()
        .map(|&v| (v * scale).round() as i64 * (m as i64 + 1))
        .collect();
    drop(raw);
    let scaled_max = c.iter().copied().max().unwrap_or(0);

    let num_rows = m; // n real rows + (m - n) implicit zero dummies
    let mut price = vec![0i64; m];
    let mut owner = vec![usize::MAX; m]; // column -> row
    let mut assigned = vec![usize::MAX; num_rows]; // row -> column
    let mut eps = (scaled_max / 2).max(1);
    let mut unassigned: Vec<usize> = Vec::with_capacity(num_rows);
    loop {
        // One ε-phase: discard the assignment, keep the prices.
        owner.iter_mut().for_each(|o| *o = usize::MAX);
        assigned.iter_mut().for_each(|a| *a = usize::MAX);
        unassigned.clear();
        unassigned.extend(0..num_rows);
        while let Some(i) = unassigned.pop() {
            // Best and second-best value of a column for row i, where
            // value = −cost − price (dummy rows have cost 0 everywhere).
            let (mut best_j, mut best_v, mut second_v) = (0usize, i64::MIN, i64::MIN);
            if i < n {
                let row = &c[i * m..(i + 1) * m];
                for (j, (&cij, &pj)) in row.iter().zip(&price).enumerate() {
                    let v = -cij - pj;
                    if v > best_v {
                        (second_v, best_v, best_j) = (best_v, v, j);
                    } else if v > second_v {
                        second_v = v;
                    }
                }
            } else {
                for (j, &pj) in price.iter().enumerate() {
                    let v = -pj;
                    if v > best_v {
                        (second_v, best_v, best_j) = (best_v, v, j);
                    } else if v > second_v {
                        second_v = v;
                    }
                }
            }
            // With a single column there is no second-best; any positive
            // increment preserves ε-CS.
            let increment = if second_v == i64::MIN {
                eps
            } else {
                best_v - second_v + eps
            };
            price[best_j] += increment;
            let evicted = owner[best_j];
            if evicted != usize::MAX {
                assigned[evicted] = usize::MAX;
                unassigned.push(evicted);
            }
            owner[best_j] = i;
            assigned[i] = best_j;
        }
        if eps == 1 {
            break;
        }
        eps = (eps / 7).max(1);
    }
    assigned.truncate(n);
    debug_assert!(assigned.iter().all(|&j| j != usize::MAX));
    assigned
}

/// Solves the rectangular assignment problem greedily: sort all `n·m`
/// pairs by cost and take each pair whose row and column are both still
/// free. Requires `n ≤ m` and finite costs. Deterministic (ties break
/// by row then column), O(nm·log(nm)), and an upper bound only — see
/// the [module docs](self) for the bound the test suite pins.
pub fn greedy_assign<F>(n: usize, m: usize, cost: F) -> Vec<usize>
where
    F: Fn(usize, usize) -> f64,
{
    assert!(n <= m, "need at most as many rows ({n}) as columns ({m})");
    if n == 0 {
        return Vec::new();
    }
    let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(n * m);
    for i in 0..n {
        for j in 0..m {
            let c = cost(i, j);
            assert!(c.is_finite(), "cost({i}, {j}) not finite");
            pairs.push((c, i, j));
        }
    }
    pairs.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite costs")
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });
    let mut result = vec![usize::MAX; n];
    let mut col_used = vec![false; m];
    let mut matched = 0;
    for (_, i, j) in pairs {
        if result[i] == usize::MAX && !col_used[j] {
            result[i] = j;
            col_used[j] = true;
            matched += 1;
            if matched == n {
                break;
            }
        }
    }
    debug_assert!(result.iter().all(|&j| j != usize::MAX));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian::{assign, assign_brute_force, assignment_cost};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn injective(a: &[usize], n: usize) {
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), n, "assignment not injective: {a:?}");
    }

    #[test]
    fn auction_trivial_cases() {
        assert!(auction_assign(0, 4, |_, _| 1.0).is_empty());
        assert_eq!(auction_assign(1, 1, |_, _| 5.0), vec![0]);
        // All-zero costs: any injection is optimal; just check validity.
        let a = auction_assign(3, 5, |_, _| 0.0);
        injective(&a, 3);
    }

    #[test]
    fn auction_picks_off_diagonal_when_cheaper() {
        let c = [[10.0, 1.0], [1.0, 10.0]];
        assert_eq!(auction_assign(2, 2, |i, j| c[i][j]), vec![1, 0]);
    }

    #[test]
    fn auction_matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(70);
        for trial in 0..300 {
            let n = rng.gen_range(1..=5);
            let m = rng.gen_range(n..=7);
            let costs: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(0..100) as f64).collect())
                .collect();
            let a = auction_assign(n, m, |i, j| costs[i][j]);
            injective(&a, n);
            let got = assignment_cost(&a, |i, j| costs[i][j]);
            let want = assign_brute_force(n, m, |i, j| costs[i][j]);
            assert!((got - want).abs() < 1e-9, "trial {trial}: {got} vs {want}");
        }
    }

    #[test]
    fn auction_equals_hungarian_on_larger_integer_instances() {
        let mut rng = StdRng::seed_from_u64(71);
        for &(n, m) in &[(16usize, 16usize), (24, 40), (48, 48), (64, 80)] {
            let costs: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(0..10_000) as f64).collect())
                .collect();
            let fast = auction_assign(n, m, |i, j| costs[i][j]);
            let slow = assign(n, m, |i, j| costs[i][j]);
            injective(&fast, n);
            let got = assignment_cost(&fast, |i, j| costs[i][j]);
            let want = assignment_cost(&slow, |i, j| costs[i][j]);
            assert!((got - want).abs() < 1e-9, "{n}×{m}: {got} vs {want}");
        }
    }

    #[test]
    fn auction_handles_fractional_costs() {
        // Fractional costs are quantized at 2⁻¹⁶; a gap far above the
        // quantization step must still resolve exactly.
        let c = [[0.5, 1.25], [1.25, 0.75]];
        assert_eq!(auction_assign(2, 2, |i, j| c[i][j]), vec![0, 1]);
    }

    #[test]
    fn auction_handles_huge_costs_via_rescaling() {
        // Costs near 2⁴⁰ force the fixed-point scale below 2¹⁶; the
        // structure (off-diagonal cheaper) must survive.
        let big = (1u64 << 40) as f64;
        let c = [[big, 1.0], [1.0, big]];
        assert_eq!(auction_assign(2, 2, |i, j| c[i][j]), vec![1, 0]);
        // Same for *integer* costs near 2⁶¹: the headroom loop must also
        // rescale the integral fast path (a scale of 1 would overflow
        // the (N+1)-multiplied i64 costs).
        let huge = (1u64 << 61) as f64;
        let c = [[huge, 1.0], [1.0, huge]];
        assert_eq!(auction_assign(2, 2, |i, j| c[i][j]), vec![1, 0]);
    }

    #[test]
    fn auction_large_identity() {
        let n = 200;
        let a = auction_assign(n, n, |i, j| if i == j { 0.0 } else { 1.0 + (i + j) as f64 });
        assert!(a.iter().enumerate().all(|(i, &j)| i == j));
    }

    #[test]
    #[should_panic]
    fn auction_rejects_more_rows_than_columns() {
        auction_assign(3, 2, |_, _| 1.0);
    }

    #[test]
    #[should_panic]
    fn auction_rejects_negative_costs() {
        auction_assign(1, 1, |_, _| -1.0);
    }

    #[test]
    fn greedy_is_injective_and_upper_bounds() {
        let mut rng = StdRng::seed_from_u64(72);
        for _ in 0..100 {
            let n = rng.gen_range(1..=6);
            let m = rng.gen_range(n..=8);
            let costs: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(0..100) as f64).collect())
                .collect();
            let g = greedy_assign(n, m, |i, j| costs[i][j]);
            injective(&g, n);
            let got = assignment_cost(&g, |i, j| costs[i][j]);
            let want = assign_brute_force(n, m, |i, j| costs[i][j]);
            assert!(got + 1e-9 >= want, "greedy {got} below optimal {want}");
        }
    }

    #[test]
    fn solver_dispatch_agrees_on_cost_for_exact_solvers() {
        let mut rng = StdRng::seed_from_u64(73);
        let (n, m) = (20, 30);
        let costs: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..m).map(|_| rng.gen_range(0..1000) as f64).collect())
            .collect();
        let reference = assignment_cost(
            &AssignmentSolver::Hungarian.assign(n, m, |i, j| costs[i][j]),
            |i, j| costs[i][j],
        );
        for solver in [AssignmentSolver::Hungarian, AssignmentSolver::Auction] {
            assert!(solver.is_exact());
            let a = solver.assign(n, m, |i, j| costs[i][j]);
            let c = assignment_cost(&a, |i, j| costs[i][j]);
            assert!(
                (c - reference).abs() < 1e-9,
                "{solver:?}: {c} vs {reference}"
            );
        }
        assert!(!AssignmentSolver::Greedy.is_exact());
    }

    #[test]
    fn default_solver_is_auction() {
        assert_eq!(AssignmentSolver::default(), AssignmentSolver::Auction);
    }
}
