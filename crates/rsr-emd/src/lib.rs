//! Earth mover's distance substrate.
//!
//! The EMD model (Definition 3.1) measures protocol quality by
//! `EMD(S_A, S'_B)` relative to `EMD_k(S_A, S_B)`. This crate provides the
//! exact machinery:
//!
//! * [`hungarian`] — the Kuhn–Munkres assignment algorithm with potentials,
//!   O(n²m) for rectangular `n×m` problems (the "Hungarian method" the
//!   paper invokes for Bob's repair step, §3);
//! * [`mod@emd`] — exact [`emd::emd`] (Definition 3.2) and exact
//!   [`emd::emd_k`] (Definition 3.3) via a dummy-augmented assignment, plus
//!   a greedy upper bound for large instances;
//! * brute-force reference implementations used by the property tests.

pub mod emd;
pub mod hungarian;
pub mod repair;

pub use emd::{emd, emd_greedy, emd_k, emd_k_with_exclusions};
pub use hungarian::{assign, assignment_cost};
pub use repair::replace_matched;
