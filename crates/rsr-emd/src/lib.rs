//! Earth mover's distance substrate.
//!
//! The EMD model (Definition 3.1) measures protocol quality by
//! `EMD(S_A, S'_B)` relative to `EMD_k(S_A, S_B)`. This crate provides the
//! exact machinery:
//!
//! * [`assignment`] — the pluggable [`AssignmentSolver`] seam every
//!   matching in this crate routes through: `Hungarian` (exact-legacy),
//!   `Auction` (exact-fast ε-scaling auction), `Greedy` (approximate);
//! * [`hungarian`] — the Kuhn–Munkres assignment algorithm with potentials,
//!   O(n²m) for rectangular `n×m` problems (the "Hungarian method" the
//!   paper invokes for Bob's repair step, §3);
//! * [`mod@emd`] — exact [`emd::emd`] (Definition 3.2) and exact
//!   [`emd::emd_k`] (Definition 3.3) via a dummy-augmented assignment, plus
//!   a greedy upper bound for large instances;
//! * [`repair`] — Bob's matched-replacement step (Algorithm 1's last
//!   line), shared by the EMD protocol and the quadtree baseline;
//! * brute-force reference implementations used by the property tests.

pub mod assignment;
pub mod emd;
pub mod hungarian;
pub mod repair;

pub use assignment::{auction_assign, greedy_assign, AssignmentSolver};
pub use emd::{
    emd, emd_greedy, emd_k, emd_k_with, emd_k_with_exclusions, emd_k_with_exclusions_with, emd_with,
};
pub use hungarian::{assign, assignment_cost};
pub use repair::{replace_matched, replace_matched_with};
