//! Earth mover's distance and `EMD_k` (Definitions 3.2 and 3.3).
//!
//! `EMD(X, Y)` is the min-cost perfect matching between equal-size point
//! sets under the metric `f`. `EMD_k(X, Y)` is the minimum EMD achievable
//! after excluding `k` points from each set — the benchmark the EMD-model
//! protocol is compared against. We compute `EMD_k` *exactly* by adding `k`
//! zero-cost dummy rows and columns to the assignment problem: a dummy row
//! absorbs one excluded point of `Y`, a dummy column one excluded point of
//! `X`, and since costs are non-negative the optimum uses the dummies
//! exactly when exclusion helps.

use crate::assignment::AssignmentSolver;
use crate::hungarian::assignment_cost;
use rsr_metric::{Metric, Point};

/// Exact earth mover's distance between equal-size point sets
/// (Definition 3.2). Panics if `|X| ≠ |Y|`.
///
/// Uses the Hungarian reference solver; [`emd_with`] picks the solver.
pub fn emd(metric: Metric, x: &[Point], y: &[Point]) -> f64 {
    emd_with(AssignmentSolver::Hungarian, metric, x, y)
}

/// [`emd`] under a chosen [`AssignmentSolver`]: same value for the exact
/// solvers (up to fixed-point quantization of fractional ℓ2/ℓp
/// distances), an upper bound for [`AssignmentSolver::Greedy`].
pub fn emd_with(solver: AssignmentSolver, metric: Metric, x: &[Point], y: &[Point]) -> f64 {
    assert_eq!(x.len(), y.len(), "EMD requires equal-size sets");
    if x.is_empty() {
        return 0.0;
    }
    let a = solver.assign(x.len(), y.len(), |i, j| metric.distance(&x[i], &y[j]));
    assignment_cost(&a, |i, j| metric.distance(&x[i], &y[j]))
}

/// Exact `EMD_k` (Definition 3.3): the minimum EMD between `X` and `Y`
/// after removing `k` points from each. `EMD_0 = EMD`.
///
/// Uses the Hungarian reference solver; [`emd_k_with`] picks the solver.
pub fn emd_k(metric: Metric, x: &[Point], y: &[Point], k: usize) -> f64 {
    emd_k_with_exclusions(metric, x, y, k).0
}

/// [`emd_k`] under a chosen [`AssignmentSolver`].
pub fn emd_k_with(
    solver: AssignmentSolver,
    metric: Metric,
    x: &[Point],
    y: &[Point],
    k: usize,
) -> f64 {
    emd_k_with_exclusions_with(solver, metric, x, y, k).0
}

/// Exact `EMD_k` together with the excluded index sets `(cost, excluded_x,
/// excluded_y)`. The exclusion sets have exactly `min(k, n)` indices each.
pub fn emd_k_with_exclusions(
    metric: Metric,
    x: &[Point],
    y: &[Point],
    k: usize,
) -> (f64, Vec<usize>, Vec<usize>) {
    emd_k_with_exclusions_with(AssignmentSolver::Hungarian, metric, x, y, k)
}

/// [`emd_k_with_exclusions`] under a chosen [`AssignmentSolver`]. The
/// exact solvers agree on the cost but may exclude different (equally
/// optimal) index sets.
pub fn emd_k_with_exclusions_with(
    solver: AssignmentSolver,
    metric: Metric,
    x: &[Point],
    y: &[Point],
    k: usize,
) -> (f64, Vec<usize>, Vec<usize>) {
    assert_eq!(x.len(), y.len(), "EMD_k requires equal-size sets");
    let n = x.len();
    let k = k.min(n);
    if n == 0 {
        return (0.0, Vec::new(), Vec::new());
    }
    // Rows: n real points of X then k dummies.
    // Cols: n real points of Y then k dummies.
    let size = n + k;
    let cost = |i: usize, j: usize| -> f64 {
        if i >= n || j >= n {
            0.0
        } else {
            metric.distance(&x[i], &y[j])
        }
    };
    let a = solver.assign(size, size, cost);
    let total = assignment_cost(&a, cost);
    // X points assigned to dummy columns are excluded from X; Y points
    // taken by dummy rows are excluded from Y.
    let excluded_x: Vec<usize> = (0..n).filter(|&i| a[i] >= n).collect();
    let mut excluded_y: Vec<usize> = (n..size).filter(|&i| a[i] < n).map(|i| a[i]).collect();
    excluded_y.sort_unstable();
    // Pad exclusions up to k if the optimum used fewer dummies (possible
    // when some pairs cost 0): exclude arbitrary zero-cost matched pairs.
    let mut ex = (excluded_x, excluded_y);
    let mut i = 0;
    while ex.0.len() < k && i < n {
        if !ex.0.contains(&i) {
            ex.0.push(i);
        }
        i += 1;
    }
    let mut j = 0;
    while ex.1.len() < k && j < n {
        if !ex.1.contains(&j) {
            ex.1.push(j);
        }
        j += 1;
    }
    (total, ex.0, ex.1)
}

/// Greedy EMD upper bound: repeatedly match the globally closest remaining
/// pair ([`AssignmentSolver::Greedy`]). O(n² log n); useful as a scalable
/// sanity bound in experiments.
pub fn emd_greedy(metric: Metric, x: &[Point], y: &[Point]) -> f64 {
    assert_eq!(x.len(), y.len());
    emd_with(AssignmentSolver::Greedy, metric, x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(vs: &[&[i64]]) -> Vec<Point> {
        vs.iter().map(|v| Point::new(v.to_vec())).collect()
    }

    #[test]
    fn emd_of_identical_sets_is_zero() {
        let x = pts(&[&[0, 0], &[5, 5], &[9, 1]]);
        assert_eq!(emd(Metric::L1, &x, &x), 0.0);
    }

    #[test]
    fn emd_of_permuted_set_is_zero() {
        let x = pts(&[&[0, 0], &[5, 5], &[9, 1]]);
        let y = pts(&[&[9, 1], &[0, 0], &[5, 5]]);
        assert_eq!(emd(Metric::L2, &x, &y), 0.0);
    }

    #[test]
    fn emd_simple_shift() {
        // Each point shifted by 1 in one coordinate → EMD = n under ℓ1.
        let x = pts(&[&[0, 0], &[10, 0], &[20, 0]]);
        let y = pts(&[&[0, 1], &[10, 1], &[20, 1]]);
        assert_eq!(emd(Metric::L1, &x, &y), 3.0);
    }

    #[test]
    fn emd_picks_min_cost_bijection() {
        // Crossing assignments: optimal matching is not the identity.
        let x = pts(&[&[0], &[10]]);
        let y = pts(&[&[11], &[1]]);
        assert_eq!(emd(Metric::L1, &x, &y), 2.0);
    }

    #[test]
    fn emd_k_removes_outliers() {
        // One far outlier pair dominates EMD; EMD_1 removes it.
        let x = pts(&[&[0], &[1], &[1000]]);
        let y = pts(&[&[0], &[1], &[2]]);
        assert_eq!(emd(Metric::L1, &x, &y), 998.0);
        assert_eq!(emd_k(Metric::L1, &x, &y, 1), 0.0);
    }

    #[test]
    fn emd_k_monotone_nonincreasing_in_k() {
        let x = pts(&[&[0], &[7], &[100], &[200]]);
        let y = pts(&[&[1], &[9], &[150], &[900]]);
        let mut prev = f64::INFINITY;
        for k in 0..=4 {
            let v = emd_k(Metric::L1, &x, &y, k);
            assert!(v <= prev + 1e-9, "EMD_{k} = {v} > EMD_{} = {prev}", k - 1);
            prev = v;
        }
        assert_eq!(emd_k(Metric::L1, &x, &y, 4), 0.0);
    }

    #[test]
    fn emd_0_equals_emd() {
        let x = pts(&[&[3, 1], &[4, 1], &[5, 9]]);
        let y = pts(&[&[2, 6], &[5, 3], &[5, 8]]);
        assert!((emd_k(Metric::L2, &x, &y, 0) - emd(Metric::L2, &x, &y)).abs() < 1e-9);
    }

    #[test]
    fn exclusion_sets_have_size_k() {
        let x = pts(&[&[0], &[1], &[2], &[3]]);
        let y = pts(&[&[0], &[1], &[2], &[3]]);
        let (cost, ex, ey) = emd_k_with_exclusions(Metric::L1, &x, &y, 2);
        assert_eq!(cost, 0.0);
        assert_eq!(ex.len(), 2);
        assert_eq!(ey.len(), 2);
    }

    #[test]
    fn exclusions_identify_the_outliers() {
        let x = pts(&[&[0], &[500], &[1]]);
        let y = pts(&[&[0], &[1], &[900]]);
        let (cost, ex, ey) = emd_k_with_exclusions(Metric::L1, &x, &y, 1);
        assert_eq!(cost, 0.0);
        assert_eq!(ex, vec![1]); // x[1] = 500 excluded
        assert_eq!(ey, vec![2]); // y[2] = 900 excluded
    }

    #[test]
    fn greedy_upper_bounds_exact() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(61);
        for _ in 0..20 {
            let n = rng.gen_range(1..12);
            let x: Vec<Point> = (0..n)
                .map(|_| Point::new(vec![rng.gen_range(0..100), rng.gen_range(0..100)]))
                .collect();
            let y: Vec<Point> = (0..n)
                .map(|_| Point::new(vec![rng.gen_range(0..100), rng.gen_range(0..100)]))
                .collect();
            let exact = emd(Metric::L1, &x, &y);
            let greedy = emd_greedy(Metric::L1, &x, &y);
            assert!(greedy + 1e-9 >= exact, "greedy {greedy} < exact {exact}");
        }
    }

    #[test]
    fn empty_sets() {
        assert_eq!(emd(Metric::L1, &[], &[]), 0.0);
        assert_eq!(emd_k(Metric::L1, &[], &[], 3), 0.0);
    }

    #[test]
    #[should_panic]
    fn unequal_sizes_rejected() {
        let x = pts(&[&[0]]);
        emd(Metric::L1, &x, &[]);
    }
}
