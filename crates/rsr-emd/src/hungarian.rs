//! The Hungarian (Kuhn–Munkres) assignment algorithm with potentials.
//!
//! Solves `min Σ_i cost(i, σ(i))` over injections `σ` from `n` rows into
//! `m ≥ n` columns in O(n²m) time — the classic shortest-augmenting-path
//! formulation with dual potentials. The paper uses "the Hungarian method
//! (\[20\])" both for computing EMD exactly and for Bob's min-cost matching
//! between the decoded points `X_B` and his set `S_B` (Algorithm 1).

/// Solves the rectangular assignment problem.
///
/// `cost(i, j)` gives the cost of assigning row `i ∈ 0..n` to column
/// `j ∈ 0..m`; requires `n ≤ m` and finite costs. Returns, for each row,
/// the column it is assigned to (all distinct).
pub fn assign<F>(n: usize, m: usize, cost: F) -> Vec<usize>
where
    F: Fn(usize, usize) -> f64,
{
    assert!(n <= m, "need at most as many rows ({n}) as columns ({m})");
    if n == 0 {
        return Vec::new();
    }
    const INF: f64 = f64::INFINITY;
    // 1-indexed arrays, following the classic formulation; p[j] is the row
    // matched to column j (0 = none).
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1];
    let mut way = vec![0usize; m + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let c = cost(i0 - 1, j - 1);
                    debug_assert!(c.is_finite(), "cost({}, {}) not finite", i0 - 1, j - 1);
                    let cur = c - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Unwind the augmenting path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut result = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            result[p[j] - 1] = j - 1;
        }
    }
    debug_assert!(result.iter().all(|&c| c != usize::MAX));
    result
}

/// Total cost of an assignment under a cost function.
pub fn assignment_cost<F>(assignment: &[usize], cost: F) -> f64
where
    F: Fn(usize, usize) -> f64,
{
    assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| cost(i, j))
        .sum()
}

/// Brute-force reference: tries every injection (only for tiny `n`).
pub fn assign_brute_force<F>(n: usize, m: usize, cost: F) -> f64
where
    F: Fn(usize, usize) -> f64,
{
    assert!(n <= m && m <= 9, "brute force limited to tiny instances");
    fn rec<F: Fn(usize, usize) -> f64>(
        i: usize,
        n: usize,
        m: usize,
        used: &mut Vec<bool>,
        cost: &F,
    ) -> f64 {
        if i == n {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for j in 0..m {
            if !used[j] {
                used[j] = true;
                let c = cost(i, j) + rec(i + 1, n, m, used, cost);
                if c < best {
                    best = c;
                }
                used[j] = false;
            }
        }
        best
    }
    let mut used = vec![false; m];
    rec(0, n, m, &mut used, &cost)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_one_by_one() {
        let a = assign(1, 1, |_, _| 5.0);
        assert_eq!(a, vec![0]);
    }

    #[test]
    fn picks_off_diagonal_when_cheaper() {
        // cost matrix [[10, 1], [1, 10]] → assign 0→1, 1→0.
        let c = [[10.0, 1.0], [1.0, 10.0]];
        let a = assign(2, 2, |i, j| c[i][j]);
        assert_eq!(a, vec![1, 0]);
        assert_eq!(assignment_cost(&a, |i, j| c[i][j]), 2.0);
    }

    #[test]
    fn rectangular_uses_cheapest_columns() {
        // 2 rows, 4 columns; columns 2 and 3 are cheap.
        let c = [[9.0, 9.0, 1.0, 2.0], [9.0, 9.0, 2.0, 1.0]];
        let a = assign(2, 4, |i, j| c[i][j]);
        assert_eq!(assignment_cost(&a, |i, j| c[i][j]), 2.0);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(60);
        for trial in 0..200 {
            let n = rng.gen_range(1..=5);
            let m = rng.gen_range(n..=7);
            let costs: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| rng.gen_range(0..100) as f64).collect())
                .collect();
            let a = assign(n, m, |i, j| costs[i][j]);
            let got = assignment_cost(&a, |i, j| costs[i][j]);
            let want = assign_brute_force(n, m, |i, j| costs[i][j]);
            assert!((got - want).abs() < 1e-9, "trial {trial}: {got} vs {want}");
            // Assignment must be injective.
            let set: std::collections::HashSet<_> = a.iter().collect();
            assert_eq!(set.len(), n);
        }
    }

    #[test]
    fn zero_rows_is_empty() {
        assert!(assign(0, 5, |_, _| 1.0).is_empty());
    }

    #[test]
    #[should_panic]
    fn more_rows_than_columns_rejected() {
        assign(3, 2, |_, _| 1.0);
    }

    #[test]
    fn large_identity_fast_path() {
        // 200×200 with unique minimum on the diagonal.
        let n = 200;
        let a = assign(n, n, |i, j| if i == j { 0.0 } else { 1.0 + (i + j) as f64 });
        assert!(a.iter().enumerate().all(|(i, &j)| i == j));
    }
}
