//! The Chen et al. (SIGMOD 2014) baseline for the EMD model.
//!
//! Reference \[7\] of the paper solves robust set reconciliation in the EMD
//! model with a **randomly offset quadtree**: a hierarchy of grids of
//! geometrically shrinking cell width, all shifted by one shared random
//! offset. At each level every point is *rounded to the center of its
//! cell*, and the multiset of rounded points is summarized in an IBLT.
//! Bob finds the finest level whose IBLT decodes and repairs his set with
//! the decoded cell centers.
//!
//! Rounding to cell centers bounds the per-point error by the cell
//! *diameter*, which in `ℓ1` is `d·width` — this is where the baseline's
//! `O(d)` approximation factor comes from, versus the paper's `O(log n)`
//! (§1: "an O(d) approximation … essentially useless for Hamming space").
//! Experiment T6 measures exactly this crossover.
//!
//! Implementation note (documented substitution): Chen et al. insert the
//! rounded points directly into XOR IBLTs keyed by the point encoding. For
//! dimensions where a point does not fit a 64-bit key we carry the rounded
//! point in a [`rsr_iblt::Riblt`] cell (key = cell hash, value = rounded
//! point). All copies of a key share the same value (the cell center), so
//! the RIBLT's duplicate-key extraction is exact here, and the wire
//! accounting uses the same cell encoding as the paper's protocol — a
//! fair, like-for-like comparison.

pub mod protocol;

pub use protocol::{QuadtreeConfig, QuadtreeOutcome, QuadtreeProtocol};
