//! The randomly-offset hierarchical-grid (quadtree) protocol of \[7\].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsr_hash::mix::hash_words;
use rsr_iblt::riblt::RibltConfig;
use rsr_iblt::Riblt;
use rsr_metric::{MetricSpace, Point};

/// Configuration of the quadtree baseline.
#[derive(Clone, Copy, Debug)]
pub struct QuadtreeConfig {
    /// Difference budget `k`: each level's table is sized for `≤ 2k`
    /// surviving rounded points per side.
    pub k: usize,
    /// Hash functions per table (≥ 3).
    pub q: usize,
}

/// The protocol object: a shared random offset plus the level schedule.
#[derive(Clone, Debug)]
pub struct QuadtreeProtocol {
    space: MetricSpace,
    config: QuadtreeConfig,
    /// Random offset in `[0, W)^d` shared via public coins.
    offsets: Vec<f64>,
    /// Cell widths per level, coarse → fine (powers of two down to 1).
    widths: Vec<f64>,
    seed: u64,
}

/// Alice's one-round message: one RIBLT per level.
#[derive(Clone, Debug)]
pub struct QuadtreeMessage {
    tables: Vec<Riblt>,
    n: usize,
}

impl QuadtreeMessage {
    /// Total wire size in bits.
    pub fn wire_bits(&self) -> u64 {
        self.tables.iter().map(|t| t.wire_bits(self.n)).sum()
    }

    /// Number of levels shipped.
    pub fn num_levels(&self) -> usize {
        self.tables.len()
    }
}

/// Bob's result.
#[derive(Clone, Debug)]
pub struct QuadtreeOutcome {
    /// Bob's reconciled point set (same size as his input).
    pub reconciled: Vec<Point>,
    /// The finest level that decoded (0 = coarsest).
    pub level: usize,
    /// Decoded survivors (Alice side, Bob side) at that level.
    pub decoded: (usize, usize),
}

/// Decode failure: no level decoded within budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuadtreeFailure;

impl std::fmt::Display for QuadtreeFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "no quadtree level decoded within the 2k budget")
    }
}

impl std::error::Error for QuadtreeFailure {}

impl QuadtreeProtocol {
    /// Creates the protocol. Both parties call this with the same seed
    /// (public coins) so offsets and table hashes agree.
    pub fn new(space: MetricSpace, config: QuadtreeConfig, seed: u64) -> Self {
        assert!(config.q >= 3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9d7e_11aa);
        let delta = space.delta();
        // W = smallest power of two covering the grid.
        let levels = 64 - (delta.max(1) as u64 - 1).leading_zeros().min(63);
        let w = (1u64 << levels) as f64;
        let offsets = (0..space.dim()).map(|_| rng.gen::<f64>() * w).collect();
        let widths = (0..=levels).map(|i| w / (1u64 << i) as f64).collect();
        QuadtreeProtocol {
            space,
            config,
            offsets,
            widths,
            seed,
        }
    }

    /// Number of levels in the hierarchy (`⌈log2 Δ⌉ + 1`).
    pub fn num_levels(&self) -> usize {
        self.widths.len()
    }

    /// Rounds a point to the center of its level-`i` cell, snapped back
    /// into the grid.
    pub fn round_to_cell_center(&self, p: &Point, level: usize) -> Point {
        let width = self.widths[level];
        let coords = p
            .coords()
            .iter()
            .zip(&self.offsets)
            .map(|(&c, &o)| {
                let cell = ((c as f64 + o) / width).floor();
                let center = (cell + 0.5) * width - o;
                (center.round() as i64).clamp(0, self.space.delta() - 1)
            })
            .collect();
        Point::new(coords)
    }

    /// The cell key of a point at a level (hash of the cell coordinates).
    fn cell_key(&self, p: &Point, level: usize) -> u64 {
        let width = self.widths[level];
        let mut words = Vec::with_capacity(p.dim() + 1);
        words.push(level as u64);
        for (&c, &o) in p.coords().iter().zip(&self.offsets) {
            words.push(((c as f64 + o) / width).floor() as i64 as u64);
        }
        hash_words(self.seed ^ 0x9477_0001, &words)
    }

    /// Alice's side: build one table per level.
    pub fn alice_encode(&self, alice: &[Point]) -> QuadtreeMessage {
        let tables = (0..self.num_levels())
            .map(|level| {
                let mut t = Riblt::new(self.level_config(level));
                for p in alice {
                    t.insert(
                        self.cell_key(p, level),
                        &self.round_to_cell_center(p, level),
                    );
                }
                t
            })
            .collect();
        QuadtreeMessage {
            tables,
            n: alice.len(),
        }
    }

    fn level_config(&self, level: usize) -> RibltConfig {
        RibltConfig::for_pairs(
            self.config.k,
            self.config.q,
            self.space.dim(),
            self.space.delta(),
            self.seed ^ ((level as u64 + 1) << 32),
        )
    }

    /// Bob's side: delete his rounded points, decode the finest decodable
    /// level, and repair his set with the decoded centers.
    pub fn bob_decode(
        &self,
        msg: &QuadtreeMessage,
        bob: &[Point],
    ) -> Result<QuadtreeOutcome, QuadtreeFailure> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xb0bd_ec0d);
        let budget = 2 * self.config.k;
        for level in (0..msg.tables.len()).rev() {
            let mut t = msg.tables[level].clone();
            for p in bob {
                t.delete(
                    self.cell_key(p, level),
                    &self.round_to_cell_center(p, level),
                );
            }
            let d = t.decode(&mut rng);
            if !d.complete || d.inserted.len() > budget || d.deleted.len() > budget {
                continue;
            }
            let x_a: Vec<Point> = d.inserted.iter().map(|p| p.value.clone()).collect();
            let x_b: Vec<Point> = d.deleted.iter().map(|p| p.value.clone()).collect();
            let reconciled = rsr_emd::replace_matched(self.space.metric(), bob, &x_b, &x_a);
            return Ok(QuadtreeOutcome {
                reconciled,
                level,
                decoded: (x_a.len(), x_b.len()),
            });
        }
        Err(QuadtreeFailure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_metric::Metric;

    fn space() -> MetricSpace {
        MetricSpace::l1(64, 2)
    }

    fn proto(seed: u64) -> QuadtreeProtocol {
        QuadtreeProtocol::new(space(), QuadtreeConfig { k: 4, q: 3 }, seed)
    }

    #[test]
    fn finest_level_rounding_is_identity() {
        let p = proto(1);
        let finest = p.num_levels() - 1;
        for v in [[0i64, 0], [5, 9], [63, 63]] {
            let pt = Point::new(v.to_vec());
            assert_eq!(p.round_to_cell_center(&pt, finest), pt);
        }
    }

    #[test]
    fn coarse_rounding_merges_near_points() {
        let p = proto(2);
        let a = Point::new(vec![10, 10]);
        let b = Point::new(vec![11, 10]);
        // At some coarse level the two points share a cell.
        let merged = (0..p.num_levels())
            .any(|l| p.round_to_cell_center(&a, l) == p.round_to_cell_center(&b, l));
        assert!(merged);
    }

    #[test]
    fn rounding_error_bounded_by_cell_diameter() {
        let p = proto(3);
        for level in 0..p.num_levels() {
            let width = p.widths[level];
            let pt = Point::new(vec![37, 21]);
            let rounded = p.round_to_cell_center(&pt, level);
            let err = Metric::L1.distance(&pt, &rounded);
            assert!(
                err <= 2.0 * width * 2.0 / 2.0 + 1.0,
                "level {level}: error {err} vs width {width}"
            );
        }
    }

    #[test]
    fn identical_sets_reconcile_unchanged() {
        let p = proto(4);
        let pts: Vec<Point> = (0..30).map(|i| Point::new(vec![i * 2, 63 - i])).collect();
        let msg = p.alice_encode(&pts);
        let out = p.bob_decode(&msg, &pts).unwrap();
        assert_eq!(out.reconciled.len(), pts.len());
        // Finest level decodes trivially (everything cancels).
        assert_eq!(out.level, p.num_levels() - 1);
        assert_eq!(out.decoded, (0, 0));
        let mut got = out.reconciled.clone();
        got.sort();
        let mut want = pts;
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn k_outliers_are_replaced() {
        let p = proto(5);
        let mut alice: Vec<Point> = (0..20).map(|i| Point::new(vec![3 * i, 7])).collect();
        let mut bob = alice.clone();
        // Two genuinely different points.
        alice.push(Point::new(vec![60, 60]));
        alice.push(Point::new(vec![1, 62]));
        bob.push(Point::new(vec![33, 2]));
        bob.push(Point::new(vec![9, 41]));
        let msg = p.alice_encode(&alice);
        let out = p.bob_decode(&msg, &bob).unwrap();
        assert_eq!(out.reconciled.len(), bob.len());
        // Bob should now hold points near Alice's outliers.
        for target in [Point::new(vec![60, 60]), Point::new(vec![1, 62])] {
            let dist = out
                .reconciled
                .iter()
                .map(|q| Metric::L1.distance(q, &target))
                .fold(f64::INFINITY, f64::min);
            assert!(dist <= 4.0, "outlier not recovered, nearest at {dist}");
        }
    }

    #[test]
    fn wire_bits_positive_and_scale_with_levels() {
        let p = proto(6);
        let pts: Vec<Point> = (0..10).map(|i| Point::new(vec![i, i])).collect();
        let msg = p.alice_encode(&pts);
        assert_eq!(msg.num_levels(), p.num_levels());
        assert!(msg.wire_bits() > 0);
    }
}
