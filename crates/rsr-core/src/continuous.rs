//! Continuous (long-lived) reconciliation sessions.
//!
//! Every protocol in this crate is one-shot: build a sketch over the
//! whole set, exchange, decode, done. Real deployments reconcile the
//! *same* pair of hosts repeatedly as their sets drift, and the round
//! cost should track the drift, not the set. This module adds that mode:
//! each party keeps a [`ContinuousParty`] resident — its set, an IBLT
//! sized for the expected *churn* between settles, and a snapshot of
//! that table taken at the last settle. Streaming inserts and deletes
//! maintain the table in O(1) per mutation, and a round ships only
//! [`Iblt::delta_since`] the snapshot: O(m) work and wire where m tracks
//! the churn bound, however large the set has grown.
//!
//! # Why subtracting snapshots reconciles the live difference
//!
//! Both parties settle to the *same* set (the union — see below) with
//! the same table parameters, so their snapshots are cell-identical:
//! `S_A = S_B = S`. Each round Alice sends `Δ_A = T_A − S`; Bob forms
//! `Δ_A − Δ_B = (T_A − S) − (T_B − S) = T_A − T_B`, which peels to the
//! **current** symmetric difference — Alice-only keys with positive
//! sign, Bob-only keys with negative. The first round works by the same
//! algebra with `S` the empty table, so it reconciles the initial
//! difference with no special casing.
//!
//! # Lifecycle
//!
//! ```text
//!            begin_round                 settle
//!   Idle ───────────────► Syncing ───────────────► Settled
//!    ▲                      │  ▲                      │
//!    │ resync               │  └──────────────────────┘
//!    └──────────────────────┤        begin_round
//!              round failed │
//!                (rollback) ▼
//!                    previous phase
//! ```
//!
//! Mutations are accepted in `Idle` and `Settled` and rejected with
//! [`ContinuousError::Busy`] while `Syncing` — a round reconciles the
//! sets as frozen at [`begin_round`](ContinuousParty::begin_round). A
//! failed round (undecodable delta: churn exceeded the table bound, or
//! a desynced peer) mutates **nothing**: both parties keep their sets
//! and snapshots, the phase rolls back, and the round can simply be
//! retried after the churn bound is raised or via [`resync`](ContinuousParty::resync).
//!
//! # Settle semantics
//!
//! A settled round leaves both parties holding the **union** of the two
//! sets: each side learns the keys only the peer held and inserts them.
//! A key deleted on one side but not the other is therefore
//! *resurrected* by the next round — delete propagation needs the
//! deletion to happen on both sides between settles (or a tombstone
//! scheme layered above the keys, which is out of scope here). Union is
//! what makes "incremental equals one-shot" well-defined: after round r
//! both parties hold exactly what a fresh one-shot reconciliation of
//! the current sets would produce.
//!
//! # Failure and recovery
//!
//! The one genuinely dangerous failure is a *half-settled* round: Bob
//! settles when his decode succeeds, then his reply to Alice is lost in
//! transit. The snapshots now differ, and the subtraction algebra above
//! no longer telescopes. The round counter carried inside every frame
//! detects this on the next round (the parties disagree on the round
//! index → the round fails loudly, nothing mutates), and
//! [`resync`](ContinuousParty::resync) recovers: resetting both
//! snapshots to empty makes the next round reconcile the full current
//! difference — still O(m) wire, and correct as long as that
//! difference fits the table.

use crate::channel::Frame;
use crate::session::{drive_in_memory, Session};
use crate::transcript::{Party, Transcript};
use rsr_iblt::bits::BitWriter;
use rsr_iblt::iblt::{DecodeMode, Iblt};
use rsr_iblt::wire::{get_len, put_len};
use rsr_obs::{AtomicHistogram, Counter};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Registry handles for the continuous-session metrics, resolved once
/// (the executor's `ExecMetrics` pattern). Sites gate on
/// [`rsr_obs::enabled`]; with metrics off each costs one relaxed load.
struct ContMetrics {
    /// Party-side round settles (`cont_rounds_settled`; each settled
    /// round counts once per participating party).
    rounds_settled: Arc<Counter>,
    /// Party-side round failures (`cont_rounds_failed`).
    rounds_failed: Arc<Counter>,
    /// `begin_round`→settle latency per party (`cont_round_settle_us`).
    settle_us: Arc<AtomicHistogram>,
    /// Rounds a party settled over its whole lifetime, recorded at drop
    /// (`cont_rounds_per_session`).
    rounds_per_session: Arc<AtomicHistogram>,
}

fn cont_metrics() -> &'static ContMetrics {
    static METRICS: OnceLock<ContMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = rsr_obs::global();
        ContMetrics {
            rounds_settled: reg.counter("cont_rounds_settled"),
            rounds_failed: reg.counter("cont_rounds_failed"),
            settle_us: reg.histogram("cont_round_settle_us"),
            rounds_per_session: reg.histogram("cont_rounds_per_session"),
        }
    })
}

/// Where a [`ContinuousParty`] is in its round lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionPhase {
    /// Fresh (or resynced): no round has settled; mutations accepted.
    Idle,
    /// A round is in flight; mutations are rejected until it resolves.
    Syncing,
    /// At least one round has settled; mutations accepted and the next
    /// round will reconcile only the churn since the last settle.
    Settled,
}

impl fmt::Display for SessionPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SessionPhase::Idle => "idle",
            SessionPhase::Syncing => "syncing",
            SessionPhase::Settled => "settled",
        })
    }
}

/// Everything that can go wrong operating a continuous session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ContinuousError {
    /// A mutation arrived while a round was in flight.
    Busy,
    /// A round operation was attempted from the wrong phase.
    BadPhase {
        /// The phase the party was actually in.
        from: SessionPhase,
    },
    /// A round failed (undecodable delta, desynced peer, malformed
    /// frame, or transport stall). Nothing was mutated.
    Round(String),
}

impl fmt::Display for ContinuousError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContinuousError::Busy => f.write_str("set mutation rejected: a round is in flight"),
            ContinuousError::BadPhase { from } => {
                write!(f, "round operation invalid in phase `{from}`")
            }
            ContinuousError::Round(msg) => write!(f, "round failed: {msg}"),
        }
    }
}

impl std::error::Error for ContinuousError {}

/// Shared table parameters for one continuous pair. Both parties must
/// be built from an **equal** config — the snapshot-subtraction algebra
/// needs cell-identical layouts, seeds and checksums on both sides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContinuousConfig {
    /// Minimum table cells `m`; sized for the churn bound, not the set.
    pub cells: usize,
    /// Hash functions per key.
    pub q: usize,
    /// Table seed (layout + checksum, shared public coins).
    pub seed: u64,
    /// Count bound used by the wire codec — it must cover the **set**
    /// size, not the churn: the first round's delta is the full table
    /// (empty snapshot), whose per-cell counts scale with n. This only
    /// costs the wire a log(n) count width per cell; the *number* of
    /// cells stays churn-sized, which is where the O(churn) claim
    /// lives. Sets larger than this bound cannot be encoded.
    pub n_bound: usize,
    /// How Bob decodes the round's symmetric difference. The mode is
    /// local to the decoding side — the wire format and the settle
    /// algebra are identical either way — so the parties need not
    /// agree on it. [`DecodeMode::Hybrid`] lets rounds whose churn
    /// slightly exceeds the peel threshold still settle instead of
    /// burning a failed round.
    pub decode_mode: DecodeMode,
}

impl ContinuousConfig {
    /// A config sized so any round whose symmetric difference is at
    /// most `churn_bound` keys peels with high probability: 2 cells per
    /// expected difference key (comfortably above the q = 3 peeling
    /// threshold of ≈1.22), floored for tiny bounds where the
    /// concentration argument needs slack. The wire count bound is set
    /// for sets up to 2²⁰ keys; override `n_bound` for larger sets.
    pub fn for_churn(churn_bound: usize, seed: u64) -> ContinuousConfig {
        ContinuousConfig {
            cells: (2 * churn_bound).max(24),
            q: 3,
            seed,
            n_bound: 1 << 20,
            decode_mode: DecodeMode::default(),
        }
    }

    /// Returns the config with Bob's round decode mode replaced.
    pub fn with_decode_mode(mut self, mode: DecodeMode) -> ContinuousConfig {
        self.decode_mode = mode;
        self
    }

    fn empty_table(&self) -> Iblt {
        Iblt::new(self.cells, self.q, self.seed)
    }
}

/// One endpoint of a long-lived reconciliation pair: the resident set,
/// the churn-sized table maintained alongside it, and the snapshot of
/// that table taken at the last settle.
#[derive(Debug)]
pub struct ContinuousParty {
    cfg: ContinuousConfig,
    set: BTreeSet<u64>,
    table: Iblt,
    snapshot: Iblt,
    phase: SessionPhase,
    rounds_settled: u32,
    rounds_failed: u32,
    round_started: Option<Instant>,
}

impl ContinuousParty {
    /// Builds a party over an initial set. The snapshot starts *empty*,
    /// so the first round reconciles the full initial difference —
    /// which must therefore fit the config's churn bound, like any
    /// other round's delta.
    pub fn new(cfg: ContinuousConfig, initial: impl IntoIterator<Item = u64>) -> ContinuousParty {
        let mut table = cfg.empty_table();
        let mut set = BTreeSet::new();
        for key in initial {
            if set.insert(key) {
                table.insert(key);
            }
        }
        ContinuousParty {
            cfg,
            set,
            table,
            snapshot: cfg.empty_table(),
            phase: SessionPhase::Idle,
            rounds_settled: 0,
            rounds_failed: 0,
            round_started: None,
        }
    }

    /// The shared table parameters.
    pub fn config(&self) -> &ContinuousConfig {
        &self.cfg
    }

    /// The current set.
    pub fn set(&self) -> &BTreeSet<u64> {
        &self.set
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> SessionPhase {
        self.phase
    }

    /// Rounds this party has settled since construction (or the last
    /// failure-free stretch — failed rounds do not advance it).
    pub fn rounds_settled(&self) -> u32 {
        self.rounds_settled
    }

    /// Rounds that failed and rolled back.
    pub fn rounds_failed(&self) -> u32 {
        self.rounds_failed
    }

    /// Streams one insert. O(1) in the set size (one set insert plus q
    /// cell updates). Rejected while a round is in flight; returns
    /// whether the set changed.
    pub fn insert(&mut self, key: u64) -> Result<bool, ContinuousError> {
        if self.phase == SessionPhase::Syncing {
            return Err(ContinuousError::Busy);
        }
        let changed = self.set.insert(key);
        if changed {
            self.table.insert(key);
        }
        Ok(changed)
    }

    /// Streams one delete; the mirror of [`ContinuousParty::insert`].
    pub fn remove(&mut self, key: u64) -> Result<bool, ContinuousError> {
        if self.phase == SessionPhase::Syncing {
            return Err(ContinuousError::Busy);
        }
        let changed = self.set.remove(&key);
        if changed {
            self.table.delete(key);
        }
        Ok(changed)
    }

    /// Freezes the set for a round: Idle/Settled → Syncing. The round
    /// index the wire frames carry is the number of settled rounds so
    /// far, which detects desynced peers.
    pub fn begin_round(&mut self) -> Result<u32, ContinuousError> {
        match self.phase {
            SessionPhase::Idle | SessionPhase::Settled => {
                self.phase = SessionPhase::Syncing;
                self.round_started = Some(Instant::now());
                Ok(self.rounds_settled)
            }
            SessionPhase::Syncing => Err(ContinuousError::BadPhase { from: self.phase }),
        }
    }

    /// The delta table accumulated since the last settle — what a round
    /// ships. O(m) in the table size, independent of the set.
    pub fn delta(&self) -> Iblt {
        self.table.delta_since(&self.snapshot)
    }

    /// Applies the peer-only keys and retakes the snapshot: Syncing →
    /// Settled. Both parties now hold the union, so their snapshots are
    /// cell-identical again.
    fn settle(&mut self, peer_only: &[u64]) {
        debug_assert_eq!(self.phase, SessionPhase::Syncing);
        for &key in peer_only {
            if self.set.insert(key) {
                self.table.insert(key);
            }
        }
        self.snapshot = self.table.snapshot();
        self.phase = SessionPhase::Settled;
        self.rounds_settled += 1;
        if rsr_obs::enabled() {
            let m = cont_metrics();
            m.rounds_settled.inc();
            if let Some(started) = self.round_started.take() {
                m.settle_us.record(started.elapsed().as_micros() as u64);
            }
        }
        self.round_started = None;
    }

    /// Rolls a failed round back: Syncing → the phase the party was in
    /// before `begin_round`. Set, table and snapshot are untouched, so
    /// the round is simply retryable.
    fn abort_round(&mut self) {
        if self.phase == SessionPhase::Syncing {
            self.phase = if self.rounds_settled > 0 {
                SessionPhase::Settled
            } else {
                SessionPhase::Idle
            };
            self.rounds_failed += 1;
            self.round_started = None;
            if rsr_obs::enabled() {
                cont_metrics().rounds_failed.inc();
            }
        }
    }

    /// Recovers from a desynced peer (a half-settled round whose reply
    /// was lost): drops the snapshot back to empty and rewinds the
    /// round index, so the next round reconciles the full current
    /// difference from a state both sides can agree on — run it on
    /// **both** parties. Rejected mid-round.
    pub fn resync(&mut self) -> Result<(), ContinuousError> {
        if self.phase == SessionPhase::Syncing {
            return Err(ContinuousError::BadPhase { from: self.phase });
        }
        self.snapshot = self.cfg.empty_table();
        self.rounds_settled = 0;
        self.phase = SessionPhase::Idle;
        Ok(())
    }

    /// The frame a round opens with: the round index and the delta.
    fn delta_frame(&self, round: u32) -> Frame {
        let mut w = BitWriter::new();
        w.write(round as u64, 32);
        self.delta().write_to(&mut w, self.cfg.n_bound);
        Frame::seal("round: delta table", w)
    }

    fn decode_delta_frame(&self, frame: &Frame) -> Result<(u32, Iblt), String> {
        frame
            .decode_exact(|r| {
                let round = r.read(32)? as u32;
                let table = Iblt::read_from(
                    r,
                    self.cfg.cells,
                    self.cfg.q,
                    self.cfg.seed,
                    self.cfg.n_bound,
                )?;
                Some((round, table))
            })
            .ok_or_else(|| "malformed round delta frame".to_owned())
    }
}

impl Drop for ContinuousParty {
    fn drop(&mut self) {
        if rsr_obs::enabled() && self.rounds_settled > 0 {
            cont_metrics()
                .rounds_per_session
                .record(self.rounds_settled as u64);
        }
    }
}

/// A [`ContinuousParty`] shared between its owner (who streams churn
/// into it between rounds) and the per-round [`Session`]s that drive it
/// over whatever transport — each round locks per call, so the handle
/// is `Send + Sync` and a networked executor can own the round session
/// while the application keeps mutating between rounds.
pub type SharedParty = Arc<Mutex<ContinuousParty>>;

/// Wraps a party for sharing with round sessions.
pub fn shared(party: ContinuousParty) -> SharedParty {
    Arc::new(Mutex::new(party))
}

fn lock(party: &SharedParty) -> std::sync::MutexGuard<'_, ContinuousParty> {
    party.lock().unwrap_or_else(|e| e.into_inner())
}

/// The reply frame: round index plus the keys only the replier held.
fn keys_frame(round: u32, keys: &[u64]) -> Frame {
    let mut w = BitWriter::new();
    w.write(round as u64, 32);
    put_len(&mut w, keys.len());
    for &key in keys {
        w.write(key, 64);
    }
    Frame::seal("round: peer-only keys", w)
}

fn decode_keys_frame(frame: &Frame) -> Result<(u32, Vec<u64>), String> {
    frame
        .decode_exact(|r| {
            let round = r.read(32)? as u32;
            let count = get_len(r)?;
            let keys = (0..count)
                .map(|_| r.read(64))
                .collect::<Option<Vec<u64>>>()?;
            Some((round, keys))
        })
        .ok_or_else(|| "malformed round reply frame".to_owned())
}

/// The initiating half of one round: sends the local delta, waits for
/// the peer-only key list, settles. Dropping it unfinished (transport
/// death) rolls the party's round back automatically.
pub struct AliceRound {
    party: SharedParty,
    round: u32,
    delta: Option<Frame>,
    done: bool,
}

impl AliceRound {
    /// Begins a round on `party` (must be Idle or Settled).
    pub fn begin(party: &SharedParty) -> Result<AliceRound, ContinuousError> {
        let mut p = lock(party);
        let round = p.begin_round()?;
        let delta = Some(p.delta_frame(round));
        drop(p);
        Ok(AliceRound {
            party: Arc::clone(party),
            round,
            delta,
            done: false,
        })
    }

    /// The round index this session is driving.
    pub fn round(&self) -> u32 {
        self.round
    }

    fn fail(&mut self, msg: String) -> String {
        lock(&self.party).abort_round();
        self.done = true; // rolled back; Drop must not abort again
        msg
    }
}

impl Session for AliceRound {
    type Error = String;

    fn poll_send(&mut self) -> Result<Option<Frame>, String> {
        Ok(self.delta.take())
    }

    fn on_frame(&mut self, frame: Frame) -> Result<(), String> {
        if self.done {
            return Err(self.fail("unexpected frame after round settled".into()));
        }
        let (round, peer_only) = match decode_keys_frame(&frame) {
            Ok(decoded) => decoded,
            Err(e) => return Err(self.fail(e)),
        };
        if round != self.round {
            return Err(self.fail(format!(
                "desynced peer: reply for round {round}, expected {} (resync required)",
                self.round
            )));
        }
        lock(&self.party).settle(&peer_only);
        self.done = true;
        Ok(())
    }

    fn is_done(&self) -> bool {
        self.done
    }

    fn protocol(&self) -> &'static str {
        "continuous"
    }
}

impl Drop for AliceRound {
    fn drop(&mut self) {
        if !self.done {
            lock(&self.party).abort_round();
        }
    }
}

/// The responding half of one round: receives the peer's delta,
/// subtracts its own, decodes the live symmetric difference, settles,
/// and replies with the keys only it held. Dropping it unfinished rolls
/// the round back.
pub struct BobRound {
    party: SharedParty,
    round: u32,
    reply: Option<Frame>,
    replied: bool,
}

impl BobRound {
    /// Begins a round on `party` (must be Idle or Settled).
    pub fn begin(party: &SharedParty) -> Result<BobRound, ContinuousError> {
        let round = lock(party).begin_round()?;
        Ok(BobRound {
            party: Arc::clone(party),
            round,
            reply: None,
            replied: false,
        })
    }

    /// The round index this session is driving.
    pub fn round(&self) -> u32 {
        self.round
    }

    fn fail(&mut self, msg: String) -> String {
        lock(&self.party).abort_round();
        self.replied = true; // rolled back; Drop must not abort again
        msg
    }
}

impl Session for BobRound {
    type Error = String;

    fn poll_send(&mut self) -> Result<Option<Frame>, String> {
        let reply = self.reply.take();
        if reply.is_some() {
            self.replied = true;
        }
        Ok(reply)
    }

    fn on_frame(&mut self, frame: Frame) -> Result<(), String> {
        if self.replied || self.reply.is_some() {
            return Err(self.fail("unexpected second frame in a round".into()));
        }
        let mut p = lock(&self.party);
        let (round, their_delta) = match p.decode_delta_frame(&frame) {
            Ok(decoded) => decoded,
            Err(e) => {
                drop(p);
                return Err(self.fail(e));
            }
        };
        if round != self.round {
            drop(p);
            return Err(self.fail(format!(
                "desynced peer: delta for round {round}, expected {} (resync required)",
                self.round
            )));
        }
        // Δ_peer − Δ_mine = T_peer − T_mine: peel the live difference.
        let mut diff = their_delta;
        diff.subtract(&p.delta());
        let decoded = diff.decode_with(p.cfg.decode_mode);
        if !decoded.complete {
            let cells = p.cfg.cells;
            drop(p);
            return Err(self.fail(format!(
                "round {round}: delta did not decode (churn exceeded the {cells}-cell table bound?)"
            )));
        }
        // Positive survivors came from the peer's table: keys only it
        // holds. Negative survivors are ours alone — the reply payload.
        p.settle(&decoded.inserted);
        drop(p);
        self.reply = Some(keys_frame(round, &decoded.deleted));
        Ok(())
    }

    fn is_done(&self) -> bool {
        self.replied
    }

    fn protocol(&self) -> &'static str {
        "continuous"
    }
}

impl Drop for BobRound {
    fn drop(&mut self) {
        if !self.replied {
            lock(&self.party).abort_round();
        }
    }
}

/// An in-process continuous pair plus its per-round transcript
/// segments — the single-process counterpart of driving round sessions
/// over a transport, and the reference driver `exp_churn` measures.
pub struct ContinuousSession {
    alice: SharedParty,
    bob: SharedParty,
    segments: Vec<Transcript>,
}

impl ContinuousSession {
    /// Pairs two freshly built parties (their configs must be equal).
    pub fn new(alice: ContinuousParty, bob: ContinuousParty) -> ContinuousSession {
        assert_eq!(
            alice.config(),
            bob.config(),
            "continuous parties must share table parameters"
        );
        ContinuousSession::from_shared(shared(alice), shared(bob))
    }

    /// Pairs two already-shared parties.
    pub fn from_shared(alice: SharedParty, bob: SharedParty) -> ContinuousSession {
        ContinuousSession {
            alice,
            bob,
            segments: Vec::new(),
        }
    }

    /// Alice's handle, for streaming churn between rounds.
    pub fn alice(&self) -> SharedParty {
        Arc::clone(&self.alice)
    }

    /// Bob's handle, for streaming churn between rounds.
    pub fn bob(&self) -> SharedParty {
        Arc::clone(&self.bob)
    }

    /// Drives one full round in memory: both parties freeze, exchange
    /// delta and reply, settle to the union. On success the round's
    /// transcript segment is appended and returned; on failure nothing
    /// is mutated and both parties are back in their pre-round phase.
    pub fn drive_round(&mut self) -> Result<&Transcript, ContinuousError> {
        let mut alice = AliceRound::begin(&self.alice)?;
        // A begin failure here rolls Alice back via AliceRound::drop.
        let mut bob = BobRound::begin(&self.bob)?;
        let transcript = drive_in_memory(Party::Alice, &mut alice, &mut bob)
            .map_err(|e| ContinuousError::Round(e.to_string()))?;
        self.segments.push(transcript);
        Ok(self.segments.last().expect("just pushed"))
    }

    /// Transcript segments of every settled round, in order.
    pub fn segments(&self) -> &[Transcript] {
        &self.segments
    }

    /// Rounds settled through this driver.
    pub fn rounds(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(cfg: ContinuousConfig, a: &[u64], b: &[u64]) -> ContinuousSession {
        ContinuousSession::new(
            ContinuousParty::new(cfg, a.iter().copied()),
            ContinuousParty::new(cfg, b.iter().copied()),
        )
    }

    fn sets_equal(s: &ContinuousSession) -> bool {
        lock(&s.alice()).set() == lock(&s.bob()).set()
    }

    #[test]
    fn first_round_reconciles_the_initial_difference() {
        let cfg = ContinuousConfig::for_churn(16, 42);
        let mut s = pair(cfg, &[1, 2, 3, 10], &[3, 4, 5]);
        let t = s.drive_round().expect("round settles");
        assert!(t.total_bits() > 0);
        assert!(sets_equal(&s));
        let expect: BTreeSet<u64> = [1, 2, 3, 4, 5, 10].into();
        assert_eq!(*lock(&s.alice()).set(), expect);
        assert_eq!(lock(&s.alice()).phase(), SessionPhase::Settled);
        assert_eq!(lock(&s.bob()).rounds_settled(), 1);
    }

    #[test]
    fn hybrid_settles_rounds_that_peel_only_fails() {
        // At churn just past the table's peel threshold the round table
        // can stall on a 2-core; hybrid decode rescues some of those
        // rounds (cores of rank above `MAX_SOLVE_RANK` still fail, so
        // not every stall is rescuable). Find a seed where peel-only
        // fails but the hybrid config settles the identical round.
        let churn: Vec<u64> = (1_000..1_020).collect();
        let base: Vec<u64> = (0..200).collect();
        let with_churn: Vec<u64> = base.iter().chain(&churn).copied().collect();
        let mut peel_failures = 0usize;
        for seed in 0..400u64 {
            let peel_cfg =
                ContinuousConfig::for_churn(6, seed).with_decode_mode(DecodeMode::PeelOnly);
            let mut s = pair(peel_cfg, &with_churn, &base);
            if s.drive_round().is_ok() {
                continue;
            }
            peel_failures += 1;
            let hybrid_cfg = peel_cfg.with_decode_mode(DecodeMode::Hybrid);
            let mut s = pair(hybrid_cfg, &with_churn, &base);
            if s.drive_round().is_err() {
                continue;
            }
            assert!(sets_equal(&s));
            let expect: BTreeSet<u64> = with_churn.iter().copied().collect();
            assert_eq!(*lock(&s.alice()).set(), expect);
            return;
        }
        panic!("no rescued round in 400 seeds ({peel_failures} peel-only failures)");
    }

    #[test]
    fn churned_rounds_settle_to_the_union_of_current_sets() {
        let cfg = ContinuousConfig::for_churn(32, 7);
        let base: Vec<u64> = (0..500).collect();
        let mut s = pair(cfg, &base, &base);
        s.drive_round().expect("round 0");
        for r in 1..6u64 {
            {
                let alice = s.alice();
                let mut a = lock(&alice);
                a.insert(10_000 + r).unwrap();
                a.remove(r).unwrap();
            }
            {
                let bob = s.bob();
                let mut b = lock(&bob);
                b.insert(20_000 + r).unwrap();
            }
            s.drive_round().unwrap_or_else(|e| panic!("round {r}: {e}"));
            assert!(sets_equal(&s), "round {r} diverged");
            // Union semantics: Alice's deletes resurface from Bob.
            assert!(lock(&s.alice()).set().contains(&r));
            assert!(lock(&s.alice()).set().contains(&(20_000 + r)));
        }
        assert_eq!(s.rounds(), 6);
        assert_eq!(lock(&s.alice()).rounds_settled(), 6);
    }

    #[test]
    fn round_wire_cost_is_independent_of_set_size() {
        // The headline invariant: at fixed churn, a round's bits do not
        // grow with n. Identical churn over a 100-key and a 10,000-key
        // base set must produce byte-identical round traffic.
        let cfg = ContinuousConfig::for_churn(16, 99);
        let mut bits = Vec::new();
        for n in [100u64, 10_000] {
            let base: Vec<u64> = (0..n).collect();
            let mut s = pair(cfg, &base, &base);
            s.drive_round().expect("initial settle");
            lock(&s.alice()).insert(1 << 40).unwrap();
            lock(&s.bob()).insert(1 << 41).unwrap();
            let t = s.drive_round().expect("churn round");
            bits.push(t.total_bits());
        }
        assert_eq!(bits[0], bits[1]);
    }

    #[test]
    fn mutations_are_rejected_mid_round() {
        let cfg = ContinuousConfig::for_churn(8, 3);
        let party = shared(ContinuousParty::new(cfg, [1, 2]));
        let _alice = AliceRound::begin(&party).expect("begin");
        assert_eq!(lock(&party).insert(9), Err(ContinuousError::Busy));
        assert_eq!(lock(&party).remove(1), Err(ContinuousError::Busy));
        assert_eq!(
            lock(&party).begin_round(),
            Err(ContinuousError::BadPhase {
                from: SessionPhase::Syncing
            })
        );
    }

    #[test]
    fn overflowing_churn_fails_cleanly_and_is_retryable() {
        let cfg = ContinuousConfig::for_churn(4, 5);
        let base: Vec<u64> = (0..50).collect();
        let mut s = pair(cfg, &base, &base);
        s.drive_round().expect("initial settle");
        {
            let alice = s.alice();
            let mut a = lock(&alice);
            for k in 1000..1100u64 {
                a.insert(k).unwrap();
            }
        }
        let err = s.drive_round().expect_err("churn over bound");
        assert!(matches!(err, ContinuousError::Round(_)), "got {err:?}");
        // Nothing mutated: Bob never learned the keys, Alice kept hers,
        // both phases rolled back to Settled and remain usable.
        assert!(!lock(&s.bob()).set().contains(&1000));
        assert!(lock(&s.alice()).set().contains(&1000));
        assert_eq!(lock(&s.alice()).phase(), SessionPhase::Settled);
        assert_eq!(lock(&s.alice()).rounds_failed(), 1);
        // Retry after the overflow drains: delete the excess and go.
        {
            let alice = s.alice();
            let mut a = lock(&alice);
            for k in 1002..1100u64 {
                a.remove(k).unwrap();
            }
        }
        s.drive_round().expect("retry settles");
        assert!(sets_equal(&s));
        assert!(lock(&s.bob()).set().contains(&1000));
    }

    #[test]
    fn dropping_an_unfinished_round_rolls_back() {
        let cfg = ContinuousConfig::for_churn(8, 6);
        let party = shared(ContinuousParty::new(cfg, [1]));
        let alice = AliceRound::begin(&party).expect("begin");
        assert_eq!(lock(&party).phase(), SessionPhase::Syncing);
        drop(alice); // transport died mid-round
        assert_eq!(lock(&party).phase(), SessionPhase::Idle);
        assert_eq!(lock(&party).rounds_failed(), 1);
        // The party is immediately usable again.
        lock(&party).insert(2).expect("mutable after rollback");
        assert!(AliceRound::begin(&party).is_ok());
    }

    #[test]
    fn desynced_round_counters_are_detected_and_resync_recovers() {
        let cfg = ContinuousConfig::for_churn(16, 8);
        let mut s = pair(cfg, &[1, 2], &[2, 3]);
        s.drive_round().expect("round 0");
        // Simulate a half-settled round: Bob alone settles again (his
        // reply to Alice was "lost"), so the counters now disagree.
        {
            let bob = s.bob();
            let mut b = lock(&bob);
            b.begin_round().expect("begin");
            b.settle(&[]);
        }
        let err = s.drive_round().expect_err("desync detected");
        assert!(err.to_string().contains("desync"), "got {err}");
        // Recovery: resync both sides, then reconcile fully.
        lock(&s.alice()).resync().expect("resync alice");
        lock(&s.bob()).resync().expect("resync bob");
        lock(&s.alice()).insert(50).unwrap();
        s.drive_round().expect("post-resync round");
        assert!(sets_equal(&s));
        assert!(lock(&s.bob()).set().contains(&50));
    }

    #[test]
    fn transcript_segments_accumulate_per_round() {
        let cfg = ContinuousConfig::for_churn(8, 12);
        let mut s = pair(cfg, &[1], &[2]);
        s.drive_round().expect("round 0");
        lock(&s.alice()).insert(77).unwrap();
        s.drive_round().expect("round 1");
        assert_eq!(s.segments().len(), 2);
        // Every segment is one delta + one reply: two messages, two
        // direction changes.
        for seg in s.segments() {
            assert_eq!(seg.num_messages(), 2);
            assert_eq!(seg.num_rounds(), 2);
        }
    }
}
