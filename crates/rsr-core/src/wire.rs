//! Wire codecs for the protocol payloads that are not tables.
//!
//! Tables encode through `rsr-iblt`'s codec ([`rsr_iblt::wire`]) and the
//! sets-of-sets rounds through [`rsr_setsofsets::wire`]; this module
//! covers the remaining message body: raw point lists (the Gap protocol's
//! round-4 far elements). Every encoder writes into a shared
//! [`BitWriter`] so multi-part messages measure as one contiguous bit
//! stream, and every decoder rejects malformed input with `None` instead
//! of fabricating data.

use rsr_iblt::bits::{BitReader, BitWriter};
use rsr_iblt::wire::{get_len, put_len};
use rsr_metric::{GridUniverse, Point};

/// Encodes a point list: a 32-bit count, then each coordinate packed with
/// [`GridUniverse::coord_wire_bits`] bits. Panics if a point lies outside
/// the universe (protocols only ship their own in-universe points).
pub fn put_points(w: &mut BitWriter, points: &[Point], universe: &GridUniverse) {
    put_len(w, points.len());
    let width = universe.coord_wire_bits();
    for p in points {
        assert!(
            universe.contains(p),
            "point outside universe cannot be encoded: {p:?}"
        );
        for &c in p.coords() {
            w.write(c as u64, width);
        }
    }
}

/// Decodes a point list written by [`put_points`]. Returns `None` on
/// buffer exhaustion or a coordinate outside the universe.
pub fn get_points(r: &mut BitReader<'_>, universe: &GridUniverse) -> Option<Vec<Point>> {
    let count = get_len(r)?;
    let width = universe.coord_wire_bits();
    let mut points = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let coords = (0..universe.dim())
            .map(|_| r.read(width).map(|v| v as i64))
            .collect::<Option<Vec<i64>>>()?;
        let p = Point::new(coords);
        if !universe.contains(&p) {
            return None;
        }
        points.push(p);
    }
    Some(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn points_roundtrip() {
        let u = GridUniverse::new(10, 3);
        let pts = vec![Point::new(vec![0, 9, 5]), Point::new(vec![3, 3, 3])];
        let mut w = BitWriter::new();
        put_points(&mut w, &pts, &u);
        assert_eq!(w.bit_len(), 32 + 2 * u.point_wire_bits());
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(get_points(&mut r, &u), Some(pts));
    }

    #[test]
    fn out_of_grid_coordinates_rejected() {
        // Δ = 10 packs into 4 bits; 15 fits the field but not the grid.
        let u = GridUniverse::new(10, 1);
        let mut w = BitWriter::new();
        put_len(&mut w, 1);
        w.write(15, u.coord_wire_bits());
        let buf = w.finish();
        let mut r = BitReader::new(&buf);
        assert_eq!(get_points(&mut r, &u), None);
    }

    #[test]
    fn truncated_point_list_rejected() {
        let u = GridUniverse::binary(16);
        let pts = vec![Point::from_bits(&[true; 16])];
        let mut w = BitWriter::new();
        put_points(&mut w, &pts, &u);
        let buf = w.finish();
        let mut r = BitReader::new(&buf[..buf.len() - 1]);
        assert_eq!(get_points(&mut r, &u), None);
    }

    #[test]
    #[should_panic]
    fn foreign_point_rejected_on_encode() {
        let u = GridUniverse::new(4, 2);
        let mut w = BitWriter::new();
        put_points(&mut w, &[Point::new(vec![4, 0])], &u);
    }

    #[test]
    fn empty_point_list_roundtrips() {
        let u = GridUniverse::binary(8);
        let mut w = BitWriter::new();
        put_points(&mut w, &[], &u);
        assert_eq!(w.bit_len(), 32);
        let buf = w.finish();
        assert_eq!(get_points(&mut BitReader::new(&buf), &u), Some(vec![]));
    }
}
