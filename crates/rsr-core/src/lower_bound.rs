//! Theorem 4.6: the one-round lower bound via the index problem.
//!
//! "There exists no one round protocol for the Gap Guarantee on
//! `({0,1}^d, f_H)`, `d = Ω(log n + r2)`, `r1 = 1`, `k = 1`, using `O(n)`
//! bits of communication that succeeds with probability at least 2/3."
//!
//! The proof reduces from the index problem: the parties agree on `n+1`
//! codewords `c_1, …, c_{n+1} ∈ {0,1}^{d−1}` with pairwise distance
//! ≥ `r2`; Alice encodes her bit string `x` as `S_A = {c_j ‖ x_j}`; Bob
//! holds all codewords but the `i`-th, each with a 0 appended. A correct
//! Gap protocol forces the recovery of `c_i ‖ x_i`, i.e. of `x_i` —
//! which costs Ω(n) bits in one round.
//!
//! We implement the reduction's ingredients so experiments can *measure*
//! the phenomenon: [`gv_code`] builds the codeword set (greedy
//! Gilbert–Varshamov in place of the paper's Reed–Muller — any code with
//! these parameters works, see DESIGN.md), [`IndexInstance`] builds the
//! hard instances, and [`one_round_bloom_guess`] is a natural O(n)-bit
//! one-round straw-man whose measured success rate stays below 2/3 while
//! the four-round protocol solves the same instances exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsr_hash::mix::mix64;
use rsr_metric::{MetricSpace, Point};

/// Greedily builds `count` binary codewords of length `len` with pairwise
/// Hamming distance ≥ `min_dist` (Gilbert–Varshamov style: sample random
/// words, keep those far from all kept words). Returns `None` if the rate
/// is infeasible within the attempt budget.
pub fn gv_code(count: usize, len: usize, min_dist: usize, seed: u64) -> Option<Vec<Vec<bool>>> {
    assert!(min_dist <= len);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut words: Vec<Vec<bool>> = Vec::with_capacity(count);
    let mut attempts = 0usize;
    let budget = 2000 * count.max(1);
    while words.len() < count {
        attempts += 1;
        if attempts > budget {
            return None;
        }
        let cand: Vec<bool> = (0..len).map(|_| rng.gen()).collect();
        let ok = words.iter().all(|w| {
            let dist = w.iter().zip(&cand).filter(|(a, b)| a != b).count();
            dist >= min_dist
        });
        if ok {
            words.push(cand);
        }
    }
    Some(words)
}

/// One hard instance of the Theorem 4.6 reduction.
#[derive(Clone, Debug)]
pub struct IndexInstance {
    /// The Hamming space `({0,1}^d, f_H)`.
    pub space: MetricSpace,
    /// Alice's set `{c_j ‖ x_j : j ∈ [n]}`.
    pub alice: Vec<Point>,
    /// Bob's set `{c_j ‖ 0 : j ≠ i}` (note: `n+1` codewords, minus one).
    pub bob: Vec<Point>,
    /// Alice's bit string `x`.
    pub x: Vec<bool>,
    /// Bob's query index `i` (0-based).
    pub i: usize,
    /// The far radius `r2` of the instance.
    pub r2: usize,
}

impl IndexInstance {
    /// Builds an instance for string length `n`, gap `r2`, and a random
    /// `(x, i)` drawn from `seed`. The dimension is `d = len + 1` with
    /// `len` chosen `Ω(log n + r2)`.
    pub fn build(n: usize, r2: usize, seed: u64) -> Option<IndexInstance> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0bad_cafe);
        let len = (4 * r2)
            .max(8 * ((n.max(2) as f64).log2().ceil() as usize))
            .max(16);
        let code = gv_code(n + 1, len, r2, seed ^ 0xc0de)?;
        let x: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        let i = rng.gen_range(0..n);
        let alice: Vec<Point> = (0..n)
            .map(|j| {
                let mut bits = code[j].clone();
                bits.push(x[j]);
                Point::from_bits(&bits)
            })
            .collect();
        let bob: Vec<Point> = (0..=n)
            .filter(|&j| j != i)
            .map(|j| {
                let mut bits = code[j].clone();
                bits.push(false);
                Point::from_bits(&bits)
            })
            .collect();
        Some(IndexInstance {
            space: MetricSpace::hamming(len + 1),
            alice,
            bob,
            x,
            i,
            r2,
        })
    }

    /// The answer a correct Gap protocol must expose: does `S'_B` contain
    /// a point within `r2` of Alice's `c_i ‖ x_i`, and does its final bit
    /// reveal `x_i`? Returns Bob's recovered bit, if any.
    pub fn extract_answer(&self, reconciled: &[Point]) -> Option<bool> {
        let target = &self.alice[self.i];
        // Bob's original points are all ≥ r2 from c_i‖x_i except via the
        // appended bit; the recovered point must be the (near-)exact
        // transmission. Find the closest reconciled point and read its
        // last bit if it is within r2.
        let best = reconciled.iter().min_by(|a, b| {
            self.space
                .distance(a, target)
                .partial_cmp(&self.space.distance(b, target))
                .unwrap()
        })?;
        if self.space.distance(best, target) as usize >= self.r2 {
            return None;
        }
        Some(best.coord(best.dim() - 1) == 1)
    }
}

/// A natural one-round, O(n)-bit straw-man: Alice sends a Bloom filter of
/// her point set with `bits_budget` bits and 3 hash functions; Bob guesses
/// `x_i` by querying `c_i ‖ 1`. Returns whether the guess equals `x_i`.
///
/// With only O(1) bits per point the filter's false-positive rate is a
/// constant, so over random instances the success probability is bounded
/// away from 1 — empirically below the 2/3 bar of Theorem 4.6 for small
/// budgets (experiment T9).
pub fn one_round_bloom_guess(instance: &IndexInstance, bits_budget: usize, seed: u64) -> bool {
    let m = bits_budget.max(8);
    let mut filter = vec![false; m];
    let hash = |p: &Point, salt: u64| -> usize {
        let words: Vec<u64> = p.coords().iter().map(|&c| c as u64).collect();
        (rsr_hash::mix::hash_words(seed ^ mix64(salt), &words) % m as u64) as usize
    };
    for p in &instance.alice {
        for salt in 0..3u64 {
            let idx = hash(p, salt);
            filter[idx] = true;
        }
    }
    // Bob's query: is c_i ‖ 1 in Alice's set?
    let mut bits: Vec<bool> = instance.alice[instance.i]
        .as_bits()
        .expect("binary instance");
    let d = bits.len();
    bits[d - 1] = true;
    let query = Point::from_bits(&bits);
    let positive = (0..3u64).all(|salt| filter[hash(&query, salt)]);
    let guess = positive;
    guess == instance.x[instance.i]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap_protocol::{GapConfig, GapProtocol};
    use rsr_hash::lsh::LshParams;
    use rsr_hash::BitSamplingFamily;

    #[test]
    fn gv_code_respects_min_distance() {
        let code = gv_code(20, 64, 16, 1).expect("feasible code");
        assert_eq!(code.len(), 20);
        for i in 0..code.len() {
            for j in (i + 1)..code.len() {
                let dist = code[i].iter().zip(&code[j]).filter(|(a, b)| a != b).count();
                assert!(dist >= 16, "words {i},{j} at distance {dist}");
            }
        }
    }

    #[test]
    fn infeasible_code_returns_none() {
        // 100 words at distance ≥ 9 in 9 bits: impossible.
        assert!(gv_code(100, 9, 9, 2).is_none());
    }

    #[test]
    fn instance_has_gap_structure() {
        let inst = IndexInstance::build(16, 8, 3).unwrap();
        assert_eq!(inst.alice.len(), 16);
        assert_eq!(inst.bob.len(), 16); // n+1 codewords minus one

        // Every Alice point except index i is within r1 = 1 of a Bob point.
        for (j, a) in inst.alice.iter().enumerate() {
            let d = inst.space.nearest_distance(a, &inst.bob);
            if j == inst.i {
                assert!(d >= inst.r2 as f64 - 1.0, "query point too close: {d}");
            } else {
                assert!(d <= 1.0, "non-query point at distance {d}");
            }
        }
    }

    #[test]
    fn four_round_protocol_solves_index_instances() {
        let mut correct = 0u64;
        let trials = 10;
        for t in 0..trials {
            let inst = IndexInstance::build(12, 8, 100 + t).unwrap();
            let dim = inst.space.dim();
            let fam = BitSamplingFamily::new(dim, dim as f64);
            let params = LshParams::new(
                1.0,
                inst.r2 as f64,
                1.0 - 1.0 / dim as f64,
                1.0 - inst.r2 as f64 / dim as f64,
            );
            let cfg = GapConfig::for_params(params, 12, 1);
            let proto = GapProtocol::new(inst.space, &fam, cfg, 200 + t);
            let Ok(out) = proto.run(&inst.alice, &inst.bob) else {
                continue;
            };
            if inst.extract_answer(&out.reconciled) == Some(inst.x[inst.i]) {
                correct += 1;
            }
        }
        assert!(
            correct >= 8,
            "4-round protocol solved only {correct}/{trials}"
        );
    }

    #[test]
    fn one_round_strawman_fails_often() {
        // With ~2 bits/point the Bloom straw-man's success rate must stay
        // visibly below 1 (Theorem 4.6 says no 1-round O(n)-bit protocol
        // reaches 2/3; the straw-man errs on x_i = 0 via false positives).
        let trials = 200;
        let mut correct = 0u64;
        for t in 0..trials {
            let inst = IndexInstance::build(24, 8, 300 + t).unwrap();
            if one_round_bloom_guess(&inst, 24, 400 + t) {
                correct += 1;
            }
        }
        let rate = correct as f64 / trials as f64;
        assert!(rate < 0.95, "straw-man suspiciously good: {rate}");
        assert!(rate > 0.3, "straw-man suspiciously bad: {rate}");
    }
}
