//! Two-way robust reconciliation (§1, "One-way reconciliation").
//!
//! The paper's models are one-way — Bob approximates Alice's data, Alice
//! changes nothing. §1 notes: "for both models we consider, we can easily
//! achieve a natural version of two-way reconciliation by having both
//! Alice and Bob run the protocol once in each direction; however, they
//! will generally not end with the same point set." This module is that
//! wrapper, with the caveat surfaced in the return type: the two final
//! sets are reported separately, and a helper measures how far apart they
//! ended.

use crate::emd_protocol::{EmdFailure, EmdOutcome, EmdProtocol};
use crate::gap_protocol::{GapError, GapOutcome, GapProtocol};
use rsr_hash::LshFamily;
use rsr_metric::Point;

/// Result of a two-way EMD-model exchange.
pub struct TwoWayEmdOutcome {
    /// Bob's final set (approximating Alice's original data).
    pub bob_final: EmdOutcome,
    /// Alice's final set (approximating Bob's original data).
    pub alice_final: EmdOutcome,
}

impl TwoWayEmdOutcome {
    /// Total communication across both directions, in bits.
    pub fn total_bits(&self) -> u64 {
        self.bob_final.transcript.total_bits() + self.alice_final.transcript.total_bits()
    }
}

/// Runs Algorithm 1 once in each direction. The two directions use the
/// same protocol object (same public coins), which is safe: each
/// direction's tables are built and consumed independently.
pub fn two_way_emd(
    protocol: &EmdProtocol,
    alice: &[Point],
    bob: &[Point],
) -> Result<TwoWayEmdOutcome, EmdFailure> {
    let bob_final = protocol.run(alice, bob)?;
    let alice_final = protocol.run(bob, alice)?;
    Ok(TwoWayEmdOutcome {
        bob_final,
        alice_final,
    })
}

/// Result of a two-way Gap-model exchange: both parties end with a point
/// within `r2` of every point of the *union* of the original sets.
pub struct TwoWayGapOutcome {
    /// Bob's final set (`S_B ∪ T_A`).
    pub bob_final: GapOutcome,
    /// Alice's final set (`S_A ∪ T_B`).
    pub alice_final: GapOutcome,
}

impl TwoWayGapOutcome {
    /// Total communication across both directions, in bits.
    pub fn total_bits(&self) -> u64 {
        self.bob_final.transcript.total_bits() + self.alice_final.transcript.total_bits()
    }
}

/// Runs the Gap protocol once in each direction.
pub fn two_way_gap<F: LshFamily>(
    protocol: &GapProtocol<F>,
    alice: &[Point],
    bob: &[Point],
) -> Result<TwoWayGapOutcome, GapError> {
    let bob_final = protocol.run(alice, bob)?;
    let alice_final = protocol.run(bob, alice)?;
    Ok(TwoWayGapOutcome {
        bob_final,
        alice_final,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emd_protocol::EmdProtocolConfig;
    use crate::gap_protocol::{verify_gap_guarantee, GapConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rsr_hash::lsh::LshParams;
    use rsr_hash::BitSamplingFamily;
    use rsr_metric::MetricSpace;

    fn hamming_sets(n: usize, k: usize, dim: usize, seed: u64) -> (Vec<Point>, Vec<Point>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut alice: Vec<Point> = (0..n - k)
            .map(|_| Point::from_bits(&(0..dim).map(|_| rng.gen()).collect::<Vec<bool>>()))
            .collect();
        let mut bob = alice.clone();
        for _ in 0..k {
            alice.push(Point::from_bits(
                &(0..dim).map(|_| rng.gen()).collect::<Vec<bool>>(),
            ));
            bob.push(Point::from_bits(
                &(0..dim).map(|_| rng.gen()).collect::<Vec<bool>>(),
            ));
        }
        (alice, bob)
    }

    #[test]
    fn two_way_emd_improves_both_directions() {
        let space = MetricSpace::hamming(48);
        let (alice, bob) = hamming_sets(60, 3, 48, 1);
        let cfg = EmdProtocolConfig::for_space(&space, 60, 3);
        let proto = EmdProtocol::new(space, cfg, 2);
        let out = two_way_emd(&proto, &alice, &bob).expect("both directions decode");
        let before = rsr_emd::emd(space.metric(), &alice, &bob);
        let bob_after = rsr_emd::emd(space.metric(), &alice, &out.bob_final.reconciled);
        let alice_after = rsr_emd::emd(space.metric(), &bob, &out.alice_final.reconciled);
        assert!(bob_after < before);
        assert!(alice_after < before);
        assert!(out.total_bits() > 0);
    }

    #[test]
    fn two_way_emd_parties_need_not_agree() {
        // The paper's caveat: the two final sets generally differ.
        let space = MetricSpace::hamming(48);
        let (alice, bob) = hamming_sets(40, 2, 48, 3);
        let cfg = EmdProtocolConfig::for_space(&space, 40, 2);
        let proto = EmdProtocol::new(space, cfg, 4);
        let out = two_way_emd(&proto, &alice, &bob).expect("decodes");
        let mut a = out.alice_final.reconciled.clone();
        let mut b = out.bob_final.reconciled.clone();
        a.sort();
        b.sort();
        // Not asserted equal — just exercise the accessor; equality would
        // actually be fine on tiny noiseless instances.
        let _ = a == b;
    }

    #[test]
    fn two_way_gap_covers_the_union_both_ways() {
        let dim = 128;
        let space = MetricSpace::hamming(dim);
        let w = rsr_workloads_sensor(space, 50, 3, 2.0, 48.0, 5);
        let fam = BitSamplingFamily::new(dim, dim as f64);
        let params = LshParams::new(2.0, 48.0, 1.0 - 2.0 / dim as f64, 1.0 - 48.0 / dim as f64);
        let cfg = GapConfig::for_params(params, 50, 3);
        let proto = GapProtocol::new(space, &fam, cfg, 6);
        let out = two_way_gap(&proto, &w.0, &w.1).expect("succeeds");
        assert!(verify_gap_guarantee(
            &space,
            &w.0,
            &out.bob_final.reconciled,
            48.0
        ));
        assert!(verify_gap_guarantee(
            &space,
            &w.1,
            &out.alice_final.reconciled,
            48.0
        ));
    }

    /// Local stand-in for the workload generator (rsr-core does not
    /// depend on rsr-workloads to avoid a cycle).
    fn rsr_workloads_sensor(
        space: MetricSpace,
        n: usize,
        k: usize,
        r1: f64,
        _r2: f64,
        seed: u64,
    ) -> (Vec<Point>, Vec<Point>) {
        let dim = space.dim();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut alice = Vec::new();
        let mut bob = Vec::new();
        for _ in 0..n - k {
            let base: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
            let mut noisy = base.clone();
            for _ in 0..r1 as usize {
                let j = rng.gen_range(0..dim);
                noisy[j] = !noisy[j];
            }
            alice.push(Point::from_bits(&base));
            bob.push(Point::from_bits(&noisy));
        }
        for _ in 0..k {
            alice.push(Point::from_bits(
                &(0..dim).map(|_| rng.gen()).collect::<Vec<bool>>(),
            ));
            bob.push(Point::from_bits(
                &(0..dim).map(|_| rng.gen()).collect::<Vec<bool>>(),
            ));
        }
        (alice, bob)
    }
}
