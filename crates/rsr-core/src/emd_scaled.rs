//! Corollary 3.6: interval-scaled Algorithm 1.
//!
//! For `([Δ]^d, ℓ2)` (and equally for Hamming, as the paper notes) the
//! range `[D1, D2]` is split into `I = O(log(D2/D1))` constant-ratio
//! intervals; Algorithm 1 runs in parallel on each with the MLSH width
//! tuned to that interval, and "Bob uses the output of the version for the
//! smallest index interval which did not report failure". This keeps the
//! per-interval hash-draw count `s = O(D2^{(j)}/D1^{(j)}) = O(1)` and
//! yields `O(k·d·log(nΔ)·log(D2/D1))` total communication.

use crate::channel::Frame;
use crate::emd_protocol::{
    AssignmentSolver, EmdFailure, EmdMessage, EmdOutcome, EmdProtocol, EmdProtocolConfig,
};
use crate::session::{drive_in_memory, Session};
use crate::transcript::{Party, Transcript};
use rsr_iblt::bits::BitWriter;
use rsr_metric::{MetricSpace, Point};

/// The scaled protocol: one Algorithm 1 instance per interval.
pub struct ScaledEmdProtocol {
    protocols: Vec<EmdProtocol>,
}

/// Alice's message: the per-interval messages, in interval order.
pub struct ScaledEmdMessage {
    messages: Vec<EmdMessage>,
}

impl ScaledEmdMessage {
    /// Total communication in bits.
    pub fn wire_bits(&self) -> u64 {
        self.messages.iter().map(EmdMessage::wire_bits).sum()
    }

    /// Number of intervals.
    pub fn num_intervals(&self) -> usize {
        self.messages.len()
    }
}

/// Outcome of the scaled protocol: the winning interval's outcome plus the
/// interval index.
pub struct ScaledEmdOutcome {
    /// The winning sub-protocol's outcome.
    pub inner: EmdOutcome,
    /// Index of the smallest interval that succeeded (0-based).
    pub interval: usize,
    /// Total communication across all intervals (the whole message was
    /// shipped regardless of which interval wins).
    pub total_bits: u64,
    /// Full transcript: one message per interval, all in a single round
    /// (every interval travels in parallel before Bob speaks).
    pub transcript: Transcript,
}

impl ScaledEmdProtocol {
    /// Creates the protocol with the default `D1 = 1`,
    /// `D2 = n·diameter`, and interval ratio 4.
    pub fn new(space: MetricSpace, n: usize, k: usize, seed: u64) -> Self {
        let d2 = (n.max(2) as f64) * space.diameter().max(1.0);
        Self::with_range(space, n, k, 1.0, d2, 4.0, seed)
    }

    /// Creates the protocol over an explicit range `[d1, d2]` split at
    /// ratio `ratio > 1`.
    pub fn with_range(
        space: MetricSpace,
        n: usize,
        k: usize,
        d1: f64,
        d2: f64,
        ratio: f64,
        seed: u64,
    ) -> Self {
        assert!(ratio > 1.0);
        assert!(d1 >= 1.0 && d2 >= d1);
        let base = EmdProtocolConfig::for_space(&space, n, k);
        let mut protocols = Vec::new();
        let mut lo = d1;
        let mut idx = 0u64;
        while lo < d2 || protocols.is_empty() {
            let hi = (lo * ratio).min(d2).max(lo * ratio.min(2.0)).max(lo + 1.0);
            let config = EmdProtocolConfig {
                k: base.k,
                d1: lo,
                d2: hi,
                q: base.q,
                key_bits: base.key_bits,
                max_s: base.max_s,
                solver: base.solver,
            };
            protocols.push(EmdProtocol::new(space, config, seed ^ (idx << 40)));
            if hi >= d2 {
                break;
            }
            lo = hi;
            idx += 1;
        }
        ScaledEmdProtocol { protocols }
    }

    /// Number of intervals `I`.
    pub fn num_intervals(&self) -> usize {
        self.protocols.len()
    }

    /// Returns the protocol with every interval's repair-step solver
    /// replaced (see [`EmdProtocol::with_solver`]); messages and
    /// transcripts are solver-independent.
    pub fn with_solver(mut self, solver: AssignmentSolver) -> Self {
        self.protocols = self
            .protocols
            .into_iter()
            .map(|p| p.with_solver(solver))
            .collect();
        self
    }

    /// Alice's side: encode every interval.
    pub fn alice_encode(&self, alice: &[Point]) -> ScaledEmdMessage {
        ScaledEmdMessage {
            messages: self
                .protocols
                .iter()
                .map(|p| p.alice_encode(alice))
                .collect(),
        }
    }

    /// Bob's side: use the smallest-index interval that succeeds.
    pub fn bob_decode(
        &self,
        msg: &ScaledEmdMessage,
        bob: &[Point],
    ) -> Result<ScaledEmdOutcome, EmdFailure> {
        let total_bits = msg.wire_bits();
        let mut transcript = Transcript::new();
        for (interval, m) in msg.messages.iter().enumerate() {
            transcript.record_from(Party::Alice, interval_label(interval), m.wire_bits());
        }
        for (interval, (proto, m)) in self.protocols.iter().zip(&msg.messages).enumerate() {
            if let Ok(inner) = proto.bob_decode(m, bob) {
                return Ok(ScaledEmdOutcome {
                    inner,
                    interval,
                    total_bits,
                    transcript,
                });
            }
        }
        Err(EmdFailure)
    }

    /// Alice's session endpoint: one frame per interval, sent in a single
    /// channel turn.
    pub fn alice_session(&self, alice: &[Point]) -> ScaledEmdAliceSession {
        let msg = self.alice_encode(alice);
        ScaledEmdAliceSession {
            pending: msg.messages.into_iter().enumerate().collect(),
        }
    }

    /// Bob's session endpoint: collects the per-interval frames, then
    /// decodes the smallest succeeding interval.
    pub fn bob_session<'a>(&'a self, bob: &'a [Point]) -> ScaledEmdBobSession<'a> {
        ScaledEmdBobSession {
            proto: self,
            bob,
            received: Vec::with_capacity(self.protocols.len()),
            outcome: None,
        }
    }

    /// Full round trip through the session layer; the outcome's transcript
    /// and `total_bits` are measured from the encoded frames.
    pub fn run(&self, alice: &[Point], bob: &[Point]) -> Result<ScaledEmdOutcome, EmdFailure> {
        let mut a = self.alice_session(alice);
        let mut b = self.bob_session(bob);
        let transcript = drive_in_memory(Party::Alice, &mut a, &mut b).map_err(|_| EmdFailure)?;
        let mut outcome = b.into_outcome().expect("bob finished");
        outcome.total_bits = transcript.total_bits();
        outcome.transcript = transcript;
        Ok(outcome)
    }
}

/// Transcript label of one interval's message.
fn interval_label(interval: usize) -> String {
    format!("alice→bob: interval {interval} RIBLTs")
}

/// Alice's half of the Corollary 3.6 protocol: a burst of `I` frames.
pub struct ScaledEmdAliceSession {
    /// `(interval, message)` pairs still to send, in interval order.
    pending: std::collections::VecDeque<(usize, EmdMessage)>,
}

/// Bob's half: buffer all intervals, then decode the smallest success.
pub struct ScaledEmdBobSession<'a> {
    proto: &'a ScaledEmdProtocol,
    bob: &'a [Point],
    received: Vec<EmdMessage>,
    outcome: Option<ScaledEmdOutcome>,
}

impl ScaledEmdBobSession<'_> {
    /// The decoded outcome, once the session is done.
    pub fn into_outcome(self) -> Option<ScaledEmdOutcome> {
        self.outcome
    }
}

impl Session for ScaledEmdAliceSession {
    type Error = EmdFailure;

    fn protocol(&self) -> &'static str {
        "scaled_emd"
    }

    fn poll_send(&mut self) -> Result<Option<Frame>, EmdFailure> {
        Ok(self.pending.pop_front().map(|(interval, msg)| {
            let mut w = BitWriter::new();
            msg.write_wire(&mut w);
            Frame::seal(interval_label(interval), w)
        }))
    }

    fn on_frame(&mut self, _frame: Frame) -> Result<(), EmdFailure> {
        Err(EmdFailure) // one-way protocol
    }

    fn is_done(&self) -> bool {
        self.pending.is_empty()
    }
}

impl Session for ScaledEmdBobSession<'_> {
    type Error = EmdFailure;

    fn protocol(&self) -> &'static str {
        "scaled_emd"
    }

    fn poll_send(&mut self) -> Result<Option<Frame>, EmdFailure> {
        Ok(None)
    }

    fn on_frame(&mut self, frame: Frame) -> Result<(), EmdFailure> {
        let interval = self.received.len();
        let proto = self.proto.protocols.get(interval).ok_or(EmdFailure)?;
        let msg = frame
            .decode_exact(|r| EmdMessage::read_wire(r, proto))
            .ok_or(EmdFailure)?;
        self.received.push(msg);
        if self.received.len() == self.proto.protocols.len() {
            let msg = ScaledEmdMessage {
                messages: std::mem::take(&mut self.received),
            };
            self.outcome = Some(self.proto.bob_decode(&msg, self.bob)?);
        }
        Ok(())
    }

    fn is_done(&self) -> bool {
        self.outcome.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rsr_emd::emd;
    use rsr_metric::Metric;

    fn l2_workload(n: usize, k: usize, seed: u64) -> (MetricSpace, Vec<Point>, Vec<Point>) {
        let space = MetricSpace::l2(512, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut alice = Vec::new();
        let mut bob = Vec::new();
        for _ in 0..n - k {
            let p: Vec<i64> = (0..2).map(|_| rng.gen_range(0..512)).collect();
            let noisy: Vec<i64> = p
                .iter()
                .map(|&c| (c + rng.gen_range(-1i64..=1)).clamp(0, 511))
                .collect();
            alice.push(Point::new(p));
            bob.push(Point::new(noisy));
        }
        for _ in 0..k {
            alice.push(Point::new(vec![
                rng.gen_range(0..512),
                rng.gen_range(0..512),
            ]));
            bob.push(Point::new(vec![
                rng.gen_range(0..512),
                rng.gen_range(0..512),
            ]));
        }
        (space, alice, bob)
    }

    #[test]
    fn interval_count_is_logarithmic() {
        let space = MetricSpace::l2(512, 2);
        let proto = ScaledEmdProtocol::new(space, 100, 4, 1);
        let expect = ((100.0 * space.diameter()).log2() / 2.0).ceil() as usize;
        assert!(
            proto.num_intervals() <= expect + 2,
            "{} intervals for log2(D2) = {expect}",
            proto.num_intervals()
        );
        assert!(proto.num_intervals() >= 2);
    }

    #[test]
    fn identical_sets_decode_in_first_interval() {
        let space = MetricSpace::l2(256, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let pts: Vec<Point> = (0..40)
            .map(|_| Point::new(vec![rng.gen_range(0..256), rng.gen_range(0..256)]))
            .collect();
        let proto = ScaledEmdProtocol::new(space, 40, 2, 3);
        let out = proto.run(&pts, &pts).expect("identical sets decode");
        assert_eq!(out.interval, 0);
        assert_eq!(out.inner.reconciled.len(), 40);
        assert_eq!(emd(Metric::L2, &out.inner.reconciled, &pts), 0.0);
    }

    #[test]
    fn noisy_workload_improves_emd() {
        let (space, alice, bob) = l2_workload(50, 3, 4);
        let proto = ScaledEmdProtocol::new(space, 50, 3, 5);
        let out = proto.run(&alice, &bob).expect("decodable");
        let before = emd(Metric::L2, &alice, &bob);
        let after = emd(Metric::L2, &alice, &out.inner.reconciled);
        assert!(after <= before, "no improvement: {after} vs {before}");
        assert_eq!(out.inner.reconciled.len(), 50);
    }

    #[test]
    fn total_bits_cover_all_intervals() {
        let (space, alice, _) = l2_workload(30, 2, 6);
        let proto = ScaledEmdProtocol::new(space, 30, 2, 7);
        let msg = proto.alice_encode(&alice);
        assert_eq!(msg.num_intervals(), proto.num_intervals());
        let per: Vec<u64> = msg.messages.iter().map(EmdMessage::wire_bits).collect();
        assert_eq!(msg.wire_bits(), per.iter().sum::<u64>());
    }

    #[test]
    fn explicit_range_respected() {
        let space = MetricSpace::l2(128, 2);
        let proto = ScaledEmdProtocol::with_range(space, 20, 2, 1.0, 64.0, 4.0, 8);
        // log_4(64) = 3 intervals.
        assert_eq!(proto.num_intervals(), 3);
    }
}
