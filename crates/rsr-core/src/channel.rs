//! Message transport between the two protocol parties.
//!
//! A [`Frame`] is one protocol message as it exists on the wire: a label
//! (for transcript accounting), the encoded byte payload, and the exact
//! encoded bit length (the payload is that length rounded up to whole
//! bytes). A [`Channel`] moves frames between the parties; the in-memory
//! implementation provided here is what [`crate::session::drive`] uses for
//! single-process runs, and the trait boundary is where sharded or async
//! transports plug in later — a session never sees anything but frames.

use crate::transcript::Party;
use rsr_iblt::bits::{BitReader, BitWriter};
use std::borrow::Cow;
use std::collections::VecDeque;

/// One encoded protocol message in flight.
///
/// The label is a `Cow<'static, str>` because almost every frame carries
/// one of a handful of fixed protocol labels; only computed labels (e.g.
/// the scaled-EMD per-interval ones) pay for an owned `String`.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Transcript label, e.g. `"alice→bob: RIBLTs"`.
    pub label: Cow<'static, str>,
    /// The encoded bytes (the final byte may be zero-padded).
    pub payload: Vec<u8>,
    /// Exact encoded length in bits; `payload.len() == bit_len.div_ceil(8)`.
    pub bit_len: u64,
}

impl Frame {
    /// Seals a finished encoder into a frame, measuring its size.
    pub fn seal(label: impl Into<Cow<'static, str>>, writer: BitWriter) -> Frame {
        let bit_len = writer.bit_len();
        let payload = writer.finish();
        debug_assert_eq!(payload.len() as u64, bit_len.div_ceil(8));
        Frame {
            label: label.into(),
            payload,
            bit_len,
        }
    }

    /// A reader over the payload, for decoding.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader::new(&self.payload)
    }

    /// Runs a decoder over the payload and verifies it consumed *exactly*
    /// the frame's encoded bits — a well-formed prefix followed by
    /// trailing garbage (e.g. two concatenated messages) is rejected,
    /// never silently half-decoded. Final-byte zero padding is the only
    /// tolerated slack.
    pub fn decode_exact<T>(
        &self,
        decode: impl FnOnce(&mut BitReader<'_>) -> Option<T>,
    ) -> Option<T> {
        if self.payload.len() as u64 != self.bit_len.div_ceil(8) {
            return None;
        }
        let mut r = self.reader();
        let value = decode(&mut r)?;
        (r.bit_pos() == self.bit_len).then_some(value)
    }
}

/// A bidirectional frame transport between Alice and Bob.
///
/// The in-memory implementation routes frames between two queues; a real
/// transport (`rsr-net`'s `TcpChannel`) implements the same two methods
/// over a socket, and the sessions never know the difference:
///
/// ```
/// use rsr_core::{Channel, Frame, InMemoryChannel, Party};
/// use rsr_iblt::bits::BitWriter;
///
/// let mut channel = InMemoryChannel::new();
/// let mut w = BitWriter::new();
/// w.write(0b1011, 4);
/// channel.send(Party::Alice, Frame::seal("hello", w));
///
/// let frame = channel.recv(Party::Bob).expect("queued for Bob");
/// assert_eq!(frame.label, "hello");
/// assert_eq!(frame.bit_len, 4);
/// assert_eq!(frame.decode_exact(|r| r.read(4)), Some(0b1011));
/// assert!(channel.recv(Party::Bob).is_none()); // queue drained
/// ```
pub trait Channel {
    /// Enqueues a frame from `from` towards its peer.
    fn send(&mut self, from: Party, frame: Frame);

    /// Dequeues the next frame addressed *to* `to`, if any.
    ///
    /// In-process channels return `None` when the queue is momentarily
    /// empty; transports over real streams block until a frame arrives and
    /// return `None` only when the peer is gone for good (clean shutdown
    /// or transport failure). Drivers treat `None` while a session is
    /// unfinished as a stall either way.
    fn recv(&mut self, to: Party) -> Option<Frame>;
}

/// Frame/byte/bit totals for one direction of traffic, so transports
/// share one accounting implementation instead of each reimplementing
/// the transcript bookkeeping.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelCounters {
    /// Frames counted.
    pub frames: usize,
    /// Payload bytes counted (each frame's byte buffer).
    pub bytes: u64,
    /// Exact encoded bits counted; `bytes` is this with every frame
    /// rounded up to whole bytes.
    pub bits: u64,
}

impl ChannelCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        ChannelCounters::default()
    }

    /// Adds one frame's payload to the totals.
    pub fn note(&mut self, frame: &Frame) {
        self.frames += 1;
        self.bytes += frame.payload.len() as u64;
        self.bits += frame.bit_len;
    }
}

/// Wraps any [`Channel`] with sent/received [`ChannelCounters`], so a
/// transport with no accounting of its own can still be checked against a
/// session's transcript.
#[derive(Debug, Default)]
pub struct CountingChannel<C> {
    inner: C,
    sent: ChannelCounters,
    received: ChannelCounters,
}

impl<C: Channel> CountingChannel<C> {
    /// Wraps `inner` with zeroed counters.
    pub fn new(inner: C) -> Self {
        CountingChannel {
            inner,
            sent: ChannelCounters::new(),
            received: ChannelCounters::new(),
        }
    }

    /// Totals over every frame pushed through [`Channel::send`].
    pub fn sent(&self) -> &ChannelCounters {
        &self.sent
    }

    /// Totals over every frame handed out by [`Channel::recv`].
    pub fn received(&self) -> &ChannelCounters {
        &self.received
    }

    /// The wrapped channel.
    pub fn get_ref(&self) -> &C {
        &self.inner
    }

    /// Unwraps, dropping the counters.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: Channel> Channel for CountingChannel<C> {
    fn send(&mut self, from: Party, frame: Frame) {
        self.sent.note(&frame);
        self.inner.send(from, frame);
    }

    fn recv(&mut self, to: Party) -> Option<Frame> {
        let frame = self.inner.recv(to)?;
        self.received.note(&frame);
        Some(frame)
    }
}

/// The in-process transport: two FIFO queues plus delivery counters, so
/// tests can check that transcript totals equal what actually crossed the
/// channel.
#[derive(Debug, Default)]
pub struct InMemoryChannel {
    to_alice: VecDeque<Frame>,
    to_bob: VecDeque<Frame>,
    sent: ChannelCounters,
}

impl InMemoryChannel {
    /// Creates an empty channel.
    pub fn new() -> Self {
        InMemoryChannel::default()
    }

    /// Number of frames sent so far (both directions).
    pub fn frames_sent(&self) -> usize {
        self.sent.frames
    }

    /// Total payload bytes sent so far (both directions).
    pub fn bytes_sent(&self) -> u64 {
        self.sent.bytes
    }

    /// Total encoded bits sent so far (both directions); `bytes_sent` is
    /// this quantity with every frame rounded up to whole bytes.
    pub fn bits_sent(&self) -> u64 {
        self.sent.bits
    }
}

impl Channel for InMemoryChannel {
    fn send(&mut self, from: Party, frame: Frame) {
        self.sent.note(&frame);
        match from {
            Party::Alice => self.to_bob.push_back(frame),
            Party::Bob => self.to_alice.push_back(frame),
        }
    }

    fn recv(&mut self, to: Party) -> Option<Frame> {
        match to {
            Party::Alice => self.to_alice.pop_front(),
            Party::Bob => self.to_bob.pop_front(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(label: &'static str, bits: u64) -> Frame {
        let mut w = BitWriter::new();
        w.write128(0, (bits % 128) as u32);
        for _ in 0..bits / 128 {
            w.write128(0, 128);
        }
        Frame::seal(label, w)
    }

    #[test]
    fn frames_route_to_the_peer() {
        let mut ch = InMemoryChannel::new();
        ch.send(Party::Alice, frame("a→b", 10));
        ch.send(Party::Bob, frame("b→a", 20));
        assert_eq!(ch.recv(Party::Bob).unwrap().label, "a→b");
        assert_eq!(ch.recv(Party::Alice).unwrap().label, "b→a");
        assert!(ch.recv(Party::Alice).is_none());
        assert!(ch.recv(Party::Bob).is_none());
    }

    #[test]
    fn counters_measure_traffic() {
        let mut ch = InMemoryChannel::new();
        ch.send(Party::Alice, frame("x", 9));
        ch.send(Party::Alice, frame("y", 130));
        assert_eq!(ch.frames_sent(), 2);
        assert_eq!(ch.bits_sent(), 139);
        assert_eq!(ch.bytes_sent(), 2 + 17);
    }

    #[test]
    fn seal_measures_exact_bits() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(7, 32);
        let f = Frame::seal("m", w);
        assert_eq!(f.bit_len, 35);
        assert_eq!(f.payload.len(), 5);
        let mut r = f.reader();
        assert_eq!(r.read(3), Some(0b101));
        assert_eq!(r.read(32), Some(7));
    }

    #[test]
    fn decode_exact_rejects_partial_consumption() {
        let mut w = BitWriter::new();
        w.write(7, 16);
        w.write(9, 16); // trailing content a 16-bit decoder won't consume
        let f = Frame::seal("m", w);
        assert_eq!(f.decode_exact(|r| r.read(16)), None);
        assert_eq!(f.decode_exact(|r| r.read(32)), Some((7 << 16) | 9));
        // A frame whose payload disagrees with its claimed bit length is
        // rejected before the decoder even runs.
        let mut bad = f.clone();
        bad.payload.push(0xFF);
        assert_eq!(bad.decode_exact(|r| r.read(32)), None);
    }

    #[test]
    fn counting_channel_tracks_both_directions() {
        let mut ch = CountingChannel::new(InMemoryChannel::new());
        ch.send(Party::Alice, frame("a", 9));
        ch.send(Party::Bob, frame("b", 130));
        assert_eq!(ch.sent().frames, 2);
        assert_eq!(ch.sent().bits, 139);
        assert_eq!(ch.sent().bytes, 2 + 17);
        assert_eq!(*ch.received(), ChannelCounters::new());
        // Receiving moves frames into the received totals.
        assert!(ch.recv(Party::Bob).is_some());
        assert_eq!(ch.received().frames, 1);
        assert_eq!(ch.received().bits, 9);
        // The wrapped channel's own counters agree.
        assert_eq!(ch.get_ref().bits_sent(), 139);
        assert_eq!(ch.into_inner().frames_sent(), 2);
    }

    #[test]
    fn fifo_order_within_a_direction() {
        let mut ch = InMemoryChannel::new();
        ch.send(Party::Alice, frame("first", 8));
        ch.send(Party::Alice, frame("second", 8));
        assert_eq!(ch.recv(Party::Bob).unwrap().label, "first");
        assert_eq!(ch.recv(Party::Bob).unwrap().label, "second");
    }
}
