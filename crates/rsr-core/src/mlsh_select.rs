//! Metric-driven MLSH family selection for Algorithm 1.
//!
//! Theorem 3.4 requires an MLSH family with parameters `(r, p, α)` such
//! that `r ≥ min(M, D2)` and `p ≥ e^{−k/(24·D2)}`, where `M` bounds the
//! maximum pairwise distance. Each of the paper's example families meets
//! this by choosing its width `w` large enough (the paper picks
//! `w = 48·n·d/k` for Corollary 3.5 and `w = Θ(min(M, D2) + D2/k)` for
//! Corollary 3.6). [`AnyMlsh`] wraps the three families behind one type so
//! the protocols stay non-generic.

use rand::Rng;
use rsr_hash::bit_sampling::{BitSamplingFamily, BitSamplingFn};
use rsr_hash::grid::{GridFamily, GridFn};
use rsr_hash::lsh::LshParams;
use rsr_hash::pstable::{PStableFamily, PStableFn};
use rsr_hash::{LshFamily, LshFunction, MlshFamily, MlshParams};
use rsr_metric::{Metric, MetricSpace, Point};

/// An MLSH family chosen to match a metric space.
#[derive(Clone, Debug)]
pub enum AnyMlsh {
    /// Bit sampling over Hamming space (Lemma 2.3).
    Hamming(BitSamplingFamily),
    /// Randomly shifted lattice over ℓ1 (Lemma 2.4).
    Grid(GridFamily),
    /// 2-stable Gaussian projection over ℓ2 (Lemma 2.5).
    PStable(PStableFamily),
}

/// A function drawn from [`AnyMlsh`].
#[derive(Clone, Debug)]
pub enum AnyMlshFn {
    /// Bit-sampling draw.
    Hamming(BitSamplingFn),
    /// Grid draw.
    Grid(GridFn),
    /// 2-stable draw.
    PStable(PStableFn),
}

impl LshFunction for AnyMlshFn {
    fn hash(&self, p: &Point) -> u64 {
        match self {
            AnyMlshFn::Hamming(f) => f.hash(p),
            AnyMlshFn::Grid(f) => f.hash(p),
            AnyMlshFn::PStable(f) => f.hash(p),
        }
    }
}

impl LshFamily for AnyMlsh {
    type Function = AnyMlshFn;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> AnyMlshFn {
        match self {
            AnyMlsh::Hamming(f) => AnyMlshFn::Hamming(f.sample(rng)),
            AnyMlsh::Grid(f) => AnyMlshFn::Grid(f.sample(rng)),
            AnyMlsh::PStable(f) => AnyMlshFn::PStable(f.sample(rng)),
        }
    }

    fn params(&self) -> LshParams {
        match self {
            AnyMlsh::Hamming(f) => f.params(),
            AnyMlsh::Grid(f) => f.params(),
            AnyMlsh::PStable(f) => f.params(),
        }
    }
}

impl MlshFamily for AnyMlsh {
    fn mlsh_params(&self) -> MlshParams {
        match self {
            AnyMlsh::Hamming(f) => f.mlsh_params(),
            AnyMlsh::Grid(f) => f.mlsh_params(),
            AnyMlsh::PStable(f) => f.mlsh_params(),
        }
    }
}

/// Selects the MLSH family for `space` meeting Theorem 3.4's requirements
/// for difference budget `k` and EMD upper bound `d2`.
///
/// Width choices (`M` = diameter of the space):
/// * Hamming (`p = e^{−2/w}`): `w ≥ max(d, 48·D2/k)` so that
///   `2/w ≤ k/(24·D2)`; `r = 0.79·w ≥ min(M, D2)` follows since `w ≥ d ≥
///   M` on the binary cube... for general Hamming grids the same bound
///   `w ≥ min(M, D2)/0.79` is enforced explicitly.
/// * ℓ1 grid (`p = e^{−2/w}`): `w ≥ max(48·D2/k, min(M, D2)/0.79)`.
/// * ℓ2 2-stable (`p = e^{−2√(2/π)/w}`): `w ≥ max(48√(2/π)·D2/k,
///   min(M, D2)/0.99)`.
pub fn select_mlsh(space: &MetricSpace, k: usize, d2: f64) -> AnyMlsh {
    let k = k.max(1) as f64;
    let m_bound = space.diameter();
    let reach = m_bound.min(d2);
    match space.metric() {
        Metric::Hamming => {
            let w = (space.dim() as f64)
                .max(48.0 * d2 / k)
                .max(reach / 0.79)
                .max(1.0);
            AnyMlsh::Hamming(BitSamplingFamily::new(space.dim(), w))
        }
        Metric::L1 | Metric::Lp(_) => {
            // ℓ_p for p ∈ [1, 2) is served by the grid family, whose ℓ1
            // envelope upper-bounds collision for any p ≥ 1 on integer
            // grids; Algorithm 1's guarantees are stated for ℓ1/ℓ2.
            let w = (48.0 * d2 / k).max(reach / 0.79).max(1.0);
            AnyMlsh::Grid(GridFamily::new(space.dim(), w))
        }
        Metric::L2 => {
            let c = 2.0 * (2.0 / std::f64::consts::PI).sqrt();
            let w = (24.0 * c * d2 / k).max(reach / 0.99).max(1.0);
            AnyMlsh::PStable(PStableFamily::new(space.dim(), w))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_space_gets_bit_sampling() {
        let space = MetricSpace::hamming(32);
        let fam = select_mlsh(&space, 4, 1000.0);
        assert!(matches!(fam, AnyMlsh::Hamming(_)));
    }

    #[test]
    fn l1_gets_grid_l2_gets_pstable() {
        assert!(matches!(
            select_mlsh(&MetricSpace::l1(100, 3), 4, 500.0),
            AnyMlsh::Grid(_)
        ));
        assert!(matches!(
            select_mlsh(&MetricSpace::l2(100, 3), 4, 500.0),
            AnyMlsh::PStable(_)
        ));
    }

    #[test]
    fn p_requirement_met() {
        // p ≥ e^{−k/(24 D2)} must hold for every metric.
        for space in [
            MetricSpace::hamming(16),
            MetricSpace::l1(64, 2),
            MetricSpace::l2(64, 2),
        ] {
            for (k, d2) in [(1usize, 100.0), (8, 5000.0), (64, 10.0)] {
                let fam = select_mlsh(&space, k, d2);
                let p = fam.mlsh_params().p;
                let required = (-(k as f64) / (24.0 * d2)).exp();
                assert!(
                    p >= required - 1e-12,
                    "{:?} k={k} d2={d2}: p={p} < {required}",
                    space.metric()
                );
            }
        }
    }

    #[test]
    fn r_requirement_met() {
        // r ≥ min(M, D2).
        for space in [
            MetricSpace::hamming(16),
            MetricSpace::l1(64, 2),
            MetricSpace::l2(64, 2),
        ] {
            for (k, d2) in [(1usize, 100.0), (8, 5000.0)] {
                let fam = select_mlsh(&space, k, d2);
                let params = fam.mlsh_params();
                let reach = space.diameter().min(d2);
                assert!(
                    params.r >= reach - 1e-9,
                    "{:?}: r = {} < min(M, D2) = {reach}",
                    space.metric(),
                    params.r
                );
            }
        }
    }

    #[test]
    fn sampled_functions_evaluate() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(70);
        let space = MetricSpace::l2(100, 3);
        let fam = select_mlsh(&space, 4, 200.0);
        let f = fam.sample(&mut rng);
        let p = Point::new(vec![1, 2, 3]);
        assert_eq!(f.hash(&p), f.hash(&p));
    }
}
