//! A sharded, fixed-size worker-pool executor for poll-style sessions.
//!
//! The serial drivers in [`crate::session`] run one session (or one
//! Alice/Bob pair) at a time. This module drives *many* sessions
//! concurrently over a small fixed pool of worker shards:
//!
//! * **Placement** — each session is assigned to a shard by the
//!   power-of-two-choices rule ([`Placement`]): hash the session id into
//!   two candidate shards and take the currently lighter one. The
//!   balanced-allocation literature shows this keeps per-shard load
//!   near-uniform without any global coordination, which is exactly what
//!   a transport that opens sessions on the fly needs.
//! * **Ready queues** — each shard owns one FIFO mailbox, which *is* its
//!   ready queue: an entry wakes exactly the session it addresses (each
//!   shard message carries the session id), so a session blocked waiting
//!   for its peer simply has no entries and can never stall its shard.
//! * **Wake-on-frame** — delivering a frame ([`Injector::deliver`])
//!   enqueues a wake for that one session; the shard worker runs its
//!   `on_frame`, then pumps `poll_send` until the session has nothing
//!   more to say, emitting every produced frame as an [`ExecEvent`].
//!
//! The executor never touches a socket: frames *out of* sessions surface
//! on the [`Events`] stream and frames *into* sessions enter through the
//! [`Injector`], so the same engine drives the in-process
//! [`drive_batch`] driver and `rsr-net`'s multiplexed connections.
//! Workers keep one [`Transcript`] per session, recording both
//! directions in processing order — entry-for-entry what the serial
//! drivers record for the same session.

use crate::channel::Frame;
use crate::session::Session;
use crate::transcript::{Party, Transcript};
use rsr_obs::{AtomicHistogram, Counter, Gauge, Span};
use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;
use std::sync::mpsc;
use std::sync::{Arc, OnceLock};
use std::thread::Scope;
use std::time::{Duration, Instant};

/// Registry handles for the executor's process-wide metrics, resolved
/// once. Record sites are gated on [`rsr_obs::enabled`]; with metrics
/// off the whole layer costs one relaxed load per site. Gauges are
/// cumulative across every executor the process runs — their high-water
/// marks are process peaks, and a mid-run [`rsr_obs::set_enabled`]
/// toggle can skew an in-flight gauge by the few events that crossed
/// the flip (counters are immune).
struct ExecMetrics {
    /// Sessions adopted by a worker shard (`exec_sessions_submitted`).
    submitted: Arc<Counter>,
    /// Sessions that finished cleanly (`exec_sessions_completed`).
    completed: Arc<Counter>,
    /// Sessions ending in a protocol error or close
    /// (`exec_sessions_failed`).
    failed: Arc<Counter>,
    /// Sessions alive at executor shutdown (`exec_sessions_stranded`).
    stranded: Arc<Counter>,
    /// Currently resident sessions across all shards
    /// (`exec_sessions_live`).
    live: Arc<Gauge>,
    /// Events queued on the consumer stream (`exec_event_queue`).
    event_queue: Arc<Gauge>,
    /// Session open → first emitted frame, µs (`exec_first_frame_us`).
    first_frame_us: Arc<AtomicHistogram>,
    /// Session open → Done/error, µs (`exec_settle_us`).
    settle_us: Arc<AtomicHistogram>,
    /// One `on_frame` call, µs — the decode cost for sketch-carrying
    /// frames (`exec_on_frame_us`).
    on_frame_us: Arc<AtomicHistogram>,
}

fn exec_metrics() -> &'static ExecMetrics {
    static METRICS: OnceLock<ExecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = rsr_obs::global();
        ExecMetrics {
            submitted: reg.counter("exec_sessions_submitted"),
            completed: reg.counter("exec_sessions_completed"),
            failed: reg.counter("exec_sessions_failed"),
            stranded: reg.counter("exec_sessions_stranded"),
            live: reg.gauge("exec_sessions_live"),
            event_queue: reg.gauge("exec_event_queue"),
            first_frame_us: reg.histogram("exec_first_frame_us"),
            settle_us: reg.histogram("exec_settle_us"),
            on_frame_us: reg.histogram("exec_on_frame_us"),
        }
    })
}

/// Per-shard registry handles (`exec_shard{i}_mailbox` /
/// `exec_shard{i}_sessions`), resolved when an executor starts. Shard
/// indices are stable across executors in one process, so successive
/// executors share the same gauges.
#[derive(Clone)]
struct ShardObs {
    /// Queued-but-unprocessed mailbox entries on this shard.
    mailbox: Arc<Gauge>,
    /// Sessions resident on this shard.
    occupancy: Arc<Gauge>,
}

impl ShardObs {
    fn for_shard(shard: usize) -> ShardObs {
        let reg = rsr_obs::global();
        ShardObs {
            mailbox: reg.gauge(&format!("exec_shard{shard}_mailbox")),
            occupancy: reg.gauge(&format!("exec_shard{shard}_sessions")),
        }
    }
}

/// A wakeup hook a consumer can hang on the event stream: called after
/// *every* event append — worker-emitted and [`Injector::inject`]ed alike
/// — so a consumer that blocks somewhere other than [`Events::recv`]
/// (e.g. a socket readiness loop in `poll(2)`) learns there is something
/// to drain. Must be cheap and must never block; implementations
/// typically flip an atomic and poke a self-pipe.
pub type Notify = Arc<dyn Fn() + Send + Sync>;

/// The event stream's sending half: an mpsc sender plus the optional
/// consumer wakeup hook, so no append can be lost on a consumer that
/// waits outside the channel.
#[derive(Clone)]
struct EventTx {
    tx: mpsc::Sender<ExecEvent>,
    notify: Option<Notify>,
}

impl EventTx {
    fn send(&self, ev: ExecEvent) -> Result<(), mpsc::SendError<ExecEvent>> {
        let sent = self.tx.send(ev);
        if sent.is_ok() && rsr_obs::enabled() {
            exec_metrics().event_queue.inc();
        }
        if let Some(notify) = &self.notify {
            notify();
        }
        sent
    }
}

/// A [`Session`] with its error type erased to `String` and a `Send`
/// bound so it can move onto a worker shard. Blanket-implemented for
/// every sendable `Session` whose error displays; `rsr-net` re-exports
/// this trait as `NetSession`.
pub trait DynSession: Send {
    /// See [`Session::poll_send`].
    fn poll_send(&mut self) -> Result<Option<Frame>, String>;
    /// See [`Session::on_frame`].
    fn on_frame(&mut self, frame: Frame) -> Result<(), String>;
    /// See [`Session::is_done`].
    fn is_done(&self) -> bool;
    /// See [`Session::protocol`].
    fn protocol(&self) -> &'static str {
        "session"
    }
}

impl<S> DynSession for S
where
    S: Session + Send,
    S::Error: fmt::Display,
{
    fn poll_send(&mut self) -> Result<Option<Frame>, String> {
        Session::poll_send(self).map_err(|e| e.to_string())
    }

    fn on_frame(&mut self, frame: Frame) -> Result<(), String> {
        Session::on_frame(self, frame).map_err(|e| e.to_string())
    }

    fn is_done(&self) -> bool {
        Session::is_done(self)
    }

    fn protocol(&self) -> &'static str {
        Session::protocol(self)
    }
}

/// `splitmix64` — a cheap, well-mixed hash for shard candidate choice.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Power-of-two-choices session→shard placement.
///
/// `place` hashes the session id (salted two ways) into two candidate
/// shards and picks whichever currently holds fewer sessions, ties going
/// to the first candidate. Placement is deterministic in the sequence of
/// `place` calls: same seed, same ids, same order — same shards,
/// anywhere.
#[derive(Clone, Debug)]
pub struct Placement {
    seed: u64,
    loads: Vec<usize>,
}

impl Placement {
    /// A placement over `shards` shards (at least one), all empty.
    pub fn new(shards: usize, seed: u64) -> Placement {
        assert!(shards >= 1, "placement needs at least one shard");
        Placement {
            seed,
            loads: vec![0; shards],
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.loads.len()
    }

    /// Sessions placed on each shard so far.
    pub fn loads(&self) -> &[usize] {
        &self.loads
    }

    /// The two candidate shards for `id` (may coincide).
    pub fn candidates(&self, id: u64) -> (usize, usize) {
        let n = self.loads.len() as u64;
        let a = splitmix64(id ^ self.seed) % n;
        let b = splitmix64(id.rotate_left(32) ^ self.seed ^ 0x5bf0_3635_dee1_91b5) % n;
        (a as usize, b as usize)
    }

    /// Places `id` on the lighter of its two candidates and records the
    /// load.
    pub fn place(&mut self, id: u64) -> usize {
        let (a, b) = self.candidates(id);
        let shard = if self.loads[b] < self.loads[a] { b } else { a };
        self.loads[shard] += 1;
        shard
    }

    /// Records a session placed on an explicitly chosen shard (used when
    /// a caller pins related sessions together).
    pub fn note_pinned(&mut self, shard: usize) {
        self.loads[shard] += 1;
    }
}

/// What the executor tells its consumer.
#[derive(Debug)]
pub enum ExecEvent {
    /// A session produced a frame for its peer. The frame is already
    /// recorded in the session's transcript.
    Frame {
        /// The producing session.
        id: u64,
        /// The produced frame.
        frame: Frame,
    },
    /// A session left the executor: it finished (`error: None`), hit a
    /// protocol error, or was closed via [`Injector::close`]. Carries
    /// the session's transcript — both directions, processing order.
    Done {
        /// The finished session.
        id: u64,
        /// Everything that crossed the session, with measured sizes.
        transcript: Transcript,
        /// `None` on clean completion. Borrowed for the executor's own
        /// static reasons (and any static [`Injector::close`] reason),
        /// owned only when a session produced a dynamic error string.
        error: Option<Cow<'static, str>>,
    },
    /// The executor shut down (every [`Injector`] clone dropped) while
    /// this session was still live. Its transcript is what had crossed
    /// so far.
    Stranded {
        /// The abandoned session.
        id: u64,
        /// The partial transcript.
        transcript: Transcript,
    },
    /// Passed through verbatim from [`Injector::inject`]; the executor
    /// itself never produces this. Lets a producer thread serialize its
    /// own control decisions (e.g. a transport rejecting an unknown
    /// session id, or reporting end-of-stream) into the one event stream
    /// the consumer already drains.
    Injected {
        /// Producer-chosen session id (or sentinel).
        id: u64,
        /// Producer-chosen discriminant.
        code: u32,
        /// Producer-chosen detail — `Cow` like frame labels, so the
        /// common static notes never allocate on the hot path.
        note: Cow<'static, str>,
    },
}

/// One entry in a shard's ready queue.
enum ShardMsg<'env> {
    /// Adopt a session and pump its opening say.
    Open {
        id: u64,
        party: Party,
        session: Box<dyn DynSession + 'env>,
    },
    /// Wake `id` with an incoming frame.
    Frame { id: u64, frame: Frame },
    /// Drop `id`, reporting `reason`; stale ids are ignored.
    Close { id: u64, reason: Cow<'static, str> },
}

/// The feeding half of a running executor: submits sessions, delivers
/// frames, closes sessions, and injects consumer-defined events.
pub struct Injector<'env> {
    shard_txs: Vec<mpsc::Sender<ShardMsg<'env>>>,
    shard_obs: Vec<ShardObs>,
    event_tx: EventTx,
    placement: Placement,
    shard_of: HashMap<u64, usize>,
}

impl<'env> Injector<'env> {
    /// Submits a session under a fresh id, placing it by two-choice, and
    /// returns the chosen shard. `party` is the side this session plays:
    /// frames it produces are recorded in its transcript as sent by
    /// `party`, frames delivered to it as sent by `party.peer()`. The
    /// worker immediately pumps everything the session can already say.
    ///
    /// Panics if `id` was already submitted — id allocation is the
    /// caller's contract (transports check before submitting).
    pub fn submit(&mut self, id: u64, party: Party, session: Box<dyn DynSession + 'env>) -> usize {
        let shard = self.placement.place(id);
        self.submit_placed(shard, id, party, session);
        shard
    }

    /// Submits a session pinned to an explicit shard — used to co-locate
    /// related sessions (e.g. the two halves of an in-process pair).
    pub fn submit_on(
        &mut self,
        shard: usize,
        id: u64,
        party: Party,
        session: Box<dyn DynSession + 'env>,
    ) {
        self.placement.note_pinned(shard);
        self.submit_placed(shard, id, party, session);
    }

    fn submit_placed(
        &mut self,
        shard: usize,
        id: u64,
        party: Party,
        session: Box<dyn DynSession + 'env>,
    ) {
        let previous = self.shard_of.insert(id, shard);
        assert!(previous.is_none(), "session id {id} submitted twice");
        self.note_enqueued(shard);
        // A send only fails if the worker died; its panic resurfaces when
        // the executor scope joins, so losing the message is moot.
        let _ = self.shard_txs[shard].send(ShardMsg::Open { id, party, session });
    }

    fn note_enqueued(&self, shard: usize) {
        if rsr_obs::enabled() {
            self.shard_obs[shard].mailbox.inc();
        }
    }

    /// Wakes `id` with an incoming frame. Returns `false` if the id was
    /// never submitted (the frame is dropped); frames for sessions that
    /// already finished are silently dropped by the worker as stale.
    pub fn deliver(&self, id: u64, frame: Frame) -> bool {
        match self.shard_of.get(&id) {
            Some(&shard) => {
                self.note_enqueued(shard);
                let _ = self.shard_txs[shard].send(ShardMsg::Frame { id, frame });
                true
            }
            None => false,
        }
    }

    /// Closes `id` with `reason`: if the session is still live its worker
    /// emits [`ExecEvent::Done`] with that reason; a stale or unknown id
    /// is a no-op. Returns `false` only for ids never submitted.
    pub fn close(&self, id: u64, reason: impl Into<Cow<'static, str>>) -> bool {
        match self.shard_of.get(&id) {
            Some(&shard) => {
                self.note_enqueued(shard);
                let _ = self.shard_txs[shard].send(ShardMsg::Close {
                    id,
                    reason: reason.into(),
                });
                true
            }
            None => false,
        }
    }

    /// Appends an [`ExecEvent::Injected`] to the event stream, after
    /// everything workers have already emitted.
    pub fn inject(&self, id: u64, code: u32, note: impl Into<Cow<'static, str>>) {
        let _ = self.event_tx.send(ExecEvent::Injected {
            id,
            code,
            note: note.into(),
        });
    }

    /// The shard `id` was placed on, if it was ever submitted.
    pub fn shard_of(&self, id: u64) -> Option<usize> {
        self.shard_of.get(&id).copied()
    }

    /// Cumulative sessions placed per shard (never decremented — this is
    /// the placement balance, not the live count).
    pub fn loads(&self) -> &[usize] {
        self.placement.loads()
    }

    /// Number of worker shards.
    pub fn shards(&self) -> usize {
        self.shard_txs.len()
    }
}

/// One poll of the event stream.
#[derive(Debug)]
pub enum Wait {
    /// An event arrived.
    Event(ExecEvent),
    /// Nothing arrived within the given timeout.
    Timeout,
    /// The executor is fully shut down: every worker and every
    /// [`Injector`] is gone and the stream is drained.
    Closed,
}

/// The consuming half of a running executor.
pub struct Events {
    rx: mpsc::Receiver<ExecEvent>,
}

impl Events {
    fn note_drained(ev: ExecEvent) -> ExecEvent {
        if rsr_obs::enabled() {
            exec_metrics().event_queue.dec();
        }
        ev
    }

    /// Blocks for the next event; `None` once the stream is closed and
    /// drained.
    pub fn recv(&self) -> Option<ExecEvent> {
        self.rx.recv().ok().map(Self::note_drained)
    }

    /// Non-blocking poll.
    pub fn try_recv(&self) -> Option<ExecEvent> {
        self.rx.try_recv().ok().map(Self::note_drained)
    }

    /// Blocks up to `timeout` (forever if `None`) for the next event.
    pub fn next(&self, timeout: Option<Duration>) -> Wait {
        match timeout {
            None => match self.rx.recv() {
                Ok(ev) => Wait::Event(Self::note_drained(ev)),
                Err(_) => Wait::Closed,
            },
            Some(t) => match self.rx.recv_timeout(t) {
                Ok(ev) => Wait::Event(Self::note_drained(ev)),
                Err(mpsc::RecvTimeoutError::Timeout) => Wait::Timeout,
                Err(mpsc::RecvTimeoutError::Disconnected) => Wait::Closed,
            },
        }
    }
}

/// Runs `f` with a live sharded executor: `shards` worker threads, a
/// two-choice [`Placement`] salted with `placement_seed`, an
/// [`Injector`] to feed it and an [`Events`] stream to drain it. The
/// scope is passed through so transports can spawn their reader/writer
/// threads alongside the workers.
///
/// Shutdown is by dropping: when every [`Injector`] (there is exactly
/// one unless `f` moved it into a scoped thread) is gone, workers finish
/// their queues, emit [`ExecEvent::Stranded`] for sessions still live,
/// and exit; the event stream then reports [`Wait::Closed`]. Everything
/// `f` spawned is joined before `with_executor` returns.
pub fn with_executor<'env, R>(
    shards: usize,
    placement_seed: u64,
    f: impl for<'scope> FnOnce(&'scope Scope<'scope, 'env>, Injector<'env>, Events) -> R,
) -> R {
    with_executor_notified(shards, placement_seed, None, f)
}

/// [`with_executor`] with a consumer wakeup hook: `notify` (when given)
/// runs after every event append, from whichever thread appended it.
/// This is how a consumer that blocks in a socket readiness wait rather
/// than on [`Events::recv`] — `rsr-net`'s reactor — hears the executor:
/// the hook pokes the reactor's waker, the reactor drains
/// [`Events::try_recv`] on its next iteration.
pub fn with_executor_notified<'env, R>(
    shards: usize,
    placement_seed: u64,
    notify: Option<Notify>,
    f: impl for<'scope> FnOnce(&'scope Scope<'scope, 'env>, Injector<'env>, Events) -> R,
) -> R {
    assert!(shards >= 1, "executor needs at least one shard");
    std::thread::scope(|s| {
        let (tx, event_rx) = mpsc::channel();
        let event_tx = EventTx { tx, notify };
        let mut shard_txs = Vec::with_capacity(shards);
        let mut shard_obs = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = mpsc::channel::<ShardMsg<'env>>();
            shard_txs.push(tx);
            let obs = ShardObs::for_shard(shard);
            shard_obs.push(obs.clone());
            let worker_events = event_tx.clone();
            s.spawn(move || shard_worker(rx, worker_events, obs));
        }
        let injector = Injector {
            shard_txs,
            shard_obs,
            event_tx,
            placement: Placement::new(shards, placement_seed),
            shard_of: HashMap::new(),
        };
        f(s, injector, Events { rx: event_rx })
    })
}

/// Metrics state carried per adopted session while recording is on:
/// the phase clock plus this session's protocol-attributed counters
/// (`session_frames_<proto>` / `session_bits_<proto>`), resolved once
/// at adoption so the pump loop touches only atomics.
struct SlotObs {
    opened_at: Instant,
    first_frame_seen: bool,
    frames: Arc<Counter>,
    bits: Arc<Counter>,
}

impl SlotObs {
    fn open(session: &dyn DynSession) -> SlotObs {
        let reg = rsr_obs::global();
        let proto = session.protocol();
        let m = exec_metrics();
        m.submitted.inc();
        m.live.inc();
        SlotObs {
            opened_at: Instant::now(),
            first_frame_seen: false,
            frames: reg.counter(&format!("session_frames_{proto}")),
            bits: reg.counter(&format!("session_bits_{proto}")),
        }
    }

    fn note_frame_out(&mut self, bit_len: u64) {
        self.frames.inc();
        self.bits.add(bit_len);
        if !self.first_frame_seen {
            self.first_frame_seen = true;
            exec_metrics()
                .first_frame_us
                .record(self.opened_at.elapsed().as_micros() as u64);
        }
    }

    /// The session left the executor: settle timing plus the outcome
    /// counter (`Ok` completion, error/close, or stranded shutdown).
    fn settle(&self, outcome: &Option<Cow<'static, str>>, stranded: bool) {
        let m = exec_metrics();
        m.live.dec();
        m.settle_us
            .record(self.opened_at.elapsed().as_micros() as u64);
        if stranded {
            m.stranded.inc();
        } else if outcome.is_none() {
            m.completed.inc();
        } else {
            m.failed.inc();
        }
    }
}

/// A session adopted by a shard worker.
struct WorkerSlot<'env> {
    session: Box<dyn DynSession + 'env>,
    party: Party,
    transcript: Transcript,
    obs: Option<SlotObs>,
}

fn shard_worker(rx: mpsc::Receiver<ShardMsg<'_>>, events: EventTx, shard_obs: ShardObs) {
    let mut slots: HashMap<u64, WorkerSlot<'_>> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        if rsr_obs::enabled() {
            shard_obs.mailbox.dec();
        }
        match msg {
            ShardMsg::Open { id, party, session } => {
                let obs = rsr_obs::enabled().then(|| SlotObs::open(&*session));
                let mut slot = WorkerSlot {
                    session,
                    party,
                    transcript: Transcript::new(),
                    obs,
                };
                if pump(id, &mut slot, &events) {
                    if slot.obs.is_some() {
                        shard_obs.occupancy.inc();
                    }
                    slots.insert(id, slot);
                }
            }
            ShardMsg::Frame { id, frame } => {
                // Stale: the session already finished (or was closed) —
                // exactly the serial transports' "drop late frames" rule.
                let Some(slot) = slots.get_mut(&id) else {
                    continue;
                };
                slot.transcript
                    .record_from(slot.party.peer(), frame.label.clone(), frame.bit_len);
                let span = slot
                    .obs
                    .as_ref()
                    .map(|_| Span::new(&exec_metrics().on_frame_us));
                let handled = slot.session.on_frame(frame);
                drop(span);
                let live = match handled {
                    Ok(()) => pump(id, slot, &events),
                    Err(e) => {
                        emit_done(id, slot, &events, Some(Cow::Owned(e)));
                        false
                    }
                };
                if !live {
                    if let Some(slot) = slots.remove(&id) {
                        if slot.obs.is_some() {
                            shard_obs.occupancy.dec();
                        }
                    }
                }
            }
            ShardMsg::Close { id, reason } => {
                if let Some(mut slot) = slots.remove(&id) {
                    if slot.obs.is_some() {
                        shard_obs.occupancy.dec();
                    }
                    emit_done(id, &mut slot, &events, Some(reason));
                }
            }
        }
    }
    // Every injector is gone: whatever is still live is stranded.
    for (id, slot) in slots {
        if let Some(obs) = &slot.obs {
            shard_obs.occupancy.dec();
            obs.settle(&None, true);
        }
        let _ = events.send(ExecEvent::Stranded {
            id,
            transcript: slot.transcript,
        });
    }
}

/// Emits [`ExecEvent::Done`], recording the session's settle metrics.
fn emit_done(
    id: u64,
    slot: &mut WorkerSlot<'_>,
    events: &EventTx,
    error: Option<Cow<'static, str>>,
) {
    if let Some(obs) = &slot.obs {
        obs.settle(&error, false);
    }
    let transcript = std::mem::take(&mut slot.transcript);
    let _ = events.send(ExecEvent::Done {
        id,
        transcript,
        error,
    });
}

/// Pumps everything `slot` can say, emitting frames (and `Done` when the
/// session finishes or errors). Returns whether the slot is still live.
fn pump(id: u64, slot: &mut WorkerSlot<'_>, events: &EventTx) -> bool {
    loop {
        match slot.session.poll_send() {
            Ok(Some(frame)) => {
                slot.transcript
                    .record_from(slot.party, frame.label.clone(), frame.bit_len);
                if let Some(obs) = &mut slot.obs {
                    obs.note_frame_out(frame.bit_len);
                }
                if events.send(ExecEvent::Frame { id, frame }).is_err() {
                    return false; // consumer is gone; stop producing
                }
            }
            Ok(None) => break,
            Err(e) => {
                emit_done(id, slot, events, Some(Cow::Owned(e)));
                return false;
            }
        }
    }
    if slot.session.is_done() {
        emit_done(id, slot, events, None);
        return false;
    }
    true
}

/// One session pair's result from [`drive_batch`].
#[derive(Debug)]
pub struct PairOutcome {
    /// The shard the pair ran on.
    pub shard: usize,
    /// The Alice half's transcript: both directions, processing order —
    /// entry-for-entry what the serial drivers record for the same pair.
    pub transcript: Transcript,
    /// `None` when both halves completed; the first error otherwise
    /// (protocol errors from either half, or a stall).
    pub error: Option<String>,
}

impl PairOutcome {
    /// True when both halves ran to completion.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// How long [`drive_batch`] waits with *no* executor activity at all
/// before declaring the remaining pairs stalled. This must exceed the
/// longest single-frame computation any session performs; it is a
/// deadlock backstop for buggy protocols (the serial driver's
/// [`crate::session::DriveError::Stalled`]), not a pacing knob.
pub const DEFAULT_STALL_TIMEOUT: Duration = Duration::from_secs(30);

/// Error string reported for pairs that stop making progress, matching
/// the serial driver's stall diagnosis.
pub const STALLED: &str = "sessions stalled without finishing";

/// Drives a batch of in-process Alice/Bob session pairs to completion
/// over a sharded executor — the parallel counterpart of calling
/// [`crate::session::drive_in_memory`] on each pair in turn.
///
/// Both halves of a pair are pinned to one shard (a pair is one logical
/// session, like a multiplexed connection's one local half), chosen by
/// two-choice placement; distinct pairs run concurrently across shards.
/// The caller thread routes every frame a half emits to its peer —
/// wake-on-frame, exactly the dispatch the networked transports use.
///
/// Returns one [`PairOutcome`] per input pair, in input order.
///
/// Driving a batch of real protocol sessions across 2 shards — the
/// transcripts are bit-identical to what the serial driver records:
///
/// ```
/// use rsr_core::emd_protocol::{EmdProtocol, EmdProtocolConfig};
/// use rsr_core::executor::{drive_batch, DynSession, DEFAULT_STALL_TIMEOUT};
/// use rsr_metric::{MetricSpace, Point};
///
/// let space = MetricSpace::hamming(8);
/// let pts: Vec<Point> = (0..8i64)
///     .map(|i| Point::new((0..8).map(|b| (i >> b) & 1).collect()))
///     .collect();
/// let cfg = EmdProtocolConfig::for_space(&space, pts.len(), 1);
/// let protos: Vec<EmdProtocol> = (0..4)
///     .map(|seed| EmdProtocol::new(space, cfg, seed))
///     .collect();
///
/// let pairs: Vec<(Box<dyn DynSession + '_>, Box<dyn DynSession + '_>)> = protos
///     .iter()
///     .map(|proto| {
///         (
///             Box::new(proto.alice_session(&pts)) as Box<dyn DynSession>,
///             Box::new(proto.bob_session(&pts)) as Box<dyn DynSession>,
///         )
///     })
///     .collect();
/// let outcomes = drive_batch(2, 0x5eed, pairs, DEFAULT_STALL_TIMEOUT);
/// assert_eq!(outcomes.len(), 4);
/// for (proto, outcome) in protos.iter().zip(&outcomes) {
///     assert!(outcome.is_ok());
///     let serial = proto.run(&pts, &pts).unwrap();
///     assert_eq!(outcome.transcript.total_bits(), serial.transcript.total_bits());
/// }
/// ```
pub fn drive_batch<'env>(
    shards: usize,
    placement_seed: u64,
    pairs: Vec<(Box<dyn DynSession + 'env>, Box<dyn DynSession + 'env>)>,
    stall_timeout: Duration,
) -> Vec<PairOutcome> {
    with_executor(shards, placement_seed, |_scope, mut injector, events| {
        let n = pairs.len();
        let mut outcomes = Vec::with_capacity(n);
        for (i, (alice, bob)) in pairs.into_iter().enumerate() {
            let alice_id = (i as u64) * 2;
            let shard = injector.submit(alice_id, Party::Alice, alice);
            injector.submit_on(shard, alice_id + 1, Party::Bob, bob);
            outcomes.push(PairOutcome {
                shard,
                transcript: Transcript::new(),
                error: None,
            });
        }
        let mut finished = vec![[false, false]; n];
        let mut pending = n * 2;
        let mut stalled = false;
        while pending > 0 {
            match events.next(Some(stall_timeout)) {
                Wait::Event(ExecEvent::Frame { id, frame }) => {
                    injector.deliver(id ^ 1, frame);
                }
                Wait::Event(ExecEvent::Done {
                    id,
                    transcript,
                    error,
                }) => {
                    let (pair, half) = ((id / 2) as usize, (id % 2) as usize);
                    if finished[pair][half] {
                        continue;
                    }
                    finished[pair][half] = true;
                    pending -= 1;
                    if half == 0 {
                        outcomes[pair].transcript = transcript;
                    }
                    if let Some(e) = error {
                        outcomes[pair].error.get_or_insert(e.into_owned());
                        // The peer can make no further progress; a stale
                        // close (peer already finished) is a no-op.
                        injector.close(id ^ 1, "peer session failed");
                    }
                }
                Wait::Event(ExecEvent::Stranded { .. } | ExecEvent::Injected { .. }) => {}
                Wait::Timeout if !stalled => {
                    // No worker produced anything for a whole window:
                    // close every unfinished half; their Done events (and
                    // any frames a slow worker was still computing) drain
                    // the loop.
                    stalled = true;
                    for (pair, halves) in finished.iter().enumerate() {
                        for (half, done) in halves.iter().enumerate() {
                            if !done {
                                injector.close((pair as u64) * 2 + half as u64, STALLED);
                            }
                        }
                    }
                }
                Wait::Timeout => break, // closes did not drain: workers are gone
                Wait::Closed => break,
            }
        }
        outcomes
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_iblt::bits::BitWriter;

    /// Greets with `burst` frames, waits for the same number back.
    struct Pong {
        to_send: usize,
        expect: usize,
        echo: bool,
    }

    impl DynSession for Pong {
        fn poll_send(&mut self) -> Result<Option<Frame>, String> {
            if self.to_send > 0 {
                self.to_send -= 1;
                let mut w = BitWriter::new();
                w.write(self.to_send as u64, 16);
                return Ok(Some(Frame::seal("pong", w)));
            }
            Ok(None)
        }

        fn on_frame(&mut self, _frame: Frame) -> Result<(), String> {
            self.expect -= 1;
            if self.echo {
                self.to_send += 1;
            }
            Ok(())
        }

        fn is_done(&self) -> bool {
            self.to_send == 0 && self.expect == 0
        }
    }

    fn chat_pair(burst: usize) -> (Box<dyn DynSession>, Box<dyn DynSession>) {
        (
            Box::new(Pong {
                to_send: burst,
                expect: burst,
                echo: false,
            }),
            Box::new(Pong {
                to_send: 0,
                expect: burst,
                echo: true,
            }),
        )
    }

    #[test]
    fn drive_batch_completes_pairs_across_shards() {
        let pairs: Vec<_> = (1..=40).map(chat_pair).collect();
        let outcomes = drive_batch(4, 0, pairs, Duration::from_secs(5));
        assert_eq!(outcomes.len(), 40);
        for (i, out) in outcomes.iter().enumerate() {
            assert!(out.is_ok(), "pair {i}: {:?}", out.error);
            // Alice's transcript holds her burst and the echo back.
            assert_eq!(out.transcript.num_messages(), 2 * (i + 1));
            assert_eq!(out.transcript.total_bits(), 2 * (i as u64 + 1) * 16);
            assert!(out.shard < 4);
        }
    }

    #[test]
    fn drive_batch_matches_serial_round_count() {
        let outcomes = drive_batch(2, 7, vec![chat_pair(3)], Duration::from_secs(5));
        let t = &outcomes[0].transcript;
        // 3 alice frames then 3 bob echoes: two direction changes.
        assert_eq!(t.num_rounds(), 2);
        let senders: Vec<_> = t.entries_with_sender().map(|(s, _, _)| s).collect();
        assert_eq!(
            senders,
            vec![
                Some(Party::Alice),
                Some(Party::Alice),
                Some(Party::Alice),
                Some(Party::Bob),
                Some(Party::Bob),
                Some(Party::Bob),
            ]
        );
    }

    /// Claims to be unfinished but never speaks.
    struct Mute;

    impl DynSession for Mute {
        fn poll_send(&mut self) -> Result<Option<Frame>, String> {
            Ok(None)
        }

        fn on_frame(&mut self, _frame: Frame) -> Result<(), String> {
            Ok(())
        }

        fn is_done(&self) -> bool {
            false
        }
    }

    #[test]
    fn stalled_pairs_are_closed_not_deadlocked() {
        let pairs: Vec<(Box<dyn DynSession>, Box<dyn DynSession>)> = vec![
            (Box::new(Mute), Box::new(Mute)),
            chat_pair(2), // a healthy pair in the same batch still completes
        ];
        let outcomes = drive_batch(2, 0, pairs, Duration::from_millis(100));
        assert_eq!(outcomes[0].error.as_deref(), Some(STALLED));
        assert!(outcomes[1].is_ok(), "{:?}", outcomes[1].error);
    }

    /// Errors as soon as the peer says anything.
    struct Rejecting;

    impl DynSession for Rejecting {
        fn poll_send(&mut self) -> Result<Option<Frame>, String> {
            Ok(None)
        }

        fn on_frame(&mut self, _frame: Frame) -> Result<(), String> {
            Err("bad frame".into())
        }

        fn is_done(&self) -> bool {
            false
        }
    }

    #[test]
    fn pair_error_reports_first_cause() {
        let pairs: Vec<(Box<dyn DynSession>, Box<dyn DynSession>)> =
            vec![(chat_pair(1).0, Box::new(Rejecting))];
        let outcomes = drive_batch(1, 0, pairs, Duration::from_secs(5));
        assert_eq!(outcomes[0].error.as_deref(), Some("bad frame"));
    }

    #[test]
    fn placement_two_choice_is_deterministic_and_balanced() {
        let mut a = Placement::new(8, 42);
        let mut b = Placement::new(8, 42);
        let shards_a: Vec<_> = (0..4096).map(|id| a.place(id)).collect();
        let shards_b: Vec<_> = (0..4096).map(|id| b.place(id)).collect();
        assert_eq!(shards_a, shards_b, "same seed, same order, same shards");
        let mean = 4096 / 8;
        for (shard, &load) in a.loads().iter().enumerate() {
            assert!(
                load <= 2 * mean,
                "shard {shard} holds {load} sessions, over 2x the mean {mean}"
            );
        }
        // A different seed reshuffles at least something.
        let mut c = Placement::new(8, 43);
        let shards_c: Vec<_> = (0..4096).map(|id| c.place(id)).collect();
        assert_ne!(shards_a, shards_c);
    }

    #[test]
    fn injector_reports_unknown_ids() {
        with_executor(2, 0, |_s, mut injector, _events| {
            assert!(!injector.deliver(9, Frame::seal("x", BitWriter::new())));
            assert!(!injector.close(9, "nope"));
            let shard = injector.submit(9, Party::Alice, Box::new(Mute));
            assert_eq!(injector.shard_of(9), Some(shard));
            assert!(injector.deliver(9, Frame::seal("x", BitWriter::new())));
        });
    }

    #[test]
    fn stranded_sessions_surface_on_shutdown() {
        let stranded = with_executor(1, 0, |_s, mut injector, events| {
            injector.submit(5, Party::Bob, Box::new(Mute));
            drop(injector);
            let mut ids = Vec::new();
            while let Some(ev) = events.recv() {
                if let ExecEvent::Stranded { id, .. } = ev {
                    ids.push(id);
                }
            }
            ids
        });
        assert_eq!(stranded, vec![5]);
    }

    #[test]
    fn next_times_out_while_sessions_live() {
        with_executor(1, 0, |_s, mut injector, events| {
            injector.submit(1, Party::Alice, Box::new(Mute));
            // A live but silent session: the stream must report Timeout,
            // not Closed — the executor is still running.
            match events.next(Some(Duration::from_millis(50))) {
                Wait::Timeout => {}
                other => panic!("expected Timeout, got {other:?}"),
            }
            drop(injector);
            // Shutdown strands the mute session; Closed comes only
            // after that event has drained, never instead of it.
            match events.next(Some(Duration::from_secs(5))) {
                Wait::Event(ExecEvent::Stranded { id, .. }) => assert_eq!(id, 1),
                other => panic!("expected Stranded, got {other:?}"),
            }
            match events.next(Some(Duration::from_secs(5))) {
                Wait::Closed => {}
                other => panic!("expected Closed, got {other:?}"),
            }
        });
    }

    #[test]
    fn next_drains_pending_events_before_reporting_closed() {
        with_executor(1, 0, |_s, injector, events| {
            injector.inject(9, 1, "queued before shutdown");
            drop(injector);
            // An event queued before every injector went away must
            // still surface; Closed is only ever the end of a drained
            // stream.
            match events.next(None) {
                Wait::Event(ExecEvent::Injected { id, .. }) => assert_eq!(id, 9),
                other => panic!("expected the queued Injected event, got {other:?}"),
            }
            match events.next(Some(Duration::from_secs(5))) {
                Wait::Closed => {}
                other => panic!("expected Closed, got {other:?}"),
            }
        });
    }

    #[test]
    fn injected_events_pass_through() {
        with_executor(1, 0, |_s, injector, events| {
            injector.inject(77, 3, "note");
            match events.recv() {
                Some(ExecEvent::Injected { id, code, note }) => {
                    assert_eq!((id, code, &*note), (77, 3, "note"));
                }
                other => panic!("unexpected event: {other:?}"),
            }
        });
    }
}
