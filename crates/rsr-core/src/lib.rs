//! The paper's protocols: robust set reconciliation in the EMD and Gap
//! Guarantee models.
//!
//! * [`emd_protocol`] — Algorithm 1: multi-resolution MLSH keys in Robust
//!   IBLTs; one message Alice → Bob; `O(log n)`-approximate EMD repair
//!   (Theorem 3.4, Corollary 3.5).
//! * [`emd_scaled`] — the Corollary 3.6 wrapper: split `[D1, D2]` into
//!   `O(log(D2/D1))` constant-ratio intervals and run Algorithm 1 in
//!   parallel on each.
//! * [`gap_protocol`] — the four-round Gap Guarantee protocol of §4.1
//!   (Theorem 4.2): LSH-batch keys, sets-of-sets reconciliation, far-key
//!   detection, far-point transmission.
//! * [`gap_low_dim`] — the Theorem 4.5 variant for low-dimensional `ℓ_p`
//!   spaces built on the one-sided (`p2 = 0`) grid LSH.
//! * [`set_recon`] — exact set reconciliation (the `EMD_k = 0` fallback the
//!   paper mentions in §3).
//! * [`mlsh_select`] — metric-driven choice of MLSH family and width,
//!   implementing the parameter requirements of Theorem 3.4
//!   (`r ≥ min(M, D2)`, `p ≥ e^{−k/(24·D2)}`).
//! * [`lower_bound`] — the Theorem 4.6 reduction from the index problem
//!   (with a greedy Gilbert–Varshamov code standing in for Reed–Muller),
//!   plus a one-round straw-man protocol to measure against.
//! * [`transcript`] — bit-exact communication accounting (measured sizes,
//!   message and round counts).
//! * [`channel`] / [`session`] — the two-party message-passing substrate:
//!   every protocol is an Alice/Bob pair of session state machines
//!   exchanging encoded frames through a [`channel::Channel`]; the
//!   `run(&alice, &bob)` entry points are thin drivers over it.
//! * [`continuous`] — long-lived incremental sessions: resident
//!   churn-sized tables, snapshot subtraction, per-round delta
//!   reconciliation with an Idle→Syncing→Settled lifecycle.
//! * [`executor`] — the sharded worker-pool executor: two-choice
//!   session→shard placement, per-shard ready queues, wake-on-frame
//!   dispatch, and the in-process parallel [`executor::drive_batch`]
//!   driver. The networked transports in `rsr-net` feed it frames.
//! * [`wire`] — codecs for non-table payloads (point lists, `u64` lists),
//!   built on `rsr-iblt`'s shared bit codec.

pub mod channel;
pub mod continuous;
pub mod emd_protocol;
pub mod emd_scaled;
pub mod executor;
pub mod gap_low_dim;
pub mod gap_protocol;
pub mod lower_bound;
pub mod mlsh_select;
pub mod session;
pub mod set_recon;
pub mod transcript;
pub mod two_way;
pub mod wire;

pub use channel::{Channel, ChannelCounters, CountingChannel, Frame, InMemoryChannel};
pub use continuous::{
    shared, AliceRound, BobRound, ContinuousConfig, ContinuousError, ContinuousParty,
    ContinuousSession, SessionPhase, SharedParty,
};
pub use emd_protocol::{
    AssignmentSolver, EmdAliceSession, EmdBobSession, EmdFailure, EmdMessage, EmdOutcome,
    EmdProtocol, EmdProtocolConfig,
};
pub use emd_scaled::{ScaledEmdAliceSession, ScaledEmdBobSession, ScaledEmdProtocol};
pub use executor::{
    drive_batch, with_executor, DynSession, Events, ExecEvent, Injector, PairOutcome, Placement,
    Wait,
};
pub use gap_low_dim::low_dim_gap_config;
pub use gap_protocol::{
    verify_gap_guarantee, GapAliceSession, GapBobSession, GapConfig, GapError, GapOutcome,
    GapProtocol,
};
pub use session::{drive, drive_channel, drive_in_memory, DriveError, Session};
pub use set_recon::{exact_reconcile, ExactOutcome, ExactReconError};
pub use transcript::{Party, Transcript};
pub use two_way::{two_way_emd, two_way_gap, TwoWayEmdOutcome, TwoWayGapOutcome};
