//! The Gap Guarantee protocol of §4.1 (Theorem 4.2).
//!
//! Four rounds. Each party builds, for every point, a **key**: a vector of
//! `h = Θ(log n)` entries, each entry a pairwise hash of a batch of
//! `m = ⌈log_{p2}(1/2)⌉` LSH values. Far points (distance > r2) get keys
//! that agree in few entries; close points (distance ≤ r1) agree in most.
//! Rounds 1–3 run the sets-of-sets reconciliation substrate so Alice
//! recovers the multiset of Bob's keys; in round 4 she transmits every
//! element whose key differs in sufficiently many entries
//! (`> h·(1/2 − ε/6)` mismatches, i.e. fewer than `h·(1/2 + ε/6)`
//! matches) from every one of Bob's keys. Bob finishes with
//! `S'_B = S_B ∪ T_A`, which contains a point within `r2` of every point
//! of `S_A` with probability ≥ 1 − 1/n.

use crate::channel::Frame;
use crate::session::{drive_in_memory, DriveError, Session};
use crate::transcript::{Party, Transcript};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsr_hash::keys::{BatchKeyer, GapKey};
use rsr_hash::LshFamily;
use rsr_iblt::bits::BitWriter;
use rsr_metric::{MetricSpace, Point};
use rsr_setsofsets::protocol::{alice_finish, alice_round2, bob_round1, bob_round3, AliceState};
use rsr_setsofsets::wire as sos_wire;
use rsr_setsofsets::{estimate_fp_cells, Round2, SosConfig, SosError};
use std::fmt;

/// Transcript labels of the four messages, in order.
pub(crate) const GAP_LABELS: [&str; 4] = [
    "bob→alice: fingerprint IBLT",
    "alice→bob: requested fingerprints",
    "bob→alice: differing keys",
    "alice→bob: far elements",
];

/// Parameters of the Gap protocol (derive with [`GapConfig::for_params`]).
#[derive(Clone, Copy, Debug)]
pub struct GapConfig {
    /// Near radius `r1`.
    pub r1: f64,
    /// Far radius `r2`.
    pub r2: f64,
    /// Bound `k` on far points per side.
    pub k: usize,
    /// Entries per key, `h = Θ(log n)`.
    pub h: usize,
    /// LSH values per entry, `m = ⌈log_{p2}(1/2)⌉`.
    pub m: usize,
    /// Bits per key entry (`Θ(log n)`).
    pub entry_bits: u32,
    /// Minimum entry matches for a key to count as *close* to one of
    /// Bob's. Theorem 4.2 uses `⌈h(1/2 + ε/6)⌉`; Theorem 4.5 uses 1.
    pub close_threshold: usize,
    /// Cells for the sets-of-sets fingerprint IBLT.
    pub fp_cells: usize,
}

impl GapConfig {
    /// Derives the Theorem 4.2 parameters from the LSH family's
    /// `(r1, r2, p1, p2)` guarantee and the instance size.
    ///
    /// Requires `ρ = log p1 / log p2 ≤ 1 − ε` for some `ε > 0`, which
    /// holds whenever `p1 > p2`.
    pub fn for_params(params: rsr_hash::lsh::LshParams, n: usize, k: usize) -> Self {
        let n = n.max(2);
        let rho = params.rho();
        let epsilon = (1.0 - rho).max(0.05);
        // m = ⌈log_{p2}(1/2)⌉ so a far pair matches a batch w.p. ≤ 1/2.
        let m = if params.p2 <= 0.5 {
            1
        } else {
            ((0.5f64).ln() / params.p2.ln()).ceil() as usize
        };
        // 8·⌈log₂ n⌉ entries: the far side's per-entry match probability
        // can sit just under the threshold fraction when a far pair lies
        // barely beyond r2, so the batch count needs enough concentration
        // to push the false-close tail below 1/n per far point.
        let h = ((n as f64).log2().ceil() as usize * 8).max(24);
        let close_threshold = ((h as f64) * (0.5 + epsilon / 6.0)).ceil() as usize;
        let log_n = (n as f64).log2().ceil() as u32;
        // Expected number of differing keys: k far per side plus close
        // pairs whose mh LSH draws did not all agree.
        let p_key_equal = params.p1.powf((m * h) as f64);
        let expected_diffs = 2 * (k + ((n as f64) * (1.0 - p_key_equal)).ceil() as usize) + 4;
        GapConfig {
            r1: params.r1,
            r2: params.r2,
            k,
            h,
            m,
            entry_bits: (2 * log_n + 6).clamp(16, 61),
            close_threshold: close_threshold.min(h),
            fp_cells: estimate_fp_cells(expected_diffs),
        }
    }
}

/// Errors of the Gap protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GapError {
    /// The sets-of-sets substrate failed (difference exceeded sizing).
    SetsOfSets(SosError),
    /// The session layer failed: a frame did not decode or arrived out of
    /// protocol order. Cannot happen on a faithful transport.
    Session(&'static str),
}

impl fmt::Display for GapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GapError::SetsOfSets(e) => write!(f, "sets-of-sets reconciliation failed: {e}"),
            GapError::Session(what) => write!(f, "session layer failure: {what}"),
        }
    }
}

impl std::error::Error for GapError {}

impl From<SosError> for GapError {
    fn from(e: SosError) -> Self {
        GapError::SetsOfSets(e)
    }
}

/// Result of a Gap protocol run.
#[derive(Clone, Debug)]
pub struct GapOutcome {
    /// Bob's final set `S'_B = S_B ∪ T_A`.
    pub reconciled: Vec<Point>,
    /// The transmitted far points `T_A ⊆ S_A`.
    pub transmitted: Vec<Point>,
    /// Number of Alice keys classified far.
    pub far_keys: usize,
    /// Communication transcript (4 messages).
    pub transcript: Transcript,
}

/// The Gap Guarantee protocol, generic over the LSH family.
pub struct GapProtocol<F: LshFamily> {
    space: MetricSpace,
    config: GapConfig,
    keyer: BatchKeyer<F>,
}

impl<F: LshFamily> GapProtocol<F> {
    /// Creates the protocol; both parties use the same family, config and
    /// seed (public coins).
    pub fn new(space: MetricSpace, family: &F, config: GapConfig, seed: u64) -> Self {
        assert!(config.r1 < config.r2);
        assert!(config.h >= 1 && config.m >= 1);
        assert!(config.close_threshold >= 1 && config.close_threshold <= config.h);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6a90_0001);
        let keyer = BatchKeyer::sample(family, config.h, config.m, config.entry_bits, &mut rng);
        GapProtocol {
            space,
            config,
            keyer,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GapConfig {
        &self.config
    }

    /// The key of a point (exposed for experiments).
    pub fn key_of(&self, p: &Point) -> GapKey {
        self.keyer.key(p)
    }

    /// The sets-of-sets configuration the protocol's rounds 1–3 use
    /// (shared public coins).
    fn sos_config(&self) -> SosConfig {
        SosConfig {
            fp_cells: self.config.fp_cells,
            q: 3,
            seed: 0x6a90_5050,
            entry_bits: self.config.entry_bits,
        }
    }

    /// Alice's session endpoint over `alice`'s points.
    pub fn alice_session<'a>(&'a self, alice: &'a [Point]) -> GapAliceSession<'a, F> {
        let keys: Vec<GapKey> = alice.iter().map(|p| self.keyer.key(p)).collect();
        GapAliceSession {
            proto: self,
            alice,
            keys,
            state: AliceSessionState::AwaitRound1,
            transmitted: None,
            far_keys: 0,
        }
    }

    /// Bob's session endpoint over `bob`'s points.
    pub fn bob_session<'a>(&'a self, bob: &'a [Point]) -> GapBobSession<'a, F> {
        let keys: Vec<GapKey> = bob.iter().map(|p| self.keyer.key(p)).collect();
        GapBobSession {
            proto: self,
            bob,
            keys,
            state: BobSessionState::SendRound1,
            reconciled: None,
        }
    }

    /// Runs the full four-round protocol through the session layer.
    ///
    /// The message flow is Bob → Alice → Bob → Alice (rounds 1–3, the
    /// sets-of-sets substrate) then Alice → Bob (round 4, far elements).
    /// Every transcript entry is the measured size of the encoded frame.
    pub fn run(&self, alice: &[Point], bob: &[Point]) -> Result<GapOutcome, GapError> {
        let mut a = self.alice_session(alice);
        let mut b = self.bob_session(bob);
        let transcript = drive_in_memory(Party::Bob, &mut a, &mut b).map_err(|e| match e {
            DriveError::Session(e) => e,
            DriveError::Stalled => GapError::Session("sessions stalled"),
        })?;
        let reconciled = b.into_reconciled().expect("bob finished");
        let (transmitted, far_keys) = a.into_transmitted().expect("alice finished");
        Ok(GapOutcome {
            reconciled,
            transmitted,
            far_keys,
            transcript,
        })
    }
}

/// Alice's session states, in protocol order.
enum AliceSessionState {
    AwaitRound1,
    SendRound2 { round2: Round2, state: AliceState },
    AwaitRound3 { state: AliceState },
    SendRound4 { far: Vec<Point> },
    Done,
}

/// Alice's half of the Gap protocol: recover Bob's key multiset through
/// rounds 1–3, classify her keys, ship the far elements.
pub struct GapAliceSession<'a, F: LshFamily> {
    proto: &'a GapProtocol<F>,
    alice: &'a [Point],
    keys: Vec<GapKey>,
    state: AliceSessionState,
    transmitted: Option<Vec<Point>>,
    far_keys: usize,
}

impl<F: LshFamily> GapAliceSession<'_, F> {
    /// The far elements Alice shipped plus her far-key count, once done.
    pub fn into_transmitted(self) -> Option<(Vec<Point>, usize)> {
        self.transmitted.map(|t| (t, self.far_keys))
    }
}

impl<F: LshFamily> Session for GapAliceSession<'_, F> {
    type Error = GapError;

    fn protocol(&self) -> &'static str {
        "gap"
    }

    fn poll_send(&mut self) -> Result<Option<Frame>, GapError> {
        match std::mem::replace(&mut self.state, AliceSessionState::Done) {
            AliceSessionState::SendRound2 { round2, state } => {
                let mut w = BitWriter::new();
                sos_wire::put_round2(&mut w, &round2);
                self.state = AliceSessionState::AwaitRound3 { state };
                Ok(Some(Frame::seal(GAP_LABELS[1], w)))
            }
            AliceSessionState::SendRound4 { far } => {
                let mut w = BitWriter::new();
                crate::wire::put_points(&mut w, &far, self.proto.space.universe());
                self.far_keys = far.len();
                self.transmitted = Some(far);
                // `mem::replace` above already left the state at Done.
                Ok(Some(Frame::seal(GAP_LABELS[3], w)))
            }
            other => {
                self.state = other;
                Ok(None)
            }
        }
    }

    fn on_frame(&mut self, frame: Frame) -> Result<(), GapError> {
        match std::mem::replace(&mut self.state, AliceSessionState::Done) {
            AliceSessionState::AwaitRound1 => {
                let sos_cfg = self.proto.sos_config();
                let r1 = frame
                    .decode_exact(|r| sos_wire::get_round1(r, &sos_cfg))
                    .ok_or(GapError::Session("round-1 frame did not decode"))?;
                let (round2, state) =
                    alice_round2(&self.keys, &r1, &sos_cfg).map_err(GapError::SetsOfSets)?;
                self.state = AliceSessionState::SendRound2 { round2, state };
                Ok(())
            }
            AliceSessionState::AwaitRound3 { state } => {
                let sos_cfg = self.proto.sos_config();
                let r3 = frame
                    .decode_exact(sos_wire::get_round3)
                    .ok_or(GapError::Session("round-3 frame did not decode"))?;
                let bob_multiset = alice_finish(&self.keys, &state, &r3, &sos_cfg)
                    .map_err(GapError::SetsOfSets)?;
                // Classify: a key is far iff it matches every one of Bob's
                // keys in fewer than `close_threshold` entries.
                let threshold = self.proto.config.close_threshold;
                let far: Vec<Point> = self
                    .alice
                    .iter()
                    .zip(&self.keys)
                    .filter(|(_, key)| {
                        !bob_multiset
                            .iter()
                            .any(|bk| BatchKeyer::<F>::matches(key, bk) >= threshold)
                    })
                    .map(|(p, _)| p.clone())
                    .collect();
                self.state = AliceSessionState::SendRound4 { far };
                Ok(())
            }
            _ => Err(GapError::Session("frame arrived out of protocol order")),
        }
    }

    fn is_done(&self) -> bool {
        matches!(self.state, AliceSessionState::Done) && self.transmitted.is_some()
    }
}

/// Bob's session states, in protocol order.
enum BobSessionState {
    SendRound1,
    AwaitRound2,
    SendRound3 { round2: Round2 },
    AwaitRound4,
    Done,
}

/// Bob's half of the Gap protocol: summarize keys, answer the content
/// request, absorb the far elements.
pub struct GapBobSession<'a, F: LshFamily> {
    proto: &'a GapProtocol<F>,
    bob: &'a [Point],
    keys: Vec<GapKey>,
    state: BobSessionState,
    reconciled: Option<Vec<Point>>,
}

impl<F: LshFamily> GapBobSession<'_, F> {
    /// Bob's final set `S'_B = S_B ∪ T_A`, once the session is done.
    pub fn into_reconciled(self) -> Option<Vec<Point>> {
        self.reconciled
    }
}

impl<F: LshFamily> Session for GapBobSession<'_, F> {
    type Error = GapError;

    fn protocol(&self) -> &'static str {
        "gap"
    }

    fn poll_send(&mut self) -> Result<Option<Frame>, GapError> {
        match std::mem::replace(&mut self.state, BobSessionState::Done) {
            BobSessionState::SendRound1 => {
                let r1 = bob_round1(&self.keys, &self.proto.sos_config());
                let mut w = BitWriter::new();
                sos_wire::put_round1(&mut w, &r1);
                self.state = BobSessionState::AwaitRound2;
                Ok(Some(Frame::seal(GAP_LABELS[0], w)))
            }
            BobSessionState::SendRound3 { round2 } => {
                let r3 = bob_round3(&self.keys, &round2, &self.proto.sos_config())
                    .map_err(GapError::SetsOfSets)?;
                let mut w = BitWriter::new();
                sos_wire::put_round3(&mut w, &r3, &self.proto.sos_config());
                self.state = BobSessionState::AwaitRound4;
                Ok(Some(Frame::seal(GAP_LABELS[2], w)))
            }
            other => {
                self.state = other;
                Ok(None)
            }
        }
    }

    fn on_frame(&mut self, frame: Frame) -> Result<(), GapError> {
        match std::mem::replace(&mut self.state, BobSessionState::Done) {
            BobSessionState::AwaitRound2 => {
                let round2 = frame
                    .decode_exact(sos_wire::get_round2)
                    .ok_or(GapError::Session("round-2 frame did not decode"))?;
                self.state = BobSessionState::SendRound3 { round2 };
                Ok(())
            }
            BobSessionState::AwaitRound4 => {
                let far = frame
                    .decode_exact(|r| crate::wire::get_points(r, self.proto.space.universe()))
                    .ok_or(GapError::Session("round-4 frame did not decode"))?;
                let mut reconciled = self.bob.to_vec();
                reconciled.extend(far);
                self.reconciled = Some(reconciled);
                // `mem::replace` above already left the state at Done.
                Ok(())
            }
            _ => Err(GapError::Session("frame arrived out of protocol order")),
        }
    }

    fn is_done(&self) -> bool {
        matches!(self.state, BobSessionState::Done) && self.reconciled.is_some()
    }
}

/// Checks the Gap Guarantee postcondition: every point of `alice` has a
/// point of `reconciled` within `r2`.
pub fn verify_gap_guarantee(
    space: &MetricSpace,
    alice: &[Point],
    reconciled: &[Point],
    r2: f64,
) -> bool {
    alice
        .iter()
        .all(|a| space.nearest_distance(a, reconciled) <= r2 + 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rsr_hash::lsh::LshParams;
    use rsr_hash::BitSamplingFamily;

    /// Sensor-style Hamming workload: shared points with ≤ r1 bits of
    /// noise plus `k` far outliers on Alice's side.
    fn workload(
        n: usize,
        k: usize,
        dim: usize,
        r1: usize,
        r2: usize,
        seed: u64,
    ) -> (MetricSpace, Vec<Point>, Vec<Point>) {
        let space = MetricSpace::hamming(dim);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut alice = Vec::new();
        let mut bob = Vec::new();
        for _ in 0..n - k {
            let base: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
            let mut noisy = base.clone();
            for _ in 0..rng.gen_range(0..=r1) {
                let j = rng.gen_range(0..dim);
                noisy[j] = !noisy[j];
            }
            // Noise may overshoot r1 by flipping the same bit twice; that
            // only makes the instance easier to satisfy, never invalid.
            alice.push(Point::from_bits(&base));
            bob.push(Point::from_bits(&noisy));
        }
        // k far outliers for Alice: flip > r2 bits of a shared base.
        for _ in 0..k {
            let base: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
            bob.push(Point::from_bits(&base));
            let mut far = base;
            for bit in far.iter_mut().take((2 * r2).min(dim)) {
                *bit = !*bit;
            }
            alice.push(Point::from_bits(&far));
        }
        (space, alice, bob)
    }

    fn hamming_family_and_params(dim: usize, r1: f64, r2: f64) -> (BitSamplingFamily, LshParams) {
        let fam = BitSamplingFamily::new(dim, dim as f64);
        let p1 = 1.0 - r1 / dim as f64;
        let p2 = 1.0 - r2 / dim as f64;
        (fam, LshParams::new(r1, r2, p1, p2))
    }

    #[test]
    fn config_derivation_is_sane() {
        let (_, params) = hamming_family_and_params(128, 2.0, 40.0);
        let cfg = GapConfig::for_params(params, 100, 3);
        assert!(cfg.m >= 1);
        assert!(cfg.h >= 16);
        assert!(cfg.close_threshold > cfg.h / 2);
        assert!(cfg.close_threshold <= cfg.h);
        assert!(cfg.fp_cells >= 24);
    }

    #[test]
    fn gap_guarantee_holds_on_sensor_workload() {
        let (space, alice, bob) = workload(60, 2, 128, 2, 40, 100);
        let (fam, params) = hamming_family_and_params(128, 2.0, 40.0);
        let cfg = GapConfig::for_params(params, 60, 2);
        let proto = GapProtocol::new(space, &fam, cfg, 101);
        let out = proto.run(&alice, &bob).expect("protocol should succeed");
        assert!(
            verify_gap_guarantee(&space, &alice, &out.reconciled, 40.0),
            "gap guarantee violated"
        );
        assert_eq!(out.transcript.num_messages(), 4);
    }

    #[test]
    fn far_points_are_transmitted() {
        let (space, alice, bob) = workload(40, 3, 128, 1, 50, 102);
        let (fam, params) = hamming_family_and_params(128, 1.0, 50.0);
        let cfg = GapConfig::for_params(params, 40, 3);
        let proto = GapProtocol::new(space, &fam, cfg, 103);
        let out = proto.run(&alice, &bob).unwrap();
        // Every Alice point at distance > r2 from all of Bob's must be in
        // the transmitted set (T_A contains at least those).
        for a in &alice {
            if space.nearest_distance(a, &bob) > 50.0 {
                assert!(
                    out.transmitted.contains(a),
                    "far point not transmitted: {a:?}"
                );
            }
        }
        assert!(out.far_keys >= 3);
    }

    #[test]
    fn identical_sets_transmit_nothing() {
        let space = MetricSpace::hamming(64);
        let mut rng = StdRng::seed_from_u64(104);
        let pts: Vec<Point> = (0..50)
            .map(|_| Point::from_bits(&(0..64).map(|_| rng.gen()).collect::<Vec<bool>>()))
            .collect();
        let (fam, params) = hamming_family_and_params(64, 1.0, 20.0);
        let cfg = GapConfig::for_params(params, 50, 1);
        let proto = GapProtocol::new(space, &fam, cfg, 105);
        let out = proto.run(&pts, &pts).unwrap();
        assert!(out.transmitted.is_empty());
        assert_eq!(out.reconciled.len(), 50);
    }

    #[test]
    fn close_transmissions_are_rare() {
        // False positives (close points transmitted) waste bandwidth but
        // never break correctness; they should be rare.
        let (space, alice, bob) = workload(80, 0, 128, 1, 40, 106);
        let (fam, params) = hamming_family_and_params(128, 1.0, 40.0);
        let cfg = GapConfig::for_params(params, 80, 0);
        let proto = GapProtocol::new(space, &fam, cfg, 107);
        let out = proto.run(&alice, &bob).unwrap();
        assert!(
            out.transmitted.len() <= 8,
            "too many spurious transmissions: {}",
            out.transmitted.len()
        );
    }

    #[test]
    fn communication_beats_naive_for_large_d() {
        let dim = 512;
        let (space, alice, bob) = workload(50, 2, dim, 2, 150, 108);
        let (fam, params) = hamming_family_and_params(dim, 2.0, 150.0);
        let cfg = GapConfig::for_params(params, 50, 2);
        let proto = GapProtocol::new(space, &fam, cfg, 109);
        let out = proto.run(&alice, &bob).unwrap();
        let naive_bits = 50 * dim as u64;
        assert!(
            out.transcript.total_bits() < naive_bits,
            "protocol {} bits ≥ naive {}",
            out.transcript.total_bits(),
            naive_bits
        );
    }
}
