//! Algorithm 1: the EMD-model protocol.
//!
//! One round, Alice → Bob. Alice builds `t = ⌈log2(D2/D1)⌉ + 1` Robust
//! IBLTs `T_1, …, T_t`. She draws `s = ⌈k/(8·D1·ln(1/p))⌉` MLSH functions
//! `g_1, …, g_s` and a pairwise-independent `h` with `Θ(log n)`-bit range
//! (all via public coins). Into `T_i` she inserts, for each point `a`, the
//! pair with key `h(g_1(a), …, g_{s_i}(a))` (prefix length
//! `s_i = 2^{i−1}·s·D1/D2`) and value `a`. Bob deletes his points the same
//! way, finds `i*` — the largest level that decodes to at most `2k` pairs
//! per party — and repairs: he matches the decoded survivors from his side
//! (`X_B`) against `S_B` via the Hungarian method, removes the matched
//! subset `Y_B`, and adds Alice's decoded survivors `X_A`.
//!
//! Guarantee (Theorem 3.4): with the stated probabilities,
//! `EMD(S_A, S'_B) ≤ O(α^{-1}·log n)·EMD_k(S_A, S_B)` using
//! `O(k·d·log(Δn)·log(D2/D1))` bits.

use crate::channel::Frame;
use crate::mlsh_select::{select_mlsh, AnyMlsh};
use crate::session::{drive_in_memory, Session};
use crate::transcript::{Party, Transcript};
use rand::rngs::StdRng;
use rand::SeedableRng;
pub use rsr_emd::AssignmentSolver;
use rsr_hash::keys::MultiScaleKeyer;
use rsr_hash::MlshFamily;
use rsr_iblt::bits::{BitReader, BitWriter};
use rsr_iblt::riblt::RibltConfig;
use rsr_iblt::wire::{get_len, put_len};
use rsr_iblt::Riblt;
use rsr_metric::{MetricSpace, Point};
use std::fmt;

/// Transcript label of the protocol's single message.
pub(crate) const EMD_MSG_LABEL: &str = "alice→bob: RIBLTs";

/// Tunable parameters of Algorithm 1.
#[derive(Clone, Copy, Debug)]
pub struct EmdProtocolConfig {
    /// Difference budget `k` (the protocol targets `EMD_k`).
    pub k: usize,
    /// Lower bound `D1 ≤ EMD_k(S_A, S_B)` (default 1; "it is sensible to
    /// assume D1 ≥ 1" since the zero case is exact reconciliation).
    pub d1: f64,
    /// Upper bound `D2 ≥ EMD_k(S_A, S_B)` (default `n·diameter`).
    pub d2: f64,
    /// Hash functions per RIBLT (`q ≥ 3`).
    pub q: usize,
    /// Output width of the key hash `h` (`Θ(log n)` bits).
    pub key_bits: u32,
    /// Cap on the number of drawn MLSH functions `s` (guards runaway
    /// parameter choices on huge `D2/D1` ratios; the scaled wrapper keeps
    /// `s` tiny by construction).
    pub max_s: usize,
    /// Which assignment solver Bob's repair step uses (Algorithm 1's
    /// min-cost matching between `X_B` and `S_B`). Defaults to the exact
    /// ε-scaling auction; `Hungarian` restores the legacy exact path and
    /// `Greedy` trades matching optimality for speed.
    pub solver: AssignmentSolver,
}

impl EmdProtocolConfig {
    /// The no-prior-knowledge defaults of §3: `D1 = 1`,
    /// `D2 = n·d·Δ`-style (we use `n·diameter(space)`), `q = 3`,
    /// `key_bits = Θ(log n)`.
    pub fn for_space(space: &MetricSpace, n: usize, k: usize) -> Self {
        let n = n.max(2);
        let d2 = (n as f64) * space.diameter().max(1.0);
        let log_n = (n as f64).log2().ceil() as u32;
        EmdProtocolConfig {
            k: k.max(1),
            d1: 1.0,
            d2,
            q: 3,
            key_bits: (2 * log_n + 8).clamp(16, 61),
            max_s: 1 << 22,
            solver: AssignmentSolver::default(),
        }
    }

    /// Returns the config with the repair-step solver replaced.
    pub fn with_solver(mut self, solver: AssignmentSolver) -> Self {
        self.solver = solver;
        self
    }

    /// Number of levels `t = ⌈log2(D2/D1)⌉ + 1`.
    pub fn num_levels(&self) -> usize {
        ((self.d2 / self.d1).log2().ceil().max(0.0) as usize) + 1
    }
}

/// Alice's one-round message: `t` Robust IBLTs.
#[derive(Clone, Debug)]
pub struct EmdMessage {
    tables: Vec<Riblt>,
    n: usize,
}

impl EmdMessage {
    /// Total wire size in bits (the protocol's entire communication):
    /// a 32-bit set-size header plus the `t` level tables. Exactly the
    /// measured length of [`EmdMessage::write_wire`]'s output.
    pub fn wire_bits(&self) -> u64 {
        32 + self.tables.iter().map(|t| t.wire_bits(self.n)).sum::<u64>()
    }

    /// Number of levels (RIBLTs).
    pub fn num_levels(&self) -> usize {
        self.tables.len()
    }

    /// Encodes the message: the sender's set size `n` (which sizes every
    /// cell field), then each level table.
    pub fn write_wire(&self, w: &mut BitWriter) {
        let before = w.bit_len();
        put_len(w, self.n);
        for table in &self.tables {
            table.write_to(w, self.n);
        }
        debug_assert_eq!(w.bit_len() - before, self.wire_bits());
    }

    /// Decodes a message written by [`EmdMessage::write_wire`], given the
    /// protocol (public coins: level count and per-level table configs).
    pub fn read_wire(r: &mut BitReader<'_>, proto: &EmdProtocol) -> Option<EmdMessage> {
        let n = get_len(r)?;
        let tables = (0..proto.prefix_lens.len())
            .map(|level| Riblt::read_from(r, proto.level_config(level), n))
            .collect::<Option<Vec<Riblt>>>()?;
        Some(EmdMessage { tables, n })
    }

    /// Seals the message into a labelled frame, measuring its size.
    pub fn to_frame(&self) -> Frame {
        let mut w = BitWriter::new();
        self.write_wire(&mut w);
        Frame::seal(EMD_MSG_LABEL, w)
    }
}

/// Bob's result.
#[derive(Clone, Debug)]
pub struct EmdOutcome {
    /// Bob's reconciled set `S'_B` (same size as his input).
    pub reconciled: Vec<Point>,
    /// The level `i* ∈ 1..=t` that decoded (largest decodable).
    pub i_star: usize,
    /// Decoded survivor counts `(|X_A|, |X_B|)`.
    pub decoded: (usize, usize),
    /// Communication transcript of the run.
    pub transcript: Transcript,
}

/// Failure: no level decoded within the `2k`-per-side budget
/// (Algorithm 1: "If no T_i successfully decodes Bob reports failure".)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EmdFailure;

impl fmt::Display for EmdFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no RIBLT level decoded within the 2k budget")
    }
}

impl std::error::Error for EmdFailure {}

/// The Algorithm 1 protocol object. Both parties construct it with the
/// same seed (public coins) so all hash functions agree.
pub struct EmdProtocol {
    space: MetricSpace,
    config: EmdProtocolConfig,
    keyer: MultiScaleKeyer<AnyMlsh>,
    /// Prefix length `s_i` per level (non-decreasing).
    prefix_lens: Vec<usize>,
    seed: u64,
}

impl EmdProtocol {
    /// Creates the protocol for a space and configuration.
    pub fn new(space: MetricSpace, config: EmdProtocolConfig, seed: u64) -> Self {
        assert!(config.q >= 3, "Algorithm 1 requires q ≥ 3");
        assert!(config.d1 >= 1.0 && config.d2 >= config.d1);
        let family = select_mlsh(&space, config.k, config.d2);
        let p = family.mlsh_params().p;
        let ln_inv_p = -(p.ln());
        assert!(ln_inv_p > 0.0);
        // s = ⌈k / (8·D1·ln(1/p))⌉, at least 1 per level schedule.
        let s = ((config.k as f64 / (8.0 * config.d1 * ln_inv_p)).ceil() as usize)
            .clamp(1, config.max_s);
        let t = config.num_levels();
        let prefix_lens: Vec<usize> = (1..=t)
            .map(|i| {
                let raw =
                    (2f64.powi(i as i32 - 1) * s as f64 * config.d1 / config.d2).ceil() as usize;
                raw.clamp(1, s)
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa11c_e0de);
        let keyer = MultiScaleKeyer::sample(&family, s, config.key_bits, &mut rng);
        EmdProtocol {
            space,
            config,
            keyer,
            prefix_lens,
            seed,
        }
    }

    /// The metric space the protocol runs over.
    pub fn space(&self) -> &MetricSpace {
        &self.space
    }

    /// The configuration.
    pub fn config(&self) -> &EmdProtocolConfig {
        &self.config
    }

    /// The assignment solver Bob's repair step uses.
    pub fn solver(&self) -> AssignmentSolver {
        self.config.solver
    }

    /// Returns the protocol with the repair-step solver replaced. Only
    /// Bob's decode path depends on it: Alice's message, the wire format,
    /// and all transcript accounting are solver-independent.
    pub fn with_solver(mut self, solver: AssignmentSolver) -> Self {
        self.config.solver = solver;
        self
    }

    /// The per-level key prefix lengths `s_1 ≤ … ≤ s_t`.
    pub fn prefix_lens(&self) -> &[usize] {
        &self.prefix_lens
    }

    /// Number of MLSH draws `s`.
    pub fn num_hash_draws(&self) -> usize {
        self.keyer.num_functions()
    }

    fn level_config(&self, level: usize) -> RibltConfig {
        RibltConfig::for_pairs(
            self.config.k,
            self.config.q,
            self.space.dim(),
            self.space.delta(),
            self.seed ^ ((level as u64 + 1) << 24),
        )
    }

    /// Per-point keys at every level (one O(s) pass per point).
    fn keys_of(&self, p: &Point) -> Vec<u64> {
        self.keyer.level_keys(p, &self.prefix_lens)
    }

    /// Alice's side: build and "send" the `t` RIBLTs.
    pub fn alice_encode(&self, alice: &[Point]) -> EmdMessage {
        let t = self.prefix_lens.len();
        let mut tables: Vec<Riblt> = (0..t).map(|i| Riblt::new(self.level_config(i))).collect();
        for p in alice {
            debug_assert!(self.space.universe().contains(p), "point outside universe");
            let keys = self.keys_of(p);
            for (table, &key) in tables.iter_mut().zip(&keys) {
                table.insert(key, p);
            }
        }
        EmdMessage {
            tables,
            n: alice.len(),
        }
    }

    /// Bob's side: delete his pairs, find the largest decodable level, and
    /// repair his set.
    pub fn bob_decode(&self, msg: &EmdMessage, bob: &[Point]) -> Result<EmdOutcome, EmdFailure> {
        let budget = 2 * self.config.k;
        let bob_keys: Vec<Vec<u64>> = bob.iter().map(|p| self.keys_of(p)).collect();
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xb0bd_ec0d);
        for level in (0..msg.tables.len()).rev() {
            let mut table = msg.tables[level].clone();
            for (p, keys) in bob.iter().zip(&bob_keys) {
                table.delete(keys[level], p);
            }
            let d = table.decode(&mut rng);
            if !d.complete || d.inserted.len() > budget || d.deleted.len() > budget {
                continue;
            }
            let x_a: Vec<Point> = d.inserted.iter().map(|p| p.value.clone()).collect();
            let x_b: Vec<Point> = d.deleted.iter().map(|p| p.value.clone()).collect();
            let reconciled = rsr_emd::replace_matched_with(
                self.config.solver,
                self.space.metric(),
                bob,
                &x_b,
                &x_a,
            );
            let mut transcript = Transcript::new();
            transcript.record("alice→bob: RIBLTs", msg.wire_bits());
            return Ok(EmdOutcome {
                reconciled,
                i_star: level + 1,
                decoded: (x_a.len(), x_b.len()),
                transcript,
            });
        }
        Err(EmdFailure)
    }

    /// Alice's session endpoint over `alice`'s points.
    pub fn alice_session(&self, alice: &[Point]) -> EmdAliceSession {
        EmdAliceSession {
            msg: Some(self.alice_encode(alice)),
        }
    }

    /// Bob's session endpoint over `bob`'s points.
    pub fn bob_session<'a>(&'a self, bob: &'a [Point]) -> EmdBobSession<'a> {
        EmdBobSession {
            proto: self,
            bob,
            outcome: None,
        }
    }

    /// Runs the whole one-round protocol: both sessions are driven over an
    /// in-memory channel, and the outcome's transcript is the channel's —
    /// sizes measured from the encoded frames, rounds from channel turns.
    pub fn run(&self, alice: &[Point], bob: &[Point]) -> Result<EmdOutcome, EmdFailure> {
        let mut a = self.alice_session(alice);
        let mut b = self.bob_session(bob);
        let transcript = drive_in_memory(Party::Alice, &mut a, &mut b).map_err(|_| EmdFailure)?;
        let mut outcome = b.into_outcome().expect("bob finished");
        outcome.transcript = transcript;
        Ok(outcome)
    }
}

/// Alice's half of Algorithm 1: send the `t` level tables, done.
pub struct EmdAliceSession {
    msg: Option<EmdMessage>,
}

/// Bob's half of Algorithm 1: receive the tables, decode, repair.
pub struct EmdBobSession<'a> {
    proto: &'a EmdProtocol,
    bob: &'a [Point],
    outcome: Option<EmdOutcome>,
}

impl EmdBobSession<'_> {
    /// The decoded outcome, once the session is done.
    pub fn into_outcome(self) -> Option<EmdOutcome> {
        self.outcome
    }
}

impl Session for EmdAliceSession {
    type Error = EmdFailure;

    fn protocol(&self) -> &'static str {
        "emd"
    }

    fn poll_send(&mut self) -> Result<Option<Frame>, EmdFailure> {
        Ok(self.msg.take().map(|m| m.to_frame()))
    }

    fn on_frame(&mut self, _frame: Frame) -> Result<(), EmdFailure> {
        // One-way protocol: nothing ever flows towards Alice.
        Err(EmdFailure)
    }

    fn is_done(&self) -> bool {
        self.msg.is_none()
    }
}

impl Session for EmdBobSession<'_> {
    type Error = EmdFailure;

    fn protocol(&self) -> &'static str {
        "emd"
    }

    fn poll_send(&mut self) -> Result<Option<Frame>, EmdFailure> {
        Ok(None)
    }

    fn on_frame(&mut self, frame: Frame) -> Result<(), EmdFailure> {
        let msg = frame
            .decode_exact(|r| EmdMessage::read_wire(r, self.proto))
            .ok_or(EmdFailure)?;
        self.outcome = Some(self.proto.bob_decode(&msg, self.bob)?);
        Ok(())
    }

    fn is_done(&self) -> bool {
        self.outcome.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rsr_emd::{emd, emd_k};
    use rsr_metric::Metric;

    /// Noisy-cluster workload on the binary cube: `n − k` shared points
    /// with ≤ 1 bit of noise, `k` arbitrary outliers per side.
    fn hamming_workload(
        n: usize,
        k: usize,
        dim: usize,
        seed: u64,
    ) -> (MetricSpace, Vec<Point>, Vec<Point>) {
        let space = MetricSpace::hamming(dim);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut alice = Vec::with_capacity(n);
        let mut bob = Vec::with_capacity(n);
        for _ in 0..n - k {
            let base: Vec<bool> = (0..dim).map(|_| rng.gen()).collect();
            let mut noisy = base.clone();
            let flip = rng.gen_range(0..dim);
            noisy[flip] = !noisy[flip];
            alice.push(Point::from_bits(&base));
            bob.push(Point::from_bits(&noisy));
        }
        for _ in 0..k {
            alice.push(Point::from_bits(
                &(0..dim).map(|_| rng.gen()).collect::<Vec<bool>>(),
            ));
            bob.push(Point::from_bits(
                &(0..dim).map(|_| rng.gen()).collect::<Vec<bool>>(),
            ));
        }
        (space, alice, bob)
    }

    #[test]
    fn identical_sets_round_trip() {
        let space = MetricSpace::hamming(32);
        let mut rng = StdRng::seed_from_u64(80);
        let pts: Vec<Point> = (0..50)
            .map(|_| Point::from_bits(&(0..32).map(|_| rng.gen()).collect::<Vec<bool>>()))
            .collect();
        let cfg = EmdProtocolConfig::for_space(&space, 50, 2);
        let proto = EmdProtocol::new(space, cfg, 81);
        let out = proto.run(&pts, &pts).expect("identical sets must decode");
        assert_eq!(out.reconciled.len(), 50);
        // Everything cancels at the finest level.
        assert_eq!(out.i_star, cfg.num_levels());
        assert_eq!(out.decoded, (0, 0));
        assert_eq!(emd(Metric::Hamming, &out.reconciled, &pts), 0.0);
    }

    #[test]
    fn prefix_lens_nondecreasing_and_bounded() {
        let space = MetricSpace::hamming(64);
        let cfg = EmdProtocolConfig::for_space(&space, 100, 4);
        let proto = EmdProtocol::new(space, cfg, 7);
        let lens = proto.prefix_lens();
        assert_eq!(lens.len(), cfg.num_levels());
        assert!(lens.windows(2).all(|w| w[0] <= w[1]));
        assert!(*lens.last().unwrap() <= proto.num_hash_draws());
        assert!(lens[0] >= 1);
    }

    #[test]
    fn emd_improves_over_no_protocol() {
        // Outlier-dominated workload: shared points identical, k far
        // outliers per side. Theorem 3.4 only promises an O(log n)·EMD_k
        // bound, so improvement is guaranteed only when the pre-protocol
        // EMD is far above EMD_k — which is exactly this shape.
        let space = MetricSpace::hamming(48);
        let mut rng = StdRng::seed_from_u64(82);
        let mut alice: Vec<Point> = (0..57)
            .map(|_| Point::from_bits(&(0..48).map(|_| rng.gen()).collect::<Vec<bool>>()))
            .collect();
        let mut bob = alice.clone();
        for _ in 0..3 {
            alice.push(Point::from_bits(
                &(0..48).map(|_| rng.gen()).collect::<Vec<bool>>(),
            ));
            bob.push(Point::from_bits(
                &(0..48).map(|_| rng.gen()).collect::<Vec<bool>>(),
            ));
        }
        let cfg = EmdProtocolConfig::for_space(&space, 60, 3);
        let proto = EmdProtocol::new(space, cfg, 83);
        let out = proto.run(&alice, &bob).expect("decodable");
        let before = emd(Metric::Hamming, &alice, &bob);
        let after = emd(Metric::Hamming, &alice, &out.reconciled);
        assert!(
            after < before / 2.0,
            "protocol did not improve EMD: {after} vs {before}"
        );
    }

    #[test]
    fn approximation_within_log_factor() {
        // Single-trial smoke version of experiment T5: the ratio
        // EMD(S_A, S'_B)/EMD_k should be modest (the guarantee is
        // O(log n) with constant probability; we allow generous slack
        // and retry over seeds to keep the test deterministic-ish).
        let mut successes = 0;
        let trials = 5;
        for t in 0..trials {
            let (space, alice, bob) = hamming_workload(40, 2, 32, 90 + t);
            let cfg = EmdProtocolConfig::for_space(&space, 40, 2);
            let proto = EmdProtocol::new(space, cfg, 91 + t);
            let Ok(out) = proto.run(&alice, &bob) else {
                continue;
            };
            let base = emd_k(Metric::Hamming, &alice, &bob, 2).max(1.0);
            let achieved = emd(Metric::Hamming, &alice, &out.reconciled);
            if achieved <= 40.0 * (40f64).ln() * base {
                successes += 1;
            }
        }
        assert!(successes >= 3, "only {successes}/{trials} within bound");
    }

    #[test]
    fn communication_is_accounted() {
        let (space, alice, bob) = hamming_workload(30, 2, 32, 84);
        let cfg = EmdProtocolConfig::for_space(&space, 30, 2);
        let proto = EmdProtocol::new(space, cfg, 85);
        let msg = proto.alice_encode(&alice);
        let out = proto.bob_decode(&msg, &bob).unwrap();
        assert_eq!(out.transcript.total_bits(), msg.wire_bits());
        assert!(msg.wire_bits() > 0);
        assert_eq!(msg.num_levels(), cfg.num_levels());
    }

    #[test]
    fn communication_scales_with_k_not_n() {
        let space = MetricSpace::hamming(32);
        let bits = |n: usize, k: usize| {
            let cfg = EmdProtocolConfig::for_space(&space, n, k);
            let proto = EmdProtocol::new(space, cfg, 86);
            let pts: Vec<Point> = (0..n as i64)
                .map(|i| {
                    Point::from_bits(
                        &(0..32)
                            .map(|j| (i >> (j % 16)) & 1 == 1)
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            proto.alice_encode(&pts).wire_bits() as f64
        };
        // Doubling k roughly doubles communication; doubling n only adds
        // log factors.
        let b_base = bits(100, 2);
        let b_2k = bits(100, 4);
        let b_2n = bits(200, 2);
        assert!(b_2k / b_base > 1.5, "k scaling too weak: {}", b_2k / b_base);
        assert!(
            b_2n / b_base < 1.5,
            "n scaling too strong: {}",
            b_2n / b_base
        );
    }

    #[test]
    fn reconciled_points_live_in_universe() {
        let (space, alice, bob) = hamming_workload(40, 2, 24, 87);
        let cfg = EmdProtocolConfig::for_space(&space, 40, 2);
        let proto = EmdProtocol::new(space, cfg, 88);
        let out = proto.run(&alice, &bob).unwrap();
        for p in &out.reconciled {
            assert!(space.universe().contains(p), "escaped universe: {p:?}");
        }
    }

    #[test]
    fn l2_space_runs_end_to_end() {
        let space = MetricSpace::l2(256, 2);
        let mut rng = StdRng::seed_from_u64(89);
        let alice: Vec<Point> = (0..30)
            .map(|_| Point::new(vec![rng.gen_range(0..256), rng.gen_range(0..256)]))
            .collect();
        let bob: Vec<Point> = alice
            .iter()
            .map(|p| {
                Point::new(
                    p.coords()
                        .iter()
                        .map(|&c| (c + rng.gen_range(-1i64..=1)).clamp(0, 255))
                        .collect(),
                )
            })
            .collect();
        let cfg = EmdProtocolConfig::for_space(&space, 30, 2);
        let proto = EmdProtocol::new(space, cfg, 90);
        // May fail with protocol probability; just require it doesn't panic
        // and that success yields a sane set.
        if let Ok(out) = proto.run(&alice, &bob) {
            assert_eq!(out.reconciled.len(), 30);
        }
    }
}
