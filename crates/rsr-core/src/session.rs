//! Two-party session state machines and the driver that runs them.
//!
//! Each protocol is split into an Alice-side and a Bob-side [`Session`]:
//! poll-style state machines that *only* exchange encoded [`Frame`]s
//! through a [`Channel`]. The in-memory [`drive`] loop alternates turns —
//! drain everything the sending party has to say, deliver it, flip — and
//! records every frame's measured bit length into a [`Transcript`], which
//! is also where rounds are counted: one round per direction change, as
//! actually observed on the channel.
//!
//! The legacy `run(&alice, &bob)` entry points are thin wrappers that
//! build both sessions, [`drive`] them over an [`InMemoryChannel`], and
//! assemble the outcome; a sharded or async transport only needs to
//! replace the driver, not the sessions.

use crate::channel::{Channel, Frame, InMemoryChannel};
use crate::transcript::{Party, Transcript};
use std::fmt;

/// One party's half of a protocol, as a poll-style state machine.
///
/// The driver calls [`Session::poll_send`] until it returns `Ok(None)`
/// (everything this party can say right now has been said), delivers the
/// frames, then gives the peer the same treatment. A session signals
/// completion through [`Session::is_done`]; a protocol-level failure (a
/// table that does not decode, a malformed frame) surfaces as `Err` from
/// either method and aborts the drive.
pub trait Session {
    /// Protocol-level error (e.g. [`crate::EmdFailure`]).
    type Error;

    /// The next frame this party wants to send, if it is its turn.
    fn poll_send(&mut self) -> Result<Option<Frame>, Self::Error>;

    /// Delivers an incoming frame.
    fn on_frame(&mut self, frame: Frame) -> Result<(), Self::Error>;

    /// True once this party's half of the protocol has finished.
    fn is_done(&self) -> bool;
}

/// Why a [`drive`] call stopped early.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriveError<E> {
    /// A session reported a protocol error.
    Session(E),
    /// Neither party made progress for a full cycle of turns while at
    /// least one was unfinished — a protocol logic bug, not a data error.
    Stalled,
}

impl<E: fmt::Display> fmt::Display for DriveError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriveError::Session(e) => write!(f, "session error: {e}"),
            DriveError::Stalled => write!(f, "sessions stalled without finishing"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for DriveError<E> {}

/// Runs two sessions to completion over a channel, starting with `first`'s
/// turn. Returns the transcript of every frame that crossed the channel,
/// with measured sizes and channel-turn-driven round counts.
pub fn drive<'a, E>(
    channel: &mut dyn Channel,
    first: Party,
    alice: &'a mut dyn Session<Error = E>,
    bob: &'a mut dyn Session<Error = E>,
) -> Result<Transcript, DriveError<E>> {
    let mut transcript = Transcript::new();
    let mut turn = first;
    let mut idle_turns = 0u32;
    while !(alice.is_done() && bob.is_done()) {
        let mut progressed = false;
        {
            let (sender, receiver) = match turn {
                Party::Alice => (&mut *alice, &mut *bob),
                Party::Bob => (&mut *bob, &mut *alice),
            };
            while let Some(frame) = sender.poll_send().map_err(DriveError::Session)? {
                transcript.record_from(turn, frame.label.clone(), frame.bit_len);
                channel.send(turn, frame);
                progressed = true;
            }
            while let Some(frame) = channel.recv(turn.peer()) {
                receiver.on_frame(frame).map_err(DriveError::Session)?;
                progressed = true;
            }
        }
        if progressed {
            idle_turns = 0;
        } else {
            idle_turns += 1;
            if idle_turns >= 2 {
                return Err(DriveError::Stalled);
            }
        }
        turn = turn.peer();
    }
    Ok(transcript)
}

/// Runs *one* party's session over a channel whose other end lives
/// elsewhere (another thread, another process across a socket). Unlike
/// [`drive`] there is no turn alternation to orchestrate: this party says
/// everything it can, then blocks on [`Channel::recv`] for the peer's next
/// frame, until its own session completes.
///
/// The transcript records **both** directions — frames this party sent
/// (attributed to `me`) and frames it received (attributed to the peer) —
/// in the order they crossed the channel, so on either endpoint it is
/// entry-for-entry identical to the transcript an in-memory [`drive`] of
/// the same session pair produces.
///
/// A `None` from [`Channel::recv`] while the session is unfinished means
/// the peer is gone (clean shutdown, transport failure, or an empty
/// in-memory queue) and surfaces as [`DriveError::Stalled`]; transports
/// carry the underlying cause out of band (e.g. `TcpChannel::take_error`
/// in `rsr-net`).
pub fn drive_channel<E>(
    channel: &mut dyn Channel,
    me: Party,
    session: &mut dyn Session<Error = E>,
) -> Result<Transcript, DriveError<E>> {
    let mut transcript = Transcript::new();
    while !session.is_done() {
        while let Some(frame) = session.poll_send().map_err(DriveError::Session)? {
            transcript.record_from(me, frame.label.clone(), frame.bit_len);
            channel.send(me, frame);
        }
        if session.is_done() {
            break;
        }
        match channel.recv(me) {
            Some(frame) => {
                transcript.record_from(me.peer(), frame.label.clone(), frame.bit_len);
                session.on_frame(frame).map_err(DriveError::Session)?;
            }
            None => return Err(DriveError::Stalled),
        }
    }
    Ok(transcript)
}

/// [`drive`] over a fresh [`InMemoryChannel`] — the single-process path
/// every `run(&alice, &bob)` wrapper uses.
pub fn drive_in_memory<'a, E>(
    first: Party,
    alice: &'a mut dyn Session<Error = E>,
    bob: &'a mut dyn Session<Error = E>,
) -> Result<Transcript, DriveError<E>> {
    let mut channel = InMemoryChannel::new();
    drive(&mut channel, first, alice, bob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_iblt::bits::BitWriter;

    /// Sends `count` frames on its first turn, then waits for one reply.
    struct Chatter {
        to_send: usize,
        got_reply: bool,
        reply_when_done_sending: bool,
        received: Vec<String>,
    }

    impl Session for Chatter {
        type Error = String;

        fn poll_send(&mut self) -> Result<Option<Frame>, String> {
            if self.to_send > 0 {
                self.to_send -= 1;
                let mut w = BitWriter::new();
                w.write(self.to_send as u64, 16);
                return Ok(Some(Frame::seal(format!("msg {}", self.to_send), w)));
            }
            Ok(None)
        }

        fn on_frame(&mut self, frame: Frame) -> Result<(), String> {
            self.received.push(frame.label.into_owned());
            if self.reply_when_done_sending {
                self.to_send = 1;
                self.reply_when_done_sending = false;
            } else {
                self.got_reply = true;
            }
            Ok(())
        }

        fn is_done(&self) -> bool {
            self.to_send == 0 && (self.got_reply || !self.received.is_empty())
        }
    }

    #[test]
    fn burst_then_reply_counts_two_rounds() {
        let mut alice = Chatter {
            to_send: 3,
            got_reply: false,
            reply_when_done_sending: false,
            received: vec![],
        };
        let mut bob = Chatter {
            to_send: 0,
            got_reply: true,
            reply_when_done_sending: true,
            received: vec![],
        };
        let t = drive_in_memory(Party::Alice, &mut alice, &mut bob).expect("completes");
        // Alice's 3-frame burst is one round; Bob's reply is a second.
        assert_eq!(t.num_messages(), 4);
        assert_eq!(t.num_rounds(), 2);
        assert_eq!(bob.received.len(), 3);
        assert_eq!(alice.received.len(), 1);
        assert_eq!(t.total_bits(), 4 * 16);
    }

    #[test]
    fn drive_channel_records_both_directions() {
        // Pre-seed the peer's reply, then drive only Alice's endpoint:
        // she sends her burst, receives the reply, and her single-party
        // transcript covers both directions in channel order.
        let mut channel = InMemoryChannel::new();
        channel.send(Party::Bob, Frame::seal("reply", BitWriter::new()));
        let mut alice = Chatter {
            to_send: 2,
            got_reply: false,
            reply_when_done_sending: false,
            received: vec![],
        };
        let t = drive_channel(&mut channel, Party::Alice, &mut alice).expect("completes");
        assert_eq!(alice.received, vec!["reply"]);
        assert_eq!(t.num_messages(), 3);
        assert_eq!(t.num_rounds(), 2);
        let senders: Vec<_> = t.entries_with_sender().map(|(s, _, _)| s).collect();
        assert_eq!(
            senders,
            vec![Some(Party::Alice), Some(Party::Alice), Some(Party::Bob)]
        );
    }

    #[test]
    fn drive_channel_stalls_on_dry_channel() {
        let mut channel = InMemoryChannel::new();
        let mut mute = Mute;
        let err = drive_channel(&mut channel, Party::Alice, &mut mute).unwrap_err();
        assert_eq!(err, DriveError::Stalled);
    }

    /// A session that claims to be unfinished but never sends.
    struct Mute;

    impl Session for Mute {
        type Error = String;

        fn poll_send(&mut self) -> Result<Option<Frame>, String> {
            Ok(None)
        }

        fn on_frame(&mut self, _frame: Frame) -> Result<(), String> {
            Ok(())
        }

        fn is_done(&self) -> bool {
            false
        }
    }

    #[test]
    fn stalled_sessions_are_detected() {
        let mut a = Mute;
        let mut b = Mute;
        let err = drive_in_memory(Party::Alice, &mut a, &mut b).unwrap_err();
        assert_eq!(err, DriveError::Stalled);
    }

    /// Errors from `on_frame` abort the drive.
    struct Rejecting;

    impl Session for Rejecting {
        type Error = String;

        fn poll_send(&mut self) -> Result<Option<Frame>, String> {
            Ok(None)
        }

        fn on_frame(&mut self, _frame: Frame) -> Result<(), String> {
            Err("bad frame".into())
        }

        fn is_done(&self) -> bool {
            false
        }
    }

    #[test]
    fn session_errors_propagate() {
        let mut alice = Chatter {
            to_send: 1,
            got_reply: true,
            reply_when_done_sending: false,
            received: vec![],
        };
        let mut bob = Rejecting;
        let err = drive_in_memory(Party::Alice, &mut alice, &mut bob).unwrap_err();
        assert_eq!(err, DriveError::Session("bad frame".into()));
    }
}
