//! Two-party session state machines and the driver that runs them.
//!
//! Each protocol is split into an Alice-side and a Bob-side [`Session`]:
//! poll-style state machines that *only* exchange encoded [`Frame`]s
//! through a [`Channel`]. The in-memory [`drive`] loop alternates turns —
//! drain everything the sending party has to say, deliver it, flip — and
//! records every frame's measured bit length into a [`Transcript`], which
//! is also where rounds are counted: one round per direction change, as
//! actually observed on the channel.
//!
//! The legacy `run(&alice, &bob)` entry points are thin wrappers that
//! build both sessions, [`drive`] them over an [`InMemoryChannel`], and
//! assemble the outcome; a sharded or async transport only needs to
//! replace the driver, not the sessions.

use crate::channel::{Channel, Frame, InMemoryChannel};
use crate::transcript::{Party, Transcript};
use std::fmt;

/// One party's half of a protocol, as a poll-style state machine.
///
/// The driver calls [`Session::poll_send`] until it returns `Ok(None)`
/// (everything this party can say right now has been said), delivers the
/// frames, then gives the peer the same treatment. A session signals
/// completion through [`Session::is_done`]; a protocol-level failure (a
/// table that does not decode, a malformed frame) surfaces as `Err` from
/// either method and aborts the drive.
///
/// A minimal one-message protocol, driven to completion in memory:
///
/// ```
/// use rsr_core::{drive_in_memory, Frame, Party, Session};
/// use rsr_iblt::bits::BitWriter;
///
/// /// Alice sends one 16-bit number; Bob stores it.
/// struct Sender(Option<u64>);
/// struct Receiver(Option<u64>);
///
/// impl Session for Sender {
///     type Error = String;
///     fn poll_send(&mut self) -> Result<Option<Frame>, String> {
///         Ok(self.0.take().map(|v| {
///             let mut w = BitWriter::new();
///             w.write(v, 16);
///             Frame::seal("value", w)
///         }))
///     }
///     fn on_frame(&mut self, _: Frame) -> Result<(), String> {
///         Err("one-way protocol".into())
///     }
///     fn is_done(&self) -> bool {
///         self.0.is_none()
///     }
/// }
///
/// impl Session for Receiver {
///     type Error = String;
///     fn poll_send(&mut self) -> Result<Option<Frame>, String> {
///         Ok(None)
///     }
///     fn on_frame(&mut self, frame: Frame) -> Result<(), String> {
///         self.0 = frame.decode_exact(|r| r.read(16)).ok_or("short frame")?.into();
///         Ok(())
///     }
///     fn is_done(&self) -> bool {
///         self.0.is_some()
///     }
/// }
///
/// let (mut alice, mut bob) = (Sender(Some(4242)), Receiver(None));
/// let transcript = drive_in_memory(Party::Alice, &mut alice, &mut bob).unwrap();
/// assert_eq!(bob.0, Some(4242));
/// assert_eq!(transcript.total_bits(), 16);
/// assert_eq!(transcript.num_rounds(), 1);
/// ```
///
/// The real protocols expose their halves the same way — e.g.
/// [`crate::EmdProtocol::alice_session`] / `bob_session` — so one driver
/// runs them all.
pub trait Session {
    /// Protocol-level error (e.g. [`crate::EmdFailure`]).
    type Error;

    /// The next frame this party wants to send, if it is its turn.
    fn poll_send(&mut self) -> Result<Option<Frame>, Self::Error>;

    /// Delivers an incoming frame.
    fn on_frame(&mut self, frame: Frame) -> Result<(), Self::Error>;

    /// True once this party's half of the protocol has finished.
    fn is_done(&self) -> bool;

    /// A short static protocol name for metrics attribution (e.g.
    /// `"emd"`, `"scaled_emd"`, `"gap"`). The executor buckets its
    /// per-protocol frame and bit counters under this key; the default
    /// covers ad-hoc sessions that never appear in reports.
    fn protocol(&self) -> &'static str {
        "session"
    }
}

/// Why a [`drive`] call stopped early.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriveError<E> {
    /// A session reported a protocol error.
    Session(E),
    /// Neither party made progress for a full cycle of turns while at
    /// least one was unfinished — a protocol logic bug, not a data error.
    Stalled,
}

impl<E: fmt::Display> fmt::Display for DriveError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DriveError::Session(e) => write!(f, "session error: {e}"),
            DriveError::Stalled => write!(f, "sessions stalled without finishing"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for DriveError<E> {}

/// Runs two sessions to completion over a channel, starting with `first`'s
/// turn. Returns the transcript of every frame that crossed the channel,
/// with measured sizes and channel-turn-driven round counts.
///
/// Driving a real protocol (Algorithm 1) over an explicit channel — the
/// transcript reports the *measured* encoded sizes:
///
/// ```
/// use rsr_core::emd_protocol::{EmdProtocol, EmdProtocolConfig};
/// use rsr_core::{drive, InMemoryChannel, Party};
/// use rsr_metric::{MetricSpace, Point};
///
/// let space = MetricSpace::hamming(8);
/// let pts: Vec<Point> = (0..8i64)
///     .map(|i| Point::new((0..8).map(|b| (i >> b) & 1).collect()))
///     .collect();
/// let cfg = EmdProtocolConfig::for_space(&space, pts.len(), 1);
/// let proto = EmdProtocol::new(space, cfg, 7);
///
/// let mut alice = proto.alice_session(&pts);
/// let mut bob = proto.bob_session(&pts);
/// let mut channel = InMemoryChannel::new();
/// let transcript = drive(&mut channel, Party::Alice, &mut alice, &mut bob).unwrap();
/// assert_eq!(transcript.num_rounds(), 1); // one-way: Alice → Bob
/// assert_eq!(transcript.total_bits(), channel.bits_sent());
/// assert_eq!(bob.into_outcome().unwrap().reconciled.len(), pts.len());
/// ```
pub fn drive<'a, E>(
    channel: &mut dyn Channel,
    first: Party,
    alice: &'a mut dyn Session<Error = E>,
    bob: &'a mut dyn Session<Error = E>,
) -> Result<Transcript, DriveError<E>> {
    let mut transcript = Transcript::new();
    let mut turn = first;
    let mut idle_turns = 0u32;
    while !(alice.is_done() && bob.is_done()) {
        let mut progressed = false;
        {
            let (sender, receiver) = match turn {
                Party::Alice => (&mut *alice, &mut *bob),
                Party::Bob => (&mut *bob, &mut *alice),
            };
            while let Some(frame) = sender.poll_send().map_err(DriveError::Session)? {
                transcript.record_from(turn, frame.label.clone(), frame.bit_len);
                channel.send(turn, frame);
                progressed = true;
            }
            while let Some(frame) = channel.recv(turn.peer()) {
                receiver.on_frame(frame).map_err(DriveError::Session)?;
                progressed = true;
            }
        }
        if progressed {
            idle_turns = 0;
        } else {
            idle_turns += 1;
            if idle_turns >= 2 {
                return Err(DriveError::Stalled);
            }
        }
        turn = turn.peer();
    }
    Ok(transcript)
}

/// Runs *one* party's session over a channel whose other end lives
/// elsewhere (another thread, another process across a socket). Unlike
/// [`drive`] there is no turn alternation to orchestrate: this party says
/// everything it can, then blocks on [`Channel::recv`] for the peer's next
/// frame, until its own session completes.
///
/// The transcript records **both** directions — frames this party sent
/// (attributed to `me`) and frames it received (attributed to the peer) —
/// in the order they crossed the channel, so on either endpoint it is
/// entry-for-entry identical to the transcript an in-memory [`drive`] of
/// the same session pair produces.
///
/// A `None` from [`Channel::recv`] while the session is unfinished means
/// the peer is gone (clean shutdown, transport failure, or an empty
/// in-memory queue) and surfaces as [`DriveError::Stalled`]; transports
/// carry the underlying cause out of band (e.g. `TcpChannel::take_error`
/// in `rsr-net`).
///
/// Each endpoint drives only its own half; here the two halves run
/// sequentially over one in-memory channel standing in for the socket
/// (a one-way protocol, so Alice can finish before Bob starts):
///
/// ```
/// use rsr_core::emd_protocol::{EmdProtocol, EmdProtocolConfig};
/// use rsr_core::{drive_channel, InMemoryChannel, Party};
/// use rsr_metric::{MetricSpace, Point};
///
/// let space = MetricSpace::hamming(8);
/// let pts: Vec<Point> = (0..8i64)
///     .map(|i| Point::new((0..8).map(|b| (i >> b) & 1).collect()))
///     .collect();
/// let cfg = EmdProtocolConfig::for_space(&space, pts.len(), 1);
/// let proto = EmdProtocol::new(space, cfg, 7);
/// let mut channel = InMemoryChannel::new();
///
/// // "Process A": Alice's endpoint says everything it can, then is done.
/// let mut alice = proto.alice_session(&pts);
/// let sent = drive_channel(&mut channel, Party::Alice, &mut alice).unwrap();
///
/// // "Process B": Bob's endpoint consumes the queued frames.
/// let mut bob = proto.bob_session(&pts);
/// let received = drive_channel(&mut channel, Party::Bob, &mut bob).unwrap();
///
/// // Both single-party transcripts measured the same one-round exchange.
/// assert_eq!(sent.total_bits(), received.total_bits());
/// assert!(bob.into_outcome().is_some());
/// ```
pub fn drive_channel<E>(
    channel: &mut dyn Channel,
    me: Party,
    session: &mut dyn Session<Error = E>,
) -> Result<Transcript, DriveError<E>> {
    let mut transcript = Transcript::new();
    while !session.is_done() {
        while let Some(frame) = session.poll_send().map_err(DriveError::Session)? {
            transcript.record_from(me, frame.label.clone(), frame.bit_len);
            channel.send(me, frame);
        }
        if session.is_done() {
            break;
        }
        match channel.recv(me) {
            Some(frame) => {
                transcript.record_from(me.peer(), frame.label.clone(), frame.bit_len);
                session.on_frame(frame).map_err(DriveError::Session)?;
            }
            None => return Err(DriveError::Stalled),
        }
    }
    Ok(transcript)
}

/// [`drive`] over a fresh [`InMemoryChannel`] — the single-process path
/// every `run(&alice, &bob)` wrapper uses.
pub fn drive_in_memory<'a, E>(
    first: Party,
    alice: &'a mut dyn Session<Error = E>,
    bob: &'a mut dyn Session<Error = E>,
) -> Result<Transcript, DriveError<E>> {
    let mut channel = InMemoryChannel::new();
    drive(&mut channel, first, alice, bob)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_iblt::bits::BitWriter;

    /// Sends `count` frames on its first turn, then waits for one reply.
    struct Chatter {
        to_send: usize,
        got_reply: bool,
        reply_when_done_sending: bool,
        received: Vec<String>,
    }

    impl Session for Chatter {
        type Error = String;

        fn poll_send(&mut self) -> Result<Option<Frame>, String> {
            if self.to_send > 0 {
                self.to_send -= 1;
                let mut w = BitWriter::new();
                w.write(self.to_send as u64, 16);
                return Ok(Some(Frame::seal(format!("msg {}", self.to_send), w)));
            }
            Ok(None)
        }

        fn on_frame(&mut self, frame: Frame) -> Result<(), String> {
            self.received.push(frame.label.into_owned());
            if self.reply_when_done_sending {
                self.to_send = 1;
                self.reply_when_done_sending = false;
            } else {
                self.got_reply = true;
            }
            Ok(())
        }

        fn is_done(&self) -> bool {
            self.to_send == 0 && (self.got_reply || !self.received.is_empty())
        }
    }

    #[test]
    fn burst_then_reply_counts_two_rounds() {
        let mut alice = Chatter {
            to_send: 3,
            got_reply: false,
            reply_when_done_sending: false,
            received: vec![],
        };
        let mut bob = Chatter {
            to_send: 0,
            got_reply: true,
            reply_when_done_sending: true,
            received: vec![],
        };
        let t = drive_in_memory(Party::Alice, &mut alice, &mut bob).expect("completes");
        // Alice's 3-frame burst is one round; Bob's reply is a second.
        assert_eq!(t.num_messages(), 4);
        assert_eq!(t.num_rounds(), 2);
        assert_eq!(bob.received.len(), 3);
        assert_eq!(alice.received.len(), 1);
        assert_eq!(t.total_bits(), 4 * 16);
    }

    #[test]
    fn drive_channel_records_both_directions() {
        // Pre-seed the peer's reply, then drive only Alice's endpoint:
        // she sends her burst, receives the reply, and her single-party
        // transcript covers both directions in channel order.
        let mut channel = InMemoryChannel::new();
        channel.send(Party::Bob, Frame::seal("reply", BitWriter::new()));
        let mut alice = Chatter {
            to_send: 2,
            got_reply: false,
            reply_when_done_sending: false,
            received: vec![],
        };
        let t = drive_channel(&mut channel, Party::Alice, &mut alice).expect("completes");
        assert_eq!(alice.received, vec!["reply"]);
        assert_eq!(t.num_messages(), 3);
        assert_eq!(t.num_rounds(), 2);
        let senders: Vec<_> = t.entries_with_sender().map(|(s, _, _)| s).collect();
        assert_eq!(
            senders,
            vec![Some(Party::Alice), Some(Party::Alice), Some(Party::Bob)]
        );
    }

    #[test]
    fn drive_channel_stalls_on_dry_channel() {
        let mut channel = InMemoryChannel::new();
        let mut mute = Mute;
        let err = drive_channel(&mut channel, Party::Alice, &mut mute).unwrap_err();
        assert_eq!(err, DriveError::Stalled);
    }

    /// A session that claims to be unfinished but never sends.
    struct Mute;

    impl Session for Mute {
        type Error = String;

        fn poll_send(&mut self) -> Result<Option<Frame>, String> {
            Ok(None)
        }

        fn on_frame(&mut self, _frame: Frame) -> Result<(), String> {
            Ok(())
        }

        fn is_done(&self) -> bool {
            false
        }
    }

    #[test]
    fn stalled_sessions_are_detected() {
        let mut a = Mute;
        let mut b = Mute;
        let err = drive_in_memory(Party::Alice, &mut a, &mut b).unwrap_err();
        assert_eq!(err, DriveError::Stalled);
    }

    /// Errors from `on_frame` abort the drive.
    struct Rejecting;

    impl Session for Rejecting {
        type Error = String;

        fn poll_send(&mut self) -> Result<Option<Frame>, String> {
            Ok(None)
        }

        fn on_frame(&mut self, _frame: Frame) -> Result<(), String> {
            Err("bad frame".into())
        }

        fn is_done(&self) -> bool {
            false
        }
    }

    #[test]
    fn session_errors_propagate() {
        let mut alice = Chatter {
            to_send: 1,
            got_reply: true,
            reply_when_done_sending: false,
            received: vec![],
        };
        let mut bob = Rejecting;
        let err = drive_in_memory(Party::Alice, &mut alice, &mut bob).unwrap_err();
        assert_eq!(err, DriveError::Session("bad frame".into()));
    }
}
