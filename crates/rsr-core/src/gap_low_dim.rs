//! Theorem 4.5: the low-dimension Gap protocol on one-sided grid LSH.
//!
//! For `([Δ]^d, ℓ_p)` the one-sided grid family (`p2 = 0`, Appendix E.1)
//! lets the protocol run with batch size `m = 1` — no replication is
//! needed to suppress far collisions because far points *never* collide.
//! The key length shrinks to `h = Θ(log n / log(1/ρ̂))` with
//! `ρ̂ = r1·d/r2`, and the far rule becomes "far iff no entry matches"
//! (`close_threshold = 1`). This saves roughly a `log(r2/r1)` factor over
//! Theorem 4.2 in constant dimension.

use crate::gap_protocol::GapConfig;
use rsr_hash::OneSidedGridFamily;
use rsr_metric::MetricSpace;
use rsr_setsofsets::estimate_fp_cells;

/// Derives the Theorem 4.5 configuration and family for a low-dimensional
/// `ℓ_p` space. Requires `ρ̂ = r1·d/r2 < 1` (the theorem's regime).
pub fn low_dim_gap_config(
    space: &MetricSpace,
    n: usize,
    k: usize,
    r1: f64,
    r2: f64,
) -> (OneSidedGridFamily, GapConfig) {
    let n = n.max(2);
    let p = space.metric().p_exponent();
    let family = OneSidedGridFamily::new(space.dim(), p, r1, r2);
    let rho_hat = family.rho_hat();
    assert!(
        rho_hat < 1.0,
        "Theorem 4.5 requires ρ̂ = r1·d/r2 = {rho_hat} < 1"
    );
    // h = Θ(log n / log(1/ρ̂)): each close pair misses all h entries with
    // probability ≤ ρ̂^h = 1/poly(n).
    let h = ((2.0 * (n as f64).ln() / (1.0 / rho_hat).ln()).ceil() as usize).max(4);
    let log_n = (n as f64).log2().ceil() as u32;
    // Expected differing keys: a close pair's entry differs w.p. ≤ ρ̂.
    let p_key_equal = (1.0 - rho_hat).powi(h as i32);
    let expected_diffs = 2 * (k + ((n as f64) * (1.0 - p_key_equal)).ceil() as usize) + 4;
    let config = GapConfig {
        r1,
        r2,
        k,
        h,
        m: 1,
        entry_bits: (2 * log_n + 6).clamp(16, 61),
        close_threshold: 1,
        fp_cells: estimate_fp_cells(expected_diffs),
    };
    (family, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gap_protocol::{verify_gap_guarantee, GapProtocol};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use rsr_metric::Point;

    fn l1_workload(
        n: usize,
        k: usize,
        delta: i64,
        r1: i64,
        r2: f64,
        seed: u64,
    ) -> (MetricSpace, Vec<Point>, Vec<Point>) {
        let dim = 2;
        let space = MetricSpace::l1(delta, dim);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut alice = Vec::new();
        let mut bob = Vec::new();
        for _ in 0..n - k {
            let base: Vec<i64> = (0..dim).map(|_| rng.gen_range(0..delta)).collect();
            let noisy: Vec<i64> = base
                .iter()
                .map(|&c| (c + rng.gen_range(-r1 / 2..=r1 / 2)).clamp(0, delta - 1))
                .collect();
            alice.push(Point::new(base));
            bob.push(Point::new(noisy));
        }
        for i in 0..k {
            // Far outliers: Alice's in one corner region, Bob's points far.
            alice.push(Point::new(vec![delta - 1 - i as i64, delta - 1]));
            bob.push(Point::new(vec![i as i64, 0]));
        }
        let _ = r2;
        (space, alice, bob)
    }

    #[test]
    fn config_has_one_sided_shape() {
        let space = MetricSpace::l1(1024, 2);
        let (fam, cfg) = low_dim_gap_config(&space, 100, 3, 2.0, 64.0);
        assert_eq!(cfg.m, 1);
        assert_eq!(cfg.close_threshold, 1);
        assert!(fam.rho_hat() < 1.0);
        assert!(cfg.h >= 4);
    }

    #[test]
    fn shorter_keys_than_general_protocol() {
        // With a healthy gap, Theorem 4.5's h is below Theorem 4.2's.
        let space = MetricSpace::l1(4096, 2);
        let (_, cfg) = low_dim_gap_config(&space, 1000, 3, 1.0, 512.0);
        let general_h = ((1000f64).log2().ceil() as usize * 4).max(16);
        assert!(
            cfg.h < general_h,
            "low-dim h = {} not below general h = {general_h}",
            cfg.h
        );
    }

    #[test]
    fn gap_guarantee_holds_l1() {
        let (space, alice, bob) = l1_workload(50, 2, 1024, 4, 256.0, 110);
        let (fam, cfg) = low_dim_gap_config(&space, 50, 2, 4.0, 256.0);
        let proto = GapProtocol::new(space, &fam, cfg, 111);
        let out = proto.run(&alice, &bob).expect("low-dim protocol succeeds");
        assert!(verify_gap_guarantee(&space, &alice, &out.reconciled, 256.0));
    }

    #[test]
    fn far_points_recovered_l2() {
        let space = MetricSpace::l2(1024, 2);
        let mut rng = StdRng::seed_from_u64(112);
        let shared: Vec<Point> = (0..40)
            .map(|_| Point::new(vec![rng.gen_range(0..1024), rng.gen_range(0..1024)]))
            .collect();
        let mut alice = shared.clone();
        alice.push(Point::new(vec![1000, 1000]));
        let mut bob = shared;
        bob.push(Point::new(vec![5, 5]));
        let (fam, cfg) = low_dim_gap_config(&space, 41, 1, 2.0, 300.0);
        let proto = GapProtocol::new(space, &fam, cfg, 113);
        let out = proto.run(&alice, &bob).unwrap();
        assert!(verify_gap_guarantee(&space, &alice, &out.reconciled, 300.0));
    }

    #[test]
    #[should_panic]
    fn rho_hat_at_least_one_rejected() {
        let space = MetricSpace::l1(100, 8);
        // r1·d/r2 = 2·8/4 = 4 ≥ 1.
        low_dim_gap_config(&space, 10, 1, 2.0, 4.0);
    }
}
