//! Bit-exact communication accounting.
//!
//! Every protocol in this crate reports its communication through a
//! [`Transcript`]: a labelled list of messages with their wire sizes in
//! bits. Since the session refactor the sizes are *measured* — the session
//! driver records the encoded bit length of every frame that crosses the
//! [`crate::channel::Channel`] — and the experiments compare the totals
//! against the paper's bounds (e.g. Corollary 3.5's
//! `O(k·d·log n·log(dn))`), so nothing may bypass the accounting.
//!
//! Messages and rounds are distinct quantities: a *round* is a contiguous
//! run of messages sent by one party before the direction flips (the
//! interval-scaled EMD protocol sends one message per interval but uses a
//! single round). [`Transcript::num_messages`] counts entries;
//! [`Transcript::num_rounds`] counts direction changes as observed on the
//! channel.

use std::borrow::Cow;
use std::fmt;

/// One of the two protocol parties. Sessions are written from a fixed
/// party's perspective; the driver uses this to route frames and the
/// transcript uses it to count rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Party {
    /// The party holding `S_A` (the sender in the one-way EMD model).
    Alice,
    /// The party holding `S_B` (the receiver in the one-way EMD model).
    Bob,
}

impl Party {
    /// The other party.
    pub fn peer(self) -> Party {
        match self {
            Party::Alice => Party::Bob,
            Party::Bob => Party::Alice,
        }
    }
}

impl fmt::Display for Party {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Party::Alice => write!(f, "alice"),
            Party::Bob => write!(f, "bob"),
        }
    }
}

/// One recorded message.
#[derive(Clone, Debug)]
struct Entry {
    /// Sender, when the message went through the session layer. Legacy
    /// single-shot accounting records `None`.
    from: Option<Party>,
    label: Cow<'static, str>,
    bits: u64,
}

/// A labelled record of every message a protocol run sent.
#[derive(Clone, Debug, Default)]
pub struct Transcript {
    entries: Vec<Entry>,
    rounds: usize,
    last_from: Option<Party>,
}

impl Transcript {
    /// Creates an empty transcript.
    pub fn new() -> Self {
        Transcript::default()
    }

    /// Records a message of `bits` bits with no sender attribution. Each
    /// such message counts as its own round (the pre-session behaviour,
    /// kept for single-message accounting like exact reconciliation).
    pub fn record(&mut self, label: impl Into<Cow<'static, str>>, bits: u64) {
        self.entries.push(Entry {
            from: None,
            label: label.into(),
            bits,
        });
        self.rounds += 1;
        self.last_from = None;
    }

    /// Records a message sent by `from`. Consecutive messages from the
    /// same party belong to one round; the round counter advances exactly
    /// when the channel changes direction.
    pub fn record_from(&mut self, from: Party, label: impl Into<Cow<'static, str>>, bits: u64) {
        if self.last_from != Some(from) {
            self.rounds += 1;
            self.last_from = Some(from);
        }
        self.entries.push(Entry {
            from: Some(from),
            label: label.into(),
            bits,
        });
    }

    /// Appends another transcript's messages after this one's,
    /// replaying them through the same round accounting — a message
    /// continuing the direction this transcript ended on does not open
    /// a new round. Long-lived transports use this to accumulate
    /// per-round segment transcripts into one session record.
    pub fn append(&mut self, other: Transcript) {
        for e in other.entries {
            match e.from {
                Some(from) => self.record_from(from, e.label, e.bits),
                None => self.record(e.label, e.bits),
            }
        }
    }

    /// Total bits across all messages.
    pub fn total_bits(&self) -> u64 {
        self.entries.iter().map(|e| e.bits).sum()
    }

    /// Total bytes (each message rounded up to whole bytes, matching the
    /// byte buffers that actually crossed the channel).
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bits.div_ceil(8)).sum()
    }

    /// Number of messages recorded. Not the number of rounds: see
    /// [`Transcript::num_rounds`].
    pub fn num_messages(&self) -> usize {
        self.entries.len()
    }

    /// Number of rounds: maximal runs of consecutive messages in one
    /// direction, driven by the actual channel turns in the session layer.
    pub fn num_rounds(&self) -> usize {
        self.rounds
    }

    /// Iterates over `(label, bits)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|e| (e.label.as_ref(), e.bits))
    }

    /// Iterates over `(sender, label, bits)` entries; the sender is `None`
    /// for legacy unattributed records.
    pub fn entries_with_sender(&self) -> impl Iterator<Item = (Option<Party>, &str, u64)> {
        self.entries
            .iter()
            .map(|e| (e.from, e.label.as_ref(), e.bits))
    }
}

impl fmt::Display for Transcript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(f, "{}: {} bits", e.label, e.bits)?;
        }
        write!(
            f,
            "total: {} bits in {} messages / {} rounds",
            self.total_bits(),
            self.num_messages(),
            self.num_rounds()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_entries() {
        let mut t = Transcript::new();
        t.record("round 1", 100);
        t.record("round 2", 28);
        assert_eq!(t.total_bits(), 128);
        assert_eq!(t.total_bytes(), 13 + 4);
        assert_eq!(t.num_messages(), 2);
        assert_eq!(t.num_rounds(), 2);
    }

    #[test]
    fn bytes_round_up_per_message() {
        let mut t = Transcript::new();
        t.record("x", 9);
        assert_eq!(t.total_bytes(), 2);
        t.record("y", 9);
        // Two 2-byte buffers crossed the wire, not one 3-byte buffer.
        assert_eq!(t.total_bytes(), 4);
    }

    #[test]
    fn rounds_follow_direction_changes() {
        let mut t = Transcript::new();
        t.record_from(Party::Alice, "interval 0", 10);
        t.record_from(Party::Alice, "interval 1", 10);
        t.record_from(Party::Alice, "interval 2", 10);
        assert_eq!(t.num_messages(), 3);
        assert_eq!(t.num_rounds(), 1);
        t.record_from(Party::Bob, "reply", 5);
        assert_eq!(t.num_rounds(), 2);
        t.record_from(Party::Alice, "follow-up", 5);
        assert_eq!(t.num_rounds(), 3);
        assert_eq!(t.num_messages(), 5);
    }

    #[test]
    fn party_peer_flips() {
        assert_eq!(Party::Alice.peer(), Party::Bob);
        assert_eq!(Party::Bob.peer(), Party::Alice);
        assert_eq!(format!("{}→{}", Party::Alice, Party::Bob), "alice→bob");
    }

    #[test]
    fn display_lists_entries() {
        let mut t = Transcript::new();
        t.record("m", 8);
        let s = format!("{t}");
        assert!(s.contains("m: 8 bits"));
        assert!(s.contains("total: 8 bits"));
    }
}
