//! Bit-exact communication accounting.
//!
//! Every protocol in this crate reports its communication through a
//! [`Transcript`]: a labelled list of messages with their wire sizes in
//! bits. The experiments compare these totals against the paper's bounds
//! (e.g. Corollary 3.5's `O(k·d·log n·log(dn))`), so nothing may bypass
//! the accounting.

use std::fmt;

/// A labelled record of every message a protocol run sent.
#[derive(Clone, Debug, Default)]
pub struct Transcript {
    entries: Vec<(String, u64)>,
}

impl Transcript {
    /// Creates an empty transcript.
    pub fn new() -> Self {
        Transcript::default()
    }

    /// Records a message of `bits` bits.
    pub fn record(&mut self, label: impl Into<String>, bits: u64) {
        self.entries.push((label.into(), bits));
    }

    /// Total bits across all messages.
    pub fn total_bits(&self) -> u64 {
        self.entries.iter().map(|(_, b)| b).sum()
    }

    /// Total bytes (rounded up).
    pub fn total_bytes(&self) -> u64 {
        self.total_bits().div_ceil(8)
    }

    /// Number of messages (= rounds for alternating protocols).
    pub fn num_messages(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over `(label, bits)` entries.
    pub fn entries(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(l, b)| (l.as_str(), *b))
    }
}

impl fmt::Display for Transcript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (label, bits) in &self.entries {
            writeln!(f, "{label}: {bits} bits")?;
        }
        write!(f, "total: {} bits", self.total_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_entries() {
        let mut t = Transcript::new();
        t.record("round 1", 100);
        t.record("round 2", 28);
        assert_eq!(t.total_bits(), 128);
        assert_eq!(t.total_bytes(), 16);
        assert_eq!(t.num_messages(), 2);
    }

    #[test]
    fn bytes_round_up() {
        let mut t = Transcript::new();
        t.record("x", 9);
        assert_eq!(t.total_bytes(), 2);
    }

    #[test]
    fn display_lists_entries() {
        let mut t = Transcript::new();
        t.record("m", 8);
        let s = format!("{t}");
        assert!(s.contains("m: 8 bits"));
        assert!(s.contains("total: 8 bits"));
    }
}
