//! Exact (non-robust) set reconciliation of point sets.
//!
//! §3 notes: "if EMD_k(S_A, S_B) = 0, this problem can be solved exactly
//! with a standard set reconciliation protocol". This module is that
//! protocol, one round Alice → Bob: a table keyed by point hashes whose
//! values are the points themselves, sized for a difference bound `D`.
//! (Carrying the point as the value lets Bob recover Alice-only points he
//! has never seen — a bare key table could not be inverted to points.)

use crate::transcript::Transcript;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rsr_hash::mix::hash_words;
use rsr_iblt::riblt::RibltConfig;
use rsr_iblt::Riblt;
use rsr_metric::{MetricSpace, Point};
use std::fmt;

/// Outcome of exact reconciliation.
#[derive(Clone, Debug)]
pub struct ExactOutcome {
    /// Bob's reconstruction of Alice's set.
    pub alice_set: Vec<Point>,
    /// Points only Alice had.
    pub alice_only: Vec<Point>,
    /// Points only Bob had.
    pub bob_only: Vec<Point>,
    /// Communication transcript.
    pub transcript: Transcript,
}

/// Failure modes of exact reconciliation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExactReconError {
    /// The difference exceeded the bound `D`; re-run with a larger bound.
    DecodeFailed,
}

impl fmt::Display for ExactReconError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExactReconError::DecodeFailed => write!(f, "difference exceeded the bound"),
        }
    }
}

impl std::error::Error for ExactReconError {}

fn point_key(seed: u64, p: &Point) -> u64 {
    let words: Vec<u64> = p.coords().iter().map(|&c| c as u64).collect();
    hash_words(seed ^ 0xe8ac_7001, &words)
}

/// One-round exact reconciliation: Bob ends with Alice's exact set.
///
/// `diff_bound` bounds `|S_A △ S_B|`; the table is sized `O(diff_bound)`.
/// Duplicate points within one party's set are not supported (sets, not
/// multisets), matching the paper's model.
pub fn exact_reconcile(
    space: &MetricSpace,
    alice: &[Point],
    bob: &[Point],
    diff_bound: usize,
    seed: u64,
) -> Result<ExactOutcome, ExactReconError> {
    let config = RibltConfig::for_pairs(
        diff_bound.div_ceil(2).max(1),
        3,
        space.dim(),
        space.delta(),
        seed ^ 0x5e7e_c001,
    );
    let mut table = Riblt::new(config);
    for p in alice {
        table.insert(point_key(seed, p), p);
    }
    for p in bob {
        table.delete(point_key(seed, p), p);
    }
    let bits = table.wire_bits(alice.len().max(bob.len()).max(1));
    let mut rng = StdRng::seed_from_u64(seed ^ 0xdec0);
    let d = table.decode(&mut rng);
    if !d.complete {
        return Err(ExactReconError::DecodeFailed);
    }
    let alice_only: Vec<Point> = d.inserted.into_iter().map(|p| p.value).collect();
    let bob_only: Vec<Point> = d.deleted.into_iter().map(|p| p.value).collect();
    // Splice: Bob's set minus his unique points plus Alice's unique points.
    let drop: std::collections::HashSet<&Point> = bob_only.iter().collect();
    let mut alice_set: Vec<Point> = bob.iter().filter(|p| !drop.contains(p)).cloned().collect();
    alice_set.extend(alice_only.iter().cloned());
    let mut transcript = Transcript::new();
    transcript.record("alice→bob: exact-recon RIBLT", bits);
    Ok(ExactOutcome {
        alice_set,
        alice_only,
        bob_only,
        transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> MetricSpace {
        MetricSpace::l1(1000, 2)
    }

    fn pts(vs: &[[i64; 2]]) -> Vec<Point> {
        vs.iter().map(|v| Point::new(v.to_vec())).collect()
    }

    #[test]
    fn identical_sets_no_difference() {
        let s = pts(&[[1, 2], [3, 4], [5, 6]]);
        let out = exact_reconcile(&space(), &s, &s, 4, 1).unwrap();
        assert!(out.alice_only.is_empty() && out.bob_only.is_empty());
        let mut got = out.alice_set;
        got.sort();
        let mut want = s;
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn bob_recovers_alice_set_exactly() {
        let shared = pts(&[[1, 1], [2, 2], [3, 3]]);
        let mut alice = shared.clone();
        alice.push(Point::new(vec![100, 100]));
        let mut bob = shared;
        bob.push(Point::new(vec![200, 200]));
        let out = exact_reconcile(&space(), &alice, &bob, 4, 2).unwrap();
        let mut got = out.alice_set;
        got.sort();
        let mut want = alice;
        want.sort();
        assert_eq!(got, want);
        assert_eq!(out.alice_only, pts(&[[100, 100]]));
        assert_eq!(out.bob_only, pts(&[[200, 200]]));
    }

    #[test]
    fn large_shared_small_diff() {
        let shared: Vec<Point> = (0..2000)
            .map(|i| Point::new(vec![i % 1000, i / 2]))
            .collect();
        let mut alice = shared.clone();
        let mut bob = shared;
        for j in 0..5 {
            alice.push(Point::new(vec![990 + j, 990]));
            bob.push(Point::new(vec![990 + j, 991]));
        }
        let out = exact_reconcile(&space(), &alice, &bob, 10, 3).unwrap();
        assert_eq!(out.alice_only.len(), 5);
        assert_eq!(out.bob_only.len(), 5);
        let mut got = out.alice_set;
        got.sort();
        alice.sort();
        assert_eq!(got, alice);
    }

    #[test]
    fn exceeding_bound_fails_cleanly() {
        let alice: Vec<Point> = (0..200).map(|i| Point::new(vec![i, 0])).collect();
        let bob: Vec<Point> = (500..700).map(|i| Point::new(vec![i, 0])).collect();
        let err = exact_reconcile(&space(), &alice, &bob, 4, 4).unwrap_err();
        assert_eq!(err, ExactReconError::DecodeFailed);
    }

    #[test]
    fn communication_proportional_to_bound_not_sets() {
        let s_small: Vec<Point> = (0..50).map(|i| Point::new(vec![i, i])).collect();
        let s_large: Vec<Point> = (0..5000)
            .map(|i| Point::new(vec![i % 1000, i / 5]))
            .collect();
        // Same bound → same table size; only the count-width log factor
        // may differ.
        let a = exact_reconcile(&space(), &s_small, &s_small, 8, 5).unwrap();
        let b = exact_reconcile(&space(), &s_large, &s_large, 8, 5).unwrap();
        let ratio = b.transcript.total_bits() as f64 / a.transcript.total_bits() as f64;
        assert!(ratio < 1.6, "communication grew with set size: {ratio}");
    }
}
