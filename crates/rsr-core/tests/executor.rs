//! Executor behaviour under adversity: per-shard failure isolation,
//! two-choice balance at scale, and deterministic placement — with
//! synthetic sessions, so the properties under test are the executor's
//! alone, not any protocol's.

use rsr_core::channel::Frame;
use rsr_core::executor::{drive_batch, DynSession, Placement};
use rsr_iblt::bits::BitWriter;
use std::time::Duration;

fn frame(label: &'static str) -> Frame {
    let mut w = BitWriter::new();
    w.write(0xAB, 8);
    Frame::seal(label, w)
}

/// Sends `burst` frames, then expects `burst` echoes back.
struct Talker {
    to_send: usize,
    expect: usize,
}

impl DynSession for Talker {
    fn poll_send(&mut self) -> Result<Option<Frame>, String> {
        if self.to_send > 0 {
            self.to_send -= 1;
            return Ok(Some(frame("talk")));
        }
        Ok(None)
    }

    fn on_frame(&mut self, _frame: Frame) -> Result<(), String> {
        self.expect -= 1;
        Ok(())
    }

    fn is_done(&self) -> bool {
        self.to_send == 0 && self.expect == 0
    }
}

/// Echoes every frame straight back.
struct Echo {
    expect: usize,
    queued: usize,
}

impl DynSession for Echo {
    fn poll_send(&mut self) -> Result<Option<Frame>, String> {
        if self.queued > 0 {
            self.queued -= 1;
            return Ok(Some(frame("echo")));
        }
        Ok(None)
    }

    fn on_frame(&mut self, _frame: Frame) -> Result<(), String> {
        self.expect -= 1;
        self.queued += 1;
        Ok(())
    }

    fn is_done(&self) -> bool {
        self.expect == 0 && self.queued == 0
    }
}

/// Behaves like [`Echo`] until the `fail_on`-th frame, then errors
/// mid-stream.
struct FailsMidStream {
    seen: usize,
    fail_on: usize,
    queued: usize,
}

impl DynSession for FailsMidStream {
    fn poll_send(&mut self) -> Result<Option<Frame>, String> {
        if self.queued > 0 {
            self.queued -= 1;
            return Ok(Some(frame("echo")));
        }
        Ok(None)
    }

    fn on_frame(&mut self, _frame: Frame) -> Result<(), String> {
        self.seen += 1;
        if self.seen == self.fail_on {
            return Err(format!("synthetic failure on frame {}", self.fail_on));
        }
        self.queued += 1;
        Ok(())
    }

    fn is_done(&self) -> bool {
        false
    }
}

fn healthy_pair(burst: usize) -> (Box<dyn DynSession>, Box<dyn DynSession>) {
    (
        Box::new(Talker {
            to_send: burst,
            expect: burst,
        }),
        Box::new(Echo {
            expect: burst,
            queued: 0,
        }),
    )
}

#[test]
fn bob_erroring_mid_stream_leaves_shard_mates_untouched() {
    // One shard, so every session shares a worker with the failing one:
    // the executor must isolate the failure, not wedge the shard.
    let mut pairs: Vec<(Box<dyn DynSession>, Box<dyn DynSession>)> = Vec::new();
    for i in 0..16 {
        if i == 7 {
            pairs.push((
                Box::new(Talker {
                    to_send: 5,
                    expect: 5,
                }),
                Box::new(FailsMidStream {
                    seen: 0,
                    fail_on: 3,
                    queued: 0,
                }),
            ));
        } else {
            pairs.push(healthy_pair(2 + i % 3));
        }
    }
    let outcomes = drive_batch(1, 0xfa11, pairs, Duration::from_secs(5));
    for (i, out) in outcomes.iter().enumerate() {
        assert_eq!(out.shard, 0, "single shard");
        if i == 7 {
            assert_eq!(
                out.error.as_deref(),
                Some("synthetic failure on frame 3"),
                "the failing pair reports its own protocol error"
            );
        } else {
            assert!(
                out.is_ok(),
                "pair {i} on the same shard must still complete: {:?}",
                out.error
            );
            let burst = 2 + i % 3;
            assert_eq!(out.transcript.num_messages(), 2 * burst);
        }
    }
}

#[test]
fn two_choice_balance_holds_for_batch_placement() {
    let shards = 8;
    let pairs: Vec<(Box<dyn DynSession>, Box<dyn DynSession>)> =
        (0..512).map(|_| healthy_pair(1)).collect();
    let outcomes = drive_batch(shards, 0xba1a, pairs, Duration::from_secs(10));
    let mut per_shard = vec![0usize; shards];
    for out in &outcomes {
        assert!(out.is_ok());
        per_shard[out.shard] += 1;
    }
    let mean = outcomes.len() / shards;
    for (shard, &count) in per_shard.iter().enumerate() {
        assert!(
            count <= 2 * mean,
            "shard {shard} received {count} sessions, over 2x the mean {mean} \
             (loads: {per_shard:?})"
        );
        assert!(
            count > 0,
            "shard {shard} received nothing (loads: {per_shard:?})"
        );
    }
}

#[test]
fn batch_placement_is_deterministic_across_runs() {
    let run = || {
        let pairs: Vec<(Box<dyn DynSession>, Box<dyn DynSession>)> =
            (0..64).map(|_| healthy_pair(1)).collect();
        drive_batch(4, 0xd37e, pairs, Duration::from_secs(5))
            .iter()
            .map(|o| o.shard)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "same seed and order place identically");
}

#[test]
fn placement_candidates_stay_in_range() {
    let placement = Placement::new(5, 99);
    for id in 0..1000 {
        let (a, b) = placement.candidates(id);
        assert!(a < 5 && b < 5);
    }
}
