//! Property-based tests for the protocol layer: invariants that must hold
//! for *every* input, not just the statistical guarantees.

use proptest::prelude::*;
use rsr_core::emd_protocol::{EmdProtocol, EmdProtocolConfig};
use rsr_core::gap_protocol::{GapConfig, GapProtocol};
use rsr_core::lower_bound::gv_code;
use rsr_core::set_recon::exact_reconcile;
use rsr_hash::lsh::LshParams;
use rsr_hash::BitSamplingFamily;
use rsr_metric::{MetricSpace, Point};
use std::collections::BTreeSet;

fn binary_points(n: usize, dim: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::btree_set(prop::collection::vec(0i64..2, dim), n..=n)
        .prop_map(|s| s.into_iter().map(Point::new).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The EMD protocol's output always has |S'_B| = |S_B| and stays in
    /// the universe, whatever the inputs (success or not, noise or not).
    #[test]
    fn emd_output_invariants(
        alice in binary_points(20, 16),
        bob in binary_points(20, 16),
        seed in 0u64..200,
    ) {
        let space = MetricSpace::hamming(16);
        let cfg = EmdProtocolConfig::for_space(&space, 20, 2);
        let proto = EmdProtocol::new(space, cfg, seed);
        if let Ok(out) = proto.run(&alice, &bob) {
            prop_assert_eq!(out.reconciled.len(), bob.len());
            for p in &out.reconciled {
                prop_assert!(space.universe().contains(p));
            }
            prop_assert!(out.i_star >= 1 && out.i_star <= cfg.num_levels());
            prop_assert!(out.decoded.0 <= 2 * cfg.k && out.decoded.1 <= 2 * cfg.k);
        }
    }

    /// Identical inputs always reconcile to the identical set (whatever
    /// the seed): everything cancels at the finest level.
    #[test]
    fn emd_identical_sets_fixed_point(
        pts in binary_points(15, 24),
        seed in 0u64..200,
    ) {
        let space = MetricSpace::hamming(24);
        let cfg = EmdProtocolConfig::for_space(&space, 15, 2);
        let proto = EmdProtocol::new(space, cfg, seed);
        let out = proto.run(&pts, &pts).expect("identical sets always decode");
        let got: BTreeSet<_> = out.reconciled.iter().cloned().collect();
        let want: BTreeSet<_> = pts.iter().cloned().collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(out.decoded, (0, 0));
    }

    /// The Gap protocol's output is always a superset of Bob's set, and
    /// everything it adds comes verbatim from Alice's set.
    #[test]
    fn gap_output_superset_and_provenance(
        alice in binary_points(15, 32),
        bob in binary_points(15, 32),
        seed in 0u64..100,
    ) {
        let dim = 32;
        let space = MetricSpace::hamming(dim);
        let fam = BitSamplingFamily::new(dim, dim as f64);
        let params = LshParams::new(1.0, 12.0, 1.0 - 1.0 / dim as f64, 1.0 - 12.0 / dim as f64);
        // Generic inputs may exceed the auto-sized fingerprint table, so
        // oversize it: correctness (not communication) is under test.
        let mut cfg = GapConfig::for_params(params, 15, 4);
        cfg.fp_cells = 256;
        let proto = GapProtocol::new(space, &fam, cfg, seed);
        if let Ok(out) = proto.run(&alice, &bob) {
            let alice_set: BTreeSet<_> = alice.iter().cloned().collect();
            let bob_set: BTreeSet<_> = bob.iter().cloned().collect();
            for p in &bob {
                prop_assert!(out.reconciled.contains(p));
            }
            for p in &out.transmitted {
                prop_assert!(alice_set.contains(p), "transmitted point not Alice's");
            }
            prop_assert_eq!(out.reconciled.len(), bob_set.len() + out.transmitted.len());
        }
    }

    /// Exact reconciliation either returns Alice's set exactly or reports
    /// failure — never a silently wrong set.
    #[test]
    fn exact_recon_all_or_nothing(
        alice in binary_points(12, 20),
        bob in binary_points(12, 20),
        seed in 0u64..200,
    ) {
        let space = MetricSpace::hamming(20);
        if let Ok(out) = exact_reconcile(&space, &alice, &bob, 30, seed) {
            let got: BTreeSet<_> = out.alice_set.into_iter().collect();
            let want: BTreeSet<_> = alice.into_iter().collect();
            prop_assert_eq!(got, want);
        }
    }

    /// GV codes, when they exist, always respect the minimum distance.
    #[test]
    fn gv_code_min_distance(count in 2usize..10, seed in 0u64..100) {
        let len = 48;
        let min_dist = 12;
        if let Some(code) = gv_code(count, len, min_dist, seed) {
            prop_assert_eq!(code.len(), count);
            for i in 0..count {
                prop_assert_eq!(code[i].len(), len);
                for j in (i + 1)..count {
                    let dist = code[i].iter().zip(&code[j]).filter(|(a, b)| a != b).count();
                    prop_assert!(dist >= min_dist);
                }
            }
        }
    }

    /// Transcript totals always equal the sum of their entries, with bytes
    /// rounded up per message (each message is its own byte buffer).
    #[test]
    fn transcript_sums(bits in prop::collection::vec(0u64..1_000_000, 0..10)) {
        let mut t = rsr_core::Transcript::new();
        for (i, &b) in bits.iter().enumerate() {
            t.record(format!("m{i}"), b);
        }
        prop_assert_eq!(t.total_bits(), bits.iter().sum::<u64>());
        prop_assert_eq!(t.num_messages(), bits.len());
        prop_assert_eq!(t.num_rounds(), bits.len());
        prop_assert_eq!(t.total_bytes(), bits.iter().map(|b| b.div_ceil(8)).sum::<u64>());
    }
}
