//! Property tests for continuous reconciliation: after *any*
//! interleaving of inserts and deletes, round-r incremental
//! reconciliation must settle to exactly what a fresh one-shot session
//! over the current sets would produce — the invariant that makes the
//! incremental mode a pure optimization, never a semantic change.

use proptest::prelude::*;
use rsr_core::continuous::{ContinuousConfig, ContinuousParty, ContinuousSession};
use rsr_core::set_recon::exact_reconcile;
use rsr_iblt::iblt::DecodeMode;
use rsr_metric::{MetricSpace, Point};
use std::collections::BTreeSet;

/// Keys live in a small universe so random deletes actually hit and
/// random inserts actually collide across the parties.
const UNIVERSE: u64 = 64;

fn current_sets(s: &ContinuousSession) -> (BTreeSet<u64>, BTreeSet<u64>) {
    let a = s.alice().lock().unwrap().set().clone();
    let b = s.bob().lock().unwrap().set().clone();
    (a, b)
}

/// The reference: a brand-new pair built from the raw current sets,
/// reconciled in one shot (its first round covers the full difference).
fn one_shot_settle(cfg: ContinuousConfig, a: &BTreeSet<u64>, b: &BTreeSet<u64>) -> BTreeSet<u64> {
    let mut fresh = ContinuousSession::new(
        ContinuousParty::new(cfg, a.iter().copied()),
        ContinuousParty::new(cfg, b.iter().copied()),
    );
    fresh.drive_round().expect("one-shot reference settles");
    let (fa, fb) = current_sets(&fresh);
    assert_eq!(fa, fb, "one-shot reference diverged");
    fa
}

/// One streamed mutation: which party (0/1), insert-or-delete (0/1),
/// which key. The flags are `u8` because the compat `proptest` strategy
/// set has ranges but no `any::<bool>()`.
type Op = (u8, u8, u64);

fn apply_ops(s: &ContinuousSession, ops: &[Op]) {
    for &(on_alice, is_insert, key) in ops {
        let party = if on_alice != 0 { s.alice() } else { s.bob() };
        let mut p = party.lock().unwrap();
        if is_insert != 0 {
            p.insert(key).expect("mutable between rounds");
        } else {
            p.remove(key).expect("mutable between rounds");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: whatever churn lands between rounds, every
    /// incremental round settles both parties to the same set a fresh
    /// one-shot session over the current raw sets settles to (the union),
    /// and the independent exact-reconciliation protocol agrees where its
    /// difference bound applies.
    #[test]
    fn incremental_rounds_match_a_fresh_one_shot(
        a_init in prop::collection::btree_set(0u64..UNIVERSE, 0..24),
        b_init in prop::collection::btree_set(0u64..UNIVERSE, 0..24),
        churn in prop::collection::vec(
            prop::collection::vec((0u8..2, 0u8..2, 0u64..UNIVERSE), 0..12),
            1..4,
        ),
        seed in 0u64..40,
    ) {
        // The bound covers the whole universe, so every round decodes.
        let cfg = ContinuousConfig::for_churn(UNIVERSE as usize, seed);
        let mut s = ContinuousSession::new(
            ContinuousParty::new(cfg, a_init.iter().copied()),
            ContinuousParty::new(cfg, b_init.iter().copied()),
        );
        for (r, ops) in churn.iter().enumerate() {
            apply_ops(&s, ops);
            let (a_raw, b_raw) = current_sets(&s);
            let expect: BTreeSet<u64> = a_raw.union(&b_raw).copied().collect();

            s.drive_round().unwrap_or_else(|e| panic!("round {r}: {e}"));
            let (a_settled, b_settled) = current_sets(&s);
            prop_assert_eq!(&a_settled, &b_settled, "round {} diverged", r);
            prop_assert_eq!(&a_settled, &expect, "round {} is not the union", r);

            // A fresh one-shot over the same raw sets lands identically.
            let reference = one_shot_settle(cfg, &a_raw, &b_raw);
            prop_assert_eq!(&a_settled, &reference, "round {} != one-shot", r);

            // Cross-check against the exact set-reconciliation protocol
            // (keys as 1-d points): union = Bob's set + Alice-only.
            let space = MetricSpace::l1(UNIVERSE as i64, 1);
            let pts = |set: &BTreeSet<u64>| -> Vec<Point> {
                set.iter().map(|&k| Point::new(vec![k as i64])).collect()
            };
            let out = exact_reconcile(
                &space,
                &pts(&a_raw),
                &pts(&b_raw),
                UNIVERSE as usize,
                seed ^ 0xc0_5e11,
            )
            .expect("difference fits the bound");
            let mut via_exact = b_raw.clone();
            via_exact.extend(out.alice_only.iter().map(|p| p.coords()[0] as u64));
            prop_assert_eq!(&a_settled, &via_exact, "round {} != exact recon", r);
        }
        prop_assert_eq!(s.rounds(), churn.len());
    }

    /// Wire transcripts are decode-mode independent: the decode mode only
    /// governs how Bob inverts the round's difference table, never what
    /// either party says on the wire. Driving the same churn under
    /// [`DecodeMode::PeelOnly`] and [`DecodeMode::Hybrid`] configs must
    /// produce bit-for-bit identical transcripts and identical settled
    /// sets on every round the peel-only session can settle at all.
    #[test]
    fn transcripts_are_decode_mode_independent(
        a_init in prop::collection::btree_set(0u64..UNIVERSE, 0..24),
        b_init in prop::collection::btree_set(0u64..UNIVERSE, 0..24),
        churn in prop::collection::vec(
            prop::collection::vec((0u8..2, 0u8..2, 0u64..UNIVERSE), 0..12),
            1..4,
        ),
        seed in 0u64..40,
    ) {
        let base = ContinuousConfig::for_churn(UNIVERSE as usize, seed);
        let build = |mode| {
            ContinuousSession::new(
                ContinuousParty::new(base.with_decode_mode(mode), a_init.iter().copied()),
                ContinuousParty::new(base.with_decode_mode(mode), b_init.iter().copied()),
            )
        };
        let mut peel = build(DecodeMode::PeelOnly);
        let mut hybrid = build(DecodeMode::Hybrid);
        for (r, ops) in churn.iter().enumerate() {
            apply_ops(&peel, ops);
            apply_ops(&hybrid, ops);
            // The bound covers the universe, so both modes settle here;
            // stop comparing if peel-only ever stalls (hybrid may then
            // legitimately settle a round peel cannot).
            if peel.drive_round().is_err() {
                return Ok(());
            }
            hybrid.drive_round().unwrap_or_else(|e| {
                panic!("round {r}: hybrid failed where peel succeeded: {e}")
            });
            let pt: Vec<(&str, u64)> = peel.segments()[r].entries().collect();
            let ht: Vec<(&str, u64)> = hybrid.segments()[r].entries().collect();
            prop_assert_eq!(pt, ht, "round {} transcripts differ", r);
            let (pa, _) = current_sets(&peel);
            let (ha, _) = current_sets(&hybrid);
            prop_assert_eq!(pa, ha, "round {} settled sets differ", r);
        }
    }

    /// Failure atomicity: a round may fail (churn past the table bound),
    /// but then *nothing* moves — both sets and both round counters stay
    /// exactly as they were, and the pair remains drivable.
    #[test]
    fn failed_rounds_never_mutate(
        base in prop::collection::btree_set(0u64..UNIVERSE, 0..16),
        flood in prop::collection::btree_set(1000u64..5000, 20..60),
        seed in 0u64..40,
    ) {
        let cfg = ContinuousConfig::for_churn(4, seed); // deliberately tiny
        let mut s = ContinuousSession::new(
            ContinuousParty::new(cfg, base.iter().copied()),
            ContinuousParty::new(cfg, base.iter().copied()),
        );
        s.drive_round().expect("equal sets settle in any table");
        {
            let alice = s.alice();
            let mut a = alice.lock().unwrap();
            for &k in &flood {
                a.insert(k).unwrap();
            }
        }
        let before = current_sets(&s);
        match s.drive_round() {
            // A 20+-key difference cannot peel 8 cells, but stay honest
            // in case a pathological layout ever does.
            Ok(_) => {
                let (a, b) = current_sets(&s);
                prop_assert_eq!(a, b);
            }
            Err(_) => {
                prop_assert_eq!(current_sets(&s), before);
                let alice = s.alice();
                let bob = s.bob();
                prop_assert_eq!(alice.lock().unwrap().rounds_settled(), 1);
                prop_assert_eq!(bob.lock().unwrap().rounds_settled(), 1);
                prop_assert_eq!(alice.lock().unwrap().rounds_failed() > 0, true);
            }
        }
    }
}
