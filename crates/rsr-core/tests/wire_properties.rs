//! Property tests for the wire codec: every protocol message type must
//! encode to real bytes and decode back byte-exactly, and the transcript
//! totals a session run reports must equal the sum of the encoded message
//! lengths as observed on the channel.

use proptest::prelude::*;
use rsr_core::channel::InMemoryChannel;
use rsr_core::emd_protocol::{EmdMessage, EmdProtocol, EmdProtocolConfig};
use rsr_core::gap_protocol::{GapConfig, GapProtocol};
use rsr_core::session::drive;
use rsr_core::transcript::Party;
use rsr_core::ScaledEmdProtocol;
use rsr_hash::lsh::LshParams;
use rsr_hash::BitSamplingFamily;
use rsr_iblt::bits::{BitReader, BitWriter};
use rsr_metric::{GridUniverse, MetricSpace, Point};

fn binary_points(n: usize, dim: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::btree_set(prop::collection::vec(0i64..2, dim), n..=n)
        .prop_map(|s| s.into_iter().map(Point::new).collect())
}

fn encode_msg(msg: &EmdMessage) -> Vec<u8> {
    let mut w = BitWriter::new();
    msg.write_wire(&mut w);
    w.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The EMD message (a 32-bit header plus `t` RIBLTs) round-trips:
    /// re-encoding the decoded message reproduces the exact bytes, the
    /// buffer length is the accounted bits rounded up, and Bob's decode of
    /// the reconstruction matches the original bit-for-bit.
    #[test]
    fn emd_message_roundtrip(
        alice in binary_points(18, 16),
        bob in binary_points(18, 16),
        seed in 0u64..500,
    ) {
        let space = MetricSpace::hamming(16);
        let cfg = EmdProtocolConfig::for_space(&space, 18, 2);
        let proto = EmdProtocol::new(space, cfg, seed);
        let msg = proto.alice_encode(&alice);
        let bytes = encode_msg(&msg);
        prop_assert_eq!(bytes.len() as u64, msg.wire_bits().div_ceil(8));
        let back = EmdMessage::read_wire(&mut BitReader::new(&bytes), &proto)
            .expect("well-formed buffer decodes");
        prop_assert_eq!(encode_msg(&back), bytes);
        prop_assert_eq!(back.wire_bits(), msg.wire_bits());
        match (proto.bob_decode(&msg, &bob), proto.bob_decode(&back, &bob)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.reconciled, b.reconciled);
                prop_assert_eq!(a.i_star, b.i_star);
                prop_assert_eq!(a.decoded, b.decoded);
            }
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "decode disagreed across serialization"),
        }
    }

    /// A valid EMD message followed by trailing garbage is rejected by the
    /// session layer's exact-consumption check — a well-formed prefix must
    /// not decode silently.
    #[test]
    fn emd_frame_with_trailing_garbage_rejected(
        alice in binary_points(10, 16),
        seed in 0u64..100,
        garbage in 1u64..200,
    ) {
        let space = MetricSpace::hamming(16);
        let cfg = EmdProtocolConfig::for_space(&space, 10, 2);
        let proto = EmdProtocol::new(space, cfg, seed);
        let msg = proto.alice_encode(&alice);
        let mut w = BitWriter::new();
        msg.write_wire(&mut w);
        w.write(garbage, 16); // a second message's worth of extra bits
        let frame = rsr_core::channel::Frame::seal("alice→bob: RIBLTs", w);
        // The prefix alone decodes…
        prop_assert!(EmdMessage::read_wire(&mut frame.reader(), &proto).is_some());
        // …but the exact-consumption gate rejects the frame.
        prop_assert!(frame
            .decode_exact(|r| EmdMessage::read_wire(r, &proto))
            .is_none());
    }

    /// Truncating an EMD message buffer is always detected.
    #[test]
    fn emd_message_truncation_rejected(
        alice in binary_points(12, 16),
        seed in 0u64..200,
        cut in 1usize..64,
    ) {
        let space = MetricSpace::hamming(16);
        let cfg = EmdProtocolConfig::for_space(&space, 12, 2);
        let proto = EmdProtocol::new(space, cfg, seed);
        let bytes = encode_msg(&proto.alice_encode(&alice));
        let cut = cut.min(bytes.len());
        let truncated = &bytes[..bytes.len() - cut];
        prop_assert!(EmdMessage::read_wire(&mut BitReader::new(truncated), &proto).is_none());
    }

    /// Far-element point lists round-trip over arbitrary grid universes.
    #[test]
    fn point_list_roundtrip(
        delta in 2i64..600,
        dim in 1usize..6,
        raw in prop::collection::vec(0u32..1_000_000, 0..40),
    ) {
        let u = GridUniverse::new(delta, dim);
        let points: Vec<Point> = raw
            .chunks(dim)
            .filter(|c| c.len() == dim)
            .map(|c| Point::new(c.iter().map(|&v| i64::from(v) % delta).collect()))
            .collect();
        let mut w = BitWriter::new();
        rsr_core::wire::put_points(&mut w, &points, &u);
        let bits = w.bit_len();
        prop_assert_eq!(bits, 32 + points.len() as u64 * u.point_wire_bits());
        let buf = w.finish();
        let back = rsr_core::wire::get_points(&mut BitReader::new(&buf), &u);
        prop_assert_eq!(back, Some(points));
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Driving the EMD sessions over an instrumented channel: the
    /// transcript's totals equal the sum of the encoded message lengths
    /// that crossed the channel — bit for bit, byte for byte — and the
    /// one-message protocol is one round.
    #[test]
    fn emd_transcript_equals_channel_traffic(
        alice in binary_points(16, 16),
        bob in binary_points(16, 16),
        seed in 0u64..200,
    ) {
        let space = MetricSpace::hamming(16);
        let cfg = EmdProtocolConfig::for_space(&space, 16, 2);
        let proto = EmdProtocol::new(space, cfg, seed);
        let mut a = proto.alice_session(&alice);
        let mut b = proto.bob_session(&bob);
        let mut channel = InMemoryChannel::new();
        let Ok(transcript) = drive(&mut channel, Party::Alice, &mut a, &mut b) else {
            return Ok(()); // protocol-level decode failure: nothing to check
        };
        prop_assert_eq!(transcript.total_bits(), channel.bits_sent());
        prop_assert_eq!(transcript.total_bytes(), channel.bytes_sent());
        prop_assert_eq!(transcript.num_messages(), channel.frames_sent());
        prop_assert_eq!(transcript.num_messages(), 1);
        prop_assert_eq!(transcript.num_rounds(), 1);
    }

    /// Same for the Gap protocol: four messages, four rounds, measured
    /// totals identical to the channel's counters.
    #[test]
    fn gap_transcript_equals_channel_traffic(
        alice in binary_points(14, 32),
        bob in binary_points(14, 32),
        seed in 0u64..100,
    ) {
        let dim = 32;
        let space = MetricSpace::hamming(dim);
        let fam = BitSamplingFamily::new(dim, dim as f64);
        let params = LshParams::new(1.0, 12.0, 1.0 - 1.0 / dim as f64, 1.0 - 12.0 / dim as f64);
        let mut cfg = GapConfig::for_params(params, 14, 4);
        cfg.fp_cells = 256; // oversize: traffic accounting is under test
        let proto = GapProtocol::new(space, &fam, cfg, seed);
        let mut a = proto.alice_session(&alice);
        let mut b = proto.bob_session(&bob);
        let mut channel = InMemoryChannel::new();
        let Ok(transcript) = drive(&mut channel, Party::Bob, &mut a, &mut b) else {
            return Ok(());
        };
        prop_assert_eq!(transcript.total_bits(), channel.bits_sent());
        prop_assert_eq!(transcript.total_bytes(), channel.bytes_sent());
        prop_assert_eq!(transcript.num_messages(), 4);
        prop_assert_eq!(transcript.num_rounds(), 4);
    }

    /// The interval-scaled protocol sends one message per interval but —
    /// by the round counter driven from actual channel turns — uses a
    /// single round.
    #[test]
    fn scaled_emd_is_many_messages_one_round(
        pts in binary_points(14, 16),
        seed in 0u64..100,
    ) {
        let space = MetricSpace::hamming(16);
        let proto = ScaledEmdProtocol::new(space, 14, 2, seed);
        let mut a = proto.alice_session(&pts);
        let mut b = proto.bob_session(&pts);
        let mut channel = InMemoryChannel::new();
        let Ok(transcript) = drive(&mut channel, Party::Alice, &mut a, &mut b) else {
            return Ok(());
        };
        prop_assert_eq!(transcript.num_messages(), proto.num_intervals());
        prop_assert!(proto.num_intervals() >= 2);
        prop_assert_eq!(transcript.num_rounds(), 1);
        prop_assert_eq!(transcript.total_bits(), channel.bits_sent());
        let outcome = b.into_outcome().expect("bob finished");
        prop_assert_eq!(outcome.total_bits, channel.bits_sent());
    }
}
