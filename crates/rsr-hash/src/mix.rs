//! Strong 64-bit mixing primitives.
//!
//! A single high-quality finalizer (SplitMix64's, due to Stafford/Steele)
//! underlies the checksum function and tuple hashing. It is a bijection on
//! `u64`, passes avalanche tests, and costs a handful of cycles — the right
//! tool where the paper asks only that "with high probability none of the
//! distinct keys' checksums collide" (§2.2).

/// SplitMix64 finalizer: a bijective avalanche mix of a 64-bit word.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines an accumulator with the next word (order-sensitive).
#[inline]
pub fn combine(acc: u64, next: u64) -> u64 {
    // Rotate to make the combiner non-commutative, then remix.
    mix64(acc.rotate_left(23) ^ next)
}

/// Hashes a slice of words under a seed. Distinct seeds give (empirically)
/// independent hash functions; used wherever the paper draws "a hash
/// function" whose only requirement is negligible collision probability.
pub fn hash_words(seed: u64, words: &[u64]) -> u64 {
    let mut acc = mix64(seed ^ 0xA076_1D64_78BD_642F);
    for &w in words {
        acc = combine(acc, mix64(w));
    }
    // Fold in the length so prefixes do not collide with their extensions.
    combine(acc, words.len() as u64)
}

/// Incremental version of [`hash_words`]: feed words one at a time and read
/// the running hash at any prefix length. The Algorithm 1 key schedule needs
/// the hash of *every* prefix of the MLSH vector; this makes that O(s) total
/// instead of O(s²).
#[derive(Clone, Debug)]
pub struct IncrementalHasher {
    acc: u64,
    len: u64,
}

impl IncrementalHasher {
    /// Starts a new stream under `seed`.
    pub fn new(seed: u64) -> Self {
        IncrementalHasher {
            acc: mix64(seed ^ 0xA076_1D64_78BD_642F),
            len: 0,
        }
    }

    /// Feeds the next word.
    pub fn update(&mut self, w: u64) {
        self.acc = combine(self.acc, mix64(w));
        self.len += 1;
    }

    /// Hash of the prefix fed so far (length-tagged, matching
    /// [`hash_words`]).
    pub fn current(&self) -> u64 {
        combine(self.acc, self.len)
    }

    /// Number of words fed so far.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if no words have been fed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_nontrivial() {
        assert_eq!(mix64(0), mix64(0));
        assert_ne!(mix64(0), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn hash_words_sensitive_to_order() {
        assert_ne!(hash_words(1, &[1, 2]), hash_words(1, &[2, 1]));
    }

    #[test]
    fn hash_words_sensitive_to_seed() {
        assert_ne!(hash_words(1, &[1, 2, 3]), hash_words(2, &[1, 2, 3]));
    }

    #[test]
    fn prefix_does_not_collide_with_extension() {
        assert_ne!(hash_words(9, &[5]), hash_words(9, &[5, 0]));
        assert_ne!(hash_words(9, &[]), hash_words(9, &[0]));
    }

    #[test]
    fn incremental_matches_batch() {
        let words = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let mut inc = IncrementalHasher::new(77);
        for (i, &w) in words.iter().enumerate() {
            inc.update(w);
            assert_eq!(inc.current(), hash_words(77, &words[..=i]));
        }
        assert_eq!(inc.len(), words.len() as u64);
    }

    #[test]
    fn empty_incremental_matches_empty_batch() {
        let inc = IncrementalHasher::new(42);
        assert!(inc.is_empty());
        assert_eq!(inc.current(), hash_words(42, &[]));
    }

    #[test]
    fn avalanche_smoke() {
        // Flipping one input bit should flip roughly half the output bits.
        let mut total = 0u32;
        let samples = 1000u64;
        for i in 0..samples {
            let a = mix64(i);
            let b = mix64(i ^ 1);
            total += (a ^ b).count_ones();
        }
        let avg = f64::from(total) / samples as f64;
        assert!((24.0..40.0).contains(&avg), "poor avalanche: {avg}");
    }
}
