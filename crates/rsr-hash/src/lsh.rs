//! Locality sensitive hashing (Definition 2.1 of the paper).

use rand::Rng;
use rsr_metric::Point;

/// Parameters `(r1, r2, p1, p2)` of an LSH family (Definition 2.1):
/// points within `r1` collide with probability ≥ `p1`; points farther than
/// `r2` collide with probability ≤ `p2`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LshParams {
    /// Near radius `r1`.
    pub r1: f64,
    /// Far radius `r2 > r1`.
    pub r2: f64,
    /// Near collision probability lower bound `p1`.
    pub p1: f64,
    /// Far collision probability upper bound `p2 < p1`.
    pub p2: f64,
}

impl LshParams {
    /// Creates validated parameters.
    pub fn new(r1: f64, r2: f64, p1: f64, p2: f64) -> Self {
        assert!(r1 < r2, "need r1 < r2 (got {r1}, {r2})");
        assert!(p1 > p2, "need p1 > p2 (got {p1}, {p2})");
        assert!((0.0..=1.0).contains(&p1) && (0.0..=1.0).contains(&p2));
        LshParams { r1, r2, p1, p2 }
    }

    /// The meta-parameter `ρ = log(p1)/log(p2)` ("the key parameter of
    /// interest in the analysis of many approximate nearest neighbor
    /// algorithms", §2.1). For `p2 = 0` (one-sided families) this is 0.
    pub fn rho(&self) -> f64 {
        if self.p2 == 0.0 {
            0.0
        } else {
            self.p1.ln() / self.p2.ln()
        }
    }
}

/// One sampled hash function `h : U → V` (we encode the range `V` as `u64`).
pub trait LshFunction {
    /// Evaluates the function on a point.
    fn hash(&self, p: &Point) -> u64;
}

/// A locality sensitive hash family `H` with respect to some `(U, f)`.
pub trait LshFamily {
    /// The type of sampled functions.
    type Function: LshFunction;

    /// Samples `h ∼ H`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Function;

    /// The `(r1, r2, p1, p2)` guarantee this family provides.
    fn params(&self) -> LshParams;

    /// Samples `count` independent functions.
    fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<Self::Function> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_of_standard_params() {
        // p1 = 1/2, p2 = 1/4 gives ρ = 1/2.
        let p = LshParams::new(1.0, 2.0, 0.5, 0.25);
        assert!((p.rho() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rho_one_sided_is_zero() {
        let p = LshParams::new(1.0, 2.0, 0.9, 0.0);
        assert_eq!(p.rho(), 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_radii() {
        LshParams::new(2.0, 1.0, 0.5, 0.25);
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_probs() {
        LshParams::new(1.0, 2.0, 0.25, 0.5);
    }
}
