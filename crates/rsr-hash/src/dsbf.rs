//! Distance-sensitive Bloom filters (Kirsch & Mitzenmacher, ALENEX 2006 —
//! the paper's reference \[18\]).
//!
//! "The idea of using hash-based data structures to handle close matches
//! appears in the work of Kirsch and Mitzenmacher, who consider
//! generalizing Bloom filters … by making use of locality-sensitive hash
//! functions to return a positive result if a query is close to a set
//! element" (§1.1). We build it as an extra substrate and use it in the
//! experiments as a *cheaper but weaker* alternative far-point detector:
//! a DSBF answers "is q near some set element?" with two-sided constant
//! error, whereas the Gap protocol's key comparison gives the paper's
//! one-sided w.h.p. guarantee.
//!
//! Construction: `l` groups, each a concatenation of `m` LSH draws mapped
//! into a `b`-bit array. A query is *near* if at least `τ·l` groups hit a
//! set bit.

use crate::lsh::{LshFamily, LshFunction};
use crate::mix::IncrementalHasher;
use rand::Rng;
use rsr_metric::Point;

/// A distance-sensitive Bloom filter over an LSH family.
pub struct DistanceSensitiveBloom<F: LshFamily> {
    groups: Vec<Vec<F::Function>>,
    bits: Vec<Vec<bool>>,
    bits_per_group: usize,
    threshold: f64,
}

impl<F: LshFamily> DistanceSensitiveBloom<F> {
    /// Creates an empty filter: `l` groups of `m` concatenated LSH draws,
    /// `bits_per_group` bits each, near-decision threshold `τ ∈ (0, 1]`.
    pub fn new<R: Rng + ?Sized>(
        family: &F,
        l: usize,
        m: usize,
        bits_per_group: usize,
        threshold: f64,
        rng: &mut R,
    ) -> Self {
        assert!(l >= 1 && m >= 1 && bits_per_group >= 2);
        assert!(threshold > 0.0 && threshold <= 1.0);
        DistanceSensitiveBloom {
            groups: (0..l).map(|_| family.sample_many(rng, m)).collect(),
            bits: vec![vec![false; bits_per_group]; l],
            bits_per_group,
            threshold,
        }
    }

    fn bucket(&self, group: usize, p: &Point) -> usize {
        let mut inc = IncrementalHasher::new(0xd5bf ^ group as u64);
        for f in &self.groups[group] {
            inc.update(f.hash(p));
        }
        (inc.current() % self.bits_per_group as u64) as usize
    }

    /// Inserts a point.
    pub fn insert(&mut self, p: &Point) {
        for g in 0..self.groups.len() {
            let b = self.bucket(g, p);
            self.bits[g][b] = true;
        }
    }

    /// Fraction of groups whose bucket for `q` is set.
    pub fn hit_fraction(&self, q: &Point) -> f64 {
        let hits = (0..self.groups.len())
            .filter(|&g| self.bits[g][self.bucket(g, q)])
            .count();
        hits as f64 / self.groups.len() as f64
    }

    /// The near/far decision: true if the hit fraction reaches `τ`.
    pub fn is_near(&self, q: &Point) -> bool {
        self.hit_fraction(q) >= self.threshold
    }

    /// Wire size in bits (the group bit-arrays; the functions are public
    /// coins).
    pub fn wire_bits(&self) -> u64 {
        (self.groups.len() * self.bits_per_group) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit_sampling::BitSamplingFamily;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build(dim: usize, pts: &[Point], seed: u64) -> DistanceSensitiveBloom<BitSamplingFamily> {
        let fam = BitSamplingFamily::new(dim, dim as f64);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut f = DistanceSensitiveBloom::new(&fam, 32, 10, 256, 0.5, &mut rng);
        for p in pts {
            f.insert(p);
        }
        f
    }

    fn rand_point(dim: usize, rng: &mut StdRng) -> Point {
        Point::from_bits(&(0..dim).map(|_| rng.gen()).collect::<Vec<bool>>())
    }

    #[test]
    fn members_always_near() {
        let dim = 128;
        let mut rng = StdRng::seed_from_u64(1);
        let pts: Vec<Point> = (0..20).map(|_| rand_point(dim, &mut rng)).collect();
        let f = build(dim, &pts, 2);
        for p in &pts {
            assert_eq!(f.hit_fraction(p), 1.0);
            assert!(f.is_near(p));
        }
    }

    #[test]
    fn close_points_mostly_near() {
        let dim = 128;
        let mut rng = StdRng::seed_from_u64(3);
        let pts: Vec<Point> = (0..20).map(|_| rand_point(dim, &mut rng)).collect();
        let f = build(dim, &pts, 4);
        let mut near = 0;
        for p in &pts {
            let mut bits = p.as_bits().unwrap();
            bits[0] = !bits[0]; // distance 1
            if f.is_near(&Point::from_bits(&bits)) {
                near += 1;
            }
        }
        assert!(near >= 17, "only {near}/20 close queries near");
    }

    #[test]
    fn far_points_mostly_far() {
        let dim = 128;
        let mut rng = StdRng::seed_from_u64(5);
        let pts: Vec<Point> = (0..20).map(|_| rand_point(dim, &mut rng)).collect();
        let f = build(dim, &pts, 6);
        let mut far = 0;
        for _ in 0..20 {
            let q = rand_point(dim, &mut rng); // expected distance d/2
            if !f.is_near(&q) {
                far += 1;
            }
        }
        assert!(far >= 15, "only {far}/20 far queries rejected");
    }

    #[test]
    fn hit_fraction_monotone_in_distance() {
        let dim = 128;
        let mut rng = StdRng::seed_from_u64(7);
        let pts: Vec<Point> = (0..10).map(|_| rand_point(dim, &mut rng)).collect();
        let f = build(dim, &pts, 8);
        let base = &pts[0];
        let frac_at = |dist: usize| -> f64 {
            let mut bits = base.as_bits().unwrap();
            for b in bits.iter_mut().take(dist) {
                *b = !*b;
            }
            f.hit_fraction(&Point::from_bits(&bits))
        };
        assert!(
            frac_at(1) >= frac_at(30),
            "{} < {}",
            frac_at(1),
            frac_at(30)
        );
    }

    #[test]
    fn wire_bits_constant_in_set_size() {
        let dim = 64;
        let mut rng = StdRng::seed_from_u64(9);
        let small: Vec<Point> = (0..5).map(|_| rand_point(dim, &mut rng)).collect();
        let large: Vec<Point> = (0..500).map(|_| rand_point(dim, &mut rng)).collect();
        assert_eq!(
            build(dim, &small, 10).wire_bits(),
            build(dim, &large, 10).wire_bits()
        );
    }
}
