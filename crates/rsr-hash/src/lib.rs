//! Hashing substrate for robust set reconciliation.
//!
//! Implements every hash-shaped object the paper needs:
//!
//! * [`mix`] — strong 64-bit mixing (SplitMix64 finalizer), the workhorse
//!   behind checksums and tuple hashing;
//! * [`pairwise`] — the classic 2-wise independent family
//!   `h(x) = ((a·x + b) mod p) mod 2^bits` over the Mersenne prime
//!   `p = 2^61 − 1` (the paper's "pairwise independent hash function with
//!   range {0,1}^Θ(log n)");
//! * [`checksum`] — keyed key-checksums for IBLT/RIBLT cells;
//! * [`lsh`] / [`mlsh`] — the locality-sensitive-hash trait (Definition 2.1)
//!   and its multi-scale strengthening (Definition 2.2);
//! * [`bit_sampling`] — the Hamming MLSH of Lemma 2.3;
//! * [`grid`] — the randomly-shifted-lattice ℓ1 MLSH of Lemma 2.4;
//! * [`pstable`] — the 2-stable (Gaussian) ℓ2 MLSH of Lemma 2.5;
//! * [`onesided`] — the one-sided (`p2 = 0`) grid LSH of §E.1/Thm 4.5;
//! * [`keys`] — LSH-vector key construction: multi-resolution prefix keys
//!   for Algorithm 1 and batched Gap-Guarantee keys for §4.1.
//!
//! All randomness is drawn through caller-provided RNGs so that Alice and
//! Bob can derive identical hash functions from a shared seed ("public
//! coins", §2).

pub mod bit_sampling;
pub mod checksum;
pub mod dsbf;
pub mod grid;
pub mod keys;
pub mod lsh;
pub mod mix;
pub mod mlsh;
pub mod onesided;
pub mod pairwise;
pub mod pstable;

pub use bit_sampling::BitSamplingFamily;
pub use checksum::Checksum;
pub use dsbf::DistanceSensitiveBloom;
pub use grid::GridFamily;
pub use lsh::{LshFamily, LshFunction, LshParams};
pub use mlsh::{MlshFamily, MlshParams};
pub use onesided::OneSidedGridFamily;
pub use pairwise::PairwiseHash;
pub use pstable::PStableFamily;
