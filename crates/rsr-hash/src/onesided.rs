//! One-sided grid LSH for `([Δ]^d, ℓ_p)` (Appendix E.1 / Theorem 4.5).
//!
//! "Construct a randomly shifted grid of width r2/d^{1/p}. A point's hash
//! value is the grid cell it falls into. Since the maximum distance apart
//! two points falling in the same grid cell can be is exactly r2, p2 = 0."
//! The near probability is `p1 ≥ 1 − r1·d/r2` (union bound + Jensen), so
//! the family's quality parameter is `ρ̂ = r1·d/r2`.

use crate::lsh::{LshFamily, LshFunction, LshParams};
use crate::mix::IncrementalHasher;
use rand::Rng;
use rsr_metric::Point;

/// The one-sided grid family for `([Δ]^d, ℓ_p)` with gap radii `(r1, r2)`.
#[derive(Clone, Copy, Debug)]
pub struct OneSidedGridFamily {
    dim: usize,
    p: f64,
    r1: f64,
    r2: f64,
}

/// One sampled one-sided function (a shifted grid of width `r2/d^{1/p}`).
#[derive(Clone, Debug)]
pub struct OneSidedGridFn {
    offsets: Vec<f64>,
    width: f64,
}

impl OneSidedGridFamily {
    /// Creates the family. `p` is the norm exponent (`p ≥ 1`); requires
    /// `r1·d < r2` for a nontrivial guarantee (otherwise `p1 ≤ 0`).
    pub fn new(dim: usize, p: f64, r1: f64, r2: f64) -> Self {
        assert!(dim >= 1);
        assert!(p >= 1.0);
        assert!(0.0 < r1 && r1 < r2);
        OneSidedGridFamily { dim, p, r1, r2 }
    }

    /// The cell width `r2 / d^{1/p}`.
    pub fn cell_width(&self) -> f64 {
        self.r2 / (self.dim as f64).powf(1.0 / self.p)
    }

    /// The quality parameter `ρ̂ = r1·d/r2` of Theorem 4.5.
    pub fn rho_hat(&self) -> f64 {
        self.r1 * self.dim as f64 / self.r2
    }
}

impl LshFunction for OneSidedGridFn {
    fn hash(&self, p: &Point) -> u64 {
        let mut inc = IncrementalHasher::new(0x05e1_ded1);
        for (j, &c) in p.coords().iter().enumerate() {
            inc.update((((c as f64 + self.offsets[j]) / self.width).floor() as i64) as u64);
        }
        inc.current()
    }
}

impl LshFamily for OneSidedGridFamily {
    type Function = OneSidedGridFn;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> OneSidedGridFn {
        let width = self.cell_width();
        OneSidedGridFn {
            offsets: (0..self.dim).map(|_| rng.gen::<f64>() * width).collect(),
            width,
        }
    }

    fn params(&self) -> LshParams {
        let p1 = (1.0 - self.rho_hat()).max(f64::MIN_POSITIVE);
        LshParams::new(self.r1, self.r2, p1, 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsr_metric::Metric;

    #[test]
    fn same_cell_implies_within_r2() {
        // p2 = 0 exactly: points hashing together are within r2.
        let dim = 3;
        let fam = OneSidedGridFamily::new(dim, 2.0, 1.0, 30.0);
        let mut rng = StdRng::seed_from_u64(30);
        let m = Metric::L2;
        for _ in 0..2000 {
            let h = fam.sample(&mut rng);
            let x = Point::new((0..dim).map(|_| rng.gen_range(0..100)).collect());
            let y = Point::new((0..dim).map(|_| rng.gen_range(0..100)).collect());
            if h.hash(&x) == h.hash(&y) && m.distance(&x, &y) > 30.0 + 1e-9 {
                // A mixing collision of the cell tuple is astronomically
                // unlikely; same hash must mean same cell ⇒ within r2.
                panic!(
                    "far points collided: {:?} {:?} dist {}",
                    x,
                    y,
                    m.distance(&x, &y)
                );
            }
        }
    }

    #[test]
    fn near_collision_probability_at_least_p1() {
        let dim = 2;
        let fam = OneSidedGridFamily::new(dim, 1.0, 1.0, 20.0);
        let p1 = fam.params().p1;
        let mut rng = StdRng::seed_from_u64(31);
        let x = Point::new(vec![50, 50]);
        let y = Point::new(vec![51, 50]); // ℓ1 distance 1 = r1
        let trials = 20_000;
        let coll = (0..trials)
            .filter(|_| {
                let h = fam.sample(&mut rng);
                h.hash(&x) == h.hash(&y)
            })
            .count();
        let emp = coll as f64 / trials as f64;
        assert!(emp >= p1 - 0.02, "emp {emp} < p1 {p1}");
    }

    #[test]
    fn rho_hat_formula() {
        let fam = OneSidedGridFamily::new(4, 2.0, 1.0, 16.0);
        assert!((fam.rho_hat() - 0.25).abs() < 1e-12);
    }
}
