//! 2-wise independent hashing over the Mersenne prime `2^61 − 1`.
//!
//! The paper repeatedly draws "a pairwise independent hash function with
//! range {0,1}^Θ(log n)" (Algorithm 1's `h`, the Gap protocol's batch
//! hashes). We use the textbook construction `h_{a,b}(x) = ((a·x + b) mod p)
//! mod 2^bits` with `p = 2^61 − 1`, which is 2-universal over inputs
//! `< p` and 2-wise independent up to the final range reduction.

use crate::mix::mix64;
use rand::Rng;

/// The Mersenne prime `2^61 − 1`.
pub const MERSENNE_61: u64 = (1u64 << 61) - 1;

/// Reduces a 128-bit value modulo `2^61 − 1` using the Mersenne identity
/// `2^61 ≡ 1 (mod p)`.
#[inline]
fn mod_mersenne(x: u128) -> u64 {
    let p = MERSENNE_61 as u128;
    let lo = x & p;
    let hi = x >> 61;
    let mut r = lo + hi;
    if r >= p {
        r -= p;
    }
    // One more fold covers the full 128-bit input range.
    let hi2 = r >> 61;
    let mut r = (r & p) + hi2;
    if r >= p {
        r -= p;
    }
    r as u64
}

/// A function `h(x) = ((a·x + b) mod p) mod 2^bits` drawn from the 2-wise
/// independent family over `p = 2^61 − 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairwiseHash {
    a: u64,
    b: u64,
    bits: u32,
}

impl PairwiseHash {
    /// Draws a random function with `bits`-bit output (`1 ≤ bits ≤ 61`).
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, bits: u32) -> Self {
        assert!((1..=61).contains(&bits), "output bits must be in 1..=61");
        PairwiseHash {
            a: rng.gen_range(1..MERSENNE_61),
            b: rng.gen_range(0..MERSENNE_61),
            bits,
        }
    }

    /// Deterministic construction from explicit coefficients (tests).
    pub fn from_coefficients(a: u64, b: u64, bits: u32) -> Self {
        assert!((1..=61).contains(&bits));
        assert!((1..MERSENNE_61).contains(&a) && b < MERSENNE_61);
        PairwiseHash { a, b, bits }
    }

    /// Evaluates the function. Inputs wider than 61 bits are first reduced
    /// by an *injective-enough* premix: `x mod p` after [`mix64`]; for
    /// protocol purposes collisions of the premix are absorbed into the
    /// protocols' failure probability.
    #[inline]
    pub fn eval(&self, x: u64) -> u64 {
        let x = mod_mersenne(mix64(x) as u128);
        let v = mod_mersenne(self.a as u128 * x as u128 + self.b as u128);
        if self.bits == 61 {
            v
        } else {
            v & ((1u64 << self.bits) - 1)
        }
    }

    /// Evaluates the function on a tuple by first collapsing the tuple to a
    /// 64-bit word with [`crate::mix::hash_words`]-style combining. This is
    /// the paper's "apply a pairwise independent hash function to each
    /// batch" of LSH values (§4.1).
    pub fn eval_tuple(&self, words: &[u64]) -> u64 {
        self.eval(crate::mix::hash_words(0x7157_1d2b, words))
    }

    /// Output width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mod_mersenne_agrees_with_naive() {
        let p = MERSENNE_61 as u128;
        for x in [0u128, 1, p - 1, p, p + 1, u64::MAX as u128, u128::MAX] {
            assert_eq!(mod_mersenne(x) as u128, x % p, "x = {x}");
        }
    }

    #[test]
    fn output_respects_bit_width() {
        let mut rng = StdRng::seed_from_u64(3);
        let h = PairwiseHash::sample(&mut rng, 8);
        for x in 0..2000u64 {
            assert!(h.eval(x) < 256);
        }
    }

    #[test]
    fn distinct_functions_disagree_somewhere() {
        let mut rng = StdRng::seed_from_u64(4);
        let h1 = PairwiseHash::sample(&mut rng, 32);
        let h2 = PairwiseHash::sample(&mut rng, 32);
        assert!((0..100).any(|x| h1.eval(x) != h2.eval(x)));
    }

    #[test]
    fn collision_rate_near_uniform() {
        // For 10-bit output, the birthday collision rate of 512 random
        // inputs should be near 1 − exp(−512²/2·1024) ≈ high; instead test
        // pairwise: fraction of colliding pairs ≈ 2^-10.
        let mut rng = StdRng::seed_from_u64(5);
        let h = PairwiseHash::sample(&mut rng, 10);
        let vals: Vec<u64> = (0..512).map(|x| h.eval(x)).collect();
        let mut collisions = 0u32;
        let mut pairs = 0u32;
        for i in 0..vals.len() {
            for j in (i + 1)..vals.len() {
                pairs += 1;
                if vals[i] == vals[j] {
                    collisions += 1;
                }
            }
        }
        let rate = f64::from(collisions) / f64::from(pairs);
        assert!(rate < 4.0 / 1024.0, "collision rate too high: {rate}");
    }

    #[test]
    fn tuple_eval_is_order_sensitive() {
        let h = PairwiseHash::from_coefficients(12345, 678, 32);
        assert_ne!(h.eval_tuple(&[1, 2, 3]), h.eval_tuple(&[3, 2, 1]));
    }

    #[test]
    #[should_panic]
    fn rejects_zero_bits() {
        let mut rng = StdRng::seed_from_u64(6);
        PairwiseHash::sample(&mut rng, 0);
    }

    #[test]
    #[should_panic]
    fn rejects_wide_bits() {
        let mut rng = StdRng::seed_from_u64(7);
        PairwiseHash::sample(&mut rng, 62);
    }
}
