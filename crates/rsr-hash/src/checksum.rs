//! Keyed checksums for IBLT / RIBLT cells.
//!
//! Each IBLT cell stores, besides the key aggregate, an aggregate of
//! per-key checksums; a cell is peeled only when the checksum of the
//! candidate key matches the cell's checksum aggregate (§2.2). The checksum
//! must be (a) deterministic given the table seed, (b) wide enough that
//! distinct keys collide with negligible probability, and (c) small enough
//! that *sums* of `n` of them fit an `i128` (RIBLT cells sum checksums
//! instead of XOR-ing them).

use crate::mix::mix64;

/// A keyed checksum function: `check(key) = mix64(key ⊕ mix64(seed))`,
/// truncated to 62 bits so that sums of up to `2^64` checksums fit `i128`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Checksum {
    seed: u64,
}

/// Checksum width in bits.
pub const CHECKSUM_BITS: u32 = 62;

impl Checksum {
    /// Creates the checksum function for a table seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Checksum { seed }
    }

    /// Checksum of a key.
    #[inline]
    pub fn of(&self, key: u64) -> u64 {
        mix64(key ^ mix64(self.seed ^ 0xC3A5_C85C_97CB_3127)) & ((1u64 << CHECKSUM_BITS) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        let c = Checksum::new(5);
        assert_eq!(c.of(123), c.of(123));
    }

    #[test]
    fn seed_changes_function() {
        assert_ne!(Checksum::new(1).of(99), Checksum::new(2).of(99));
    }

    #[test]
    fn fits_width() {
        let c = Checksum::new(8);
        for k in 0..1000 {
            assert!(c.of(k) < (1u64 << CHECKSUM_BITS));
        }
    }

    #[test]
    fn no_collisions_among_small_sample() {
        let c = Checksum::new(11);
        let set: HashSet<u64> = (0..10_000).map(|k| c.of(k)).collect();
        assert_eq!(set.len(), 10_000);
    }
}
