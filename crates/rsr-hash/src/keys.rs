//! LSH-vector key construction.
//!
//! Two key shapes appear in the paper:
//!
//! * **Multi-resolution prefix keys** (Algorithm 1): draw `s` MLSH functions
//!   `g_1, …, g_s`; the level-`i` key of a point `a` is
//!   `h(g_1(a), …, g_{s_i}(a))` for a prefix length `s_i` that doubles with
//!   the level, where `h` is a pairwise-independent hash with `Θ(log n)`-bit
//!   range. [`MultiScaleKeyer`] computes all level keys of a point in one
//!   O(s) pass using an incremental hasher.
//! * **Batched Gap keys** (§4.1): `h` batches of `m` LSH values, each batch
//!   collapsed by its own pairwise hash; the key is the vector of the `h`
//!   batch hashes. [`BatchKeyer`] builds those.

use crate::lsh::{LshFamily, LshFunction};
use crate::mix::IncrementalHasher;
use crate::pairwise::PairwiseHash;
use rand::Rng;
use rsr_metric::Point;

/// Multi-resolution prefix keyer for Algorithm 1.
pub struct MultiScaleKeyer<F: LshFamily> {
    functions: Vec<F::Function>,
    outer: PairwiseHash,
}

impl<F: LshFamily> MultiScaleKeyer<F> {
    /// Draws `s` functions from `family` and an outer pairwise hash with
    /// `key_bits`-bit range (the paper's `Θ(log n)`).
    pub fn sample<R: Rng + ?Sized>(family: &F, s: usize, key_bits: u32, rng: &mut R) -> Self {
        assert!(s >= 1, "need at least one LSH draw");
        MultiScaleKeyer {
            functions: family.sample_many(rng, s),
            outer: PairwiseHash::sample(rng, key_bits),
        }
    }

    /// Number of drawn functions `s`.
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Computes the key of `p` at every requested prefix length.
    /// `prefix_lens` must be non-decreasing and each ≤ `s`. Runs in O(s).
    pub fn level_keys(&self, p: &Point, prefix_lens: &[usize]) -> Vec<u64> {
        debug_assert!(prefix_lens.windows(2).all(|w| w[0] <= w[1]));
        debug_assert!(prefix_lens
            .last()
            .is_none_or(|&l| l <= self.functions.len()));
        let mut keys = Vec::with_capacity(prefix_lens.len());
        let mut inc = IncrementalHasher::new(0x4c53_4852);
        let mut next = prefix_lens.iter().peekable();
        // Emit keys for prefix length 0 (constant key) if requested.
        while next.peek() == Some(&&0) {
            keys.push(self.outer.eval(inc.current()));
            next.next();
        }
        for (idx, f) in self.functions.iter().enumerate() {
            inc.update(f.hash(p));
            while next.peek() == Some(&&(idx + 1)) {
                keys.push(self.outer.eval(inc.current()));
                next.next();
            }
            if next.peek().is_none() {
                break;
            }
        }
        assert!(next.peek().is_none(), "prefix length exceeds s");
        keys
    }

    /// Key of `p` at a single prefix length.
    pub fn key_at(&self, p: &Point, prefix_len: usize) -> u64 {
        self.level_keys(p, &[prefix_len])[0]
    }
}

/// A Gap-Guarantee key: `h` batch-hash entries.
pub type GapKey = Vec<u64>;

/// Batched keyer for the Gap Guarantee protocol (§4.1): `h` batches of `m`
/// LSH values, each batch collapsed by its own pairwise hash.
pub struct BatchKeyer<F: LshFamily> {
    batches: Vec<Vec<F::Function>>,
    hashers: Vec<PairwiseHash>,
}

impl<F: LshFamily> BatchKeyer<F> {
    /// Draws `h·m` functions plus `h` pairwise batch hashes with
    /// `entry_bits`-bit outputs.
    pub fn sample<R: Rng + ?Sized>(
        family: &F,
        h: usize,
        m: usize,
        entry_bits: u32,
        rng: &mut R,
    ) -> Self {
        assert!(h >= 1 && m >= 1);
        BatchKeyer {
            batches: (0..h).map(|_| family.sample_many(rng, m)).collect(),
            hashers: (0..h)
                .map(|_| PairwiseHash::sample(rng, entry_bits))
                .collect(),
        }
    }

    /// Number of batches `h` (entries per key).
    pub fn h(&self) -> usize {
        self.batches.len()
    }

    /// Batch size `m` (LSH values per entry).
    pub fn m(&self) -> usize {
        self.batches.first().map_or(0, Vec::len)
    }

    /// Computes the key of a point: the vector of `h` batch hashes.
    pub fn key(&self, p: &Point) -> GapKey {
        self.batches
            .iter()
            .zip(&self.hashers)
            .map(|(batch, hasher)| {
                let values: Vec<u64> = batch.iter().map(|f| f.hash(p)).collect();
                hasher.eval_tuple(&values)
            })
            .collect()
    }

    /// Number of entry positions two keys agree on.
    pub fn matches(a: &GapKey, b: &GapKey) -> usize {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).filter(|(x, y)| x == y).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit_sampling::BitSamplingFamily;
    use crate::mix::hash_words;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn hamming_pair(d: usize, dist: usize) -> (Point, Point) {
        let x = Point::from_bits(&vec![false; d]);
        let mut yb = vec![false; d];
        for b in yb.iter_mut().take(dist) {
            *b = true;
        }
        (x, Point::from_bits(&yb))
    }

    #[test]
    fn level_keys_match_one_shot_recomputation() {
        let d = 16;
        let fam = BitSamplingFamily::new(d, 32.0);
        let mut rng = StdRng::seed_from_u64(40);
        let keyer = MultiScaleKeyer::sample(&fam, 10, 32, &mut rng);
        let (x, _) = hamming_pair(d, 0);
        let lens = vec![1, 3, 3, 7, 10];
        let keys = keyer.level_keys(&x, &lens);
        assert_eq!(keys.len(), lens.len());
        for (i, &l) in lens.iter().enumerate() {
            assert_eq!(keys[i], keyer.key_at(&x, l), "prefix {l}");
        }
        // Duplicate prefix lengths give identical keys.
        assert_eq!(keys[1], keys[2]);
    }

    #[test]
    fn equal_points_get_equal_keys_at_all_levels() {
        let d = 8;
        let fam = BitSamplingFamily::new(d, 16.0);
        let mut rng = StdRng::seed_from_u64(41);
        let keyer = MultiScaleKeyer::sample(&fam, 12, 30, &mut rng);
        let (x, _) = hamming_pair(d, 0);
        let y = x.clone();
        for l in 1..=12 {
            assert_eq!(keyer.key_at(&x, l), keyer.key_at(&y, l));
        }
    }

    #[test]
    fn longer_prefixes_separate_close_points_more() {
        let d = 64;
        let fam = BitSamplingFamily::new(d, 64.0);
        let (x, y) = hamming_pair(d, 8);
        let trials = 400;
        let mut short_match = 0;
        let mut long_match = 0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(42 + t);
            let keyer = MultiScaleKeyer::sample(&fam, 32, 32, &mut rng);
            if keyer.key_at(&x, 2) == keyer.key_at(&y, 2) {
                short_match += 1;
            }
            if keyer.key_at(&x, 32) == keyer.key_at(&y, 32) {
                long_match += 1;
            }
        }
        assert!(
            short_match > long_match,
            "short {short_match} vs long {long_match}"
        );
    }

    #[test]
    fn batch_keyer_shape_and_determinism() {
        let d = 16;
        let fam = BitSamplingFamily::new(d, 16.0);
        let mut rng = StdRng::seed_from_u64(43);
        let keyer = BatchKeyer::sample(&fam, 5, 3, 20, &mut rng);
        assert_eq!(keyer.h(), 5);
        assert_eq!(keyer.m(), 3);
        let (x, _) = hamming_pair(d, 0);
        assert_eq!(keyer.key(&x), keyer.key(&x));
        assert_eq!(keyer.key(&x).len(), 5);
    }

    #[test]
    fn close_keys_match_more_than_far_keys() {
        let d = 128;
        let fam = BitSamplingFamily::new(d, 128.0);
        let mut rng = StdRng::seed_from_u64(44);
        let keyer = BatchKeyer::sample(&fam, 40, 8, 24, &mut rng);
        let (x, near) = hamming_pair(d, 2);
        let (_, far) = hamming_pair(d, 100);
        let kx = keyer.key(&x);
        let m_near = BatchKeyer::<BitSamplingFamily>::matches(&kx, &keyer.key(&near));
        let m_far = BatchKeyer::<BitSamplingFamily>::matches(&kx, &keyer.key(&far));
        assert!(m_near > m_far, "near {m_near} vs far {m_far}");
    }

    #[test]
    fn prefix_zero_is_point_independent() {
        let d = 8;
        let fam = BitSamplingFamily::new(d, 16.0);
        let mut rng = StdRng::seed_from_u64(45);
        let keyer = MultiScaleKeyer::sample(&fam, 4, 16, &mut rng);
        let (x, y) = hamming_pair(d, 5);
        assert_eq!(keyer.key_at(&x, 0), keyer.key_at(&y, 0));
    }

    #[test]
    fn incremental_prefix_hash_is_consistent_with_batch() {
        // The keyer must agree with hashing the explicit prefix directly.
        let d = 8;
        let fam = BitSamplingFamily::new(d, 16.0);
        let mut rng = StdRng::seed_from_u64(46);
        let keyer = MultiScaleKeyer::sample(&fam, 6, 32, &mut rng);
        let (x, _) = hamming_pair(d, 3);
        let gvals: Vec<u64> = keyer.functions.iter().map(|f| f.hash(&x)).collect();
        for l in 0..=6usize {
            let mut inc = IncrementalHasher::new(0x4c53_4852);
            for &g in &gvals[..l] {
                inc.update(g);
            }
            let direct = keyer.outer.eval(inc.current());
            assert_eq!(direct, keyer.key_at(&x, l), "prefix {l}");
            // And the incremental state equals hash_words of the prefix.
            let _ = hash_words(0, &gvals[..l]);
        }
    }
}
