//! 2-stable (Gaussian) projection MLSH for `([Δ]^d, ℓ2)` (Lemma 2.5).
//!
//! The Datar–Immorlica–Indyk–Mirrokni p-stable scheme: draw `r ∼ N(0,1)^d`
//! and `a ∼ U[0, w)`, hash `x ↦ ⌊(r·x + a)/w⌋`. For the 2-stable (Gaussian)
//! case the collision probability at ℓ2 distance `c` is
//! `2Φ(−w/c) + 1 − (√2 c)/(√π w)(1 − e^{−w²/2c²}) + …` which the paper
//! brackets to give MLSH parameters `(0.99·w, e^{−2√(2/π)/w}, 1/(4√2))`.
//!
//! Gaussians are generated with the Box–Muller transform so that we need no
//! crate beyond `rand`.

use crate::lsh::{LshFamily, LshFunction, LshParams};
use crate::mlsh::{MlshFamily, MlshParams};
use rand::Rng;
use rsr_metric::Point;
use std::f64::consts::PI;

/// Draws one standard normal variate via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard u1 away from 0 so ln is finite.
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

/// The 2-stable MLSH family over `([Δ]^d, ℓ2)` with bucket width `w`.
#[derive(Clone, Copy, Debug)]
pub struct PStableFamily {
    dim: usize,
    width: f64,
}

/// One sampled projection function `x ↦ ⌊(r·x + a)/w⌋`.
#[derive(Clone, Debug)]
pub struct PStableFn {
    direction: Vec<f64>,
    offset: f64,
    width: f64,
}

impl PStableFamily {
    /// Creates the family with bucket width `w > 0` in dimension `d`.
    pub fn new(dim: usize, width: f64) -> Self {
        assert!(dim >= 1);
        assert!(width > 0.0, "bucket width must be positive");
        PStableFamily { dim, width }
    }

    /// The bucket width `w`.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Width for the Cor 3.6 instantiation on the `j`-th scaling interval:
    /// `w = Θ(min(M, D2) + D2/k)`.
    pub fn for_emd_interval(dim: usize, m_bound: f64, d2: f64, k: usize) -> Self {
        let w = m_bound.min(d2) + d2 / k.max(1) as f64;
        PStableFamily::new(dim, w.max(1.0))
    }
}

impl LshFunction for PStableFn {
    fn hash(&self, p: &Point) -> u64 {
        debug_assert_eq!(p.dim(), self.direction.len());
        let dot: f64 = p
            .coords()
            .iter()
            .zip(&self.direction)
            .map(|(&c, &r)| c as f64 * r)
            .sum();
        (((dot + self.offset) / self.width).floor() as i64) as u64
    }
}

impl LshFamily for PStableFamily {
    type Function = PStableFn;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> PStableFn {
        PStableFn {
            direction: (0..self.dim).map(|_| standard_normal(rng)).collect(),
            offset: rng.gen::<f64>() * self.width,
            width: self.width,
        }
    }

    fn params(&self) -> LshParams {
        let w = self.width;
        let r2 = (0.99 * w).max(2.0);
        let r1 = (w / 4.0).min(r2 / 2.0);
        // Bounds from the Appendix A Taylor expansion.
        let sqrt_2_over_pi = (2.0 / PI).sqrt();
        let p1 = (-2.0 * sqrt_2_over_pi * r1 / w).exp();
        let p2 = (-sqrt_2_over_pi * r2.min(w) / (2.0 * w)).exp();
        LshParams::new(r1, r2, p1, p2.min(p1 * 0.999))
    }
}

impl MlshFamily for PStableFamily {
    fn mlsh_params(&self) -> MlshParams {
        let sqrt2 = std::f64::consts::SQRT_2;
        MlshParams::new(
            0.99 * self.width,
            (-2.0 * (2.0 / PI).sqrt() / self.width).exp(),
            1.0 / (4.0 * sqrt2),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn box_muller_moments() {
        let mut rng = StdRng::seed_from_u64(20);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    fn collision_rate(fam: &PStableFamily, x: &Point, y: &Point, trials: u32, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let coll = (0..trials)
            .filter(|_| {
                let h = fam.sample(&mut rng);
                h.hash(x) == h.hash(y)
            })
            .count();
        coll as f64 / f64::from(trials)
    }

    #[test]
    fn identical_points_always_collide() {
        let fam = PStableFamily::new(3, 8.0);
        let p = Point::new(vec![1, 2, 3]);
        assert_eq!(collision_rate(&fam, &p, &p, 300, 21), 1.0);
    }

    #[test]
    fn collision_matches_dii_formula() {
        // Pr[collide] = 2Φ(−w/c) − (√2 c)/(√π w)(1 − e^{−w²/2c²}) + 1 − 2Φ(−w/c)... we
        // verify against the closed form 1 − 2Φ̄(w/c) form numerically via
        // simple simulation consistency at two distances: rate must strictly
        // decrease with distance and fall within the MLSH envelope.
        let fam = PStableFamily::new(2, 10.0);
        let m = fam.mlsh_params();
        let x = Point::new(vec![0, 0]);
        let near = Point::new(vec![3, 4]); // ℓ2 distance 5
        let far = Point::new(vec![6, 8]); // ℓ2 distance 10
        let r_near = collision_rate(&fam, &x, &near, 40_000, 22);
        let r_far = collision_rate(&fam, &x, &far, 40_000, 23);
        assert!(r_near > r_far, "{r_near} vs {r_far}");
        assert!(r_near <= m.upper_envelope(5.0) + 0.02);
        assert!(r_near >= m.lower_envelope(5.0) - 0.02);
    }

    #[test]
    fn far_points_rarely_collide() {
        let fam = PStableFamily::new(2, 2.0);
        let x = Point::new(vec![0, 0]);
        let y = Point::new(vec![300, 400]);
        assert!(collision_rate(&fam, &x, &y, 5_000, 24) < 0.02);
    }
}
