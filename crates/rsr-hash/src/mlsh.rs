//! Multi-scale locality sensitive hashing (Definition 2.2 of the paper).
//!
//! An MLSH family has collision probability that *gracefully degrades* with
//! distance: for all `x, y`, `Pr[h(x) = h(y)] ≤ p^{α·f(x,y)}`, and for
//! `f(x,y) ≤ r`, `Pr[h(x) = h(y)] ≥ p^{f(x,y)}`. This two-sided envelope is
//! what lets Algorithm 1 hash at many resolutions with a single family by
//! concatenating more and more draws.

use crate::lsh::LshFamily;

/// Parameters `(r, p, α)` of an MLSH family (Definition 2.2):
/// `Pr[h(x)=h(y)] ≤ p^{α·f(x,y)}` always, and `Pr[h(x)=h(y)] ≥ p^{f(x,y)}`
/// whenever `f(x,y) ≤ r`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MlshParams {
    /// Range `r > 0` on which the lower envelope holds.
    pub r: f64,
    /// Base collision probability `p ∈ (0, 1)`.
    pub p: f64,
    /// Exponent discount `α ∈ (0, 1)`.
    pub alpha: f64,
}

impl MlshParams {
    /// Creates validated parameters.
    pub fn new(r: f64, p: f64, alpha: f64) -> Self {
        assert!(r > 0.0, "need r > 0");
        assert!(p > 0.0 && p < 1.0, "need 0 < p < 1, got {p}");
        assert!(alpha > 0.0 && alpha < 1.0, "need 0 < α < 1, got {alpha}");
        MlshParams { r, p, alpha }
    }

    /// Upper envelope `p^{α·dist}` on the collision probability.
    pub fn upper_envelope(&self, dist: f64) -> f64 {
        self.p.powf(self.alpha * dist)
    }

    /// Lower envelope `p^{dist}`, valid for `dist ≤ r`.
    pub fn lower_envelope(&self, dist: f64) -> f64 {
        self.p.powf(dist)
    }
}

/// A multi-scale LSH family: an [`LshFamily`] whose collision probability
/// additionally satisfies the Definition 2.2 envelopes.
pub trait MlshFamily: LshFamily {
    /// The `(r, p, α)` guarantee.
    fn mlsh_params(&self) -> MlshParams;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelopes_ordered() {
        let m = MlshParams::new(10.0, 0.9, 0.5);
        for dist in [0.0, 1.0, 5.0, 10.0] {
            assert!(m.lower_envelope(dist) <= m.upper_envelope(dist) + 1e-12);
        }
    }

    #[test]
    fn envelopes_decrease_with_distance() {
        let m = MlshParams::new(10.0, 0.8, 0.5);
        assert!(m.upper_envelope(1.0) > m.upper_envelope(2.0));
        assert!(m.lower_envelope(1.0) > m.lower_envelope(2.0));
    }

    #[test]
    fn zero_distance_always_collides() {
        let m = MlshParams::new(10.0, 0.8, 0.5);
        assert_eq!(m.upper_envelope(0.0), 1.0);
        assert_eq!(m.lower_envelope(0.0), 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_p_one() {
        MlshParams::new(1.0, 1.0, 0.5);
    }
}
