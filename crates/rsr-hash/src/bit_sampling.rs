//! Bit-sampling MLSH for Hamming space (Lemma 2.3).
//!
//! The classic Indyk–Motwani LSH for `({0,1}^d, f_H)` samples a random
//! coordinate. To obtain a *multi-scale* family with a tunable base
//! probability the paper pads the points to a virtual width `w ≥ d`:
//! "with probability d/w our hash function will sample a random bit, and
//! with probability 1 − d/w it will be a constant function always equaling
//! 0" (footnote 3). The collision probability between `x, y` is then
//! `1 − f_H(x,y)/w`, which lies in `[e^{−2f/w}, e^{−f/w}]` for
//! `f ≤ 0.79·w`, i.e. MLSH parameters `(0.79·w, e^{−2/w}, 1/2)`.

use crate::lsh::{LshFamily, LshFunction, LshParams};
use crate::mlsh::{MlshFamily, MlshParams};
use rand::Rng;
use rsr_metric::Point;

/// The bit-sampling MLSH family over `({0,1}^d, Hamming)` with virtual
/// width `w ≥ d`.
#[derive(Clone, Copy, Debug)]
pub struct BitSamplingFamily {
    dim: usize,
    width: f64,
}

/// One sampled bit-sampling function: either "read coordinate `j`" or the
/// constant 0 function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BitSamplingFn {
    /// Reads coordinate `j` of the point.
    Coordinate(usize),
    /// Constant 0 (a padding coordinate was sampled).
    Constant,
}

impl BitSamplingFamily {
    /// Creates the family for dimension `d` with virtual width `w ≥ d`.
    pub fn new(dim: usize, width: f64) -> Self {
        assert!(dim >= 1);
        assert!(
            width >= dim as f64,
            "virtual width w = {width} must be ≥ d = {dim}"
        );
        BitSamplingFamily { dim, width }
    }

    /// The virtual width `w`.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Chooses `w` so that the family's base probability satisfies
    /// `p = e^{−2/w} ≥ e^{−k/(24·D2)}`, the requirement of Theorem 3.4
    /// (the paper picks `w = 48·n·d/k` in Corollary 3.5; we expose the
    /// general form `w ≥ max(d, 48·D2/k)`).
    pub fn for_emd_protocol(dim: usize, k: usize, d2: f64) -> Self {
        let w = (dim as f64).max(48.0 * d2 / k.max(1) as f64);
        BitSamplingFamily::new(dim, w)
    }
}

impl LshFunction for BitSamplingFn {
    fn hash(&self, p: &Point) -> u64 {
        match *self {
            BitSamplingFn::Coordinate(j) => p.coord(j) as u64,
            BitSamplingFn::Constant => 0,
        }
    }
}

impl LshFamily for BitSamplingFamily {
    type Function = BitSamplingFn;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> BitSamplingFn {
        // Sample a virtual coordinate in [0, w); those ≥ d are padding.
        if rng.gen::<f64>() * self.width < self.dim as f64 {
            BitSamplingFn::Coordinate(rng.gen_range(0..self.dim))
        } else {
            BitSamplingFn::Constant
        }
    }

    fn params(&self) -> LshParams {
        // Any r1 < r2 ≤ 0.79w instantiates Definition 2.1 from the MLSH
        // envelope; we report the canonical single-bit guarantee.
        let w = self.width;
        let r1 = 1.0;
        let r2 = (0.79 * w).max(2.0);
        LshParams::new(r1, r2, 1.0 - r1 / w, 1.0 - r2.min(w) / w)
    }
}

impl MlshFamily for BitSamplingFamily {
    fn mlsh_params(&self) -> MlshParams {
        MlshParams::new(0.79 * self.width, (-2.0 / self.width).exp(), 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rsr_metric::Metric;

    #[test]
    fn exact_collision_probability() {
        // Empirical Pr[h(x) = h(y)] should be ≈ 1 − f_H(x,y)/w.
        let d = 32;
        let w = 64.0;
        let fam = BitSamplingFamily::new(d, w);
        let mut rng = StdRng::seed_from_u64(10);
        let x = Point::from_bits(&vec![false; d]);
        let mut ybits = vec![false; d];
        for b in ybits.iter_mut().take(8) {
            *b = true; // distance 8
        }
        let y = Point::from_bits(&ybits);
        assert_eq!(Metric::Hamming.distance(&x, &y), 8.0);

        let trials = 20_000;
        let mut coll = 0;
        for _ in 0..trials {
            let h = fam.sample(&mut rng);
            if h.hash(&x) == h.hash(&y) {
                coll += 1;
            }
        }
        let emp = f64::from(coll) / f64::from(trials);
        let expect = 1.0 - 8.0 / w;
        assert!((emp - expect).abs() < 0.02, "emp {emp} vs {expect}");
    }

    #[test]
    fn collision_prob_within_mlsh_envelope() {
        let d = 16;
        let fam = BitSamplingFamily::new(d, 32.0);
        let m = fam.mlsh_params();
        let mut rng = StdRng::seed_from_u64(11);
        for dist in [1usize, 4, 10] {
            let x = Point::from_bits(&vec![false; d]);
            let mut yb = vec![false; d];
            for b in yb.iter_mut().take(dist) {
                *b = true;
            }
            let y = Point::from_bits(&yb);
            let trials = 40_000;
            let coll = (0..trials)
                .filter(|_| {
                    let h = fam.sample(&mut rng);
                    h.hash(&x) == h.hash(&y)
                })
                .count();
            let emp = coll as f64 / trials as f64;
            let dist = dist as f64;
            assert!(
                emp <= m.upper_envelope(dist) + 0.02,
                "dist {dist}: {emp} above upper {}",
                m.upper_envelope(dist)
            );
            assert!(
                emp >= m.lower_envelope(dist) - 0.02,
                "dist {dist}: {emp} below lower {}",
                m.lower_envelope(dist)
            );
        }
    }

    #[test]
    fn for_emd_protocol_meets_p_requirement() {
        let fam = BitSamplingFamily::for_emd_protocol(64, 4, 1000.0);
        let p = fam.mlsh_params().p;
        let required = (-4.0f64 / (24.0 * 1000.0)).exp();
        assert!(p >= required, "p = {p} below e^{{-k/24 D2}} = {required}");
    }

    #[test]
    #[should_panic]
    fn width_below_dim_rejected() {
        BitSamplingFamily::new(10, 5.0);
    }
}
