//! Randomly-shifted-lattice MLSH for `([Δ]^d, ℓ1)` (Lemma 2.4).
//!
//! "Our hashing scheme is to round the input points to a randomly shifted
//! orthogonal lattice of width w" (Appendix A). Collision probability for
//! points at ℓ1 distance `x ≤ w` lies between `1 − x/w ≥ e^{−2x/w}` (for
//! `x ≤ 0.79w`) and `(1 − x/(dw))^d ≤ e^{−x/w}`, giving MLSH parameters
//! `(0.79·w, e^{−2/w}, 1/2)`.

use crate::lsh::{LshFamily, LshFunction, LshParams};
use crate::mix::IncrementalHasher;
use crate::mlsh::{MlshFamily, MlshParams};
use rand::Rng;
use rsr_metric::Point;

/// The shifted-grid MLSH family over `([Δ]^d, ℓ1)` with lattice width `w`.
#[derive(Clone, Copy, Debug)]
pub struct GridFamily {
    dim: usize,
    width: f64,
}

/// One sampled grid function: per-dimension offsets plus the lattice width.
#[derive(Clone, Debug)]
pub struct GridFn {
    offsets: Vec<f64>,
    width: f64,
}

impl GridFamily {
    /// Creates the family with lattice width `w > 0` in dimension `d`.
    pub fn new(dim: usize, width: f64) -> Self {
        assert!(dim >= 1);
        assert!(width > 0.0, "lattice width must be positive");
        GridFamily { dim, width }
    }

    /// The lattice width `w`.
    pub fn width(&self) -> f64 {
        self.width
    }
}

impl LshFunction for GridFn {
    fn hash(&self, p: &Point) -> u64 {
        debug_assert_eq!(p.dim(), self.offsets.len());
        // Allocation-free fold over the cell coordinates (hot path: the
        // EMD protocol evaluates s = Θ(D2/D1) grid functions per point).
        let mut inc = IncrementalHasher::new(0x6e1d_77aa);
        for (j, &c) in p.coords().iter().enumerate() {
            let cell = ((c as f64 + self.offsets[j]) / self.width).floor() as i64;
            inc.update(cell as u64);
        }
        inc.current()
    }
}

impl LshFamily for GridFamily {
    type Function = GridFn;

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> GridFn {
        GridFn {
            offsets: (0..self.dim)
                .map(|_| rng.gen::<f64>() * self.width)
                .collect(),
            width: self.width,
        }
    }

    fn params(&self) -> LshParams {
        let w = self.width;
        let r2 = (0.79 * w).max(2.0);
        // Near points at distance r1 = min(1, w/4) collide with prob ≥ 1 − r1/w.
        let r1 = (w / 4.0).min(1.0).min(r2 / 2.0);
        LshParams::new(r1, r2, 1.0 - r1 / w, (-r2.min(w) / w).exp())
    }
}

impl MlshFamily for GridFamily {
    fn mlsh_params(&self) -> MlshParams {
        MlshParams::new(0.79 * self.width, (-2.0 / self.width).exp(), 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn collision_rate(fam: &GridFamily, x: &Point, y: &Point, trials: u32, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let coll = (0..trials)
            .filter(|_| {
                let h = fam.sample(&mut rng);
                h.hash(x) == h.hash(y)
            })
            .count();
        coll as f64 / f64::from(trials)
    }

    #[test]
    fn identical_points_always_collide() {
        let fam = GridFamily::new(3, 10.0);
        let p = Point::new(vec![4, 5, 6]);
        assert_eq!(collision_rate(&fam, &p, &p, 200, 1), 1.0);
    }

    #[test]
    fn one_dim_collision_matches_theory() {
        // In 1-d the collision probability is exactly 1 − x/w for x ≤ w.
        let fam = GridFamily::new(1, 16.0);
        let x = Point::new(vec![0]);
        let y = Point::new(vec![4]);
        let emp = collision_rate(&fam, &x, &y, 40_000, 2);
        assert!((emp - 0.75).abs() < 0.02, "got {emp}");
    }

    #[test]
    fn collision_within_mlsh_envelope() {
        let fam = GridFamily::new(4, 20.0);
        let m = fam.mlsh_params();
        let x = Point::new(vec![3, 3, 3, 3]);
        let y = Point::new(vec![5, 4, 3, 3]); // ℓ1 distance 3
        let emp = collision_rate(&fam, &x, &y, 40_000, 3);
        assert!(emp <= m.upper_envelope(3.0) + 0.02);
        assert!(emp >= m.lower_envelope(3.0) - 0.02);
    }

    #[test]
    fn far_points_rarely_collide() {
        let fam = GridFamily::new(2, 4.0);
        let x = Point::new(vec![0, 0]);
        let y = Point::new(vec![100, 100]);
        assert!(collision_rate(&fam, &x, &y, 5_000, 4) < 0.01);
    }
}
