//! Replayable churn traces for continuous reconciliation.
//!
//! A *churn trace* describes how a pair of live sets drifts between
//! reconciliation rounds: for each round, how many inserts and deletes
//! land on each party, plus the seed that materializes the concrete
//! keys. Like [`crate::trace`], the format pins *intent*, not bytes —
//! the same `(spec, rounds, seed)` triple regenerates the same trace
//! anywhere, and the text form round-trips so a trace can be archived
//! next to the benchmark that consumed it. One round per line, `#`
//! comments and blanks ignored:
//!
//! ```text
//! # a_ins a_del b_ins b_del seed
//! 12 4 11 3 9838450945
//! 10 2 13 5 2210934885
//! ```
//!
//! Key materialization is deliberately deferred to replay time
//! ([`RoundChurn::alice_keys`] / [`RoundChurn::bob_keys`]): inserts are
//! fresh keys drawn from the round seed, deletes are sampled from the
//! party's *current* set — which the trace cannot know in advance,
//! because it depends on every earlier round's reconciliation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::fmt;
use std::io::{self, BufRead, Write};

/// The shape of drift between rounds: how much, how lopsided, how
/// delete-heavy, and whether it bursts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnSpec {
    /// Mean mutations per round across both parties.
    pub rate: usize,
    /// Fraction of each round's mutations landing on Alice (`0.5` is
    /// balanced; `1.0` makes Bob a pure follower).
    pub skew: f64,
    /// Fraction of each party's mutations that are deletes (the rest
    /// are inserts).
    pub delete_fraction: f64,
    /// When `Some(b)`, every `b`-th round is a burst.
    pub burst_every: Option<usize>,
    /// Burst rounds multiply the rate by this factor.
    pub burst_scale: f64,
}

impl ChurnSpec {
    /// Balanced steady-state drift: even split, 25% deletes, no bursts.
    pub fn steady(rate: usize) -> ChurnSpec {
        ChurnSpec {
            rate,
            skew: 0.5,
            delete_fraction: 0.25,
            burst_every: None,
            burst_scale: 1.0,
        }
    }

    /// Steady drift with every `every`-th round tripled — the batch
    /// import riding on top of interactive edits.
    pub fn bursty(rate: usize, every: usize) -> ChurnSpec {
        ChurnSpec {
            burst_every: Some(every),
            burst_scale: 3.0,
            ..ChurnSpec::steady(rate)
        }
    }

    /// The largest per-round mutation count this spec can emit — what a
    /// continuous table's churn bound must cover (both parties' inserts
    /// and deletes all contribute to the round's symmetric difference).
    pub fn peak_round_ops(&self) -> usize {
        let burst = if self.burst_every.is_some() {
            self.burst_scale.max(1.0)
        } else {
            1.0
        };
        // sample_churn jitters each round up to +25% before bursting.
        ((self.rate as f64) * 1.25 * burst).ceil() as usize + 2
    }
}

/// One round of drift: mutation counts per party plus the seed that
/// materializes keys at replay.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundChurn {
    /// Keys inserted into Alice's set before this round.
    pub a_inserts: usize,
    /// Keys deleted from Alice's set before this round.
    pub a_deletes: usize,
    /// Keys inserted into Bob's set before this round.
    pub b_inserts: usize,
    /// Keys deleted from Bob's set before this round.
    pub b_deletes: usize,
    /// Seed for key materialization.
    pub seed: u64,
}

impl RoundChurn {
    /// Total mutations this round, both parties.
    pub fn total_ops(&self) -> usize {
        self.a_inserts + self.a_deletes + self.b_inserts + self.b_deletes
    }

    /// Materializes Alice's mutations against her current set: fresh
    /// insert keys (not present, not colliding with each other) and
    /// distinct existing delete keys. Deterministic in `(self, existing)`.
    pub fn alice_keys(&self, existing: &BTreeSet<u64>) -> (Vec<u64>, Vec<u64>) {
        materialize(
            self.seed ^ 0xa11c_e000,
            self.a_inserts,
            self.a_deletes,
            existing,
        )
    }

    /// Bob's counterpart of [`RoundChurn::alice_keys`].
    pub fn bob_keys(&self, existing: &BTreeSet<u64>) -> (Vec<u64>, Vec<u64>) {
        materialize(
            self.seed ^ 0xb0b_0000,
            self.b_inserts,
            self.b_deletes,
            existing,
        )
    }
}

/// The deterministic base set both parties of a continuous pair start
/// from: `n` distinct keys pinned by `seed`. Client and server derive
/// the same set from the same wire parameters, so a continuous session
/// needs no out-of-band state transfer before round 0.
pub fn base_set(n: usize, seed: u64) -> BTreeSet<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xba5e_5e70);
    let mut set = BTreeSet::new();
    while set.len() < n {
        set.insert(rng.gen::<u64>());
    }
    set
}

fn materialize(
    seed: u64,
    inserts: usize,
    deletes: usize,
    existing: &BTreeSet<u64>,
) -> (Vec<u64>, Vec<u64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fresh = Vec::with_capacity(inserts);
    let mut taken = BTreeSet::new();
    while fresh.len() < inserts {
        let key = rng.gen::<u64>();
        if !existing.contains(&key) && taken.insert(key) {
            fresh.push(key);
        }
    }
    // Deletes sample without replacement from the current set (clamped:
    // a trace can ask for more deletes than the set still holds).
    let mut pool: Vec<u64> = existing.iter().copied().collect();
    let mut doomed = Vec::with_capacity(deletes.min(pool.len()));
    for _ in 0..deletes.min(pool.len()) {
        let idx = rng.gen_range(0..pool.len());
        doomed.push(pool.swap_remove(idx));
    }
    (fresh, doomed)
}

impl fmt::Display for RoundChurn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {}",
            self.a_inserts, self.a_deletes, self.b_inserts, self.b_deletes, self.seed
        )
    }
}

/// Samples a `rounds`-round churn trace deterministically from `seed`:
/// per-round totals jitter ±25% around the spec's rate, burst rounds
/// scale up, the skew splits each round between the parties, and the
/// delete fraction splits each party's share.
pub fn sample_churn(spec: &ChurnSpec, rounds: usize, seed: u64) -> Vec<RoundChurn> {
    assert!(
        (0.0..=1.0).contains(&spec.skew) && (0.0..=1.0).contains(&spec.delete_fraction),
        "skew and delete_fraction must lie in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a2_0000);
    (0..rounds)
        .map(|r| {
            let jitter = 0.75 + rng.gen::<f64>() * 0.5;
            let burst = spec.burst_every.is_some_and(|b| b > 0 && (r + 1) % b == 0);
            let scale = if burst { spec.burst_scale } else { 1.0 };
            let total = ((spec.rate as f64) * jitter * scale).round() as usize;
            let a_share = ((total as f64) * spec.skew).round() as usize;
            let split = |share: usize| {
                let deletes = ((share as f64) * spec.delete_fraction).round() as usize;
                (share - deletes, deletes)
            };
            let (a_inserts, a_deletes) = split(a_share);
            let (b_inserts, b_deletes) = split(total - a_share);
            RoundChurn {
                a_inserts,
                a_deletes,
                b_inserts,
                b_deletes,
                seed: rng.gen(),
            }
        })
        .collect()
}

/// Writes a churn trace, one round per line, with a header documenting
/// the field order.
pub fn write_churn<W: Write>(w: &mut W, rounds: &[RoundChurn]) -> io::Result<()> {
    writeln!(w, "# a_ins a_del b_ins b_del seed")?;
    for round in rounds {
        writeln!(w, "{round}")?;
    }
    Ok(())
}

/// Reads a churn trace written by [`write_churn`] (or by hand). Blank
/// lines and `#` comments are skipped; anything else that fails to
/// parse is an `InvalidData` error naming the line.
pub fn read_churn<R: BufRead>(r: &mut R) -> io::Result<Vec<RoundChurn>> {
    let mut rounds = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        rounds.push(parse_line(line).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("churn line {}: cannot parse {line:?}", lineno + 1),
            )
        })?);
    }
    Ok(rounds)
}

fn parse_line(line: &str) -> Option<RoundChurn> {
    let mut fields = line.split_whitespace();
    let a_inserts = fields.next()?.parse().ok()?;
    let a_deletes = fields.next()?.parse().ok()?;
    let b_inserts = fields.next()?.parse().ok()?;
    let b_deletes = fields.next()?.parse().ok()?;
    let seed = fields.next()?.parse().ok()?;
    if fields.next().is_some() {
        return None;
    }
    Some(RoundChurn {
        a_inserts,
        a_deletes,
        b_inserts,
        b_deletes,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let rounds = sample_churn(&ChurnSpec::steady(20), 8, 42);
        let mut buf = Vec::new();
        write_churn(&mut buf, &rounds).unwrap();
        assert_eq!(read_churn(&mut buf.as_slice()).unwrap(), rounds);
    }

    #[test]
    fn sampling_is_deterministic_and_rate_shaped() {
        let spec = ChurnSpec::steady(40);
        let a = sample_churn(&spec, 16, 7);
        assert_eq!(a, sample_churn(&spec, 16, 7));
        assert_ne!(a, sample_churn(&spec, 16, 8), "seed must matter");
        for (r, round) in a.iter().enumerate() {
            let total = round.total_ops();
            assert!((30..=50).contains(&total), "round {r}: {total} ops");
            assert!(total <= spec.peak_round_ops());
        }
    }

    #[test]
    fn bursts_fire_on_schedule_and_stay_bounded() {
        let spec = ChurnSpec::bursty(20, 4);
        let rounds = sample_churn(&spec, 12, 3);
        for (r, round) in rounds.iter().enumerate() {
            let total = round.total_ops();
            if (r + 1) % 4 == 0 {
                assert!(total >= 40, "burst round {r} too small: {total}");
            } else {
                assert!(total <= 26, "steady round {r} too big: {total}");
            }
            assert!(total <= spec.peak_round_ops(), "round {r} over peak");
        }
    }

    #[test]
    fn skew_shifts_churn_between_parties() {
        let spec = ChurnSpec {
            skew: 1.0,
            ..ChurnSpec::steady(30)
        };
        for round in sample_churn(&spec, 6, 11) {
            assert_eq!(round.b_inserts + round.b_deletes, 0);
            assert!(round.a_inserts + round.a_deletes > 0);
        }
    }

    #[test]
    fn materialized_keys_respect_the_live_set() {
        let existing: BTreeSet<u64> = (0..100).collect();
        let round = RoundChurn {
            a_inserts: 10,
            a_deletes: 5,
            b_inserts: 0,
            b_deletes: 200, // more than the set holds
            seed: 99,
        };
        let (ins, dels) = round.alice_keys(&existing);
        assert_eq!(ins.len(), 10);
        assert!(ins.iter().all(|k| !existing.contains(k)));
        assert_eq!(dels.len(), 5);
        assert!(dels.iter().all(|k| existing.contains(k)));
        let distinct: BTreeSet<_> = dels.iter().collect();
        assert_eq!(distinct.len(), 5, "deletes sample without replacement");
        // Clamped deletes and determinism.
        let (_, bdels) = round.bob_keys(&existing);
        assert_eq!(bdels.len(), 100);
        assert_eq!(round.alice_keys(&existing), round.alice_keys(&existing));
        assert_ne!(round.alice_keys(&existing).0, round.bob_keys(&existing).0);
    }

    #[test]
    fn malformed_lines_fail_with_the_line_number() {
        for bad in ["1 2 3 4", "1 2 3 4 5 6", "a 2 3 4 5", "1 -2 3 4 5"] {
            let text = format!("# ok\n{bad}\n");
            let err = read_churn(&mut text.as_bytes()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bad}");
            assert!(err.to_string().contains("line 2"), "{bad}: {err}");
        }
    }
}
