//! Workload generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rsr_metric::{Metric, MetricSpace, Point};

/// An EMD-model workload: two point sets of equal size `n` with `n − k`
/// noisy shared points and `k` planted outliers per side.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Alice's set.
    pub alice: Vec<Point>,
    /// Bob's set.
    pub bob: Vec<Point>,
    /// Planted difference budget.
    pub k: usize,
    /// Per-shared-point noise bound used during generation.
    pub noise: i64,
}

/// Generates an EMD-model workload on `space`.
///
/// * the first `n − k` points are shared up to coordinate noise of
///   magnitude at most `noise` (clamped into the grid) — under `ℓ1` the
///   per-point distance is ≤ `d·noise`;
/// * the last `k` points of each side are independent uniform points.
///
/// On Hamming spaces `noise` counts *bit flips* instead.
pub fn planted_emd(space: MetricSpace, n: usize, k: usize, noise: i64, seed: u64) -> Workload {
    assert!(k <= n, "need k ≤ n");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut alice = Vec::with_capacity(n);
    let mut bob = Vec::with_capacity(n);
    let delta = space.delta();
    let dim = space.dim();
    let hamming_like = space.metric() == Metric::Hamming || delta == 2;
    for _ in 0..n - k {
        let base = space.universe().sample(&mut rng);
        let noisy = if hamming_like {
            // Flip up to `noise` random coordinates.
            let mut bits = base.coords().to_vec();
            for _ in 0..noise {
                let j = rng.gen_range(0..dim);
                bits[j] = (delta - 1) - bits[j];
            }
            Point::new(bits)
        } else {
            Point::new(
                base.coords()
                    .iter()
                    .map(|&c| (c + rng.gen_range(-noise..=noise)).clamp(0, delta - 1))
                    .collect(),
            )
        };
        alice.push(base);
        bob.push(noisy);
    }
    for _ in 0..k {
        alice.push(space.universe().sample(&mut rng));
        bob.push(space.universe().sample(&mut rng));
    }
    Workload {
        alice,
        bob,
        k,
        noise,
    }
}

/// Like [`planted_emd`], but noise hits only `noisy_count` of the shared
/// points (the rest agree exactly). This is the paper's motivating regime
/// — "the most valuable new data to reconcile would be the outliers" (§1)
/// — where `EMD_k ≪ EMD` and the protocol's repair visibly pays off.
pub fn planted_emd_sparse(
    space: MetricSpace,
    n: usize,
    k: usize,
    noise: i64,
    noisy_count: usize,
    seed: u64,
) -> Workload {
    assert!(k <= n && noisy_count <= n - k);
    let mut w = planted_emd(space, n, k, noise, seed);
    // Undo the noise on all but the first `noisy_count` shared points.
    for i in noisy_count..n - k {
        w.bob[i] = w.alice[i].clone();
    }
    w
}

/// A Gap-model workload with a *certified* gap structure.
#[derive(Clone, Debug)]
pub struct GapWorkload {
    /// Alice's set.
    pub alice: Vec<Point>,
    /// Bob's set.
    pub bob: Vec<Point>,
    /// Alice's points that are ≥ r2 from every Bob point (ground truth).
    pub alice_far: Vec<Point>,
    /// The radii `(r1, r2)` the instance satisfies.
    pub radii: (f64, f64),
}

/// Generates a Gap-model workload on `space`: `n − k` close pairs (each
/// Alice point within `r1` of a Bob point) and `k` Alice points farther
/// than `r2` from *every* Bob point. Generation retries until the far
/// condition is certified, so the returned instance always satisfies the
/// Gap model's premises exactly.
pub fn sensor_pairs(
    space: MetricSpace,
    n: usize,
    k: usize,
    r1: f64,
    r2: f64,
    seed: u64,
) -> GapWorkload {
    assert!(k <= n);
    assert!(r1 < r2);
    let mut rng = StdRng::seed_from_u64(seed);
    let delta = space.delta();
    let dim = space.dim();
    let mut alice = Vec::with_capacity(n);
    let mut bob = Vec::with_capacity(n);
    for _ in 0..n - k {
        let base = space.universe().sample(&mut rng);
        // Bob's noisy copy within r1: perturb then verify.
        let noisy = loop {
            let cand = if delta == 2 {
                let mut bits = base.coords().to_vec();
                let flips = (r1.floor() as usize).min(dim);
                for _ in 0..rng.gen_range(0..=flips) {
                    let j = rng.gen_range(0..dim);
                    bits[j] = 1 - bits[j];
                }
                Point::new(bits)
            } else {
                let step = (r1 / dim as f64).floor().max(0.0) as i64;
                Point::new(
                    base.coords()
                        .iter()
                        .map(|&c| (c + rng.gen_range(-step..=step)).clamp(0, delta - 1))
                        .collect(),
                )
            };
            if space.distance(&base, &cand) <= r1 {
                break cand;
            }
        };
        alice.push(base);
        bob.push(noisy);
    }
    // Far points for Alice: uniform samples certified ≥ r2 from all of
    // Bob's (including Bob's own extra points, added first).
    for _ in 0..k {
        bob.push(space.universe().sample(&mut rng));
    }
    let mut alice_far = Vec::with_capacity(k);
    let mut guard = 0;
    while alice_far.len() < k {
        guard += 1;
        assert!(
            guard < 100_000,
            "cannot place far points: r2 too large for this space"
        );
        let cand = space.universe().sample(&mut rng);
        if space.nearest_distance(&cand, &bob) > r2 {
            alice.push(cand.clone());
            alice_far.push(cand);
        }
    }
    GapWorkload {
        alice,
        bob,
        alice_far,
        radii: (r1, r2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_emd_shapes() {
        let space = MetricSpace::hamming(32);
        let w = planted_emd(space, 50, 5, 1, 1);
        assert_eq!(w.alice.len(), 50);
        assert_eq!(w.bob.len(), 50);
        // Shared prefix points differ by at most `noise` bits.
        for i in 0..45 {
            assert!(space.distance(&w.alice[i], &w.bob[i]) <= 1.0);
        }
        for p in w.alice.iter().chain(&w.bob) {
            assert!(space.universe().contains(p));
        }
    }

    #[test]
    fn planted_emd_l2_noise_bounded() {
        let space = MetricSpace::l2(1000, 3);
        let w = planted_emd(space, 30, 2, 2, 2);
        for i in 0..28 {
            // ℓ2 noise ≤ √(d·noise²) = noise·√d.
            assert!(space.distance(&w.alice[i], &w.bob[i]) <= 2.0 * 3f64.sqrt() + 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let space = MetricSpace::l1(100, 2);
        let a = planted_emd(space, 20, 2, 1, 7);
        let b = planted_emd(space, 20, 2, 1, 7);
        assert_eq!(a.alice, b.alice);
        assert_eq!(a.bob, b.bob);
        let c = planted_emd(space, 20, 2, 1, 8);
        assert_ne!(a.alice, c.alice);
    }

    #[test]
    fn sensor_pairs_certified_gap() {
        let space = MetricSpace::hamming(128);
        let w = sensor_pairs(space, 40, 3, 2.0, 40.0, 3);
        assert_eq!(w.alice.len(), 40);
        assert_eq!(w.bob.len(), 40);
        assert_eq!(w.alice_far.len(), 3);
        // Close points are within r1 of some Bob point.
        for a in &w.alice[..37] {
            assert!(space.nearest_distance(a, &w.bob) <= 2.0);
        }
        // Far points are beyond r2 from every Bob point.
        for a in &w.alice_far {
            assert!(space.nearest_distance(a, &w.bob) > 40.0);
        }
    }

    #[test]
    fn sensor_pairs_l1() {
        let space = MetricSpace::l1(10_000, 2);
        let w = sensor_pairs(space, 30, 2, 4.0, 500.0, 4);
        for a in &w.alice_far {
            assert!(space.nearest_distance(a, &w.bob) > 500.0);
        }
        for a in &w.alice[..28] {
            assert!(space.nearest_distance(a, &w.bob) <= 4.0);
        }
    }

    #[test]
    fn zero_k_has_no_outliers() {
        let space = MetricSpace::hamming(16);
        let w = planted_emd(space, 10, 0, 0, 5);
        assert_eq!(w.alice, w.bob);
    }
}
