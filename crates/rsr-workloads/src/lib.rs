//! Synthetic workloads for robust set reconciliation experiments.
//!
//! The paper motivates robust reconciliation with noisy replicated data:
//! "set elements might be geometric coordinates for objects, as determined
//! by sensors … for the same object, each sensor might have slightly
//! different, noisy measurements" (§1). The generators here produce
//! exactly those shapes, deterministically from a seed:
//!
//! * [`planted_emd`] — `n − k` shared points with bounded per-point noise
//!   plus `k` independent outliers per side: the canonical EMD-model
//!   workload (experiments T3–T6);
//! * [`sensor_pairs`] — the Gap-model variant with guaranteed `r1`/`r2`
//!   separation (experiments T7, T8);
//! * [`trace`] — a line-based, seedable trace format so the same session
//!   batch can be replayed across transports and machines;
//! * [`churn`] — per-round insert/delete drift traces for continuous
//!   reconciliation (rate, skew, bursts), replayable the same way;
//! * [`stats`] — small summary-statistics helpers for the harness.

pub mod churn;
pub mod generators;
pub mod stats;
pub mod trace;

pub use churn::{base_set, read_churn, sample_churn, write_churn, ChurnSpec, RoundChurn};
pub use generators::{planted_emd, planted_emd_sparse, sensor_pairs, GapWorkload, Workload};
pub use trace::{
    read_trace, sample_trace, sample_trace_with, write_trace, TraceEntry, TraceMix, TraceProtocol,
};
