//! Summary statistics for the experiment harness.

/// Mean of a sample (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on a sorted copy.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q));
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// Maximum (−∞ for empty — callers treat that as "no data").
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Fraction of samples satisfying a predicate.
pub fn fraction<T>(xs: &[T], pred: impl Fn(&T) -> bool) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|x| pred(x)).count() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn fraction_counts() {
        let xs = [1, 2, 3, 4];
        assert_eq!(fraction(&xs, |&x| x > 2), 0.5);
    }
}
