//! A tiny replayable trace format for session batches.
//!
//! A *trace* is a line-based description of a batch of reconciliation
//! sessions — which protocol, how big, which seed — so the exact same
//! batch can be replayed against different transports (`exp_net` runs
//! one trace over the in-memory driver and over TCP loopback) or
//! regenerated across machines from the one seed that produced it. One
//! session per line, `#` comments and blank lines ignored:
//!
//! ```text
//! # protocol n k dim seed
//! emd 40 2 32 11
//! semd 30 2 2 12
//! gap 50 3 128 13
//! ```
//!
//! Protocols: `emd` (Algorithm 1 on a Hamming cube of dimension `dim`),
//! `semd` (the interval-scaled Corollary 3.6 protocol on an ℓ2 grid of
//! dimension `dim`), `gap` (the Theorem 4.2 Gap protocol on a Hamming
//! cube). The trace pins *instances*, not wire bytes: every consumer
//! derives workload and public coins deterministically from `(protocol,
//! n, k, dim, seed)`, so a replay is bit-identical wherever it runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Which protocol a trace entry drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceProtocol {
    /// Algorithm 1 (EMD model) on a Hamming cube.
    Emd,
    /// The interval-scaled EMD protocol (Corollary 3.6) on an ℓ2 grid.
    ScaledEmd,
    /// The Gap Guarantee protocol (Theorem 4.2) on a Hamming cube.
    Gap,
}

impl TraceProtocol {
    /// The token used on a trace line.
    pub fn token(self) -> &'static str {
        match self {
            TraceProtocol::Emd => "emd",
            TraceProtocol::ScaledEmd => "semd",
            TraceProtocol::Gap => "gap",
        }
    }

    fn from_token(token: &str) -> Option<TraceProtocol> {
        match token {
            "emd" => Some(TraceProtocol::Emd),
            "semd" => Some(TraceProtocol::ScaledEmd),
            "gap" => Some(TraceProtocol::Gap),
            _ => None,
        }
    }
}

impl fmt::Display for TraceProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One session of a trace: a protocol instance plus the seed that
/// deterministically regenerates its workload and public coins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// The protocol to run.
    pub protocol: TraceProtocol,
    /// Points per party.
    pub n: usize,
    /// Difference budget `k`.
    pub k: usize,
    /// Space dimension (Hamming bits or ℓ2 coordinates).
    pub dim: usize,
    /// Master seed for the workload and the protocol's public coins.
    pub seed: u64,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {}",
            self.protocol, self.n, self.k, self.dim, self.seed
        )
    }
}

/// Writes a trace, one entry per line, with a format-documenting header.
pub fn write_trace<W: Write>(w: &mut W, entries: &[TraceEntry]) -> io::Result<()> {
    writeln!(w, "# protocol n k dim seed")?;
    for entry in entries {
        writeln!(w, "{entry}")?;
    }
    Ok(())
}

/// Reads a trace written by [`write_trace`] (or by hand). Blank lines and
/// `#` comments are skipped; anything else that does not parse is an
/// `InvalidData` error naming the offending line.
pub fn read_trace<R: BufRead>(r: &mut R) -> io::Result<Vec<TraceEntry>> {
    let mut entries = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        entries.push(parse_line(line).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace line {}: cannot parse {line:?}", lineno + 1),
            )
        })?);
    }
    Ok(entries)
}

fn parse_line(line: &str) -> Option<TraceEntry> {
    let mut fields = line.split_whitespace();
    let protocol = TraceProtocol::from_token(fields.next()?)?;
    let n = fields.next()?.parse().ok()?;
    let k = fields.next()?.parse().ok()?;
    let dim = fields.next()?.parse().ok()?;
    let seed = fields.next()?.parse().ok()?;
    if fields.next().is_some() || k > n || n == 0 || dim == 0 {
        return None;
    }
    Some(TraceEntry {
        protocol,
        n,
        k,
        dim,
        seed,
    })
}

/// Samples a `count`-session trace deterministically from `seed`, cycling
/// through the three protocols with sizes drawn from ranges the seed
/// matrix tests also use. The same `(count, seed)` always yields the same
/// trace, so two processes can agree on a batch by exchanging two
/// numbers instead of a file.
pub fn sample_trace(count: usize, seed: u64) -> Vec<TraceEntry> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7ace_0000);
    (0..count)
        .map(|i| {
            let protocol = match i % 3 {
                0 => TraceProtocol::Emd,
                1 => TraceProtocol::ScaledEmd,
                _ => TraceProtocol::Gap,
            };
            let (n, dim) = match protocol {
                TraceProtocol::Emd => (rng.gen_range(24..=48), 24 + 8 * rng.gen_range(0..=1usize)),
                TraceProtocol::ScaledEmd => (rng.gen_range(24..=40), 2),
                TraceProtocol::Gap => (rng.gen_range(32..=56), 128),
            };
            TraceEntry {
                protocol,
                n,
                k: rng.gen_range(2..=3),
                dim,
                seed: rng.gen(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let entries = sample_trace(9, 42);
        let mut buf = Vec::new();
        write_trace(&mut buf, &entries).unwrap();
        let parsed = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn sampling_is_deterministic_and_mixed() {
        let a = sample_trace(12, 7);
        let b = sample_trace(12, 7);
        assert_eq!(a, b);
        for proto in [
            TraceProtocol::Emd,
            TraceProtocol::ScaledEmd,
            TraceProtocol::Gap,
        ] {
            assert_eq!(a.iter().filter(|e| e.protocol == proto).count(), 4);
        }
        assert_ne!(sample_trace(12, 8), a, "seed must matter");
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\n  emd 40 2 32 11  \n# tail\nsemd 30 2 2 12\n";
        let parsed = read_trace(&mut text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].protocol, TraceProtocol::Emd);
        assert_eq!(parsed[1], {
            TraceEntry {
                protocol: TraceProtocol::ScaledEmd,
                n: 30,
                k: 2,
                dim: 2,
                seed: 12,
            }
        });
    }

    #[test]
    fn malformed_lines_fail_with_the_line_number() {
        for bad in [
            "emd 40 2 32",         // missing seed
            "emd 40 2 32 11 99",   // trailing field
            "quadtree 40 2 32 11", // unknown protocol
            "emd 2 40 32 11",      // k > n
            "emd 0 0 32 11",       // empty instance
            "emd forty 2 32 11",   // non-numeric
        ] {
            let text = format!("# ok\n{bad}\n");
            let err = read_trace(&mut text.as_bytes()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bad}");
            assert!(err.to_string().contains("line 2"), "{bad}: {err}");
        }
    }
}
