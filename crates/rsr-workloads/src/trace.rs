//! A tiny replayable trace format for session batches.
//!
//! A *trace* is a line-based description of a batch of reconciliation
//! sessions — which protocol, how big, which seed — so the exact same
//! batch can be replayed against different transports (`exp_net` runs
//! one trace over the in-memory driver and over TCP loopback) or
//! regenerated across machines from the one seed that produced it. One
//! session per line, `#` comments and blank lines ignored:
//!
//! ```text
//! # protocol n k dim seed
//! emd 40 2 32 11
//! semd 30 2 2 12
//! gap 50 3 128 13
//! ```
//!
//! Protocols: `emd` (Algorithm 1 on a Hamming cube of dimension `dim`),
//! `semd` (the interval-scaled Corollary 3.6 protocol on an ℓ2 grid of
//! dimension `dim`), `gap` (the Theorem 4.2 Gap protocol on a Hamming
//! cube). The trace pins *instances*, not wire bytes: every consumer
//! derives workload and public coins deterministically from `(protocol,
//! n, k, dim, seed)`, so a replay is bit-identical wherever it runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Which protocol a trace entry drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceProtocol {
    /// Algorithm 1 (EMD model) on a Hamming cube.
    Emd,
    /// The interval-scaled EMD protocol (Corollary 3.6) on an ℓ2 grid.
    ScaledEmd,
    /// The Gap Guarantee protocol (Theorem 4.2) on a Hamming cube.
    Gap,
}

impl TraceProtocol {
    /// The token used on a trace line.
    pub fn token(self) -> &'static str {
        match self {
            TraceProtocol::Emd => "emd",
            TraceProtocol::ScaledEmd => "semd",
            TraceProtocol::Gap => "gap",
        }
    }

    fn from_token(token: &str) -> Option<TraceProtocol> {
        match token {
            "emd" => Some(TraceProtocol::Emd),
            "semd" => Some(TraceProtocol::ScaledEmd),
            "gap" => Some(TraceProtocol::Gap),
            _ => None,
        }
    }
}

impl fmt::Display for TraceProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One session of a trace: a protocol instance plus the seed that
/// deterministically regenerates its workload and public coins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// The protocol to run.
    pub protocol: TraceProtocol,
    /// Points per party.
    pub n: usize,
    /// Difference budget `k`.
    pub k: usize,
    /// Space dimension (Hamming bits or ℓ2 coordinates).
    pub dim: usize,
    /// Master seed for the workload and the protocol's public coins.
    pub seed: u64,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {} {}",
            self.protocol, self.n, self.k, self.dim, self.seed
        )
    }
}

/// Writes a trace, one entry per line, with a format-documenting header.
pub fn write_trace<W: Write>(w: &mut W, entries: &[TraceEntry]) -> io::Result<()> {
    writeln!(w, "# protocol n k dim seed")?;
    for entry in entries {
        writeln!(w, "{entry}")?;
    }
    Ok(())
}

/// Reads a trace written by [`write_trace`] (or by hand). Blank lines and
/// `#` comments are skipped; anything else that does not parse is an
/// `InvalidData` error naming the offending line.
pub fn read_trace<R: BufRead>(r: &mut R) -> io::Result<Vec<TraceEntry>> {
    let mut entries = Vec::new();
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        entries.push(parse_line(line).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("trace line {}: cannot parse {line:?}", lineno + 1),
            )
        })?);
    }
    Ok(entries)
}

fn parse_line(line: &str) -> Option<TraceEntry> {
    let mut fields = line.split_whitespace();
    let protocol = TraceProtocol::from_token(fields.next()?)?;
    let n = fields.next()?.parse().ok()?;
    let k = fields.next()?.parse().ok()?;
    let dim = fields.next()?.parse().ok()?;
    let seed = fields.next()?.parse().ok()?;
    if fields.next().is_some() || k > n || n == 0 || dim == 0 {
        return None;
    }
    Some(TraceEntry {
        protocol,
        n,
        k,
        dim,
        seed,
    })
}

/// Samples a `count`-session trace deterministically from `seed`, cycling
/// through the three protocols with sizes drawn from ranges the seed
/// matrix tests also use. The same `(count, seed)` always yields the same
/// trace, so two processes can agree on a batch by exchanging two
/// numbers instead of a file.
pub fn sample_trace(count: usize, seed: u64) -> Vec<TraceEntry> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7ace_0000);
    (0..count)
        .map(|i| {
            let protocol = match i % 3 {
                0 => TraceProtocol::Emd,
                1 => TraceProtocol::ScaledEmd,
                _ => TraceProtocol::Gap,
            };
            let (n, dim) = match protocol {
                TraceProtocol::Emd => (rng.gen_range(24..=48), 24 + 8 * rng.gen_range(0..=1usize)),
                TraceProtocol::ScaledEmd => (rng.gen_range(24..=40), 2),
                TraceProtocol::Gap => (rng.gen_range(32..=56), 128),
            };
            TraceEntry {
                protocol,
                n,
                k: rng.gen_range(2..=3),
                dim,
                seed: rng.gen(),
            }
        })
        .collect()
}

/// A weighted protocol blend for [`sample_trace_with`]: what fraction of
/// sessions run each protocol, how much to scale instance sizes, and how
/// often a periodic "bulk" session (double-size, modelling a batch sync
/// riding on interactive traffic) appears. [`sample_trace`] is the
/// uniform, unscaled special case and its output is unchanged by this
/// type's existence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceMix {
    /// Relative draw weights for `[emd, semd, gap]`; any non-negative
    /// values with a positive sum (they need not sum to 1).
    pub weights: [f64; 3],
    /// Multiplies every sampled per-party set size (clamped to at least
    /// 8 points so instances stay meaningful). `1.0` keeps the base
    /// ranges [`sample_trace`] uses.
    pub n_scale: f64,
    /// When `Some(b)`, every `b`-th session is a bulk session with its
    /// (already scaled) size doubled.
    pub bulk_every: Option<usize>,
}

impl TraceMix {
    /// Equal protocol weights, base sizes, no bulk sessions — the
    /// [`sample_trace`] blend expressed as a mix.
    pub fn uniform() -> TraceMix {
        TraceMix {
            weights: [1.0, 1.0, 1.0],
            n_scale: 1.0,
            bulk_every: None,
        }
    }

    /// A "production day" blend: mostly interactive EMD reconciliations,
    /// a quarter interval-scaled, a trickle of Gap audits, and every
    /// 16th session a double-size bulk sync.
    pub fn production_day() -> TraceMix {
        TraceMix {
            weights: [0.60, 0.25, 0.15],
            n_scale: 1.0,
            bulk_every: Some(16),
        }
    }

    /// The same blend with every instance size multiplied by `n_scale` —
    /// the payload-size axis of a load sweep.
    pub fn scaled(mut self, n_scale: f64) -> TraceMix {
        assert!(n_scale > 0.0, "n_scale must be positive");
        self.n_scale *= n_scale;
        self
    }
}

/// Samples a `count`-session trace deterministically from `seed` with a
/// weighted protocol [`TraceMix`]. Like [`sample_trace`], the same
/// `(count, seed, mix)` always yields the same trace; unlike it, the
/// protocol of each session is *drawn* from the mix's weights rather
/// than cycled, so a long trace looks like sampled production traffic
/// instead of a round-robin.
pub fn sample_trace_with(count: usize, seed: u64, mix: &TraceMix) -> Vec<TraceEntry> {
    let total: f64 = mix.weights.iter().sum();
    assert!(
        mix.weights.iter().all(|w| *w >= 0.0) && total > 0.0,
        "mix weights must be non-negative with a positive sum"
    );
    assert!(mix.n_scale > 0.0, "n_scale must be positive");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7ace_0001);
    (0..count)
        .map(|i| {
            let mut pick = rng.gen::<f64>() * total;
            let mut protocol = TraceProtocol::Gap;
            for (w, p) in mix.weights.iter().zip([
                TraceProtocol::Emd,
                TraceProtocol::ScaledEmd,
                TraceProtocol::Gap,
            ]) {
                if pick < *w {
                    protocol = p;
                    break;
                }
                pick -= w;
            }
            let (n, dim) = match protocol {
                TraceProtocol::Emd => (rng.gen_range(24..=48), 24 + 8 * rng.gen_range(0..=1usize)),
                TraceProtocol::ScaledEmd => (rng.gen_range(24..=40), 2),
                TraceProtocol::Gap => (rng.gen_range(32..=56), 128),
            };
            let bulk = mix.bulk_every.is_some_and(|b| b > 0 && (i + 1) % b == 0);
            let scale = mix.n_scale * if bulk { 2.0 } else { 1.0 };
            let n = ((n as f64 * scale).round() as usize).max(8);
            TraceEntry {
                protocol,
                n,
                k: rng.gen_range(2..=3),
                dim,
                seed: rng.gen(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_text() {
        let entries = sample_trace(9, 42);
        let mut buf = Vec::new();
        write_trace(&mut buf, &entries).unwrap();
        let parsed = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(parsed, entries);
    }

    #[test]
    fn sampling_is_deterministic_and_mixed() {
        let a = sample_trace(12, 7);
        let b = sample_trace(12, 7);
        assert_eq!(a, b);
        for proto in [
            TraceProtocol::Emd,
            TraceProtocol::ScaledEmd,
            TraceProtocol::Gap,
        ] {
            assert_eq!(a.iter().filter(|e| e.protocol == proto).count(), 4);
        }
        assert_ne!(sample_trace(12, 8), a, "seed must matter");
    }

    #[test]
    fn mix_sampling_is_deterministic_and_weighted() {
        let mix = TraceMix::production_day();
        let a = sample_trace_with(64, 9, &mix);
        assert_eq!(a, sample_trace_with(64, 9, &mix));
        assert_ne!(a, sample_trace_with(64, 10, &mix), "seed must matter");
        // The dominant protocol should dominate and nothing with positive
        // weight should vanish over 64 draws.
        let count = |p: TraceProtocol| a.iter().filter(|e| e.protocol == p).count();
        assert!(count(TraceProtocol::Emd) > count(TraceProtocol::Gap));
        assert!(count(TraceProtocol::ScaledEmd) > 0);
        assert!(count(TraceProtocol::Gap) > 0);
    }

    #[test]
    fn zero_weight_protocols_never_appear() {
        let mix = TraceMix {
            weights: [0.0, 1.0, 0.0],
            n_scale: 1.0,
            bulk_every: None,
        };
        let trace = sample_trace_with(32, 3, &mix);
        assert!(trace.iter().all(|e| e.protocol == TraceProtocol::ScaledEmd));
    }

    #[test]
    fn bulk_and_scale_grow_instances() {
        let base = TraceMix::uniform();
        let scaled = base.scaled(2.0);
        let a = sample_trace_with(24, 5, &base);
        let b = sample_trace_with(24, 5, &scaled);
        // Same protocols and seeds (same rng draw sequence), doubled sizes.
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.protocol, y.protocol);
            assert_eq!(x.seed, y.seed);
            assert_eq!(y.n, (x.n * 2).max(8));
        }
        // Bulk sessions double again at the configured cadence.
        let bulky = TraceMix {
            bulk_every: Some(4),
            ..base
        };
        let c = sample_trace_with(24, 5, &bulky);
        for (i, (x, y)) in a.iter().zip(&c).enumerate() {
            let expect = if (i + 1) % 4 == 0 { x.n * 2 } else { x.n };
            assert_eq!(y.n, expect.max(8), "session {i}");
        }
    }

    #[test]
    fn mix_traces_round_trip_and_validate() {
        let entries = sample_trace_with(20, 77, &TraceMix::production_day());
        let mut buf = Vec::new();
        write_trace(&mut buf, &entries).unwrap();
        assert_eq!(read_trace(&mut buf.as_slice()).unwrap(), entries);
        assert!(entries.iter().all(|e| e.k <= e.n && e.n >= 8));
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\n  emd 40 2 32 11  \n# tail\nsemd 30 2 2 12\n";
        let parsed = read_trace(&mut text.as_bytes()).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].protocol, TraceProtocol::Emd);
        assert_eq!(parsed[1], {
            TraceEntry {
                protocol: TraceProtocol::ScaledEmd,
                n: 30,
                k: 2,
                dim: 2,
                seed: 12,
            }
        });
    }

    #[test]
    fn malformed_lines_fail_with_the_line_number() {
        for bad in [
            "emd 40 2 32",         // missing seed
            "emd 40 2 32 11 99",   // trailing field
            "quadtree 40 2 32 11", // unknown protocol
            "emd 2 40 32 11",      // k > n
            "emd 0 0 32 11",       // empty instance
            "emd forty 2 32 11",   // non-numeric
        ] {
            let text = format!("# ok\n{bad}\n");
            let err = read_trace(&mut text.as_bytes()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bad}");
            assert!(err.to_string().contains("line 2"), "{bad}: {err}");
        }
    }
}
