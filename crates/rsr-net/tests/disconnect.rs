//! Disconnect chaos: peers vanishing mid-OPEN, mid-FRAME, and after
//! DONE. Every case must resolve to a typed error or a clean report —
//! never a panic, never a hang — and a killed connection must not
//! perturb its siblings: surviving sessions settle with transcripts
//! bit-for-bit identical to the serial in-memory reference.

// This suite predates the unified `Driver` and deliberately keeps
// exercising the deprecated entry points it was written against.
#![allow(deprecated)]

use rsr_core::channel::Frame;
use rsr_core::session::{drive_in_memory, Session};
use rsr_core::transcript::{Party, Transcript};
use rsr_net::{
    handle_connection, read_record, write_record, Driver, MultiClient, NetError, NetSession,
    ReconClient, ReconServer, Record, SessionFactory, SessionPlan, STATUS_OK,
};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ------------------------------------------------------------ echo pair

/// `rounds` ping/pong exchanges with payloads derived from the session
/// id, so every session's transcript is distinguishable on the wire.
fn ping(id: u64, round: u8) -> Frame {
    Frame {
        label: format!("ping{round}").into(),
        payload: vec![id as u8, round, 0xA5],
        bit_len: 24,
    }
}

fn pong(id: u64, round: u8) -> Frame {
    Frame {
        label: format!("pong{round}").into(),
        payload: vec![id as u8, round, 0x5A],
        bit_len: 24,
    }
}

struct EchoAlice {
    id: u64,
    rounds: u8,
    sent: u8,
    acked: u8,
}

fn alice(id: u64, rounds: u8) -> EchoAlice {
    EchoAlice {
        id,
        rounds,
        sent: 0,
        acked: 0,
    }
}

impl Session for EchoAlice {
    type Error = String;

    fn poll_send(&mut self) -> Result<Option<Frame>, String> {
        if self.sent == self.acked && self.sent < self.rounds {
            let round = self.sent;
            self.sent += 1;
            return Ok(Some(ping(self.id, round)));
        }
        Ok(None)
    }

    fn on_frame(&mut self, frame: Frame) -> Result<(), String> {
        let want = pong(self.id, self.acked);
        if frame.label != want.label || frame.payload != want.payload {
            return Err(format!("bad echo in round {}", self.acked));
        }
        self.acked += 1;
        Ok(())
    }

    fn is_done(&self) -> bool {
        self.acked == self.rounds
    }
}

struct EchoBob {
    id: u64,
    rounds: u8,
    seen: u8,
    queued: Option<Frame>,
}

fn bob(id: u64, rounds: u8) -> EchoBob {
    EchoBob {
        id,
        rounds,
        seen: 0,
        queued: None,
    }
}

impl Session for EchoBob {
    type Error = String;

    fn poll_send(&mut self) -> Result<Option<Frame>, String> {
        Ok(self.queued.take())
    }

    fn on_frame(&mut self, frame: Frame) -> Result<(), String> {
        let want = ping(self.id, self.seen);
        if frame.label != want.label || frame.payload != want.payload {
            return Err(format!("bad ping in round {}", self.seen));
        }
        self.queued = Some(pong(self.id, self.seen));
        self.seen += 1;
        Ok(())
    }

    fn is_done(&self) -> bool {
        self.seen == self.rounds && self.queued.is_none()
    }
}

struct EchoFactory {
    rounds: u8,
}

impl SessionFactory for EchoFactory {
    fn open_spec(
        &self,
        session_id: u64,
        _spec: Option<&rsr_net::SessionSpec>,
    ) -> Option<Box<dyn NetSession + '_>> {
        Some(Box::new(bob(session_id, self.rounds)))
    }
}

/// `(sender, label, bits)` triples — the full observable transcript.
fn entries(t: &Transcript) -> Vec<(Option<Party>, String, u64)> {
    t.entries_with_sender()
        .map(|(s, l, b)| (s, l.to_owned(), b))
        .collect()
}

/// The serial in-memory reference transcript for one echo session.
fn reference_transcript(id: u64, rounds: u8) -> Transcript {
    let mut a = alice(id, rounds);
    let mut b = bob(id, rounds);
    drive_in_memory(Party::Alice, &mut a, &mut b).expect("reference run completes")
}

fn encoded(record: &Record) -> Vec<u8> {
    let mut buf = Vec::new();
    write_record(&mut buf, record).expect("encodes");
    buf
}

// -------------------------------------------------- server-side chaos

#[test]
fn disconnect_mid_open_is_a_typed_error_not_a_panic() {
    let server = ReconServer::bind("127.0.0.1:0", Arc::new(EchoFactory { rounds: 1 })).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve_one());

    let mut stream = TcpStream::connect(addr).unwrap();
    let open = encoded(&Record::Open {
        session: 0,
        spec: None,
    });
    stream.write_all(&open[..open.len() - 3]).unwrap();
    drop(stream);

    let outcome = handle.join().expect("server must not panic");
    assert!(
        matches!(outcome, Err(NetError::Malformed("truncated record body"))),
        "expected truncation, got {outcome:?}"
    );
}

#[test]
fn disconnect_mid_frame_tears_the_session_down_without_hanging() {
    let server = ReconServer::bind("127.0.0.1:0", Arc::new(EchoFactory { rounds: 3 })).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve_one());

    let mut stream = TcpStream::connect(addr).unwrap();
    let mut bytes = encoded(&Record::Open {
        session: 9,
        spec: None,
    });
    let frame_bytes = encoded(&Record::Frame {
        session: 9,
        frame: ping(9, 0),
    });
    bytes.extend(&frame_bytes[..frame_bytes.len() - 2]);
    stream.write_all(&bytes).unwrap();
    drop(stream);

    // The join returning at all is the regression being tested: the
    // opened session's local half must be closed out so the executor
    // drains and the reactor exits, instead of waiting forever for a
    // frame that will never come.
    let outcome = handle.join().expect("server must not panic");
    assert!(
        matches!(outcome, Err(NetError::Malformed("truncated record body"))),
        "expected truncation, got {outcome:?}"
    );
}

#[test]
fn abrupt_drop_after_done_leaves_a_clean_report() {
    let server = ReconServer::bind("127.0.0.1:0", Arc::new(EchoFactory { rounds: 1 })).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || server.serve_one());

    // A raw client that completes one session and then just drops the
    // socket — no DONE record of its own, no shutdown handshake.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(&encoded(&Record::Open {
            session: 7,
            spec: None,
        }))
        .unwrap();
    stream
        .write_all(&encoded(&Record::Frame {
            session: 7,
            frame: ping(7, 0),
        }))
        .unwrap();
    let mut done = false;
    while !done {
        let (record, _) = read_record(&mut stream)
            .expect("server reply decodes")
            .expect("server must not close first");
        match record {
            Record::Frame { session, frame } => {
                assert_eq!(session, 7);
                assert_eq!(frame.label, "pong0");
            }
            Record::Done {
                session, status, ..
            } => {
                assert_eq!(session, 7);
                assert_eq!(status, STATUS_OK);
                done = true;
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    drop(stream);

    let report = handle
        .join()
        .expect("server must not panic")
        .expect("EOF after DONE is a clean close");
    assert_eq!(report.sessions.len(), 1);
    assert_eq!(report.sessions[0].id, 7);
    assert!(report.sessions[0].error.is_none());
    assert_eq!(
        entries(&report.sessions[0].transcript),
        entries(&reference_transcript(7, 1)),
    );
}

#[test]
fn a_silent_client_is_torn_down_at_the_idle_deadline() {
    let server = ReconServer::bind("127.0.0.1:0", Arc::new(EchoFactory { rounds: 1 }))
        .unwrap()
        .with_idle_timeout(Some(Duration::from_millis(250)));
    let addr = server.local_addr().unwrap();
    let started = Instant::now();
    let handle = std::thread::spawn(move || server.serve_one());

    // Connect and say nothing. The server must not wait on us forever.
    let stream = TcpStream::connect(addr).unwrap();
    let outcome = handle.join().expect("server must not panic");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "idle teardown took {:?}",
        started.elapsed()
    );
    match outcome {
        Err(NetError::Io(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::TimedOut);
            assert!(e.to_string().contains("idle"), "unexpected message: {e}");
        }
        other => panic!("expected an idle timeout, got {other:?}"),
    }
    drop(stream);
}

// -------------------------------------------------- client-side chaos

#[test]
fn server_truncation_mid_frame_is_a_typed_client_error_not_a_hang() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // Consume OPEN and the first ping, then die mid-pong.
        for _ in 0..2 {
            read_record(&mut stream).unwrap().expect("a record");
        }
        let reply = encoded(&Record::Frame {
            session: 0,
            frame: pong(0, 0),
        });
        stream.write_all(&reply[..reply.len() - 2]).unwrap();
    });

    let client = ReconClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let batch: Vec<(u64, Box<dyn NetSession + '_>)> = vec![(0, Box::new(alice(0, 2)))];
    let err = client
        .run_batch(batch)
        .expect_err("a truncated reply is a transport failure");
    assert!(
        matches!(err, NetError::Malformed("truncated record body")),
        "expected truncation, got {err:?}"
    );
    server.join().unwrap();
}

#[test]
fn server_vanishing_cleanly_fails_the_sessions_not_the_process() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // Read everything the client says (OPEN + ping for each of the
        // two sessions), answer nothing, and hang up at a record
        // boundary. Draining first keeps the close a clean FIN — bytes
        // left unread would turn it into an RST, which is the *other*
        // test's failure mode.
        for _ in 0..4 {
            read_record(&mut stream).unwrap().expect("a record");
        }
    });

    let client = ReconClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let batch: Vec<(u64, Box<dyn NetSession + '_>)> =
        vec![(0, Box::new(alice(0, 1))), (1, Box::new(alice(1, 1)))];
    let report = client
        .run_batch(batch)
        .expect("a clean close is not a transport failure");
    server.join().unwrap();
    assert_eq!(report.failed(), 2);
    for s in &report.sessions {
        assert!(
            s.error
                .as_deref()
                .unwrap()
                .contains("connection closed before session settled"),
            "unexpected error: {:?}",
            s.error
        );
    }
}

#[test]
fn a_silent_server_trips_the_clients_idle_deadline() {
    // The mirror of `a_silent_client_is_torn_down_at_the_idle_deadline`:
    // the server accepts, reads everything, and never answers — the
    // socket stays open, so only the client's own idle deadline (the
    // `Driver` builder knob, symmetric with the server's
    // `with_idle_timeout`) can end the wait.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // OPEN + the first ping, then silence with the socket held open.
        for _ in 0..2 {
            read_record(&mut stream).unwrap().expect("a record");
        }
        stream
    });

    let started = Instant::now();
    let report = Driver::new(addr)
        .idle_timeout(Some(Duration::from_millis(250)))
        .batch(vec![vec![SessionPlan::new(0, Box::new(alice(0, 1)))]])
        .expect("an idle connection is a per-connection outcome, not a batch error");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "idle teardown took {:?}",
        started.elapsed()
    );
    let conn = &report.conns[0];
    match &conn.transport_error {
        Some(NetError::Io(e)) => {
            assert_eq!(e.kind(), std::io::ErrorKind::TimedOut);
            assert!(
                e.to_string().contains("no wire activity"),
                "unexpected message: {e}"
            );
        }
        other => panic!("expected a client-side idle timeout, got {other:?}"),
    }
    assert_eq!(conn.failed(), 1);
    assert!(
        conn.sessions[0]
            .error
            .as_deref()
            .unwrap()
            .contains("before session settled"),
        "unexpected error: {:?}",
        conn.sessions[0].error
    );
    drop(server.join().unwrap());
}

// --------------------------------------------- cross-connection chaos

#[test]
fn a_killed_connection_does_not_poison_its_siblings() {
    const ROUNDS: u8 = 3;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        // First connection is served faithfully; the second is dropped
        // on the floor the moment it is accepted.
        let (healthy, _) = listener.accept().unwrap();
        let healthy =
            std::thread::spawn(move || handle_connection(&EchoFactory { rounds: ROUNDS }, healthy));
        let (doomed, _) = listener.accept().unwrap();
        drop(doomed);
        healthy.join().expect("server conn must not panic")
    });

    let mut client = MultiClient::connect(addr, 2).unwrap();
    let batches: Vec<Vec<SessionPlan<'_>>> = vec![
        (0u64..4)
            .map(|id| SessionPlan::new(id, Box::new(alice(id, ROUNDS))))
            .collect(),
        (10u64..14)
            .map(|id| SessionPlan::new(id, Box::new(alice(id, ROUNDS))))
            .collect(),
    ];
    let reports = client.run_batches(batches).expect("round runs");
    assert_eq!(reports.len(), 2);

    // The surviving connection: every session settled, bit-for-bit.
    assert!(reports[0].transport_error.is_none());
    assert_eq!(reports[0].completed(), 4);
    for s in &reports[0].sessions {
        assert!(s.is_ok(), "session {}: {:?}", s.id, s.error);
        assert_eq!(
            entries(&s.transcript),
            entries(&reference_transcript(s.id, ROUNDS)),
            "session {} transcript drifted from the serial reference",
            s.id
        );
    }

    // The killed connection: every session failed, with a per-session
    // error — no panic, no poisoned sibling, no global abort.
    assert_eq!(reports[1].failed(), 4);
    for s in &reports[1].sessions {
        assert!(
            s.error
                .as_deref()
                .unwrap()
                .contains("before session settled"),
            "unexpected error: {:?}",
            s.error
        );
    }
    assert_eq!(client.live_conns(), 1);

    client.finish();
    let conn = server.join().unwrap().expect("healthy conn report");
    assert_eq!(conn.sessions.len(), 4);
    for s in &conn.sessions {
        assert!(s.error.is_none(), "session {}: {:?}", s.id, s.error);
        assert_eq!(
            entries(&s.transcript),
            entries(&reference_transcript(s.id, ROUNDS)),
            "server transcript for session {} drifted",
            s.id
        );
    }
}

#[test]
fn live_connections_carry_successive_batches() {
    const ROUNDS: u8 = 2;
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        let conns: Vec<_> = (0..2)
            .map(|_| {
                let (stream, _) = listener.accept().unwrap();
                std::thread::spawn(move || {
                    handle_connection(&EchoFactory { rounds: ROUNDS }, stream)
                })
            })
            .collect();
        conns
            .into_iter()
            .map(|h| h.join().expect("server conn must not panic"))
            .collect::<Vec<_>>()
    });

    let mut client = MultiClient::connect(addr, 2).unwrap();
    // Two rounds of batches over the same pair of live connections;
    // session ids must be fresh per connection across rounds.
    for base in [0u64, 100] {
        let batches: Vec<Vec<SessionPlan<'_>>> = (0..2)
            .map(|conn| {
                (0..3)
                    .map(|i| {
                        let id = base + conn * 10 + i;
                        SessionPlan::new(id, Box::new(alice(id, ROUNDS)))
                    })
                    .collect()
            })
            .collect();
        let reports = client.run_batches(batches).expect("round runs");
        for report in &reports {
            assert!(report.transport_error.is_none());
            assert_eq!(report.completed(), 3);
            for s in &report.sessions {
                assert_eq!(
                    entries(&s.transcript),
                    entries(&reference_transcript(s.id, ROUNDS)),
                    "session {} transcript drifted from the serial reference",
                    s.id
                );
            }
        }
    }
    assert_eq!(client.live_conns(), 2);
    client.finish();

    for conn in server.join().unwrap() {
        let conn = conn.expect("clean connection report");
        assert_eq!(conn.sessions.len(), 6, "both rounds on one connection");
        assert!(conn.sessions.iter().all(|s| s.error.is_none()));
    }
}
