//! Malformed-stream behaviour: a broken, truncated, oversized, or
//! out-of-contract byte stream must fail *cleanly* — a typed error or an
//! error `DONE` status, never a panic, hang, or huge allocation.

// This suite predates the unified `Driver` and deliberately keeps
// exercising the deprecated entry points it was written against.
#![allow(deprecated)]

use rsr_core::channel::Frame;
use rsr_core::session::{drive_channel, DriveError, Session};
use rsr_core::transcript::Party;
use rsr_net::{
    read_record, write_record, NetError, ReconClient, ReconServer, Record, SessionFactory,
    TcpChannel, MAX_RECORD_BYTES, STATUS_OK, STATUS_UNKNOWN_SESSION,
};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

fn encoded(record: &Record) -> Vec<u8> {
    let mut buf = Vec::new();
    write_record(&mut buf, record).expect("encodes");
    buf
}

fn open_record(session: u64) -> Vec<u8> {
    encoded(&Record::Open {
        session,
        spec: None,
    })
}

// ---------------------------------------------------------------- codec

#[test]
fn truncated_length_prefix_is_malformed() {
    // 2 of the 4 length-prefix bytes, then EOF.
    let mut bytes: &[u8] = &open_record(1)[..2];
    assert!(matches!(
        read_record(&mut bytes),
        Err(NetError::Malformed("truncated length prefix"))
    ));
}

#[test]
fn truncated_body_is_malformed() {
    let full = open_record(1);
    let mut bytes: &[u8] = &full[..full.len() - 3];
    assert!(matches!(
        read_record(&mut bytes),
        Err(NetError::Malformed("truncated record body"))
    ));
}

#[test]
fn oversized_length_prefix_fails_before_allocating() {
    // Claims a body just past the cap; only the 4 prefix bytes exist, so
    // an implementation that allocated/read first would error differently
    // (or OOM on u32::MAX) instead of rejecting by policy.
    for claimed in [MAX_RECORD_BYTES + 1, u32::MAX] {
        let mut bytes: &[u8] = &claimed.to_be_bytes();
        match read_record(&mut bytes) {
            Err(NetError::Oversized { claimed: got }) => assert_eq!(got, claimed),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }
}

#[test]
fn record_shorter_than_its_header_is_malformed() {
    let mut bytes: &[u8] = &3u32.to_be_bytes();
    assert!(matches!(
        read_record(&mut bytes),
        Err(NetError::Malformed(_))
    ));
}

#[test]
fn unknown_record_kind_is_rejected() {
    let mut bytes = open_record(1);
    bytes[4] = 0x7F; // corrupt the kind byte
    let mut r: &[u8] = &bytes;
    assert!(matches!(
        read_record(&mut r),
        Err(NetError::UnknownKind(0x7F))
    ));
}

#[test]
fn frame_payload_must_match_its_bit_length() {
    let frame = Frame {
        label: "m".into(),
        payload: vec![0xFF; 4],
        bit_len: 17, // needs 3 bytes, not 4
    };
    let mut bytes = Vec::new();
    // The writer debug-asserts this invariant, so craft the bytes via a
    // release-mode-compatible path: encode a valid record then break the
    // declared bit length.
    let mut valid = frame.clone();
    valid.bit_len = 32;
    write_record(
        &mut bytes,
        &Record::Frame {
            session: 0,
            frame: valid,
        },
    )
    .unwrap();
    // bit_len field sits right before the payload: last 4 payload bytes,
    // preceded by 8 bit-length bytes.
    let len = bytes.len();
    bytes[len - 12..len - 4].copy_from_slice(&17u64.to_be_bytes());
    let mut r: &[u8] = &bytes;
    assert!(matches!(
        read_record(&mut r),
        Err(NetError::Malformed(
            "frame payload length disagrees with its bit length"
        ))
    ));
}

#[test]
fn non_utf8_label_is_rejected() {
    let frame = Frame {
        label: "ab".into(),
        payload: vec![],
        bit_len: 0,
    };
    let mut bytes = Vec::new();
    write_record(&mut bytes, &Record::Frame { session: 0, frame }).unwrap();
    // The two label bytes follow kind (1) + session (8) + label len (2).
    bytes[4 + 11] = 0xFF;
    bytes[4 + 12] = 0xFE;
    let mut r: &[u8] = &bytes;
    assert!(matches!(
        read_record(&mut r),
        Err(NetError::Malformed("frame label is not utf-8"))
    ));
}

// ------------------------------------------------------------ transport

#[test]
fn tcp_channel_surfaces_truncation_as_stall_plus_error() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let peer = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // Half a length prefix, then hang up mid-record.
        stream.write_all(&[0, 0]).unwrap();
    });
    let mut ch = TcpChannel::connect(addr, Party::Alice).unwrap();
    peer.join().unwrap();

    /// Expects one frame that never (fully) arrives.
    struct WaitingForever;
    impl Session for WaitingForever {
        type Error = String;
        fn poll_send(&mut self) -> Result<Option<Frame>, String> {
            Ok(None)
        }
        fn on_frame(&mut self, _: Frame) -> Result<(), String> {
            Ok(())
        }
        fn is_done(&self) -> bool {
            false
        }
    }
    let err = drive_channel(&mut ch, Party::Alice, &mut WaitingForever).unwrap_err();
    assert_eq!(err, DriveError::Stalled);
    assert!(matches!(
        ch.take_error(),
        Some(NetError::Malformed("truncated length prefix"))
    ));
}

// --------------------------------------------------------------- server

/// Accepts exactly one frame, sends nothing.
struct OneFrameSink {
    got: bool,
}

impl Session for OneFrameSink {
    type Error = String;

    fn poll_send(&mut self) -> Result<Option<Frame>, String> {
        Ok(None)
    }

    fn on_frame(&mut self, _: Frame) -> Result<(), String> {
        self.got = true;
        Ok(())
    }

    fn is_done(&self) -> bool {
        self.got
    }
}

/// Knows sessions 0..4 only.
struct SmallFactory;

impl SessionFactory for SmallFactory {
    fn open_spec(
        &self,
        session_id: u64,
        _spec: Option<&rsr_net::SessionSpec>,
    ) -> Option<Box<dyn rsr_net::NetSession + '_>> {
        (session_id < 4)
            .then(|| Box::new(OneFrameSink { got: false }) as Box<dyn rsr_net::NetSession>)
    }
}

fn spawn_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
    let server = ReconServer::bind("127.0.0.1:0", Arc::new(SmallFactory)).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        let _ = server.serve_one();
    });
    (addr, handle)
}

#[test]
fn unknown_session_id_gets_an_error_done_not_a_dead_connection() {
    let (addr, server) = spawn_server();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A frame for an unknown session, then a valid one: the server must
    // answer the first with STATUS_UNKNOWN_SESSION and still serve the
    // second.
    let frame = Frame {
        label: "m".into(),
        payload: vec![0xAA],
        bit_len: 8,
    };
    let mut bytes = encoded(&Record::Frame {
        session: 99,
        frame: frame.clone(),
    });
    bytes.extend(encoded(&Record::Frame { session: 2, frame }));
    stream.write_all(&bytes).unwrap();

    let (first, _) = read_record(&mut stream).unwrap().expect("a reply");
    match first {
        Record::Done {
            session, status, ..
        } => {
            assert_eq!(session, 99);
            assert_eq!(status, STATUS_UNKNOWN_SESSION);
        }
        other => panic!("expected DONE for session 99, got {other:?}"),
    }
    let (second, _) = read_record(&mut stream).unwrap().expect("a reply");
    match second {
        Record::Done {
            session, status, ..
        } => {
            assert_eq!(session, 2);
            assert_eq!(status, STATUS_OK);
        }
        other => panic!("expected DONE for session 2, got {other:?}"),
    }
    drop(stream);
    server.join().unwrap();
}

#[test]
fn garbage_stream_closes_the_connection_cleanly() {
    let (addr, server) = spawn_server();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // An oversized length prefix: the server must drop the connection
    // (we observe EOF), not hang or allocate.
    stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
    stream.write_all(&[0u8; 64]).unwrap();
    assert!(
        read_record(&mut stream).unwrap().is_none(),
        "server should close the connection"
    );
    server.join().unwrap();
}

#[test]
fn client_reports_unknown_sessions_without_poisoning_the_batch() {
    let (addr, server) = spawn_server();
    let client = ReconClient::connect(addr).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Session 7 is unknown to the factory; 0 and 1 are fine. The frame
    // each sink expects comes from this one-frame Alice.
    struct OneFrameSource {
        sent: bool,
    }
    impl Session for OneFrameSource {
        type Error = String;
        fn poll_send(&mut self) -> Result<Option<Frame>, String> {
            if self.sent {
                return Ok(None);
            }
            self.sent = true;
            Ok(Some(Frame {
                label: "m".into(),
                payload: vec![0xAA],
                bit_len: 8,
            }))
        }
        fn on_frame(&mut self, _: Frame) -> Result<(), String> {
            Err("unexpected frame".into())
        }
        fn is_done(&self) -> bool {
            self.sent
        }
    }
    let batch: Vec<(u64, Box<dyn rsr_net::NetSession + '_>)> = [0u64, 7, 1]
        .into_iter()
        .map(|id| {
            (
                id,
                Box::new(OneFrameSource { sent: false }) as Box<dyn rsr_net::NetSession + '_>,
            )
        })
        .collect();
    let report = client.run_batch(batch).expect("transport stays healthy");
    server.join().unwrap();
    assert_eq!(report.completed(), 2);
    assert_eq!(report.failed(), 1);
    let failed = report.sessions.iter().find(|s| s.id == 7).unwrap();
    assert!(
        failed.error.as_deref().unwrap().contains("unknown session"),
        "unexpected error: {:?}",
        failed.error
    );
}
