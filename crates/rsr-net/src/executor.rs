//! The sharded connection driver: `rsr-core`'s worker-pool session
//! executor wired to the record codec.
//!
//! PR 3's server drove the sessions of a connection inline on the
//! connection thread, one frame at a time — correct, but serial: one
//! slow Bob half (an EMD decode) stalled every other session behind it.
//! This module replaces that loop. The connection thread becomes a pure
//! *reader*: it parses records and feeds them to the session executor
//! engine ([`rsr_core::executor`]) — `OPEN`
//! submits the factory's Bob half (placed on a shard by power-of-two
//! choices), `FRAME` wakes exactly the addressed session on its shard,
//! `DONE` closes it. A dedicated *writer* thread drains the executor's
//! event stream back onto the socket, so record order per session is
//! preserved (one worker owns a session; one channel orders its output)
//! while sessions on different shards make progress concurrently.
//!
//! Control replies that belong to no session (an unknown session id, a
//! duplicate `OPEN`) are serialized into the same event stream with
//! [`Injector::inject`](rsr_core::executor::Injector::inject), keeping
//! the writer the single owner of the socket's write half.
//!
//! The client's batch loop in [`crate::client`] is the mirror image:
//! its reader feeds server records into an executor over the Alice
//! halves, and its main thread drains events into `FRAME` records.

use crate::codec::{
    read_record, write_record, NetError, Record, STATUS_OK, STATUS_SESSION_ERROR,
    STATUS_UNKNOWN_SESSION,
};
use crate::server::{ConnectionReport, SessionFactory, SessionSummary};
use rsr_core::executor::{with_executor, Events, ExecEvent};
use rsr_core::transcript::Party;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream};

/// Cap on [`default_shards`]: connection concurrency rarely benefits
/// from more workers than this, and an unbounded default would spawn a
/// thread per hardware thread on large hosts for every connection.
pub const MAX_DEFAULT_SHARDS: usize = 8;

/// The default worker-shard count: available parallelism, capped at
/// [`MAX_DEFAULT_SHARDS`], at least 1.
pub fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, MAX_DEFAULT_SHARDS)
}

/// Placement salt for the two-choice session→shard assignment. Fixed so
/// a replayed trace lands on the same shards everywhere.
pub(crate) const PLACEMENT_SEED: u64 = 0x2c01_ce5e_ed00_7357;

/// Injected-event code: a record referenced a session id the factory
/// does not know.
const INJ_UNKNOWN_SESSION: u32 = 1;
/// Injected-event code: an `OPEN` for a session that is already open.
const INJ_DUP_OPEN: u32 = 2;

/// Close reason for sessions the client abandoned via `DONE`; the
/// writer recognizes it and does not echo a `DONE` back.
const ABANDONED: &str = "abandoned by client";
/// Error recorded for sessions still live when the client hung up.
const CLOSED_MID_SESSION: &str = "connection closed mid-session";

/// Serves every session the client multiplexes onto `stream`, driving
/// them over a `shards`-wide executor, until the client closes the
/// connection. Semantics match the serial PR 3 loop record for record:
/// per-session `DONE` isolation, implicit open on a first `FRAME`,
/// unknown ids answered with [`STATUS_UNKNOWN_SESSION`], and
/// per-session transcripts identical to the in-memory driver's.
pub(crate) fn drive_server_connection<F: SessionFactory + ?Sized>(
    factory: &F,
    stream: TcpStream,
    shards: usize,
) -> Result<ConnectionReport, NetError> {
    stream.set_nodelay(true).ok();
    let reader_stream = stream.try_clone()?;
    let writer = BufWriter::new(stream);
    with_executor(
        shards,
        PLACEMENT_SEED,
        move |scope, mut injector, events| {
            let writer_thread = scope.spawn(move || server_write_loop(writer, events));

            let mut reader = BufReader::new(reader_stream);
            let mut order: Vec<u64> = Vec::new();
            let mut frames_in = 0usize;
            let mut wire_bytes_in = 0u64;
            let read_outcome: Result<(), NetError> = loop {
                match read_record(&mut reader) {
                    Ok(None) => break Ok(()),
                    Err(e) => break Err(e),
                    Ok(Some((record, n))) => {
                        wire_bytes_in += n;
                        match record {
                            Record::Open { session: id } => {
                                if injector.shard_of(id).is_some() {
                                    injector.inject(id, INJ_DUP_OPEN, "session opened twice");
                                } else if let Some(session) = factory.open(id) {
                                    order.push(id);
                                    injector.submit(id, Party::Bob, session);
                                } else {
                                    injector.inject(id, INJ_UNKNOWN_SESSION, "unknown session id");
                                }
                            }
                            Record::Frame { session: id, frame } => {
                                // A first frame without OPEN implicitly opens
                                // the session (Alice-initiated protocols over
                                // a bare TcpChannel).
                                if injector.shard_of(id).is_none() {
                                    match factory.open(id) {
                                        Some(session) => {
                                            order.push(id);
                                            injector.submit(id, Party::Bob, session);
                                        }
                                        None => {
                                            injector.inject(
                                                id,
                                                INJ_UNKNOWN_SESSION,
                                                "unknown session id",
                                            );
                                            continue;
                                        }
                                    }
                                }
                                frames_in += 1;
                                injector.deliver(id, frame);
                            }
                            Record::Done { session: id, .. } => {
                                // The client gave up on the session; drop our
                                // half. Stale closes are no-ops.
                                injector.close(id, ABANDONED);
                            }
                        }
                    }
                }
            };

            // Shut the executor down: workers drain their queues (frames
            // already read keep flowing to the writer), strand what is still
            // live, and the writer exits once the event stream closes.
            drop(injector);
            let (mut summaries, frames_out, wire_bytes_out, write_error) =
                writer_thread.join().expect("connection writer thread");
            if let Some(e) = write_error {
                return Err(e);
            }
            read_outcome?;

            let mut report = ConnectionReport {
                sessions: Vec::with_capacity(order.len()),
                frames_in,
                frames_out,
                wire_bytes_in,
                wire_bytes_out,
            };
            for id in order {
                let summary = summaries
                    .remove(&id)
                    .expect("every submitted session reports Done or Stranded");
                report.sessions.push(summary);
            }
            Ok(report)
        },
    )
}

/// What the writer thread hands back: per-session summaries keyed by
/// id, frames written, wire bytes written, and the first write error.
type WriterOut = (HashMap<u64, SessionSummary>, usize, u64, Option<NetError>);

fn server_write_loop(mut writer: BufWriter<TcpStream>, events: Events) -> WriterOut {
    let mut summaries: HashMap<u64, SessionSummary> = HashMap::new();
    let mut frames_out = 0usize;
    let mut wire_bytes_out = 0u64;
    let mut error: Option<NetError> = None;
    // Batch: block for one event, drain whatever else is queued, then
    // flush once before blocking again.
    while let Some(first) = events.recv() {
        let mut next = Some(first);
        while let Some(ev) = next {
            match ev {
                ExecEvent::Frame { id, frame } => {
                    frames_out += 1;
                    emit(
                        &mut writer,
                        &mut wire_bytes_out,
                        &mut error,
                        &Record::Frame { session: id, frame },
                    );
                }
                ExecEvent::Done {
                    id,
                    transcript,
                    error: session_error,
                } => {
                    match session_error.as_deref() {
                        None => emit(
                            &mut writer,
                            &mut wire_bytes_out,
                            &mut error,
                            &Record::Done {
                                session: id,
                                status: STATUS_OK,
                                message: String::new(),
                            },
                        ),
                        // The client already walked away; echoing a DONE
                        // at it would be noise.
                        Some(ABANDONED) => {}
                        Some(reason) => emit(
                            &mut writer,
                            &mut wire_bytes_out,
                            &mut error,
                            &Record::Done {
                                session: id,
                                status: STATUS_SESSION_ERROR,
                                message: reason.to_owned(),
                            },
                        ),
                    }
                    summaries.insert(
                        id,
                        SessionSummary {
                            id,
                            transcript,
                            error: session_error,
                        },
                    );
                }
                ExecEvent::Stranded { id, transcript } => {
                    summaries.insert(
                        id,
                        SessionSummary {
                            id,
                            transcript,
                            error: Some(CLOSED_MID_SESSION.into()),
                        },
                    );
                }
                ExecEvent::Injected { id, code, note } => {
                    let status = if code == INJ_UNKNOWN_SESSION {
                        STATUS_UNKNOWN_SESSION
                    } else {
                        STATUS_SESSION_ERROR
                    };
                    emit(
                        &mut writer,
                        &mut wire_bytes_out,
                        &mut error,
                        &Record::Done {
                            session: id,
                            status,
                            message: note,
                        },
                    );
                }
            }
            next = events.try_recv();
        }
        if error.is_none() {
            if let Err(e) = writer.flush() {
                fail(&writer, &mut error, e.into());
            }
        }
    }
    if error.is_none() {
        if let Err(e) = writer.flush() {
            fail(&writer, &mut error, e.into());
        }
    }
    (summaries, frames_out, wire_bytes_out, error)
}

/// Writes one record unless the stream already failed; on the first
/// failure shuts the socket down so the blocked reader unblocks too.
fn emit(
    writer: &mut BufWriter<TcpStream>,
    wire_bytes_out: &mut u64,
    error: &mut Option<NetError>,
    record: &Record,
) {
    if error.is_some() {
        return;
    }
    match write_record(writer, record) {
        Ok(n) => *wire_bytes_out += n,
        Err(e) => fail(writer, error, e),
    }
}

fn fail(writer: &BufWriter<TcpStream>, error: &mut Option<NetError>, e: NetError) {
    writer.get_ref().shutdown(Shutdown::Both).ok();
    *error = Some(e);
}
