//! Executor tuning shared by the server and client reactors: shard
//! defaults and the fixed placement seed.
//!
//! PR 6 drove each connection with its own executor pool behind
//! blocking reader/writer threads; PR 7 moved connection I/O into the
//! readiness reactor (`crate::reactor`), which multiplexes **every**
//! connection over one shared executor. What remains here is the
//! tuning both endpoints agree on: how many worker shards to run by
//! default, and the placement salt that keeps session→shard assignment
//! reproducible.

/// Cap on [`default_shards`]: session concurrency rarely benefits from
/// more workers than this, and an unbounded default would spawn a
/// thread per hardware thread on large hosts.
pub const MAX_DEFAULT_SHARDS: usize = 8;

/// The default worker-shard count: available parallelism, capped at
/// [`MAX_DEFAULT_SHARDS`], at least 1. With the shared reactor this is
/// a **per-process** pool, not per-connection: an endpoint runs
/// `1 + shards` threads no matter how many connections are live.
pub fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, MAX_DEFAULT_SHARDS)
}

/// Placement salt for the two-choice session→shard assignment. Fixed so
/// a replayed trace lands on the same shards everywhere.
pub(crate) const PLACEMENT_SEED: u64 = 0x2c01_ce5e_ed00_7357;
