//! [`Driver`]: the one client surface for every way of running
//! reconciliation sessions over the wire.
//!
//! PR 6 grew [`ReconClient::run_batch`](crate::ReconClient::run_batch),
//! PR 7 added [`MultiClient::run_batches`](crate::MultiClient) and the
//! open-loop `run_load`/`run_loads` pair — four entry points, two report
//! shapes, and an asymmetry: the single-connection path configured its
//! idle deadline through a socket option while the pool took a builder
//! argument. The driver collapses all of it:
//!
//! ```text
//! Driver::new(addr).conns(4).shards(2).batch(plans)      // closed loop
//! Driver::new(addr).idle_timeout(t).load(scheduled)      // open loop
//! Driver::new(addr).connect()?                           // many rounds
//! ```
//!
//! Both modes return one [`DriverReport`] — per-connection
//! [`RunReport`]s holding per-session [`RunSession`]s, where open-loop
//! timing fields are simply `None` for batch runs. The old entry points
//! survive as deprecated forwarders onto the same engine, so nothing
//! built on them changes behaviour.
//!
//! One-shot [`Driver::batch`]/[`Driver::load`] connect, run one round,
//! and tear the pool down. [`Driver::connect`] instead hands back a
//! [`ConnectedDriver`] whose connections persist between rounds — the
//! shape continuous sessions need: open with round 0 in one `batch`
//! call, keep churning and driving later rounds in further calls, then
//! [`ConnectedDriver::close_session`] and
//! [`ConnectedDriver::finish`].

use crate::client::{BatchReport, LoadReport, MultiClient, SessionPlan};
use crate::codec::NetError;
use rsr_core::transcript::Transcript;
use std::io;
use std::net::ToSocketAddrs;
use std::time::{Duration, Instant};

/// One session's record in a [`RunReport`] — the union of the batch and
/// open-loop per-session shapes. Batch runs leave the timing fields
/// `None`.
#[derive(Clone, Debug)]
pub struct RunSession {
    /// The session id used on the wire.
    pub id: u64,
    /// Both directions of the session's traffic with measured bit
    /// sizes. For a continuous round this is that round's segment only;
    /// accumulate across rounds caller-side (or read the server's
    /// whole-session summary).
    pub transcript: Transcript,
    /// `None` if both halves completed; the first error otherwise.
    pub error: Option<String>,
    /// Open-loop only: when the session was scheduled to arrive,
    /// offset from the run's start.
    pub scheduled: Option<Duration>,
    /// Open-loop only: when the generator actually injected it.
    pub injected: Option<Duration>,
    /// Open-loop only: when it fully settled (local half done and the
    /// server's ack received); `None` also when it never settled.
    pub settled: Option<Duration>,
}

impl RunSession {
    /// True when both the local Alice half and the server's Bob half
    /// finished cleanly.
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// Open-loop latency under the coordinated-omission rule: settle
    /// time minus *scheduled* arrival (docs/loadgen.md). `None` for
    /// batch-mode sessions and sessions that never settled.
    pub fn latency(&self) -> Option<Duration> {
        match (self.settled, self.scheduled) {
            (Some(settled), Some(scheduled)) => Some(settled.saturating_sub(scheduled)),
            _ => None,
        }
    }
}

/// What one run did on one connection.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Per-session reports, in plan (batch) or schedule (load) order.
    pub sessions: Vec<RunSession>,
    /// The connection's span of the run: start to last settle for a
    /// clean open-loop run, start to loop end otherwise; wall-clock
    /// around the whole round in batch mode (shared by every
    /// connection, since the round runs them together).
    pub elapsed: Duration,
    /// Frames sent to the server (all sessions).
    pub frames_out: usize,
    /// Frames received from the server and routed to a known session
    /// id.
    pub frames_in: usize,
    /// Raw bytes written, record headers included.
    pub wire_bytes_out: u64,
    /// Raw bytes read, record headers included.
    pub wire_bytes_in: u64,
    /// The connection-level failure, when this connection's transport
    /// died mid-run (every unsettled session then carries a matching
    /// per-session error); `None` for an orderly run.
    pub transport_error: Option<NetError>,
}

impl RunReport {
    /// Sessions that completed on both endpoints.
    pub fn completed(&self) -> usize {
        self.sessions.iter().filter(|s| s.is_ok()).count()
    }

    /// Sessions that failed (locally or server-side).
    pub fn failed(&self) -> usize {
        self.sessions.len() - self.completed()
    }

    /// Total payload bits across every session transcript.
    pub fn payload_bits(&self) -> u64 {
        self.sessions
            .iter()
            .map(|s| s.transcript.total_bits())
            .sum()
    }

    /// The largest `injected - scheduled` lag across an open-loop run —
    /// the generator's own tardiness, reported so a cell can prove its
    /// numbers are trustworthy. Zero for batch runs, which have no
    /// schedule.
    pub fn max_inject_lag(&self) -> Duration {
        self.sessions
            .iter()
            .filter_map(|s| match (s.injected, s.scheduled) {
                (Some(injected), Some(scheduled)) => Some(injected.saturating_sub(scheduled)),
                _ => None,
            })
            .max()
            .unwrap_or(Duration::ZERO)
    }
}

/// One run's outcome across every connection — the single report type
/// both driver modes return.
#[derive(Debug, Default)]
pub struct DriverReport {
    /// One report per connection, in pool order.
    pub conns: Vec<RunReport>,
}

impl DriverReport {
    /// Every session across every connection, pool order then plan
    /// order.
    pub fn sessions(&self) -> impl Iterator<Item = &RunSession> {
        self.conns.iter().flat_map(|c| c.sessions.iter())
    }

    /// Sessions that completed on both endpoints, across the run.
    pub fn completed(&self) -> usize {
        self.conns.iter().map(RunReport::completed).sum()
    }

    /// Sessions that failed, across the run.
    pub fn failed(&self) -> usize {
        self.conns.iter().map(RunReport::failed).sum()
    }

    /// Total payload bits across the run.
    pub fn payload_bits(&self) -> u64 {
        self.conns.iter().map(RunReport::payload_bits).sum()
    }

    /// The run's wall-clock span: the widest per-connection span.
    pub fn elapsed(&self) -> Duration {
        self.conns
            .iter()
            .map(|c| c.elapsed)
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// The first connection-level failure, if any connection died.
    pub fn transport_error(&self) -> Option<&NetError> {
        self.conns.iter().find_map(|c| c.transport_error.as_ref())
    }
}

fn batch_into_run_report(report: BatchReport, elapsed: Duration) -> RunReport {
    RunReport {
        sessions: report
            .sessions
            .into_iter()
            .map(|s| RunSession {
                id: s.id,
                transcript: s.transcript,
                error: s.error,
                scheduled: None,
                injected: None,
                settled: None,
            })
            .collect(),
        elapsed,
        frames_out: report.frames_out,
        frames_in: report.frames_in,
        wire_bytes_out: report.wire_bytes_out,
        wire_bytes_in: report.wire_bytes_in,
        transport_error: report.transport_error,
    }
}

fn load_into_run_report(report: LoadReport) -> RunReport {
    RunReport {
        sessions: report
            .sessions
            .into_iter()
            .map(|s| RunSession {
                id: s.id,
                transcript: s.transcript,
                error: s.error,
                scheduled: Some(s.scheduled),
                injected: Some(s.injected),
                settled: s.settled,
            })
            .collect(),
        elapsed: report.elapsed,
        frames_out: report.frames_out,
        frames_in: report.frames_in,
        wire_bytes_out: report.wire_bytes_out,
        wire_bytes_in: report.wire_bytes_in,
        transport_error: report.transport_error,
    }
}

/// Builder for a client run against a
/// [`ReconServer`](crate::server::ReconServer). See the module docs for
/// the surface it replaces.
pub struct Driver<A: ToSocketAddrs> {
    addr: A,
    conns: usize,
    shards: Option<usize>,
    idle_timeout: Option<Duration>,
}

impl<A: ToSocketAddrs> Driver<A> {
    /// A driver for `addr`: one connection, [`default_shards`](crate::default_shards)
    /// (crate::executor::default_shards) executor shards, no idle
    /// deadline.
    pub fn new(addr: A) -> Driver<A> {
        Driver {
            addr,
            conns: 1,
            shards: None,
            idle_timeout: None,
        }
    }

    /// Sets the connection-pool width (≥ 1).
    pub fn conns(mut self, conns: usize) -> Driver<A> {
        assert!(conns >= 1, "a driver needs at least one connection");
        self.conns = conns;
        self
    }

    /// Sets the shared executor's worker-shard count (≥ 1).
    pub fn shards(mut self, shards: usize) -> Driver<A> {
        assert!(shards >= 1, "the executor needs at least one shard");
        self.shards = Some(shards);
        self
    }

    /// Bounds how long a connection tolerates a silent server with
    /// sessions in flight before that connection fails with a transport
    /// error (other connections are untouched). Mirrors the server's
    /// [`with_idle_timeout`](crate::server::ReconServer::with_idle_timeout):
    /// both ends of the wire take the same knob, on their builders.
    pub fn idle_timeout(mut self, timeout: Option<Duration>) -> Driver<A> {
        self.idle_timeout = timeout;
        self
    }

    /// Connects the pool and keeps it: rounds run on the returned
    /// [`ConnectedDriver`] until [`ConnectedDriver::finish`].
    pub fn connect(self) -> io::Result<ConnectedDriver> {
        let mut inner = MultiClient::connect(&self.addr, self.conns)?;
        if let Some(shards) = self.shards {
            inner = inner.with_shards(shards);
        }
        inner = inner.with_idle_timeout(self.idle_timeout);
        Ok(ConnectedDriver { inner })
    }

    /// One-shot closed-loop run: connects, runs `batches[i]` on
    /// connection `i`, and tears the pool down. For a single connection
    /// pass one batch.
    pub fn batch(self, batches: Vec<Vec<SessionPlan<'_>>>) -> Result<DriverReport, NetError> {
        let mut driver = self.connect()?;
        let report = driver.batch(batches)?;
        driver.finish();
        Ok(report)
    }

    /// One-shot open-loop run: for connection `i`, session `j` of
    /// `loads[i].0` is injected at offset `loads[i].1[j]` from the
    /// run's start regardless of in-flight work; then the pool is torn
    /// down. Latency follows the coordinated-omission rule — see
    /// [`RunSession::latency`].
    pub fn load(
        self,
        loads: Vec<(Vec<SessionPlan<'_>>, Vec<Duration>)>,
    ) -> Result<DriverReport, NetError> {
        let mut driver = self.connect()?;
        let report = driver.load(loads)?;
        driver.finish();
        Ok(report)
    }
}

/// A connected driver: the pool persists between rounds, which is what
/// continuous sessions (and any multi-round workload) need.
pub struct ConnectedDriver {
    inner: MultiClient,
}

impl ConnectedDriver {
    /// Runs one closed-loop round; see [`Driver::batch`]. Callable
    /// repeatedly — session ids must be fresh per connection except for
    /// continuous rounds, which deliberately re-use their session's id.
    pub fn batch(&mut self, batches: Vec<Vec<SessionPlan<'_>>>) -> Result<DriverReport, NetError> {
        let t0 = Instant::now();
        let reports = self.inner.run_batches_inner(batches)?;
        let elapsed = t0.elapsed();
        Ok(DriverReport {
            conns: reports
                .into_iter()
                .map(|r| batch_into_run_report(r, elapsed))
                .collect(),
        })
    }

    /// Runs one open-loop round; see [`Driver::load`].
    pub fn load(
        &mut self,
        loads: Vec<(Vec<SessionPlan<'_>>, Vec<Duration>)>,
    ) -> Result<DriverReport, NetError> {
        Ok(DriverReport {
            conns: self
                .inner
                .run_loads_inner(loads)?
                .into_iter()
                .map(load_into_run_report)
                .collect(),
        })
    }

    /// Retires a continuous session on connection `conn`: the server
    /// drops its resident party and the id's continuous standing on the
    /// connection ends. Errors if the id was never opened as continuous
    /// there.
    pub fn close_session(&mut self, conn: usize, id: u64) -> Result<(), NetError> {
        self.inner.close_continuous(conn, id)
    }

    /// How many connections the pool was built with.
    pub fn conns(&self) -> usize {
        self.inner.conns()
    }

    /// Connections still usable for further rounds.
    pub fn live_conns(&self) -> usize {
        self.inner.live_conns()
    }

    /// The configured worker-shard count.
    pub fn shards(&self) -> usize {
        self.inner.shards()
    }

    /// Half-closes every live connection and drains the server's EOFs,
    /// bounded by a grace period.
    pub fn finish(self) {
        self.inner.finish();
    }
}
