//! [`TcpChannel`]: one endpoint of a point-to-point socket connection,
//! implementing `rsr-core`'s [`Channel`] trait so the existing protocol
//! sessions run unmodified across a network.
//!
//! A `TcpChannel` is *one party's* end: `send` writes `FRAME` records to
//! the socket, `recv` blocks until the peer's next frame arrives. Each
//! process drives its own session with
//! [`drive_channel`](rsr_core::session::drive_channel); the peer process
//! does the same with the opposite party. Because the [`Channel`] trait
//! has no error channel of its own, transport failures are latched: the
//! first error makes `recv` return `None` (which the driver surfaces as
//! `DriveError::Stalled`) and [`TcpChannel::take_error`] tells the caller
//! why.

use crate::codec::{read_record, write_record, NetError, Record, STATUS_OK};
use rsr_core::channel::{Channel, ChannelCounters, Frame};
use rsr_core::transcript::Party;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A [`Channel`] endpoint over one `TcpStream`, speaking the record
/// grammar of [`crate::codec`] with a fixed session id (0 unless
/// [`TcpChannel::with_session`] changes it).
#[derive(Debug)]
pub struct TcpChannel {
    me: Party,
    session: u64,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    sent: ChannelCounters,
    received: ChannelCounters,
    wire_bytes_out: u64,
    wire_bytes_in: u64,
    error: Option<NetError>,
}

impl TcpChannel {
    /// Connects to `addr` and becomes party `me` on the new connection.
    pub fn connect(addr: impl ToSocketAddrs, me: Party) -> io::Result<TcpChannel> {
        TcpChannel::from_stream(TcpStream::connect(addr)?, me)
    }

    /// Wraps an accepted or connected stream as party `me`.
    pub fn from_stream(stream: TcpStream, me: Party) -> io::Result<TcpChannel> {
        // Frames are request/response-sized, not bulk: never Nagle-delay.
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(TcpChannel {
            me,
            session: 0,
            reader,
            writer: BufWriter::new(stream),
            sent: ChannelCounters::new(),
            received: ChannelCounters::new(),
            wire_bytes_out: 0,
            wire_bytes_in: 0,
            error: None,
        })
    }

    /// Tags every outgoing frame with `session` and accepts only incoming
    /// frames so tagged (default 0).
    pub fn with_session(mut self, session: u64) -> TcpChannel {
        self.session = session;
        self
    }

    /// Bounds how long `recv` blocks before latching a timeout error.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// The party this endpoint plays.
    pub fn party(&self) -> Party {
        self.me
    }

    /// Totals over frames written to the socket (payload accounting, the
    /// same quantities a [`Transcript`](rsr_core::transcript::Transcript)
    /// measures).
    pub fn sent(&self) -> &ChannelCounters {
        &self.sent
    }

    /// Totals over frames read from the socket.
    pub fn received(&self) -> &ChannelCounters {
        &self.received
    }

    /// Raw wire bytes `(out, in)` including record headers — what the
    /// network actually carried, as opposed to the payload counters.
    pub fn wire_bytes(&self) -> (u64, u64) {
        (self.wire_bytes_out, self.wire_bytes_in)
    }

    /// Half-closes this endpoint: flushes anything buffered, then shuts
    /// down the socket's **write** side so the peer reads a clean EOF —
    /// at a record boundary, because flushed records are whole records.
    /// `recv` keeps working: shutdown is symmetric per direction, and
    /// the peer may still have frames to say. (The peer doing this to
    /// us mid-record is a truncation, latched as `Malformed` — never a
    /// hang, because its FIN ends our blocking read.)
    pub fn half_close(&mut self) -> io::Result<()> {
        self.writer.flush()?;
        self.writer.get_ref().shutdown(Shutdown::Write)
    }

    /// The latched transport error, if any, leaving it in place.
    pub fn last_error(&self) -> Option<&NetError> {
        self.error.as_ref()
    }

    /// Takes the latched transport error. After any error the channel is
    /// dead: sends are dropped and `recv` keeps returning `None`.
    pub fn take_error(&mut self) -> Option<NetError> {
        self.error.take()
    }

    fn latch(&mut self, e: NetError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }
}

impl Channel for TcpChannel {
    fn send(&mut self, from: Party, frame: Frame) {
        if from != self.me {
            self.latch(NetError::Malformed(
                "send() for the remote party on a TcpChannel endpoint",
            ));
            return;
        }
        if self.error.is_some() {
            return;
        }
        self.sent.note(&frame);
        let record = Record::Frame {
            session: self.session,
            frame,
        };
        match write_record(&mut self.writer, &record) {
            Ok(n) => {
                self.wire_bytes_out += n;
                if let Err(e) = self.writer.flush() {
                    self.latch(NetError::Io(e));
                }
            }
            Err(e) => self.latch(e),
        }
    }

    fn recv(&mut self, to: Party) -> Option<Frame> {
        if to != self.me || self.error.is_some() {
            return None;
        }
        match read_record(&mut self.reader) {
            Ok(None) => None, // clean shutdown by the peer
            Ok(Some((record, n))) => {
                self.wire_bytes_in += n;
                match record {
                    Record::Frame { session, frame } if session == self.session => {
                        self.received.note(&frame);
                        Some(frame)
                    }
                    Record::Frame { .. } => {
                        self.latch(NetError::Malformed(
                            "frame for a different session on a single-session channel",
                        ));
                        None
                    }
                    Record::Open { .. } => {
                        self.latch(NetError::Malformed(
                            "open record on a single-session channel",
                        ));
                        None
                    }
                    Record::Round { .. } => {
                        self.latch(NetError::Malformed(
                            "round record on a single-session channel",
                        ));
                        None
                    }
                    Record::Done {
                        session,
                        status,
                        message,
                    } => {
                        // The peer closed the session; an error status
                        // carries the reason out of band.
                        if status != STATUS_OK {
                            self.latch(NetError::Remote { session, message });
                        }
                        None
                    }
                }
            }
            Err(e) => {
                self.latch(e);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rsr_core::session::{drive_channel, Session};
    use rsr_iblt::bits::BitWriter;
    use std::net::TcpListener;

    /// Echoes `pings` frames: sends one, waits for the peer's, repeat.
    struct PingPong {
        name: &'static str,
        to_send: usize,
        to_recv: usize,
        my_turn: bool,
    }

    impl Session for PingPong {
        type Error = String;

        fn poll_send(&mut self) -> Result<Option<Frame>, String> {
            if self.my_turn && self.to_send > 0 {
                self.to_send -= 1;
                self.my_turn = false;
                let mut w = BitWriter::new();
                w.write(self.to_send as u64, 24);
                return Ok(Some(Frame::seal(self.name, w)));
            }
            Ok(None)
        }

        fn on_frame(&mut self, frame: Frame) -> Result<(), String> {
            if frame.bit_len != 24 {
                return Err(format!("unexpected frame: {}", frame.label));
            }
            self.to_recv -= 1;
            self.my_turn = true;
            Ok(())
        }

        fn is_done(&self) -> bool {
            self.to_send == 0 && self.to_recv == 0
        }
    }

    #[test]
    fn ping_pong_across_loopback() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut ch = TcpChannel::from_stream(stream, Party::Bob).unwrap();
            let mut bob = PingPong {
                name: "pong",
                to_send: 3,
                to_recv: 3,
                my_turn: false,
            };
            let t = drive_channel(&mut ch, Party::Bob, &mut bob).expect("bob completes");
            (t, ch.sent().bits, ch.received().bits)
        });
        let mut ch = TcpChannel::connect(addr, Party::Alice).unwrap();
        let mut alice = PingPong {
            name: "ping",
            to_send: 3,
            to_recv: 3,
            my_turn: true,
        };
        let t_alice = drive_channel(&mut ch, Party::Alice, &mut alice).expect("alice completes");
        let (t_bob, bob_sent, bob_received) = server.join().unwrap();

        // Six frames alternating: both transcripts see all of them.
        assert_eq!(t_alice.num_messages(), 6);
        assert_eq!(t_bob.num_messages(), 6);
        assert_eq!(t_alice.num_rounds(), 6);
        assert_eq!(t_alice.total_bits(), 6 * 24);
        assert_eq!(t_bob.total_bits(), 6 * 24);
        // Channel counters agree with the transcripts, crosswise.
        assert_eq!(ch.sent().bits, 3 * 24);
        assert_eq!(ch.received().bits, bob_sent);
        assert_eq!(bob_received, ch.sent().bits);
        assert!(ch.last_error().is_none());
    }

    #[test]
    fn peer_shutdown_surfaces_as_stall_not_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream); // peer vanishes without a word
        });
        let mut ch = TcpChannel::connect(addr, Party::Alice).unwrap();
        server.join().unwrap();
        assert!(ch.recv(Party::Alice).is_none());
        assert!(ch.take_error().is_none(), "clean EOF is not an error");
    }

    #[test]
    fn peer_half_close_mid_frame_is_truncation_not_a_hang() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let (hold_tx, hold_rx) = std::sync::mpsc::channel::<()>();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // A full length prefix and part of a FRAME body, then shut
            // down only the write side — the read side stays open, so a
            // reader that waited for the *connection* to die (instead of
            // honoring the FIN) would hang here.
            let frame = Frame {
                label: "m".into(),
                payload: vec![0xAB; 8],
                bit_len: 64,
            };
            let mut bytes = Vec::new();
            write_record(&mut bytes, &Record::Frame { session: 0, frame }).unwrap();
            stream.write_all(&bytes[..bytes.len() - 3]).unwrap();
            stream.shutdown(Shutdown::Write).unwrap();
            // Keep the socket (and its read half) alive until the client
            // has seen the truncation.
            let _ = hold_rx.recv();
        });
        let mut ch = TcpChannel::connect(addr, Party::Alice).unwrap();
        ch.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        assert!(ch.recv(Party::Alice).is_none());
        assert!(matches!(
            ch.take_error(),
            Some(NetError::Malformed("truncated record body"))
        ));
        drop(hold_tx);
        server.join().unwrap();
    }

    #[test]
    fn half_close_still_receives_the_peers_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut ch = TcpChannel::from_stream(stream, Party::Bob).unwrap();
            // Bob first observes Alice's EOF, then still speaks.
            assert!(ch.recv(Party::Bob).is_none());
            assert!(ch.take_error().is_none(), "half-close reads as clean EOF");
            let mut w = BitWriter::new();
            w.write(7, 24);
            ch.send(Party::Bob, Frame::seal("late", w));
            assert!(ch.last_error().is_none());
        });
        let mut ch = TcpChannel::connect(addr, Party::Alice).unwrap();
        ch.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        ch.half_close().unwrap();
        let frame = ch.recv(Party::Alice).expect("frame after our half-close");
        assert_eq!(frame.label, "late");
        assert_eq!(frame.bit_len, 24);
        server.join().unwrap();
    }

    #[test]
    fn sending_for_the_wrong_party_latches_an_error() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _server = std::thread::spawn(move || listener.accept().map(|(s, _)| s));
        let mut ch = TcpChannel::connect(addr, Party::Alice).unwrap();
        ch.send(Party::Bob, Frame::seal("wrong", BitWriter::new()));
        assert!(matches!(ch.take_error(), Some(NetError::Malformed(_))));
    }
}
