//! [`ReconServer`]: many reconciliation sessions multiplexed over each
//! accepted connection.
//!
//! The server plays **Bob** for every session. A [`SessionFactory`]
//! supplies the Bob half on demand: when a connection `OPEN`s a session
//! id (or sends its first `FRAME` for one), the factory builds the
//! session, the server pumps everything Bob can say immediately — for
//! Bob-initiated protocols like the Gap protocol that is round 1 — and
//! from then on frames are routed by session id. When a session's Bob
//! half finishes, the server reports `DONE` with [`STATUS_OK`]; a
//! protocol error is reported with [`STATUS_SESSION_ERROR`] and the
//! session dropped, leaving every other session on the connection
//! untouched. An id the factory does not know gets
//! [`STATUS_UNKNOWN_SESSION`].
//!
//! Each connection runs in its own thread (`serve`), or inline on the
//! caller's thread (`serve_one`); either way the handler keeps one
//! [`Transcript`] per session — entry-for-entry what the in-memory driver
//! would have recorded — plus whole-connection frame and wire-byte
//! counters, returned as a [`ConnectionReport`].

use crate::codec::{
    read_record, write_record, NetError, Record, STATUS_OK, STATUS_SESSION_ERROR,
    STATUS_UNKNOWN_SESSION,
};
use rsr_core::channel::Frame;
use rsr_core::session::Session;
use rsr_core::transcript::{Party, Transcript};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread;

/// A [`Session`] with its error type erased to `String`, so one server
/// can hold sessions of different protocols behind one object type.
/// Blanket-implemented for every `Session` whose error displays.
pub trait NetSession {
    /// See [`Session::poll_send`].
    fn poll_send(&mut self) -> Result<Option<Frame>, String>;
    /// See [`Session::on_frame`].
    fn on_frame(&mut self, frame: Frame) -> Result<(), String>;
    /// See [`Session::is_done`].
    fn is_done(&self) -> bool;
}

impl<S> NetSession for S
where
    S: Session,
    S::Error: fmt::Display,
{
    fn poll_send(&mut self) -> Result<Option<Frame>, String> {
        Session::poll_send(self).map_err(|e| e.to_string())
    }

    fn on_frame(&mut self, frame: Frame) -> Result<(), String> {
        Session::on_frame(self, frame).map_err(|e| e.to_string())
    }

    fn is_done(&self) -> bool {
        Session::is_done(self)
    }
}

/// Builds the server-side (Bob) half of a session on demand. The boxed
/// session may borrow from the factory — protocol objects and point sets
/// live in the factory, sessions are views over them.
pub trait SessionFactory: Send + Sync {
    /// The Bob session for `session_id`, or `None` if the id is unknown.
    fn open(&self, session_id: u64) -> Option<Box<dyn NetSession + '_>>;
}

/// One session's server-side record within a [`ConnectionReport`].
#[derive(Clone, Debug)]
pub struct SessionSummary {
    /// The session id the connection used.
    pub id: u64,
    /// Every frame that crossed the connection for this session, both
    /// directions, with measured bit sizes — the same transcript the
    /// in-memory driver would produce.
    pub transcript: Transcript,
    /// `None` if the session completed; the protocol or protocol-order
    /// error otherwise.
    pub error: Option<String>,
}

/// Aggregate accounting for one served connection.
#[derive(Debug, Default)]
pub struct ConnectionReport {
    /// Per-session summaries, in the order sessions were opened.
    pub sessions: Vec<SessionSummary>,
    /// Frames received from the client (all sessions).
    pub frames_in: usize,
    /// Frames sent to the client (all sessions).
    pub frames_out: usize,
    /// Raw bytes read from the socket, record headers included.
    pub wire_bytes_in: u64,
    /// Raw bytes written to the socket, record headers included.
    pub wire_bytes_out: u64,
}

impl ConnectionReport {
    /// Sessions that ran to completion.
    pub fn completed(&self) -> usize {
        self.sessions.iter().filter(|s| s.error.is_none()).count()
    }

    /// Sessions that ended in an error.
    pub fn failed(&self) -> usize {
        self.sessions.len() - self.completed()
    }

    /// Total payload bits across every session transcript; the wire-byte
    /// counters exceed the byte form of this only by record headers.
    pub fn payload_bits(&self) -> u64 {
        self.sessions
            .iter()
            .map(|s| s.transcript.total_bits())
            .sum()
    }
}

struct Slot<'f> {
    session: Box<dyn NetSession + 'f>,
    transcript: Transcript,
    error: Option<String>,
    /// A `DONE` has been sent; the session no longer accepts frames.
    closed: bool,
}

/// Serves every session the client multiplexes onto `stream`, until the
/// client closes the connection. Returns the per-connection accounting;
/// `Err` only for transport-level failures (the connection is then dead),
/// never for per-session protocol errors.
pub fn handle_connection<F: SessionFactory + ?Sized>(
    factory: &F,
    stream: TcpStream,
) -> Result<ConnectionReport, NetError> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut slots: HashMap<u64, Slot<'_>> = HashMap::new();
    let mut order: Vec<u64> = Vec::new();
    let mut report = ConnectionReport::default();
    loop {
        // Everything queued goes out before we block on the client.
        writer.flush()?;
        let Some((record, n)) = read_record(&mut reader)? else {
            break;
        };
        report.wire_bytes_in += n;
        match record {
            Record::Open { session: id } => {
                if slots.contains_key(&id) {
                    send_done(
                        &mut writer,
                        &mut report,
                        id,
                        STATUS_SESSION_ERROR,
                        "session opened twice",
                    )?;
                    continue;
                }
                match factory.open(id) {
                    Some(session) => {
                        order.push(id);
                        let mut slot = Slot {
                            session,
                            transcript: Transcript::new(),
                            error: None,
                            closed: false,
                        };
                        pump(&mut writer, &mut report, id, &mut slot)?;
                        slots.insert(id, slot);
                    }
                    None => send_done(
                        &mut writer,
                        &mut report,
                        id,
                        STATUS_UNKNOWN_SESSION,
                        "unknown session id",
                    )?,
                }
            }
            Record::Frame { session: id, frame } => {
                // A first frame without OPEN implicitly opens the session
                // (Alice-initiated protocols over a bare TcpChannel).
                if let std::collections::hash_map::Entry::Vacant(entry) = slots.entry(id) {
                    match factory.open(id) {
                        Some(session) => {
                            order.push(id);
                            entry.insert(Slot {
                                session,
                                transcript: Transcript::new(),
                                error: None,
                                closed: false,
                            });
                        }
                        None => {
                            send_done(
                                &mut writer,
                                &mut report,
                                id,
                                STATUS_UNKNOWN_SESSION,
                                "unknown session id",
                            )?;
                            continue;
                        }
                    }
                }
                let slot = slots.get_mut(&id).expect("just ensured");
                if slot.closed {
                    // Stale frame for a finished/failed session: drop it.
                    continue;
                }
                report.frames_in += 1;
                slot.transcript
                    .record_from(Party::Alice, frame.label.clone(), frame.bit_len);
                if let Err(e) = slot.session.on_frame(frame) {
                    slot.error = Some(e.clone());
                    slot.closed = true;
                    send_done(&mut writer, &mut report, id, STATUS_SESSION_ERROR, &e)?;
                    continue;
                }
                pump(&mut writer, &mut report, id, slot)?;
            }
            Record::Done { session: id, .. } => {
                // The client gave up on the session; drop our half.
                if let Some(slot) = slots.get_mut(&id) {
                    if !slot.closed {
                        slot.closed = true;
                        slot.error = Some("abandoned by client".into());
                    }
                }
            }
        }
    }
    writer.flush()?;
    for id in order {
        let slot = slots.remove(&id).expect("every opened id has a slot");
        let error = match (&slot.error, slot.session.is_done()) {
            (Some(e), _) => Some(e.clone()),
            (None, true) => None,
            (None, false) => Some("connection closed mid-session".into()),
        };
        report.sessions.push(SessionSummary {
            id,
            transcript: slot.transcript,
            error,
        });
    }
    Ok(report)
}

/// Sends everything the slot's session can say, then `DONE` if that
/// finished it.
fn pump(
    writer: &mut BufWriter<TcpStream>,
    report: &mut ConnectionReport,
    id: u64,
    slot: &mut Slot<'_>,
) -> Result<(), NetError> {
    loop {
        match slot.session.poll_send() {
            Ok(Some(frame)) => {
                slot.transcript
                    .record_from(Party::Bob, frame.label.clone(), frame.bit_len);
                report.frames_out += 1;
                report.wire_bytes_out +=
                    write_record(writer, &Record::Frame { session: id, frame })?;
            }
            Ok(None) => break,
            Err(e) => {
                slot.error = Some(e.clone());
                slot.closed = true;
                send_done(writer, report, id, STATUS_SESSION_ERROR, &e)?;
                return Ok(());
            }
        }
    }
    if slot.session.is_done() && !slot.closed {
        slot.closed = true;
        send_done(writer, report, id, STATUS_OK, "")?;
    }
    Ok(())
}

fn send_done(
    writer: &mut BufWriter<TcpStream>,
    report: &mut ConnectionReport,
    id: u64,
    status: u8,
    message: &str,
) -> Result<(), NetError> {
    report.wire_bytes_out += write_record(
        writer,
        &Record::Done {
            session: id,
            status,
            message: message.to_owned(),
        },
    )?;
    Ok(())
}

/// A listening reconciliation server: one [`SessionFactory`] shared by
/// every connection, one thread (or inline call) per connection.
pub struct ReconServer<F: SessionFactory> {
    listener: TcpListener,
    factory: Arc<F>,
}

impl<F: SessionFactory> ReconServer<F> {
    /// Binds `addr` (use port 0 for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs, factory: Arc<F>) -> io::Result<ReconServer<F>> {
        Ok(ReconServer {
            listener: TcpListener::bind(addr)?,
            factory,
        })
    }

    /// The bound address — needed after binding port 0.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts one connection and serves it to completion on the calling
    /// thread.
    pub fn serve_one(&self) -> Result<ConnectionReport, NetError> {
        let (stream, _peer) = self.listener.accept()?;
        handle_connection(&*self.factory, stream)
    }
}

impl<F: SessionFactory + 'static> ReconServer<F> {
    /// Accept loop: a thread per connection, at most `max_conns`
    /// connections (`None` = until the listener fails). A bounded loop
    /// joins its connection threads before returning; the run-forever
    /// mode detaches them (an unbounded handle list would grow with
    /// every connection ever accepted). Connection reports are discarded
    /// here — use [`ReconServer::serve_one`] when the caller wants them.
    pub fn serve(&self, max_conns: Option<usize>) -> io::Result<()> {
        let mut handles = Vec::new();
        for (accepted, conn) in self.listener.incoming().enumerate() {
            let stream = conn?;
            let factory = Arc::clone(&self.factory);
            let handle = thread::spawn(move || {
                let _ = handle_connection(&*factory, stream);
            });
            if let Some(max) = max_conns {
                handles.push(handle);
                if accepted + 1 >= max {
                    break;
                }
            }
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}
