//! [`ReconServer`]: many reconciliation sessions multiplexed over many
//! connections, all driven by **one** shared session executor behind a
//! readiness reactor.
//!
//! The server plays **Bob** for every session. A [`SessionFactory`]
//! supplies the Bob half on demand: when a connection `OPEN`s a session
//! id (or sends its first `FRAME` for one), the factory builds the
//! session — from the `OPEN`'s negotiated [`SessionSpec`] when the
//! client sent one, from the id alone otherwise — and the executor
//! places it on a worker shard by power-of-two choices; everything Bob
//! can say immediately — for Bob-initiated protocols like the Gap
//! protocol that is round 1 — is pumped on that shard and queued on the
//! connection's output buffer. From then on frames are routed by
//! session id, each one waking exactly the session it addresses. When a
//! session's Bob half finishes, the server reports `DONE` with
//! [`STATUS_OK`](crate::codec::STATUS_OK); a protocol error is reported
//! with [`STATUS_SESSION_ERROR`](crate::codec::STATUS_SESSION_ERROR)
//! and the session dropped, leaving every other session — on this
//! connection and every other — untouched. An id the factory does not
//! know gets [`STATUS_UNKNOWN_SESSION`](crate::codec::STATUS_UNKNOWN_SESSION).
//!
//! A session whose `OPEN` spec is marked continuous works differently:
//! [`SessionFactory::open_continuous`] supplies a *resident*
//! [`ContinuousParty`](rsr_core::continuous::ContinuousParty) that
//! stays on the connection across rounds, each client `ROUND` record
//! spins a fresh one-round Bob executor session over it, and a settled
//! round is acknowledged with an echoed `ROUND` instead of a `DONE` —
//! the id stays live for the next round until the client sends `DONE`
//! or closes the connection.
//!
//! Unlike the PR 6 design (a reader thread, a writer thread, and an
//! executor pool *per connection*), `serve` runs a single reactor
//! thread for every connection at once: sockets are nonblocking,
//! readiness comes from `netpoll`, and all sessions share one
//! `shards`-wide executor — the process runs `1 + shards` threads no
//! matter how many connections are live. A connection that goes silent
//! past the idle deadline is torn down instead of leaking state
//! forever; see [`ReconServer::with_idle_timeout`].
//!
//! Each connection keeps one [`Transcript`] per session — entry-for-
//! entry what the in-memory driver would have recorded — plus
//! whole-connection frame and wire-byte counters, returned as a
//! [`ConnectionReport`]. See `docs/transport.md` ("Execution model")
//! for the full scheduling story.

use crate::codec::{NetError, SessionSpec};
use crate::executor::default_shards;
use crate::reactor::{run_server_reactor, ServerOpts, DEFAULT_IDLE_TIMEOUT};
use rsr_core::continuous::SharedParty;
use rsr_core::transcript::Transcript;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

/// A [`rsr_core::session::Session`] with its error type erased to
/// `String` and a `Send` bound so it can run on an executor shard —
/// one server holds sessions of different protocols behind one object
/// type. This is `rsr-core`'s [`rsr_core::executor::DynSession`],
/// re-exported under the name the transport layer has always used;
/// it stays blanket-implemented for every sendable `Session` whose
/// error displays.
pub use rsr_core::executor::DynSession as NetSession;

/// Builds the server-side (Bob) half of a session on demand. The boxed
/// session may borrow from the factory — protocol objects and point sets
/// live in the factory, sessions are views over them.
pub trait SessionFactory: Send + Sync {
    /// The single required method: the Bob session for `session_id`,
    /// given whatever negotiation the `OPEN` carried — `Some(spec)`
    /// when the client put protocol and instance parameters on the
    /// wire, `None` for a bare open (or an implicit first-frame open),
    /// where the factory must know the id out of band. Return `None`
    /// for an id/spec combination this factory cannot serve; the
    /// server answers with
    /// [`STATUS_UNKNOWN_SESSION`](crate::codec::STATUS_UNKNOWN_SESSION).
    fn open_spec(
        &self,
        session_id: u64,
        spec: Option<&SessionSpec>,
    ) -> Option<Box<dyn NetSession + '_>>;

    /// Convenience wrapper for id-keyed opens; equivalent to
    /// [`SessionFactory::open_spec`] with no spec.
    fn open(&self, session_id: u64) -> Option<Box<dyn NetSession + '_>> {
        self.open_spec(session_id, None)
    }

    /// The resident Bob party for an `OPEN` whose spec is marked
    /// [`continuous`](SessionSpec::continuous): the server keeps the
    /// returned party alive on the connection and spins one
    /// [`BobRound`](rsr_core::continuous::BobRound) executor session
    /// per `ROUND` record over it. The default refuses (one-shot
    /// factories need not know continuous mode exists).
    fn open_continuous(&self, session_id: u64, spec: &SessionSpec) -> Option<SharedParty> {
        let _ = (session_id, spec);
        None
    }
}

/// One session's server-side record within a [`ConnectionReport`].
#[derive(Clone, Debug)]
pub struct SessionSummary {
    /// The session id the connection used.
    pub id: u64,
    /// Every frame that crossed the connection for this session, both
    /// directions, with measured bit sizes — the same transcript the
    /// in-memory driver would produce.
    pub transcript: Transcript,
    /// `None` if the session completed; the protocol or protocol-order
    /// error otherwise.
    pub error: Option<String>,
}

/// Aggregate accounting for one served connection.
#[derive(Debug, Default)]
pub struct ConnectionReport {
    /// Per-session summaries, in the order sessions were opened.
    pub sessions: Vec<SessionSummary>,
    /// Frames received from the client and routed to a known session id
    /// (all sessions). Unlike the pre-executor serial loop, this counts
    /// a frame even when the addressed session has already finished and
    /// the worker drops it as stale — the reactor routes without knowing
    /// per-session liveness — so on error interleavings this can exceed
    /// the number of frames sessions actually consumed.
    pub frames_in: usize,
    /// Frames sent to the client (all sessions).
    pub frames_out: usize,
    /// Raw bytes read from the socket, record headers included.
    pub wire_bytes_in: u64,
    /// Raw bytes written to the socket, record headers included.
    pub wire_bytes_out: u64,
}

impl ConnectionReport {
    /// Sessions that ran to completion.
    pub fn completed(&self) -> usize {
        self.sessions.iter().filter(|s| s.error.is_none()).count()
    }

    /// Sessions that ended in an error.
    pub fn failed(&self) -> usize {
        self.sessions.len() - self.completed()
    }

    /// Total payload bits across every session transcript; the wire-byte
    /// counters exceed the byte form of this only by record headers.
    pub fn payload_bits(&self) -> u64 {
        self.sessions
            .iter()
            .map(|s| s.transcript.total_bits())
            .sum()
    }
}

/// Serves every session the client multiplexes onto `stream` over a
/// default-width executor, until the client closes the connection.
/// Returns the per-connection accounting; `Err` only for transport-level
/// failures (the connection is then dead), never for per-session
/// protocol errors. No idle deadline — the caller owns the stream's
/// lifetime; accept-path serving via [`ReconServer`] does time out.
pub fn handle_connection<F: SessionFactory + ?Sized>(
    factory: &F,
    stream: TcpStream,
) -> Result<ConnectionReport, NetError> {
    handle_connection_sharded(factory, stream, default_shards())
}

/// [`handle_connection`] with an explicit worker-shard count (≥ 1).
pub fn handle_connection_sharded<F: SessionFactory + ?Sized>(
    factory: &F,
    stream: TcpStream,
    shards: usize,
) -> Result<ConnectionReport, NetError> {
    serve_streams(
        factory,
        None,
        vec![stream],
        &ServerOpts {
            shards,
            idle_timeout: None,
            max_conns: Some(1),
        },
    )
}

/// Runs the reactor over the given streams and hands back the single
/// connection outcome (helpers above always pass exactly one).
fn serve_streams<F: SessionFactory + ?Sized>(
    factory: &F,
    listener: Option<&TcpListener>,
    initial: Vec<TcpStream>,
    opts: &ServerOpts,
) -> Result<ConnectionReport, NetError> {
    let mut outcome: Option<Result<ConnectionReport, NetError>> = None;
    run_server_reactor(factory, listener, initial, opts, &mut |res| {
        outcome.get_or_insert(res);
    })?;
    outcome.expect("reactor reports every connection exactly once")
}

/// A listening reconciliation server: one [`SessionFactory`] and one
/// shared `shards`-wide executor serving every connection from a single
/// reactor thread.
pub struct ReconServer<F: SessionFactory> {
    listener: TcpListener,
    factory: Arc<F>,
    shards: usize,
    idle_timeout: Option<Duration>,
}

impl<F: SessionFactory> ReconServer<F> {
    /// Binds `addr` (use port 0 for an ephemeral port). Connections are
    /// driven with [`default_shards`] worker shards unless
    /// [`ReconServer::with_shards`] overrides it, and torn down after
    /// 30 s of wire silence unless [`ReconServer::with_idle_timeout`]
    /// says otherwise.
    pub fn bind(addr: impl ToSocketAddrs, factory: Arc<F>) -> io::Result<ReconServer<F>> {
        Ok(ReconServer {
            listener: TcpListener::bind(addr)?,
            factory,
            shards: default_shards(),
            idle_timeout: Some(DEFAULT_IDLE_TIMEOUT),
        })
    }

    /// Sets the executor worker-shard count shared by every connection.
    pub fn with_shards(mut self, shards: usize) -> ReconServer<F> {
        assert!(shards >= 1, "the executor needs at least one shard");
        self.shards = shards;
        self
    }

    /// Sets (or disables, with `None`) the idle deadline: a connection
    /// with no wire activity for this long is torn down — its live
    /// sessions report "connection closed mid-session" and every other
    /// connection is untouched. Without a deadline, a client that
    /// connects and never speaks would hold connection state forever.
    pub fn with_idle_timeout(mut self, timeout: Option<Duration>) -> ReconServer<F> {
        self.idle_timeout = timeout;
        self
    }

    /// The configured worker-shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The configured idle deadline.
    pub fn idle_timeout(&self) -> Option<Duration> {
        self.idle_timeout
    }

    /// The bound address — needed after binding port 0.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts one connection and serves it to completion on the calling
    /// thread (the executor's shard workers still run alongside).
    pub fn serve_one(&self) -> Result<ConnectionReport, NetError> {
        serve_streams(
            &*self.factory,
            Some(&self.listener),
            Vec::new(),
            &ServerOpts {
                shards: self.shards,
                idle_timeout: self.idle_timeout,
                max_conns: Some(1),
            },
        )
    }

    /// Accept loop: every connection multiplexed onto this one reactor
    /// thread and the shared executor, at most `max_conns` connections
    /// (`None` = until the listener fails). Thread count stays at
    /// `1 + shards` regardless of how many connections are accepted.
    /// Connection reports are discarded here — use
    /// [`ReconServer::serve_one`] when the caller wants them.
    pub fn serve(&self, max_conns: Option<usize>) -> io::Result<()> {
        let opts = ServerOpts {
            shards: self.shards,
            idle_timeout: self.idle_timeout,
            max_conns,
        };
        let result = run_server_reactor(
            &*self.factory,
            Some(&self.listener),
            Vec::new(),
            &opts,
            &mut |_res| {},
        );
        match result {
            Ok(()) => Ok(()),
            Err(NetError::Io(e)) => Err(e),
            Err(other) => Err(io::Error::other(other)),
        }
    }
}
