//! [`ReconServer`]: many reconciliation sessions multiplexed over each
//! accepted connection, driven by the sharded session executor.
//!
//! The server plays **Bob** for every session. A [`SessionFactory`]
//! supplies the Bob half on demand: when a connection `OPEN`s a session
//! id (or sends its first `FRAME` for one), the factory builds the
//! session and the executor places it on a worker shard by power-of-two
//! choices; everything Bob can say immediately — for Bob-initiated
//! protocols like the Gap protocol that is round 1 — is pumped on that
//! shard and written back by the connection's writer thread. From then
//! on frames are routed by session id, each one waking exactly the
//! session it addresses. When a session's Bob half finishes, the server
//! reports `DONE` with [`STATUS_OK`](crate::codec::STATUS_OK); a
//! protocol error is reported with
//! [`STATUS_SESSION_ERROR`](crate::codec::STATUS_SESSION_ERROR) and the
//! session dropped, leaving every other session on the connection — and
//! every other session on the same *shard* — untouched. An id the
//! factory does not know gets
//! [`STATUS_UNKNOWN_SESSION`](crate::codec::STATUS_UNKNOWN_SESSION).
//!
//! Each connection runs in its own thread (`serve`), or inline on the
//! caller's thread (`serve_one`); either way the handler keeps one
//! [`Transcript`] per session — entry-for-entry what the in-memory
//! driver would have recorded — plus whole-connection frame and
//! wire-byte counters, returned as a [`ConnectionReport`]. See
//! `docs/transport.md` ("Execution model") for the full scheduling
//! story.

use crate::codec::NetError;
use crate::executor::{default_shards, drive_server_connection};
use rsr_core::transcript::Transcript;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::thread;

/// A [`rsr_core::session::Session`] with its error type erased to
/// `String` and a `Send` bound so it can run on an executor shard —
/// one server holds sessions of different protocols behind one object
/// type. This is `rsr-core`'s [`rsr_core::executor::DynSession`],
/// re-exported under the name the transport layer has always used;
/// it stays blanket-implemented for every sendable `Session` whose
/// error displays.
pub use rsr_core::executor::DynSession as NetSession;

/// Builds the server-side (Bob) half of a session on demand. The boxed
/// session may borrow from the factory — protocol objects and point sets
/// live in the factory, sessions are views over them.
pub trait SessionFactory: Send + Sync {
    /// The Bob session for `session_id`, or `None` if the id is unknown.
    fn open(&self, session_id: u64) -> Option<Box<dyn NetSession + '_>>;
}

/// One session's server-side record within a [`ConnectionReport`].
#[derive(Clone, Debug)]
pub struct SessionSummary {
    /// The session id the connection used.
    pub id: u64,
    /// Every frame that crossed the connection for this session, both
    /// directions, with measured bit sizes — the same transcript the
    /// in-memory driver would produce.
    pub transcript: Transcript,
    /// `None` if the session completed; the protocol or protocol-order
    /// error otherwise.
    pub error: Option<String>,
}

/// Aggregate accounting for one served connection.
#[derive(Debug, Default)]
pub struct ConnectionReport {
    /// Per-session summaries, in the order sessions were opened.
    pub sessions: Vec<SessionSummary>,
    /// Frames received from the client and routed to a known session id
    /// (all sessions). Unlike the pre-executor serial loop, this counts
    /// a frame even when the addressed session has already finished and
    /// the worker drops it as stale — the reader routes without knowing
    /// per-session liveness — so on error interleavings this can exceed
    /// the number of frames sessions actually consumed.
    pub frames_in: usize,
    /// Frames sent to the client (all sessions).
    pub frames_out: usize,
    /// Raw bytes read from the socket, record headers included.
    pub wire_bytes_in: u64,
    /// Raw bytes written to the socket, record headers included.
    pub wire_bytes_out: u64,
}

impl ConnectionReport {
    /// Sessions that ran to completion.
    pub fn completed(&self) -> usize {
        self.sessions.iter().filter(|s| s.error.is_none()).count()
    }

    /// Sessions that ended in an error.
    pub fn failed(&self) -> usize {
        self.sessions.len() - self.completed()
    }

    /// Total payload bits across every session transcript; the wire-byte
    /// counters exceed the byte form of this only by record headers.
    pub fn payload_bits(&self) -> u64 {
        self.sessions
            .iter()
            .map(|s| s.transcript.total_bits())
            .sum()
    }
}

/// Serves every session the client multiplexes onto `stream` over a
/// default-width executor, until the client closes the connection.
/// Returns the per-connection accounting; `Err` only for transport-level
/// failures (the connection is then dead), never for per-session
/// protocol errors.
pub fn handle_connection<F: SessionFactory + ?Sized>(
    factory: &F,
    stream: TcpStream,
) -> Result<ConnectionReport, NetError> {
    drive_server_connection(factory, stream, default_shards())
}

/// [`handle_connection`] with an explicit worker-shard count (≥ 1).
pub fn handle_connection_sharded<F: SessionFactory + ?Sized>(
    factory: &F,
    stream: TcpStream,
    shards: usize,
) -> Result<ConnectionReport, NetError> {
    drive_server_connection(factory, stream, shards)
}

/// A listening reconciliation server: one [`SessionFactory`] shared by
/// every connection, one connection thread (or inline call) plus a
/// fixed pool of executor shards per connection.
pub struct ReconServer<F: SessionFactory> {
    listener: TcpListener,
    factory: Arc<F>,
    shards: usize,
}

impl<F: SessionFactory> ReconServer<F> {
    /// Binds `addr` (use port 0 for an ephemeral port). Connections are
    /// driven with [`default_shards`] worker shards unless
    /// [`ReconServer::with_shards`] overrides it.
    pub fn bind(addr: impl ToSocketAddrs, factory: Arc<F>) -> io::Result<ReconServer<F>> {
        Ok(ReconServer {
            listener: TcpListener::bind(addr)?,
            factory,
            shards: default_shards(),
        })
    }

    /// Sets the executor worker-shard count used for every connection.
    pub fn with_shards(mut self, shards: usize) -> ReconServer<F> {
        assert!(shards >= 1, "a connection needs at least one shard");
        self.shards = shards;
        self
    }

    /// The configured worker-shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The bound address — needed after binding port 0.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts one connection and serves it to completion on the calling
    /// thread (the executor's shard workers still run alongside).
    pub fn serve_one(&self) -> Result<ConnectionReport, NetError> {
        let (stream, _peer) = self.listener.accept()?;
        drive_server_connection(&*self.factory, stream, self.shards)
    }
}

impl<F: SessionFactory + 'static> ReconServer<F> {
    /// Accept loop: a thread per connection, at most `max_conns`
    /// connections (`None` = until the listener fails). A bounded loop
    /// joins its connection threads before returning; the run-forever
    /// mode detaches them (an unbounded handle list would grow with
    /// every connection ever accepted). Connection reports are discarded
    /// here — use [`ReconServer::serve_one`] when the caller wants them.
    pub fn serve(&self, max_conns: Option<usize>) -> io::Result<()> {
        let mut handles = Vec::new();
        for (accepted, conn) in self.listener.incoming().enumerate() {
            let stream = conn?;
            let factory = Arc::clone(&self.factory);
            let shards = self.shards;
            let handle = thread::spawn(move || {
                let _ = drive_server_connection(&*factory, stream, shards);
            });
            if let Some(max) = max_conns {
                handles.push(handle);
                if accepted + 1 >= max {
                    break;
                }
            }
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}
