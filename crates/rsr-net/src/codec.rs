//! The length-prefixed record codec every `rsr-net` transport speaks.
//!
//! A TCP stream carries a sequence of *records*, each one length-prefixed
//! so a reader can frame the stream without understanding its contents:
//!
//! ```text
//! u32  body_len   big-endian count of the bytes that follow
//! u8   kind       0 = OPEN, 1 = FRAME, 2 = DONE, 3 = ROUND
//! u64  session    session id (multiplexing key), big-endian
//! ...  kind-specific body (see below)
//! ```
//!
//! * `OPEN` — either no further body (a *bare* open: the server must
//!   already know what instance the session id denotes, e.g. from a
//!   shared trace), or a negotiation block (see [`SessionSpec`]): `u8`
//!   flag, `u8` protocol code, `u32` n, `u32` k, `u32` dim, `u64`
//!   seed, all big-endian. The flag is a bitfield: bit 0 set means a
//!   spec block follows (flag `1`, PR 5's wire form), bit 1 set marks
//!   the session *continuous* (flag `3`) — the id stays live across
//!   many `ROUND` exchanges instead of retiring on the first `DONE`.
//!   Any other flag value is malformed. The spec tells the server
//!   which protocol instance to build for the session — the
//!   session-id → instance mapping travels on the wire instead of
//!   living in out-of-band trace state. An empty body remains exactly
//!   PR 3's wire form, so bare opens are bit-compatible in both
//!   directions.
//! * `FRAME` — `u16` label length, the UTF-8 label, `u64` exact bit
//!   length, then the payload bytes (exactly `bit_len.div_ceil(8)` of
//!   them). This is a [`Frame`] as the session layer knows it; the label
//!   and bit length travel so the receiving side's transcript accounting
//!   is identical to the sender's.
//! * `DONE` — `u8` status ([`STATUS_OK`], [`STATUS_SESSION_ERROR`],
//!   [`STATUS_UNKNOWN_SESSION`]), `u16` message length, UTF-8 message.
//!   Sent by the server when a session's server half finishes (or fails),
//!   and by the client to abandon a session it cannot continue. For a
//!   continuous session, `DONE` ends the *whole* session (all rounds),
//!   not the round in flight.
//! * `ROUND` — `u32` round index, big-endian. Client → server it opens
//!   incremental round `r` on a continuous session (the server builds a
//!   fresh Bob round over its resident state); server → client it
//!   acknowledges that round `r` settled server-side, leaving the
//!   session open for round `r + 1` — the continuous counterpart of a
//!   `STATUS_OK` `DONE`, which would retire the id.
//!
//! Decoding is strict: a record whose body disagrees with its length
//! prefix, whose frame payload disagrees with its bit length, or whose
//! claimed length exceeds [`MAX_RECORD_BYTES`] is a [`NetError`], never a
//! silent truncation — and the oversize check runs *before* any
//! allocation, so a hostile length prefix cannot balloon memory.

use rsr_core::channel::Frame;
use std::borrow::Cow;
use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on one record's body (64 MiB). Far above any real frame
/// (the protocols' messages are `O(k·d·log n)` bits) while keeping a
/// malformed or hostile length prefix from driving a huge allocation.
pub const MAX_RECORD_BYTES: u32 = 1 << 26;

/// `DONE` status: the server half of the session completed.
pub const STATUS_OK: u8 = 0;
/// `DONE` status: a session reported a protocol error.
pub const STATUS_SESSION_ERROR: u8 = 1;
/// `DONE` status: the session id is not known to the server's factory.
pub const STATUS_UNKNOWN_SESSION: u8 = 2;

const KIND_OPEN: u8 = 0;
const KIND_FRAME: u8 = 1;
const KIND_DONE: u8 = 2;
const KIND_ROUND: u8 = 3;

/// `OPEN` negotiation flag bit: a [`SessionSpec`] block follows.
const OPEN_FLAG_SPEC: u8 = 1;
/// `OPEN` negotiation flag bit: the session is continuous (multi-round).
const OPEN_FLAG_CONTINUOUS: u8 = 2;

/// [`SessionSpec`] protocol code: the EMD protocol.
pub const PROTO_EMD: u8 = 0;
/// [`SessionSpec`] protocol code: the scaled-EMD protocol.
pub const PROTO_SCALED_EMD: u8 = 1;
/// [`SessionSpec`] protocol code: the Gap protocol.
pub const PROTO_GAP: u8 = 2;
/// Continuous IBLT set reconciliation — the protocol code a
/// [`continuous`](SessionSpec::continuous) spec carries: `n` is the
/// base set size, `k` the per-round churn bound, and `seed` pins both
/// the initial set and the shared table coins.
pub const PROTO_CONT: u8 = 3;

/// The negotiation block an `OPEN` record may carry: which protocol
/// instance the session id denotes, compactly parameterized the same way
/// a trace entry is (`protocol n k dim seed` — the server rebuilds the
/// instance deterministically from these five numbers, exactly as a
/// trace replay would). The codec does not interpret the fields beyond
/// framing them; the `PROTO_*` constants are the codes `rsr-bench`'s
/// trace replay assigns, and a custom [`SessionFactory`] may assign its
/// own meanings.
///
/// [`SessionFactory`]: crate::server::SessionFactory
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionSpec {
    /// Protocol code (`PROTO_EMD`, `PROTO_SCALED_EMD`, `PROTO_GAP`, or a
    /// factory-defined value).
    pub protocol: u8,
    /// Set size parameter n.
    pub n: u32,
    /// Difference bound k.
    pub k: u32,
    /// Point dimensionality.
    pub dim: u32,
    /// Instance seed.
    pub seed: u64,
    /// Marks the session *continuous*: instead of retiring on its first
    /// `DONE`, the id stays live on the connection and each `ROUND`
    /// record reconciles one incremental delta against state both sides
    /// keep resident between rounds. Carried as a flag bit, so the spec
    /// block's size (and every one-shot spec's wire form) is unchanged.
    pub continuous: bool,
}

impl SessionSpec {
    /// Marks this spec's session continuous (multi-round).
    pub fn into_continuous(mut self) -> SessionSpec {
        self.continuous = true;
        self
    }
}

/// Wire length of an encoded [`SessionSpec`] (flag byte included).
const SPEC_WIRE_BYTES: usize = 1 + 1 + 4 + 4 + 4 + 8;

/// Everything that can go wrong on an `rsr-net` transport.
#[derive(Debug)]
pub enum NetError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The byte stream violates the record grammar.
    Malformed(&'static str),
    /// A length prefix claims a body larger than [`MAX_RECORD_BYTES`].
    Oversized {
        /// The claimed body length.
        claimed: u32,
    },
    /// A record kind byte this codec does not know.
    UnknownKind(u8),
    /// The remote endpoint reported a session failure via `DONE`.
    Remote {
        /// The session the failure belongs to.
        session: u64,
        /// The remote error message.
        message: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "transport i/o error: {e}"),
            NetError::Malformed(what) => write!(f, "malformed record stream: {what}"),
            NetError::Oversized { claimed } => write!(
                f,
                "record body of {claimed} bytes exceeds the {MAX_RECORD_BYTES}-byte cap"
            ),
            NetError::UnknownKind(kind) => write!(f, "unknown record kind {kind:#04x}"),
            NetError::Remote { session, message } => {
                write!(f, "remote failure on session {session}: {message}")
            }
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

/// One unit of the connection protocol.
#[derive(Clone, Debug)]
pub enum Record {
    /// Client announces a session; the server creates its half. With a
    /// [`SessionSpec`] the record also *negotiates* which protocol
    /// instance the id denotes; without one the server must know the id
    /// out of band (a shared trace).
    Open {
        /// The session being opened.
        session: u64,
        /// The negotiation block, if the opener sent one.
        spec: Option<SessionSpec>,
    },
    /// One protocol frame, tagged with its session.
    Frame {
        /// The session the frame belongs to.
        session: u64,
        /// The session-layer frame, label and exact bit length included.
        frame: Frame,
    },
    /// A session's sender is finished with it (status [`STATUS_OK`]) or
    /// had to give up on it (any other status).
    Done {
        /// The session being closed.
        session: u64,
        /// One of the `STATUS_*` codes.
        status: u8,
        /// Human-readable detail for non-OK statuses.
        message: String,
    },
    /// One incremental round of a continuous session: the client sends
    /// it to start round `round`, the server echoes it to acknowledge
    /// that round settled server-side — the session id stays live for
    /// the next round (a `DONE` would retire it).
    Round {
        /// The continuous session the round belongs to.
        session: u64,
        /// The round index, counted from 0 over the session's lifetime.
        round: u32,
    },
}

impl Record {
    /// The session id every record variant carries.
    pub fn session(&self) -> u64 {
        match *self {
            Record::Open { session, .. }
            | Record::Frame { session, .. }
            | Record::Done { session, .. }
            | Record::Round { session, .. } => session,
        }
    }

    fn body_len(&self) -> usize {
        1 + 8
            + match self {
                Record::Open { spec: None, .. } => 0,
                Record::Open { spec: Some(_), .. } => SPEC_WIRE_BYTES,
                Record::Frame { frame, .. } => 2 + frame.label.len() + 8 + frame.payload.len(),
                Record::Done { message, .. } => 1 + 2 + message.len(),
                Record::Round { .. } => 4,
            }
    }

    /// Bytes this record occupies on the wire, length prefix included.
    pub fn wire_len(&self) -> u64 {
        4 + self.body_len() as u64
    }
}

/// Writes one record. Returns the wire bytes written (prefix included).
/// Does not flush; callers flush before blocking on a read. Every
/// validation failure happens *before* the first byte is written, so an
/// unencodable record never leaves a half-emitted header corrupting the
/// stream for its successors.
pub fn write_record<W: Write>(w: &mut W, record: &Record) -> Result<u64, NetError> {
    let body_len = record.body_len();
    if body_len > MAX_RECORD_BYTES as usize {
        return Err(NetError::Oversized {
            claimed: body_len.min(u32::MAX as usize) as u32,
        });
    }
    match record {
        Record::Open { .. } => {}
        Record::Frame { frame, .. } => {
            if frame.label.len() > u16::MAX as usize {
                return Err(NetError::Malformed("frame label longer than u16"));
            }
            debug_assert_eq!(frame.payload.len() as u64, frame.bit_len.div_ceil(8));
        }
        Record::Done { message, .. } => {
            if message.len() > u16::MAX as usize {
                return Err(NetError::Malformed("done message longer than u16"));
            }
        }
        Record::Round { .. } => {}
    }
    w.write_all(&(body_len as u32).to_be_bytes())?;
    match record {
        Record::Open { session, spec } => {
            w.write_all(&[KIND_OPEN])?;
            w.write_all(&session.to_be_bytes())?;
            if let Some(spec) = spec {
                let flag = if spec.continuous {
                    OPEN_FLAG_SPEC | OPEN_FLAG_CONTINUOUS
                } else {
                    OPEN_FLAG_SPEC
                };
                w.write_all(&[flag, spec.protocol])?;
                w.write_all(&spec.n.to_be_bytes())?;
                w.write_all(&spec.k.to_be_bytes())?;
                w.write_all(&spec.dim.to_be_bytes())?;
                w.write_all(&spec.seed.to_be_bytes())?;
            }
        }
        Record::Frame { session, frame } => {
            let label = frame.label.as_bytes();
            w.write_all(&[KIND_FRAME])?;
            w.write_all(&session.to_be_bytes())?;
            w.write_all(&(label.len() as u16).to_be_bytes())?;
            w.write_all(label)?;
            w.write_all(&frame.bit_len.to_be_bytes())?;
            w.write_all(&frame.payload)?;
        }
        Record::Done {
            session,
            status,
            message,
        } => {
            w.write_all(&[KIND_DONE])?;
            w.write_all(&session.to_be_bytes())?;
            w.write_all(&[*status])?;
            w.write_all(&(message.len() as u16).to_be_bytes())?;
            w.write_all(message.as_bytes())?;
        }
        Record::Round { session, round } => {
            w.write_all(&[KIND_ROUND])?;
            w.write_all(&session.to_be_bytes())?;
            w.write_all(&round.to_be_bytes())?;
        }
    }
    Ok(4 + body_len as u64)
}

/// Reads one record. Returns `Ok(None)` on a clean end of stream (EOF at
/// a record boundary); EOF anywhere else is `Malformed`, a length prefix
/// over [`MAX_RECORD_BYTES`] is `Oversized` (detected before allocating).
/// On success also returns the wire bytes consumed.
pub fn read_record<R: Read>(r: &mut R) -> Result<Option<(Record, u64)>, NetError> {
    let mut prefix = [0u8; 4];
    match read_full(r, &mut prefix)? {
        0 => return Ok(None),
        4 => {}
        _ => return Err(NetError::Malformed("truncated length prefix")),
    }
    let body_len = u32::from_be_bytes(prefix);
    if body_len > MAX_RECORD_BYTES {
        return Err(NetError::Oversized { claimed: body_len });
    }
    if body_len < 9 {
        return Err(NetError::Malformed("record body shorter than its header"));
    }
    let mut body = vec![0u8; body_len as usize];
    if read_full(r, &mut body)? != body.len() {
        return Err(NetError::Malformed("truncated record body"));
    }
    let record = parse_body(&body)?;
    Ok(Some((record, 4 + body_len as u64)))
}

/// Reads until `buf` is full or EOF; returns the bytes read.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(filled)
}

fn parse_body(body: &[u8]) -> Result<Record, NetError> {
    let mut cur = Cursor(body);
    let kind = cur.u8().expect("length checked");
    let session = cur.u64().expect("length checked");
    const TRUNCATED: NetError = NetError::Malformed("record body ends mid-field");
    let record = match kind {
        KIND_OPEN => {
            let spec = if cur.remaining() == 0 {
                None // bare open: PR 3's wire form
            } else {
                let flag = cur.u8().ok_or(TRUNCATED)?;
                if flag & OPEN_FLAG_SPEC == 0
                    || flag & !(OPEN_FLAG_SPEC | OPEN_FLAG_CONTINUOUS) != 0
                {
                    return Err(NetError::Malformed("unknown open negotiation flag"));
                }
                let protocol = cur.u8().ok_or(TRUNCATED)?;
                let n = cur.u32().ok_or(TRUNCATED)?;
                let k = cur.u32().ok_or(TRUNCATED)?;
                let dim = cur.u32().ok_or(TRUNCATED)?;
                let seed = cur.u64().ok_or(TRUNCATED)?;
                Some(SessionSpec {
                    protocol,
                    n,
                    k,
                    dim,
                    seed,
                    continuous: flag & OPEN_FLAG_CONTINUOUS != 0,
                })
            };
            if !cur.rest().is_empty() {
                return Err(NetError::Malformed("trailing bytes after open record"));
            }
            Record::Open { session, spec }
        }
        KIND_FRAME => {
            let label_len = cur.u16().ok_or(TRUNCATED)? as usize;
            let label = cur.bytes(label_len).ok_or(TRUNCATED)?;
            let label = std::str::from_utf8(label)
                .map_err(|_| NetError::Malformed("frame label is not utf-8"))?
                .to_owned();
            let bit_len = cur.u64().ok_or(TRUNCATED)?;
            let payload = cur.rest().to_vec();
            if payload.len() as u64 != bit_len.div_ceil(8) {
                return Err(NetError::Malformed(
                    "frame payload length disagrees with its bit length",
                ));
            }
            Record::Frame {
                session,
                frame: Frame {
                    label: Cow::Owned(label),
                    payload,
                    bit_len,
                },
            }
        }
        KIND_DONE => {
            let status = cur.u8().ok_or(TRUNCATED)?;
            let msg_len = cur.u16().ok_or(TRUNCATED)? as usize;
            let message = cur.bytes(msg_len).ok_or(TRUNCATED)?;
            let message = std::str::from_utf8(message)
                .map_err(|_| NetError::Malformed("done message is not utf-8"))?
                .to_owned();
            if !cur.rest().is_empty() {
                return Err(NetError::Malformed("trailing bytes after done record"));
            }
            Record::Done {
                session,
                status,
                message,
            }
        }
        KIND_ROUND => {
            let round = cur.u32().ok_or(TRUNCATED)?;
            if !cur.rest().is_empty() {
                return Err(NetError::Malformed("trailing bytes after round record"));
            }
            Record::Round { session, round }
        }
        other => return Err(NetError::UnknownKind(other)),
    };
    Ok(record)
}

/// A tiny byte cursor; every accessor returns `None` past the end.
struct Cursor<'a>(&'a [u8]);

impl<'a> Cursor<'a> {
    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let (head, tail) = self.0.split_at_checked(n)?;
        self.0 = tail;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        Some(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_be_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_be_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_be_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn rest(&mut self) -> &'a [u8] {
        std::mem::take(&mut self.0)
    }
}

/// Incremental record framing for a *nonblocking* byte source: feed
/// whatever bytes a read produced, pull complete records out. The
/// validation is byte-for-byte [`read_record`]'s — same oversize check
/// *before* the body is retained, same strict body parsing — but the
/// decoder never blocks and never sees the socket: the reactor owns the
/// reads and hands bytes in.
///
/// EOF handling belongs to the caller: when the peer's stream ends,
/// [`RecordDecoder::is_mid_record`] distinguishes a clean end (empty
/// buffer — a record boundary) from a truncation (prefix or body cut
/// mid-record), which callers must surface as
/// [`NetError::Malformed`] — the symmetric half-close rule.
#[derive(Debug, Default)]
pub struct RecordDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted when it outgrows the tail.
    start: usize,
}

impl RecordDecoder {
    /// An empty decoder.
    pub fn new() -> RecordDecoder {
        RecordDecoder::default()
    }

    /// Appends bytes read from the stream.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: never hold more than one buffer's
        // worth of dead prefix.
        if self.start > 0 && self.start >= self.buf.len().saturating_sub(self.start) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Extracts the next complete record, if the buffer holds one.
    /// Returns `Ok(None)` when more bytes are needed; errors are
    /// terminal for the stream (the caller tears the connection down, so
    /// the decoder does not need to resynchronize).
    pub fn next_record(&mut self) -> Result<Option<(Record, u64)>, NetError> {
        let pending = &self.buf[self.start..];
        let Some(prefix) = pending.first_chunk::<4>() else {
            return Ok(None);
        };
        let body_len = u32::from_be_bytes(*prefix);
        if body_len > MAX_RECORD_BYTES {
            return Err(NetError::Oversized { claimed: body_len });
        }
        if body_len < 9 {
            return Err(NetError::Malformed("record body shorter than its header"));
        }
        let total = 4 + body_len as usize;
        if pending.len() < total {
            return Ok(None);
        }
        let record = parse_body(&pending[4..total])?;
        self.start += total;
        Ok(Some((record, total as u64)))
    }

    /// True when buffered bytes form an incomplete record — an EOF now
    /// is a truncation, not a clean close.
    pub fn is_mid_record(&self) -> bool {
        self.buf.len() > self.start
    }

    /// The error an EOF at this point implies: `None` at a record
    /// boundary (a clean close), the matching [`NetError::Malformed`]
    /// otherwise — byte-for-byte the diagnosis the blocking
    /// [`read_record`] makes when its stream ends mid-record.
    pub fn truncation(&self) -> Option<NetError> {
        match self.buf.len() - self.start {
            0 => None,
            1..=3 => Some(NetError::Malformed("truncated length prefix")),
            _ => Some(NetError::Malformed("truncated record body")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(record: Record) -> Record {
        let mut buf = Vec::new();
        let written = write_record(&mut buf, &record).expect("encodes");
        assert_eq!(written, record.wire_len());
        assert_eq!(written as usize, buf.len());
        let mut r = &buf[..];
        let (decoded, consumed) = read_record(&mut r).expect("decodes").expect("not eof");
        assert_eq!(consumed, written);
        assert!(r.is_empty());
        decoded
    }

    #[test]
    fn open_round_trips() {
        match roundtrip(Record::Open {
            session: 42,
            spec: None,
        }) {
            Record::Open { session, spec } => {
                assert_eq!(session, 42);
                assert_eq!(spec, None);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn open_with_spec_round_trips() {
        let spec = SessionSpec {
            protocol: PROTO_GAP,
            n: 48,
            k: 3,
            dim: 128,
            seed: 0xDEAD_BEEF_0BAD_F00D,
            continuous: false,
        };
        match roundtrip(Record::Open {
            session: 9,
            spec: Some(spec),
        }) {
            Record::Open { session, spec: got } => {
                assert_eq!(session, 9);
                assert_eq!(got, Some(spec));
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn continuous_open_round_trips_and_differs_only_in_the_flag() {
        let spec = SessionSpec {
            protocol: PROTO_EMD,
            n: 64,
            k: 4,
            dim: 8,
            seed: 11,
            continuous: false,
        };
        let cont = spec.into_continuous();
        match roundtrip(Record::Open {
            session: 2,
            spec: Some(cont),
        }) {
            Record::Open { spec: got, .. } => assert_eq!(got, Some(cont)),
            other => panic!("wrong variant: {other:?}"),
        }
        // Same spec block, one flag bit: the encodings differ in exactly
        // the flag byte (offset 4 prefix + 1 kind + 8 session).
        let (mut a, mut b) = (Vec::new(), Vec::new());
        write_record(
            &mut a,
            &Record::Open {
                session: 2,
                spec: Some(spec),
            },
        )
        .unwrap();
        write_record(
            &mut b,
            &Record::Open {
                session: 2,
                spec: Some(cont),
            },
        )
        .unwrap();
        assert_eq!(a.len(), b.len());
        let diff: Vec<usize> = (0..a.len()).filter(|&i| a[i] != b[i]).collect();
        assert_eq!(diff, vec![13]);
        assert_eq!(a[13], 1);
        assert_eq!(b[13], 3);
    }

    #[test]
    fn round_record_round_trips() {
        match roundtrip(Record::Round {
            session: 17,
            round: 0xAABB_CCDD,
        }) {
            Record::Round { session, round } => {
                assert_eq!(session, 17);
                assert_eq!(round, 0xAABB_CCDD);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn round_record_with_trailing_bytes_is_malformed() {
        let mut buf = Vec::new();
        write_record(
            &mut buf,
            &Record::Round {
                session: 1,
                round: 2,
            },
        )
        .unwrap();
        buf.push(0xEE);
        let new_len = (buf.len() as u32 - 4).to_be_bytes();
        buf[..4].copy_from_slice(&new_len);
        let mut r = &buf[..];
        assert!(matches!(
            read_record(&mut r),
            Err(NetError::Malformed("trailing bytes after round record"))
        ));
    }

    #[test]
    fn open_flag_without_spec_bit_is_malformed() {
        // Flag 2 (continuous without a spec block) is not a valid form:
        // a continuous session always negotiates its instance.
        let mut buf = Vec::new();
        write_record(
            &mut buf,
            &Record::Open {
                session: 1,
                spec: Some(SessionSpec {
                    protocol: PROTO_EMD,
                    n: 8,
                    k: 1,
                    dim: 2,
                    seed: 0,
                    continuous: false,
                }),
            },
        )
        .unwrap();
        buf[4 + 1 + 8] = 2;
        let mut r = &buf[..];
        assert!(matches!(
            read_record(&mut r),
            Err(NetError::Malformed("unknown open negotiation flag"))
        ));
    }

    #[test]
    fn bare_open_wire_form_is_unchanged() {
        // The negotiation extension must not perturb PR 3's bare opens:
        // 4-byte prefix + kind + session, nothing else.
        let mut buf = Vec::new();
        write_record(
            &mut buf,
            &Record::Open {
                session: 0x0102_0304_0506_0708,
                spec: None,
            },
        )
        .unwrap();
        assert_eq!(
            buf,
            [0, 0, 0, 9, 0, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08]
        );
    }

    #[test]
    fn unknown_open_flag_is_malformed() {
        let mut buf = Vec::new();
        write_record(
            &mut buf,
            &Record::Open {
                session: 1,
                spec: Some(SessionSpec {
                    protocol: PROTO_EMD,
                    n: 8,
                    k: 1,
                    dim: 2,
                    seed: 0,
                    continuous: false,
                }),
            },
        )
        .unwrap();
        buf[4 + 1 + 8] = 7; // corrupt the negotiation flag byte
        let mut r = &buf[..];
        assert!(matches!(
            read_record(&mut r),
            Err(NetError::Malformed("unknown open negotiation flag"))
        ));
    }

    #[test]
    fn frame_round_trips_label_payload_and_bit_len() {
        let frame = Frame {
            label: Cow::Borrowed("alice→bob: RIBLTs"),
            payload: vec![0xAB, 0xCD, 0x80],
            bit_len: 17,
        };
        match roundtrip(Record::Frame { session: 7, frame }) {
            Record::Frame { session, frame } => {
                assert_eq!(session, 7);
                assert_eq!(frame.label, "alice→bob: RIBLTs");
                assert_eq!(frame.payload, vec![0xAB, 0xCD, 0x80]);
                assert_eq!(frame.bit_len, 17);
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn done_round_trips() {
        let rec = Record::Done {
            session: u64::MAX,
            status: STATUS_SESSION_ERROR,
            message: "no RIBLT level decoded".into(),
        };
        match roundtrip(rec) {
            Record::Done {
                session,
                status,
                message,
            } => {
                assert_eq!(session, u64::MAX);
                assert_eq!(status, STATUS_SESSION_ERROR);
                assert_eq!(message, "no RIBLT level decoded");
            }
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn open_record_with_trailing_bytes_is_malformed() {
        // A single byte after a bare open is read as a (bad) negotiation
        // flag...
        let mut buf = Vec::new();
        write_record(
            &mut buf,
            &Record::Open {
                session: 3,
                spec: None,
            },
        )
        .unwrap();
        buf.push(0xEE);
        let new_len = (buf.len() as u32 - 4).to_be_bytes();
        buf[..4].copy_from_slice(&new_len);
        let mut r = &buf[..];
        assert!(matches!(
            read_record(&mut r),
            Err(NetError::Malformed("unknown open negotiation flag"))
        ));

        // ...while bytes after a complete negotiation spec are trailing
        // garbage.
        let mut buf = Vec::new();
        write_record(
            &mut buf,
            &Record::Open {
                session: 3,
                spec: Some(SessionSpec {
                    protocol: PROTO_EMD,
                    n: 8,
                    k: 1,
                    dim: 2,
                    seed: 9,
                    continuous: false,
                }),
            },
        )
        .unwrap();
        buf.push(0xEE);
        let new_len = (buf.len() as u32 - 4).to_be_bytes();
        buf[..4].copy_from_slice(&new_len);
        let mut r = &buf[..];
        assert!(matches!(
            read_record(&mut r),
            Err(NetError::Malformed("trailing bytes after open record"))
        ));
    }

    #[test]
    fn unencodable_record_writes_nothing() {
        // An oversized DONE message must fail before the length prefix,
        // or it would leave a headless record corrupting the stream.
        let mut buf = Vec::new();
        let rec = Record::Done {
            session: 1,
            status: STATUS_SESSION_ERROR,
            message: "x".repeat(u16::MAX as usize + 1),
        };
        assert!(matches!(
            write_record(&mut buf, &rec),
            Err(NetError::Malformed("done message longer than u16"))
        ));
        assert!(buf.is_empty(), "no bytes may precede validation");
    }

    #[test]
    fn incremental_decoder_matches_blocking_reader_byte_by_byte() {
        let mut buf = Vec::new();
        write_record(
            &mut buf,
            &Record::Open {
                session: 5,
                spec: Some(SessionSpec {
                    protocol: PROTO_SCALED_EMD,
                    n: 24,
                    k: 2,
                    dim: 16,
                    seed: 77,
                    continuous: false,
                }),
            },
        )
        .unwrap();
        write_record(
            &mut buf,
            &Record::Frame {
                session: 5,
                frame: Frame {
                    label: Cow::Borrowed("f"),
                    payload: vec![0xFF, 0x01],
                    bit_len: 16,
                },
            },
        )
        .unwrap();
        write_record(
            &mut buf,
            &Record::Done {
                session: 5,
                status: STATUS_OK,
                message: String::new(),
            },
        )
        .unwrap();

        // Feed one byte at a time: records must pop out at exactly the
        // boundaries, with the same wire-length accounting.
        let mut dec = RecordDecoder::new();
        let mut out = Vec::new();
        for (i, b) in buf.iter().enumerate() {
            dec.feed(&[*b]);
            while let Some((rec, n)) = dec.next_record().expect("valid stream") {
                out.push((rec, n, i + 1));
            }
        }
        assert!(!dec.is_mid_record(), "all bytes consumed at a boundary");
        assert_eq!(out.len(), 3);
        assert!(matches!(
            out[0].0,
            Record::Open {
                session: 5,
                spec: Some(_)
            }
        ));
        assert!(matches!(out[1].0, Record::Frame { session: 5, .. }));
        assert!(matches!(out[2].0, Record::Done { session: 5, .. }));
        // Cross-check against the blocking reader on the same bytes.
        let mut r = &buf[..];
        for (rec, n, _) in &out {
            let (blocking, bn) = read_record(&mut r).unwrap().unwrap();
            assert_eq!(*n, bn);
            assert_eq!(format!("{rec:?}"), format!("{blocking:?}"));
        }
    }

    #[test]
    fn incremental_decoder_flags_mid_record_truncation() {
        let mut buf = Vec::new();
        write_record(
            &mut buf,
            &Record::Frame {
                session: 1,
                frame: Frame {
                    label: Cow::Borrowed("x"),
                    payload: vec![0xAA; 8],
                    bit_len: 64,
                },
            },
        )
        .unwrap();
        let mut dec = RecordDecoder::new();
        dec.feed(&buf[..buf.len() - 3]);
        assert!(dec.next_record().unwrap().is_none(), "incomplete body");
        assert!(dec.is_mid_record(), "an EOF here would be a truncation");
        dec.feed(&buf[buf.len() - 3..]);
        assert!(dec.next_record().unwrap().is_some());
        assert!(!dec.is_mid_record());
    }

    #[test]
    fn incremental_decoder_rejects_oversized_prefix_immediately() {
        let mut dec = RecordDecoder::new();
        dec.feed(&(MAX_RECORD_BYTES + 1).to_be_bytes());
        assert!(matches!(dec.next_record(), Err(NetError::Oversized { .. })));
    }

    #[test]
    fn eof_at_record_boundary_is_none() {
        let mut empty: &[u8] = &[];
        assert!(read_record(&mut empty).expect("clean eof").is_none());
    }

    #[test]
    fn concatenated_records_frame_correctly() {
        let mut buf = Vec::new();
        write_record(
            &mut buf,
            &Record::Open {
                session: 1,
                spec: None,
            },
        )
        .unwrap();
        write_record(
            &mut buf,
            &Record::Done {
                session: 1,
                status: STATUS_OK,
                message: String::new(),
            },
        )
        .unwrap();
        let mut r = &buf[..];
        assert!(matches!(
            read_record(&mut r).unwrap().unwrap().0,
            Record::Open { session: 1, .. }
        ));
        assert!(matches!(
            read_record(&mut r).unwrap().unwrap().0,
            Record::Done { session: 1, .. }
        ));
        assert!(read_record(&mut r).unwrap().is_none());
    }
}
