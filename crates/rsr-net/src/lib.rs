//! A real TCP transport behind `rsr-core`'s
//! [`Channel`](rsr_core::channel::Channel) trait, plus a multi-session
//! reconciliation server and client.
//!
//! PR 2 split every protocol into Alice/Bob session state machines that
//! only exchange byte-exact [`Frame`](rsr_core::channel::Frame)s over a
//! [`Channel`](rsr_core::channel::Channel); this crate is the first real
//! transport behind that seam. Three layers, std-only:
//!
//! * [`codec`] — the length-prefixed record grammar: every record carries
//!   a session id, and a `FRAME` record carries a session-layer `Frame`
//!   (label, payload, exact bit length) verbatim, so transcript
//!   accounting on the two endpoints agrees bit for bit.
//! * [`TcpChannel`] — one endpoint of a point-to-point connection,
//!   implementing `Channel` over `std::net::TcpStream`. Each process
//!   runs its own party's session with
//!   [`drive_channel`](rsr_core::session::drive_channel); the sessions
//!   themselves are unchanged from the in-memory path.
//! * [`ReconServer`] / [`ReconClient`] — many concurrent sessions
//!   multiplexed over **one** connection, each endpoint driving its
//!   halves on `rsr-core`'s sharded worker-pool executor (see
//!   [`executor`]): the server holds the Bob half of every session
//!   (created on demand by a [`SessionFactory`], placed on a shard by
//!   power-of-two choices) in a thread-per-connection accept loop; the
//!   client batches N Alice sessions and interleaves their frames. Both
//!   sides keep per-session
//!   [`Transcript`](rsr_core::transcript::Transcript)s and
//!   per-connection byte counters that must — and are tested to — agree
//!   with the in-memory driver's accounting.
//! * [`Driver`] — the one client entry point over all of it:
//!   `Driver::new(addr).conns(n).shards(s)` then [`Driver::batch`]
//!   (closed loop), [`Driver::load`] (open loop), or
//!   [`Driver::connect`] for a persistent pool running many rounds —
//!   including **continuous** sessions, whose resident state spans
//!   rounds under one wire id (see [`SessionPlan::open_continuous`]).
//!
//! See `docs/transport.md` for the wire layout and error-handling rules.

pub mod client;
pub mod codec;
pub mod driver;
pub mod executor;
mod obs;
mod reactor;
pub mod server;
pub mod tcp;

pub use client::{
    BatchReport, LoadReport, LoadSessionReport, MultiClient, ReconClient, SessionPlan,
    SessionReport,
};
pub use codec::{
    read_record, write_record, NetError, Record, RecordDecoder, SessionSpec, MAX_RECORD_BYTES,
    PROTO_CONT, PROTO_EMD, PROTO_GAP, PROTO_SCALED_EMD, STATUS_OK, STATUS_SESSION_ERROR,
    STATUS_UNKNOWN_SESSION,
};
pub use driver::{ConnectedDriver, Driver, DriverReport, RunReport, RunSession};
pub use executor::{default_shards, MAX_DEFAULT_SHARDS};
pub use server::{
    handle_connection, handle_connection_sharded, ConnectionReport, NetSession, ReconServer,
    SessionFactory, SessionSummary,
};
pub use tcp::TcpChannel;
